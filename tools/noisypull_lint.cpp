// noisypull_lint — repo-specific tree-aware linter for the noisypull tree.
//
// Generic compilers and clang-tidy cannot check the invariants this
// reproduction's empirical claims rest on: bit-for-bit deterministic
// simulation from salted (round, agent) RNG substreams, double-only
// probability arithmetic, the project's assertion discipline, and the
// library's include-layer DAG.  This tool enforces them with a lightweight
// tokenizer (comments, strings, raw strings, and preprocessor directives
// are handled; no libclang), a declarative per-rule scope table, and a
// whole-tree include-graph pass:
//
// Per-file rules (scope column in kRules):
//   nondeterministic-rng   std::rand / srand / std::random_device / time() /
//                          clock() / random_shuffle / default-seeded
//                          std::mt19937 anywhere outside src/noisypull/rng/.
//                          All simulation randomness must flow through the
//                          seeded noisypull::Rng substreams.
//   float-type             `float` types or float literals (0.5f) anywhere:
//                          probability/statistics arithmetic is double-only,
//                          so tables cannot drift with optimization levels.
//   pragma-once            every .hpp starts (first directive) with
//                          `#pragma once`.
//   bare-assert            bare assert() or <cassert>/<assert.h> includes;
//                          internal invariants use NOISYPULL_ASSERT (aborts
//                          in every build type), preconditions NOISYPULL_CHECK.
//   unordered-container    std::unordered_{map,set,...} under src/noisypull/
//                          or bench/: hash-order iteration feeding results is
//                          a nondeterminism hazard, so deterministic paths
//                          use ordered containers or suppress explicitly.
//   iostream-in-header     #include <iostream> in src/noisypull/ headers
//                          (static-init cost and hidden I/O in the core
//                          library; use <ostream>/<iosfwd> in interfaces).
//   threading-header       #include <thread>/<atomic>/<mutex>/
//                          <condition_variable> under src/noisypull/ or
//                          bench/ outside an explicit allowlist (the shared
//                          ThreadPool, the repetition runner, the fault
//                          accumulators, and the kernel bench).  Ad-hoc
//                          threading is a determinism hazard; parallelism
//                          routes through Engine::set_threads and the
//                          counter-substream block kernel.
//   raw-file-io            std::ofstream or rename() under src/noisypull/
//                          or bench/ outside common/atomic_io: every durable
//                          artifact (cache entries, manifests, CSV/JSON)
//                          must publish through the crash-safe tmp+rename
//                          seam, or kill-and-resume guarantees silently rot.
//   substream-discipline   Rng constructed with a bare integer-literal
//                          argument outside src/noisypull/rng/: raw magic
//                          seeds escape the counter-substream derivation
//                          (seed ^ salt, 2r / 2r+1 stream splits) that the
//                          replay and lane-invariance guarantees rest on.
//                          Seeds and stream ids must be named constants or
//                          derived expressions.
//   allow-without-reason   an `nplint: allow(rule)` missing its ` -- why`.
//                          Suppressions are audit records; a naked one is
//                          indistinguishable from a silenced bug.
//
// Tree rules (run over the include graph of all linted files at once):
//   layering               enforces the declared layer DAG over
//                          src/noisypull/ module directories:
//                            layer 0  common core linalg rng
//                            layer 1  model noise
//                            layer 2  baselines fault push sim
//                            layer 3  analysis theory
//                          A file may include only its own layer or below;
//                          include cycles, upward includes, includes of the
//                          external-consumer umbrella noisypull/noisypull.hpp
//                          from inside the library, and module directories
//                          missing from the DAG all fire.
//
// Suppression: a comment `nplint: allow(rule-name) -- reason` on the
// offending line, or `nplint: allow-next-line(rule-name) -- reason` on the
// line above it.  The reason is mandatory (allow-without-reason).
//
// Usage:
//   noisypull_lint [--format=text|json|sarif] <file-or-dir>...
//   noisypull_lint --self-test <fixture-dir>
//
// Exit status: 0 clean, 1 findings, 2 usage/IO errors.  `--format=json`
// emits a flat findings array; `--format=sarif` emits SARIF 2.1.0 so CI can
// surface findings as inline PR annotations.
//
// Fixture files declare their virtual location and expected findings in
// comments (`lint-path:`, `expect: rule`, `expect-anywhere: rule`); the
// self-test fails if any expected finding does not fire or any unexpected
// one does — which is how each rule is proven to both fire and stay silent
// (tests/lint_fixtures/, wired as a ctest in tools/CMakeLists.txt).  Tree
// rules are exercised the same way: fixtures under one directory form one
// include graph (tests/lint_fixtures/tree_bad/, tree_clean/).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexing

enum class TokKind { Identifier, Number, Punct };

struct Token {
  std::string text;
  int line = 0;
  TokKind kind = TokKind::Punct;
};

struct Directive {
  std::vector<std::string> words;  // e.g. {"#", "pragma", "once"}
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;  // line where the comment starts
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::vector<Comment> comments;
};

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Splits a preprocessor directive body into whitespace-separated words,
// keeping <...> / "..." include arguments as single words.
std::vector<std::string> directive_words(const std::string& body) {
  std::vector<std::string> words{"#"};
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] == ' ' || body[i] == '\t') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < body.size() && body[j] != ' ' && body[j] != '\t') ++j;
    words.push_back(body.substr(i, j - i));
    i = j;
  }
  return words;
}

// One pass over the source: produces identifier/number/punct tokens with
// comments, string literals, and preprocessor directives separated out so
// rules never false-positive on prose or quoted rule names.
LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({src.substr(i, j - i), start_line});
      advance(j - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      j = std::min(n, j + 2);
      out.comments.push_back({src.substr(i, j - i), start_line});
      advance(j - i);
      continue;
    }
    // Preprocessor directive: consume the whole (continued) logical line.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\n') {
          if (j > i && src[j - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      std::string body = src.substr(i + 1, j - i - 1);
      // Strip trailing line comment from the directive body.
      if (const auto pos = body.find("//"); pos != std::string::npos) {
        out.comments.push_back({body.substr(pos), start_line});
        body.resize(pos);
      }
      out.directives.push_back({directive_words(body), start_line});
      advance(j - i);
      continue;
    }
    at_line_start = false;
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      const auto end = src.find(close, j);
      advance((end == std::string::npos ? n : end + close.size()) - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance(std::min(n, j + 1) - i);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      // A string literal prefixed by an encoding (u8"...") lexes as an
      // identifier followed by the string — good enough for these rules.
      out.tokens.push_back({src.substr(i, j - i), line, TokKind::Identifier});
      advance(j - i);
      continue;
    }
    if (is_digit(c)) {
      std::size_t j = i;
      while (j < n &&
             (is_ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({src.substr(i, j - i), line, TokKind::Number});
      advance(j - i);
      continue;
    }
    // Punctuation; merge the two-char tokens the rules care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({"::", line, TokKind::Punct});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({"->", line, TokKind::Punct});
      advance(2);
      continue;
    }
    out.tokens.push_back({std::string(1, c), line, TokKind::Punct});
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Annotations (suppressions + fixture expectations) from comments

struct Annotations {
  std::map<int, std::set<std::string>> allow;   // line → suppressed rules
  std::map<int, bool> allow_has_reason;         // line → ` -- why` present
  std::map<int, std::set<std::string>> expect;  // line → expected rules
  std::set<std::string> expect_anywhere;        // rules expected on any line
  std::string lint_path;                        // fixture virtual path
};

// Extracts comma/space-separated rule names following `key` in comment text.
void parse_rule_list(const std::string& text, std::size_t after,
                     std::set<std::string>& out) {
  std::size_t i = after;
  while (i < text.size()) {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == ',' || text[i] == '('))
      ++i;
    std::size_t j = i;
    while (j < text.size() && (is_ident_char(text[j]) || text[j] == '-')) ++j;
    if (j == i) break;
    out.insert(text.substr(i, j - i));
    i = j;
    if (i < text.size() && text[i] == ')') break;
  }
}

// A suppression reason is ` -- free text` (or an em dash) after the closing
// parenthesis of the allow list, with at least one alphanumeric character.
bool allow_reason_present(const std::string& text, std::size_t allow_pos) {
  const auto close = text.find(')', allow_pos);
  if (close == std::string::npos) return false;
  const std::string rest = text.substr(close + 1);
  auto dash = rest.find("--");
  if (dash == std::string::npos) dash = rest.find("\xE2\x80\x94");
  if (dash == std::string::npos) return false;
  for (std::size_t i = dash; i < rest.size(); ++i) {
    if (is_ident_char(rest[i])) return true;
  }
  return false;
}

Annotations parse_annotations(const LexedFile& lexed) {
  Annotations a;
  for (const Comment& c : lexed.comments) {
    if (auto pos = c.text.find("nplint: allow"); pos != std::string::npos) {
      // `allow-next-line(...)` suppresses on the following line — for sites
      // where the offending line has no room for the mandatory reason.
      const bool next_line =
          c.text.compare(pos, 23, "nplint: allow-next-line") == 0;
      const int target = next_line ? c.line + 1 : c.line;
      std::set<std::string> rules;
      parse_rule_list(c.text, pos + (next_line ? 23 : 13), rules);
      if (!rules.empty()) {
        // Prose merely *mentioning* the marker (no rule list) is not a
        // suppression and carries no reason obligation.
        a.allow[target].insert(rules.begin(), rules.end());
        const bool reason = allow_reason_present(c.text, pos);
        a.allow_has_reason[target] = a.allow_has_reason[target] || reason;
      }
    }
    if (auto pos = c.text.find("expect-anywhere:"); pos != std::string::npos) {
      parse_rule_list(c.text, pos + 16, a.expect_anywhere);
    } else if (auto pos2 = c.text.find("expect:"); pos2 != std::string::npos) {
      parse_rule_list(c.text, pos2 + 7, a.expect[c.line]);
    }
    if (auto pos = c.text.find("lint-path:"); pos != std::string::npos) {
      std::size_t i = pos + 10;
      while (i < c.text.size() && c.text[i] == ' ') ++i;
      std::size_t j = i;
      while (j < c.text.size() && c.text[j] != ' ' && c.text[j] != '\n') ++j;
      a.lint_path = c.text.substr(i, j - i);
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Findings, scopes, and per-file rules

struct Finding {
  std::string rule;
  int line = 0;
  std::string message;
};

// Coarse tree regions a rule opts into; the fine-grained refinements
// (headers only, rng/ excluded, explicit allowlists) stay inside the rule.
enum ScopeBits : unsigned {
  kScopeSrc = 1u << 0,       // src/noisypull/ (library)
  kScopeBench = 1u << 1,     // bench/
  kScopeTools = 1u << 2,     // tools/
  kScopeTests = 1u << 3,     // tests/
  kScopeExamples = 1u << 4,  // examples/
  kScopeAll = kScopeSrc | kScopeBench | kScopeTools | kScopeTests |
              kScopeExamples,
};

unsigned classify_scope(const std::string& path) {
  if (path.find("src/noisypull") != std::string::npos) return kScopeSrc;
  if (path.find("tests/") != std::string::npos) return kScopeTests;
  if (path.find("bench/") != std::string::npos) return kScopeBench;
  if (path.find("tools/") != std::string::npos) return kScopeTools;
  if (path.find("examples/") != std::string::npos) return kScopeExamples;
  return kScopeAll;  // standalone file: hold it to everything
}

struct FileContext {
  std::string path;  // effective (virtual in self-test) repo path, '/' sep
  bool is_header = false;
  const LexedFile* lexed = nullptr;
  const Annotations* ann = nullptr;
};

bool path_contains(const FileContext& ctx, const std::string& fragment) {
  return ctx.path.find(fragment) != std::string::npos;
}

bool is_member_access(const std::vector<Token>& toks, std::size_t idx) {
  return idx > 0 && (toks[idx - 1].text == "." || toks[idx - 1].text == "->");
}

bool next_is(const std::vector<Token>& toks, std::size_t idx,
             const std::string& text) {
  return idx + 1 < toks.size() && toks[idx + 1].text == text;
}

// nondeterministic-rng: unseeded / wall-clock randomness outside rng/.
void rule_nondeterministic_rng(const FileContext& ctx,
                               std::vector<Finding>& findings) {
  if (path_contains(ctx, "src/noisypull/rng/")) return;
  const auto& toks = ctx.lexed->tokens;
  static const std::set<std::string> kBannedIdents = {
      "srand", "random_device", "random_shuffle"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (kBannedIdents.count(t.text) != 0) {
      findings.push_back({"nondeterministic-rng", t.line,
                          t.text + " is nondeterministic; use the seeded "
                                   "noisypull::Rng substreams"});
      continue;
    }
    if (t.text == "rand" && !is_member_access(toks, i)) {
      findings.push_back({"nondeterministic-rng", t.line,
                          "std::rand is nondeterministic; use the seeded "
                          "noisypull::Rng substreams"});
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && next_is(toks, i, "(") &&
        !is_member_access(toks, i)) {
      findings.push_back({"nondeterministic-rng", t.line,
                          t.text + "() reads the wall clock; simulations must "
                                   "be reproducible from the seed alone"});
      continue;
    }
    if (t.text == "mt19937" || t.text == "mt19937_64") {
      // Default-seeded declaration: `std::mt19937 gen;` / `gen{}` / `gen()`.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::Identifier) ++j;
      const bool argless =
          j < toks.size() &&
          (toks[j].text == ";" ||
           (toks[j].text == "(" && next_is(toks, j, ")")) ||
           (toks[j].text == "{" && next_is(toks, j, "}")));
      if (argless) {
        findings.push_back({"nondeterministic-rng", t.line,
                            "default-seeded std::" + t.text +
                                " is nondeterministic across standard "
                                "libraries; seed noisypull::Rng instead"});
      }
    }
  }
}

// float-type: probability/statistics arithmetic is double-only.
void rule_float_type(const FileContext& ctx, std::vector<Finding>& findings) {
  for (const Token& t : ctx.lexed->tokens) {
    if (t.kind == TokKind::Identifier && t.text == "float") {
      findings.push_back({"float-type", t.line,
                          "probability paths are double-only; single "
                          "precision silently degrades noise statistics"});
      continue;
    }
    if (t.kind == TokKind::Number && !t.text.empty() &&
        (t.text.back() == 'f' || t.text.back() == 'F') &&
        t.text.compare(0, 2, "0x") != 0 && t.text.compare(0, 2, "0X") != 0 &&
        (t.text.find('.') != std::string::npos ||
         t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos)) {
      findings.push_back({"float-type", t.line,
                          "float literal " + t.text +
                              "; probability paths are double-only"});
    }
  }
}

// pragma-once: the first directive of every header is `#pragma once`.
void rule_pragma_once(const FileContext& ctx, std::vector<Finding>& findings) {
  if (!ctx.is_header) return;
  const auto& dirs = ctx.lexed->directives;
  if (dirs.empty() || dirs.front().words.size() < 3 ||
      dirs.front().words[1] != "pragma" || dirs.front().words[2] != "once") {
    findings.push_back({"pragma-once", dirs.empty() ? 1 : dirs.front().line,
                        "header must open with #pragma once before any other "
                        "directive"});
  }
}

// bare-assert: internal invariants go through NOISYPULL_ASSERT.
void rule_bare_assert(const FileContext& ctx, std::vector<Finding>& findings) {
  const auto& toks = ctx.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Identifier && t.text == "assert" &&
        next_is(toks, i, "(") && !is_member_access(toks, i)) {
      findings.push_back({"bare-assert", t.line,
                          "bare assert() compiles out under NDEBUG; use "
                          "NOISYPULL_ASSERT (invariants) or NOISYPULL_CHECK "
                          "(preconditions)"});
    }
  }
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        (d.words[2] == "<cassert>" || d.words[2] == "<assert.h>")) {
      findings.push_back({"bare-assert", d.line,
                          "include of " + d.words[2] +
                              "; use noisypull/common/check.hpp"});
    }
  }
}

// unordered-container: hash-order iteration in deterministic paths.
void rule_unordered_container(const FileContext& ctx,
                              std::vector<Finding>& findings) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const Token& t : ctx.lexed->tokens) {
    if (t.kind == TokKind::Identifier && kUnordered.count(t.text) != 0) {
      findings.push_back({"unordered-container", t.line,
                          "std::" + t.text +
                              " iterates in hash order — nondeterminism "
                              "hazard in simulation paths; use an ordered "
                              "container or suppress with justification"});
    }
  }
}

// iostream-in-header: no <iostream> in core library headers.
void rule_iostream_in_header(const FileContext& ctx,
                             std::vector<Finding>& findings) {
  if (!ctx.is_header) return;
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        d.words[2] == "<iostream>") {
      findings.push_back({"iostream-in-header", d.line,
                          "<iostream> in a core header drags global stream "
                          "objects into every TU; use <ostream> or <iosfwd>"});
    }
  }
}

// threading-header: raw threading primitives stay confined to the files
// that implement or drive the shared ThreadPool.  A scoped allowlist, not a
// directory exclusion: a new file wanting <thread> must either route its
// parallelism through Engine::set_threads / RepeatOptions or be added here
// with a reason.
void rule_threading_header(const FileContext& ctx,
                           std::vector<Finding>& findings) {
  static constexpr const char* kAllowedSuffixes[] = {
      // the pool itself
      "src/noisypull/common/thread_pool.hpp",
      "src/noisypull/common/thread_pool.cpp",
      // outer repetition workers (join the pool-less std::thread fan-out)
      "src/noisypull/sim/repeat.cpp",
      // experiment scheduler: drives the pool; queue state under one mutex,
      // plus the watchdog thread cancelling overdue repetitions
      "src/noisypull/analysis/scheduler.cpp",
      // crash-safe I/O seam: atomic tmp-name counter and backoff sleeps
      "src/noisypull/common/atomic_io.cpp",
      // cooperative cancellation token (one relaxed atomic<bool>)
      "src/noisypull/common/cancel.hpp",
      // relaxed fault-stat accumulators read under block parallelism
      "src/noisypull/fault/faulty_engine.hpp",
      // lazy interning of SF/SSF mirror states from the engines'
      // block-parallel update phase (one mutex around lookup+insert)
      "src/noisypull/core/automaton/protocol_automata.hpp",
      // reports hardware_concurrency next to its measurements
      "bench/perf_round_kernel.cpp",
      "bench/perf_sweep_scheduler.cpp",
      "bench/perf_lumped_engine.cpp",
      "bench/perf_compiled_path.cpp",
  };
  for (const char* suffix : kAllowedSuffixes) {
    if (ctx.path.ends_with(suffix)) return;
  }
  static const std::set<std::string> kThreadingHeaders = {
      "<thread>", "<atomic>", "<mutex>", "<condition_variable>"};
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        kThreadingHeaders.count(d.words[2]) != 0) {
      findings.push_back(
          {"threading-header", d.line,
           d.words[2] +
               " outside the thread-pool allowlist; route parallelism "
               "through Engine::set_threads / the shared ThreadPool"});
    }
  }
}

// raw-file-io: durable writes bypassing the crash-safe seam.  Everything
// the harness persists must go through common/atomic_io (tmp+rename
// publish, bounded retry, quarantine, fault injection); a raw std::ofstream
// or rename() elsewhere reopens the torn-write window the chaos tests
// close.  fopen-based perf loggers are out of scope: the rule targets the
// artifact writers (cache, manifest, CSV/JSON emitters).
void rule_raw_file_io(const FileContext& ctx, std::vector<Finding>& findings) {
  static constexpr const char* kAllowedSuffixes[] = {
      // the seam itself
      "src/noisypull/common/atomic_io.hpp",
      "src/noisypull/common/atomic_io.cpp",
  };
  for (const char* suffix : kAllowedSuffixes) {
    if (ctx.path.ends_with(suffix)) return;
  }
  const auto& toks = ctx.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "ofstream") {
      findings.push_back({"raw-file-io", t.line,
                          "std::ofstream outside common/atomic_io; durable "
                          "writes must use io::atomic_write_file / "
                          "io::append_line for crash safety"});
      continue;
    }
    if (t.text == "rename" && next_is(toks, i, "(") &&
        !is_member_access(toks, i)) {
      findings.push_back({"raw-file-io", t.line,
                          "rename() outside common/atomic_io; atomic "
                          "publishes must go through io::atomic_write_file"});
    }
  }
}

// substream-discipline: every Rng seed / stream id must be a named constant
// or a derived expression (seed ^ kSalt, 2 * rep + 1, round_key), never a
// bare integer literal.  Literal seeds fork an untracked stream: they
// collide silently with the counter-substream plan that makes replay,
// lane-count invariance, and cache keys sound.  rng/ itself (the derivation
// seam) and test/example code are out of scope.
bool is_integer_literal(const std::string& text) {
  if (text.find('.') != std::string::npos) return false;
  if (text.compare(0, 2, "0x") == 0 || text.compare(0, 2, "0X") == 0) {
    return true;
  }
  return text.find('e') == std::string::npos &&
         text.find('E') == std::string::npos;
}

void rule_substream_discipline(const FileContext& ctx,
                               std::vector<Finding>& findings) {
  if (path_contains(ctx, "src/noisypull/rng/")) return;
  const auto& toks = ctx.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier || toks[i].text != "Rng" ||
        is_member_access(toks, i)) {
      continue;
    }
    std::size_t j = i + 1;  // optional variable name, then '(' or '{'
    if (j < toks.size() && toks[j].kind == TokKind::Identifier) ++j;
    if (j >= toks.size() || (toks[j].text != "(" && toks[j].text != "{")) {
      continue;
    }
    // Argument scan: split the top-level comma-separated arguments and flag
    // any argument that is exactly one integer-literal token.
    int depth = 1;
    std::size_t arg_tokens = 0;
    const Token* lone = nullptr;
    for (std::size_t k = j + 1; k < toks.size() && depth > 0; ++k) {
      const std::string& s = toks[k].text;
      if (s == "(" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "}") {
        --depth;
      }
      const bool arg_end = (depth == 0) || (depth == 1 && s == ",");
      if (!arg_end) {
        ++arg_tokens;
        lone = arg_tokens == 1 ? &toks[k] : nullptr;
        continue;
      }
      if (arg_tokens == 1 && lone != nullptr &&
          lone->kind == TokKind::Number && is_integer_literal(lone->text)) {
        findings.push_back(
            {"substream-discipline", lone->line,
             "bare integer literal " + lone->text +
                 " seeds an Rng; use a named seed/salt constant or a "
                 "derived substream expression (see rng/rng.hpp)"});
      }
      arg_tokens = 0;
      lone = nullptr;
    }
  }
}

// allow-without-reason: every suppression carries its justification inline.
void rule_allow_without_reason(const FileContext& ctx,
                               std::vector<Finding>& findings) {
  for (const auto& [line, has_reason] : ctx.ann->allow_has_reason) {
    if (!has_reason) {
      findings.push_back({"allow-without-reason", line,
                          "suppression without justification; write "
                          "`nplint: allow(rule) -- why`"});
    }
  }
}

using RuleFn = void (*)(const FileContext&, std::vector<Finding>&);

struct Rule {
  const char* name;
  unsigned scope;  // ScopeBits the rule opts into (fn == nullptr: tree rule)
  RuleFn fn;
  const char* summary;  // one-line description for SARIF rule metadata
};

constexpr Rule kRules[] = {
    {"nondeterministic-rng", kScopeAll, rule_nondeterministic_rng,
     "Unseeded or wall-clock randomness outside src/noisypull/rng/"},
    {"float-type", kScopeAll, rule_float_type,
     "Single-precision type or literal on a double-only probability path"},
    {"pragma-once", kScopeAll, rule_pragma_once,
     "Header does not open with #pragma once"},
    {"bare-assert", kScopeAll, rule_bare_assert,
     "Bare assert() or <cassert>; use NOISYPULL_ASSERT / NOISYPULL_CHECK"},
    {"unordered-container", kScopeSrc | kScopeBench, rule_unordered_container,
     "Hash-ordered container on a deterministic simulation path"},
    {"iostream-in-header", kScopeSrc, rule_iostream_in_header,
     "<iostream> included from a core library header"},
    {"threading-header", kScopeSrc | kScopeBench, rule_threading_header,
     "Threading primitive outside the ThreadPool allowlist"},
    {"raw-file-io", kScopeSrc | kScopeBench, rule_raw_file_io,
     "Durable write bypassing the crash-safe common/atomic_io seam"},
    {"substream-discipline", kScopeSrc | kScopeBench | kScopeTools,
     rule_substream_discipline,
     "Rng seeded with a bare integer literal outside rng/"},
    {"allow-without-reason", kScopeAll, rule_allow_without_reason,
     "nplint: allow(...) suppression without a ` -- why` justification"},
    {"layering", kScopeSrc, nullptr,
     "Include edge violating the declared layer DAG (cycle, upward include, "
     "umbrella include, or undeclared module directory)"},
};

// ---------------------------------------------------------------------------
// Tree rule: include-graph layering over src/noisypull/

// The declared layer DAG.  An include edge is legal iff the target layer is
// <= the source layer; the umbrella header noisypull/noisypull.hpp sits
// above everything (external consumers only).
struct LayerDir {
  const char* dir;
  int layer;
};

// sim sits above theory because the lumped engine (sim/lumped_engine.hpp)
// drives the theory/ automaton mirrors; analysis sits above sim because the
// scheduler dispatches lumped cells.  theory itself only reaches layer 0:
// it consumes the hoisted automaton vocabulary in core/automaton (which the
// compiled engine fast path shares) without ever touching model/.  Nested
// module directories are declared with their full path and resolved by
// longest prefix, so "core/automaton" gets its own row instead of silently
// inheriting "core".
constexpr LayerDir kLayerDag[] = {
    {"common", 0}, {"core", 0},  {"core/automaton", 0}, {"linalg", 0},
    {"rng", 0},    {"model", 1}, {"noise", 1},          {"baselines", 2},
    {"fault", 2},  {"push", 2},  {"theory", 2},         {"sim", 3},
    {"analysis", 4},
};

constexpr int kUmbrellaLayer = 100;

// Longest-prefix resolution on '/' boundaries: "core/automaton" matches its
// own row, a hypothetical "core/automaton/detail" falls back to
// "core/automaton", and an undeclared sibling like "core2" matches nothing.
int layer_of_dir(const std::string& dir) {
  if (dir.empty()) return kUmbrellaLayer;  // root-level umbrella header
  int best_layer = -1;
  std::size_t best_len = 0;
  for (const LayerDir& d : kLayerDag) {
    const std::string_view prefix = d.dir;
    if (prefix.size() < best_len) continue;
    if (!dir.starts_with(prefix)) continue;
    if (dir.size() > prefix.size() && dir[prefix.size()] != '/') continue;
    best_layer = d.layer;
    best_len = prefix.size();
  }
  return best_layer;
}

// Module key of a file under src/noisypull/: the "noisypull/..." suffix that
// include directives use, so edges resolve by string equality.  Empty for
// files outside the library.
std::string module_key(const std::string& eff_path) {
  const auto pos = eff_path.find("src/noisypull/");
  if (pos == std::string::npos) return "";
  return eff_path.substr(pos + 4);  // keep "noisypull/..."
}

// Module directory of a key: the full directory path under noisypull/, so
// nested modules keep their identity — "noisypull/core/ssf.hpp" → "core",
// "noisypull/core/automaton/automaton.hpp" → "core/automaton"; "" for
// root-level files (the umbrella).  layer_of_dir resolves it against the
// DAG by longest declared prefix.
std::string module_dir(const std::string& key) {
  const auto slash1 = key.find('/');
  if (slash1 == std::string::npos) return "";
  const auto last = key.rfind('/');
  if (last == slash1) return "";
  return key.substr(slash1 + 1, last - slash1 - 1);
}

struct IncludeEdge {
  std::string target;  // "noisypull/..." include argument
  int line = 0;
};

// Internal includes of a lexed file: `#include "noisypull/..."` (or <...>).
std::vector<IncludeEdge> internal_includes(const LexedFile& lexed) {
  std::vector<IncludeEdge> edges;
  for (const Directive& d : lexed.directives) {
    if (d.words.size() < 3 || d.words[1] != "include") continue;
    std::string arg = d.words[2];
    if (arg.size() >= 2 && (arg.front() == '"' || arg.front() == '<')) {
      arg = arg.substr(1, arg.size() - 2);
    }
    if (arg.compare(0, 10, "noisypull/") == 0) {
      edges.push_back({arg, d.line});
    }
  }
  return edges;
}

// ---------------------------------------------------------------------------
// Driver

struct SourceFile {
  fs::path real_path;
  std::string display;   // real path, '/'-separated, for reporting
  std::string eff_path;  // lint-path override if present, else display
  std::string key;       // module key ("" outside src/noisypull/)
  unsigned scope = 0;
  LexedFile lexed;
  Annotations ann;
  std::vector<Finding> raw;       // before suppression
  std::vector<Finding> findings;  // after suppression
};

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_source_file(const fs::path& p, SourceFile& f) {
  std::string src;
  if (!read_file(p, src)) return false;
  f.real_path = p;
  f.display = p.generic_string();
  f.lexed = lex(src);
  f.ann = parse_annotations(f.lexed);
  f.eff_path = f.ann.lint_path.empty() ? f.display : f.ann.lint_path;
  f.key = module_key(f.eff_path);
  f.scope = classify_scope(f.eff_path);
  return true;
}

void run_file_rules(SourceFile& f) {
  FileContext ctx;
  ctx.path = f.eff_path;
  ctx.is_header = fs::path(f.eff_path).extension() == ".hpp";
  ctx.lexed = &f.lexed;
  ctx.ann = &f.ann;
  for (const Rule& rule : kRules) {
    if (rule.fn == nullptr) continue;
    if ((rule.scope & f.scope) == 0) continue;
    rule.fn(ctx, f.raw);
  }
}

// Tarjan strongly-connected components over the resolved include graph;
// any edge staying inside a non-trivial SCC (or a self-include) is part of
// a cycle and fires on the include directive that forms it.
struct SccState {
  std::vector<int> index, lowlink, scc;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  int next_index = 0;
  int next_scc = 0;
};

void tarjan(std::size_t v, const std::vector<std::vector<std::size_t>>& adj,
            SccState& st) {
  st.index[v] = st.lowlink[v] = st.next_index++;
  st.stack.push_back(v);
  st.on_stack[v] = true;
  for (std::size_t w : adj[v]) {
    if (st.index[w] < 0) {
      tarjan(w, adj, st);
      st.lowlink[v] = std::min(st.lowlink[v], st.lowlink[w]);
    } else if (st.on_stack[w]) {
      st.lowlink[v] = std::min(st.lowlink[v], st.index[w]);
    }
  }
  if (st.lowlink[v] == st.index[v]) {
    while (true) {
      const std::size_t w = st.stack.back();
      st.stack.pop_back();
      st.on_stack[w] = false;
      st.scc[w] = st.next_scc;
      if (w == v) break;
    }
    ++st.next_scc;
  }
}

// The layering pass: runs once over all files being linted together, so
// both halves of an include cycle are visible in the same graph.
void run_layering(std::vector<SourceFile>& files) {
  std::map<std::string, std::size_t> node;  // module key → file index
  std::vector<std::size_t> members;         // indices with non-empty key
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (!files[i].key.empty()) {
      node[files[i].key] = i;
      members.push_back(i);
    }
  }

  // Per-edge layer checks + resolved adjacency for cycle detection.
  std::vector<std::vector<std::size_t>> adj(files.size());
  std::vector<std::vector<std::pair<std::size_t, int>>> edge_lines(
      files.size());  // parallel to adj: (target index, include line)
  for (const std::size_t i : members) {
    SourceFile& f = files[i];
    const std::string sdir = module_dir(f.key);
    const int slayer = layer_of_dir(sdir);
    if (slayer < 0) {
      f.raw.push_back(
          {"layering", 1,
           "module directory '" + sdir +
               "' is not declared in the layer DAG (tools/noisypull_lint.cpp "
               "kLayerDag); new src/noisypull/ directories must be placed in "
               "a layer"});
    }
    for (const IncludeEdge& e : internal_includes(f.lexed)) {
      const std::string tdir = module_dir(e.target);
      const int tlayer = layer_of_dir(tdir);
      if (tlayer == kUmbrellaLayer) {
        f.raw.push_back(
            {"layering", e.line,
             "include of the umbrella header " + e.target +
                 " from inside the library; include the specific headers "
                 "needed (the umbrella is for external consumers)"});
      } else if (tlayer < 0) {
        f.raw.push_back(
            {"layering", e.line,
             "include of undeclared module directory '" + tdir + "' (" +
                 e.target + "); declare it in the layer DAG first"});
      } else if (slayer >= 0 && slayer != kUmbrellaLayer && tlayer > slayer) {
        f.raw.push_back(
            {"layering", e.line,
             "upward include: " + sdir + " (layer " + std::to_string(slayer) +
                 ") may not include " + tdir + " (layer " +
                 std::to_string(tlayer) +
                 "); the DAG is common/core(/automaton)/linalg/rng <- "
                 "model/noise <- baselines/fault/push/theory <- sim <- "
                 "analysis"});
      }
      if (const auto it = node.find(e.target); it != node.end()) {
        adj[i].push_back(it->second);
        edge_lines[i].push_back({it->second, e.line});
      }
    }
  }

  SccState st;
  st.index.assign(files.size(), -1);
  st.lowlink.assign(files.size(), -1);
  st.scc.assign(files.size(), -1);
  st.on_stack.assign(files.size(), false);
  for (const std::size_t i : members) {
    if (st.index[i] < 0) tarjan(i, adj, st);
  }
  std::vector<std::size_t> scc_size(static_cast<std::size_t>(st.next_scc), 0);
  for (const std::size_t i : members) {
    ++scc_size[static_cast<std::size_t>(st.scc[i])];
  }
  for (const std::size_t i : members) {
    for (const auto& [j, line] : edge_lines[i]) {
      const bool in_cycle =
          st.scc[i] == st.scc[j] &&
          (i == j || scc_size[static_cast<std::size_t>(st.scc[i])] > 1);
      if (in_cycle) {
        files[i].raw.push_back(
            {"layering", line,
             "include cycle: " + files[i].key + " -> " + files[j].key +
                 " closes a cycle in the include graph"});
      }
    }
  }
}

// Applies `nplint: allow` suppressions and orders the surviving findings.
void finalize_findings(SourceFile& f) {
  for (Finding& x : f.raw) {
    const auto it = f.ann.allow.find(x.line);
    if (it != f.ann.allow.end() && it->second.count(x.rule) != 0) continue;
    f.findings.push_back(std::move(x));
  }
  std::sort(f.findings.begin(), f.findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
}

// Full pipeline over one batch of files (one include graph).
void analyze(std::vector<SourceFile>& files) {
  for (SourceFile& f : files) run_file_rules(f);
  run_layering(files);
  for (SourceFile& f : files) finalize_findings(f);
}

bool should_skip(const fs::path& p) {
  const std::string s = p.generic_string();
  return s.find("lint_fixtures") != std::string::npos ||
         s.find("/build") != std::string::npos;
}

std::vector<fs::path> collect_files(const std::vector<std::string>& roots,
                                    bool include_fixtures) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    // A root that explicitly targets fixtures opts them in (the negative
    // layering ctest lints tests/lint_fixtures/tree_bad as a real tree).
    const bool fixtures_ok =
        include_fixtures || root.find("lint_fixtures") != std::string::npos;
    const fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp);
      continue;
    }
    if (!fs::is_directory(rp)) {
      std::fprintf(stderr, "noisypull_lint: no such path: %s\n", root.c_str());
      std::exit(2);
    }
    for (const auto& entry : fs::recursive_directory_iterator(rp)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      const auto ext = p.extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      if (!fixtures_ok && should_skip(p)) continue;
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

// ---------------------------------------------------------------------------
// Output formats

enum class Format { Text, Json, Sarif };

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_text(const std::vector<SourceFile>& files, std::size_t total) {
  for (const SourceFile& f : files) {
    for (const Finding& x : f.findings) {
      std::printf("%s:%d: [%s] %s\n", f.display.c_str(), x.line,
                  x.rule.c_str(), x.message.c_str());
    }
  }
  if (total != 0) std::printf("noisypull_lint: %zu finding(s)\n", total);
}

void emit_json(const std::vector<SourceFile>& files, std::size_t total) {
  std::printf("{\n  \"findings\": [");
  bool first = true;
  for (const SourceFile& f : files) {
    for (const Finding& x : f.findings) {
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %d, "
                  "\"rule\": \"%s\", \"message\": \"%s\"}",
                  first ? "" : ",", json_escape(f.display).c_str(), x.line,
                  json_escape(x.rule).c_str(),
                  json_escape(x.message).c_str());
      first = false;
    }
  }
  std::printf("%s],\n  \"count\": %zu\n}\n", first ? "" : "\n  ", total);
}

void emit_sarif(const std::vector<SourceFile>& files) {
  std::printf(
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"noisypull_lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/noisypull/DESIGN.md\",\n"
      "          \"rules\": [");
  bool first = true;
  for (const Rule& r : kRules) {
    std::printf("%s\n            {\"id\": \"%s\", \"shortDescription\": "
                "{\"text\": \"%s\"}}",
                first ? "" : ",", r.name, json_escape(r.summary).c_str());
    first = false;
  }
  std::printf(
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [");
  first = true;
  for (const SourceFile& f : files) {
    for (const Finding& x : f.findings) {
      std::printf(
          "%s\n        {\n"
          "          \"ruleId\": \"%s\",\n"
          "          \"level\": \"error\",\n"
          "          \"message\": {\"text\": \"%s\"},\n"
          "          \"locations\": [\n"
          "            {\n"
          "              \"physicalLocation\": {\n"
          "                \"artifactLocation\": {\"uri\": \"%s\"},\n"
          "                \"region\": {\"startLine\": %d}\n"
          "              }\n"
          "            }\n"
          "          ]\n"
          "        }",
          first ? "" : ",", json_escape(x.rule).c_str(),
          json_escape(x.message).c_str(), json_escape(f.display).c_str(),
          x.line);
      first = false;
    }
  }
  std::printf("%s]\n    }\n  ]\n}\n", first ? "" : "\n      ");
}

int run_lint(const std::vector<std::string>& roots, Format format) {
  std::vector<SourceFile> files;
  for (const fs::path& p : collect_files(roots, /*include_fixtures=*/false)) {
    SourceFile f;
    if (!load_source_file(p, f)) {
      std::fprintf(stderr, "noisypull_lint: cannot read %s\n",
                   p.generic_string().c_str());
      return 2;
    }
    files.push_back(std::move(f));
  }
  analyze(files);
  std::size_t total = 0;
  for (const SourceFile& f : files) total += f.findings.size();
  switch (format) {
    case Format::Text:
      emit_text(files, total);
      break;
    case Format::Json:
      emit_json(files, total);
      break;
    case Format::Sarif:
      emit_sarif(files);
      break;
  }
  return total != 0 ? 1 : 0;
}

// Self-test: every `expect:` annotation must produce exactly that finding on
// that line, every `expect-anywhere:` at least once per file, and nothing
// unexpected may fire.  Clean fixtures simply carry no annotations.  Files
// in the same fixture directory are analyzed as one include graph so tree
// rules (layering cycles) can be exercised across files.
int run_self_test(const std::vector<std::string>& roots) {
  // Group fixture files by their parent directory: each group is one tree.
  std::map<std::string, std::vector<fs::path>> groups;
  for (const fs::path& p : collect_files(roots, /*include_fixtures=*/true)) {
    groups[p.parent_path().generic_string()].push_back(p);
  }

  std::size_t errors = 0;
  std::size_t file_count = 0;
  std::set<std::string> rules_exercised;
  for (auto& [dir, paths] : groups) {
    std::vector<SourceFile> files;
    for (const fs::path& p : paths) {
      SourceFile f;
      if (!load_source_file(p, f)) {
        std::fprintf(stderr, "noisypull_lint: cannot read %s\n",
                     p.generic_string().c_str());
        return 2;
      }
      files.push_back(std::move(f));
    }
    analyze(files);
    for (const SourceFile& f : files) {
      ++file_count;
      const std::string& name = f.display;
      const Annotations& a = f.ann;

      // An expectation is satisfied by one or more findings of that rule (on
      // that line for `expect:`, anywhere for `expect-anywhere:`); findings
      // matching no expectation, and expectations matching no finding, fail.
      std::set<std::pair<int, std::string>> matched;
      std::set<std::string> matched_anywhere;
      for (const Finding& x : f.findings) {
        rules_exercised.insert(x.rule);
        if (auto it = a.expect.find(x.line);
            it != a.expect.end() && it->second.count(x.rule) != 0) {
          matched.insert({x.line, x.rule});
          continue;
        }
        if (a.expect_anywhere.count(x.rule) != 0) {
          matched_anywhere.insert(x.rule);
          continue;
        }
        std::printf("self-test: %s:%d: unexpected finding [%s] %s\n",
                    name.c_str(), x.line, x.rule.c_str(), x.message.c_str());
        ++errors;
      }
      for (const auto& [line, rules] : a.expect) {
        for (const std::string& rule : rules) {
          if (matched.count({line, rule}) == 0) {
            std::printf("self-test: %s:%d: expected [%s] did not fire\n",
                        name.c_str(), line, rule.c_str());
            ++errors;
          }
        }
      }
      for (const std::string& rule : a.expect_anywhere) {
        if (matched_anywhere.count(rule) == 0) {
          std::printf("self-test: %s: expected [%s] somewhere; did not fire\n",
                      name.c_str(), rule.c_str());
          ++errors;
        }
      }
    }
  }
  if (file_count == 0) {
    std::fprintf(stderr, "noisypull_lint: self-test found no fixtures\n");
    return 2;
  }
  // Every rule in the table must be exercised by at least one bad fixture —
  // a rule nobody can trip is a rule that silently rotted.
  for (const Rule& rule : kRules) {
    if (rules_exercised.count(rule.name) == 0) {
      std::printf("self-test: rule [%s] has no firing fixture\n", rule.name);
      ++errors;
    }
  }
  std::printf("noisypull_lint self-test: %zu fixture file(s), %zu error(s)\n",
              file_count, errors);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool self_test = false;
  Format format = Format::Text;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--self-test") {
      self_test = true;
    } else if (a.rfind("--format=", 0) == 0) {
      const std::string v = a.substr(9);
      if (v == "text") {
        format = Format::Text;
      } else if (v == "json") {
        format = Format::Json;
      } else if (v == "sarif") {
        format = Format::Sarif;
      } else {
        std::fprintf(stderr, "noisypull_lint: unknown format '%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: noisypull_lint [--format=text|json|sarif] "
          "[--self-test] <file-or-dir>...\n"
          "lints the noisypull tree for determinism and layering\n"
          "invariants; exits 1 on findings, 2 on usage/IO errors.\n");
      return 0;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "noisypull_lint: no paths given (try --help)\n");
    return 2;
  }
  return self_test ? run_self_test(roots) : run_lint(roots, format);
}
