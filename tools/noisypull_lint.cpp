// noisypull_lint — repo-specific invariant linter for the noisypull tree.
//
// Generic compilers and clang-tidy cannot check the invariants this
// reproduction's empirical claims rest on: bit-for-bit deterministic
// simulation from salted (round, agent) RNG substreams, double-only
// probability arithmetic, and the project's own assertion discipline.  This
// tool enforces them with a lightweight tokenizer (comments, strings, raw
// strings, and preprocessor directives are handled; no libclang) and a
// declarative rules table:
//
//   nondeterministic-rng   std::rand / srand / std::random_device / time() /
//                          clock() / random_shuffle / default-seeded
//                          std::mt19937 anywhere outside src/noisypull/rng/.
//                          All simulation randomness must flow through the
//                          seeded noisypull::Rng substreams.
//   float-type             `float` types or float literals (0.5f) anywhere:
//                          probability/statistics arithmetic is double-only,
//                          so tables cannot drift with optimization levels.
//   pragma-once            every .hpp starts (first directive) with
//                          `#pragma once`.
//   bare-assert            bare assert() or <cassert>/<assert.h> includes;
//                          internal invariants use NOISYPULL_ASSERT (aborts
//                          in every build type), preconditions NOISYPULL_CHECK.
//   unordered-container    std::unordered_{map,set,...} under src/noisypull/
//                          or bench/: hash-order iteration feeding results is
//                          a nondeterminism hazard, so deterministic paths
//                          use ordered containers or suppress explicitly.
//   iostream-in-header     #include <iostream> in src/noisypull/ headers
//                          (static-init cost and hidden I/O in the core
//                          library; use <ostream>/<iosfwd> in interfaces).
//   threading-header       #include <thread>/<atomic>/<mutex>/
//                          <condition_variable> under src/noisypull/ or
//                          bench/ outside an explicit allowlist (the shared
//                          ThreadPool, the repetition runner, the fault
//                          accumulators, and the kernel bench).  Ad-hoc
//                          threading is a determinism hazard; parallelism
//                          routes through Engine::set_threads and the
//                          counter-substream block kernel.
//   raw-file-io            std::ofstream or rename() under src/noisypull/
//                          or bench/ outside common/atomic_io: every durable
//                          artifact (cache entries, manifests, CSV/JSON)
//                          must publish through the crash-safe tmp+rename
//                          seam, or kill-and-resume guarantees silently rot.
//
// Suppression: a comment `nplint: allow(rule-name)` on the offending line.
//
// Usage:
//   noisypull_lint <file-or-dir>...          lint; nonzero exit on findings
//   noisypull_lint --self-test <fixture-dir> verify rules against fixtures
//
// Fixture files declare their virtual location and expected findings in
// comments (`lint-path:`, `expect: rule`, `expect-anywhere: rule`); the
// self-test fails if any expected finding does not fire or any unexpected
// one does — which is how each rule is proven to both fire and stay silent
// (tests/lint_fixtures/, wired as a ctest in tools/CMakeLists.txt).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexing

enum class TokKind { Identifier, Number, Punct };

struct Token {
  std::string text;
  int line = 0;
  TokKind kind = TokKind::Punct;
};

struct Directive {
  std::vector<std::string> words;  // e.g. {"#", "pragma", "once"}
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;  // line where the comment starts
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::vector<Comment> comments;
};

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Splits a preprocessor directive body into whitespace-separated words,
// keeping <...> / "..." include arguments as single words.
std::vector<std::string> directive_words(const std::string& body) {
  std::vector<std::string> words{"#"};
  std::size_t i = 0;
  while (i < body.size()) {
    if (body[i] == ' ' || body[i] == '\t') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < body.size() && body[j] != ' ' && body[j] != '\t') ++j;
    words.push_back(body.substr(i, j - i));
    i = j;
  }
  return words;
}

// One pass over the source: produces identifier/number/punct tokens with
// comments, string literals, and preprocessor directives separated out so
// rules never false-positive on prose or quoted rule names.
LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({src.substr(i, j - i), start_line});
      advance(j - i);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      j = std::min(n, j + 2);
      out.comments.push_back({src.substr(i, j - i), start_line});
      advance(j - i);
      continue;
    }
    // Preprocessor directive: consume the whole (continued) logical line.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\n') {
          if (j > i && src[j - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      std::string body = src.substr(i + 1, j - i - 1);
      // Strip trailing line comment from the directive body.
      if (const auto pos = body.find("//"); pos != std::string::npos) {
        out.comments.push_back({body.substr(pos), start_line});
        body.resize(pos);
      }
      out.directives.push_back({directive_words(body), start_line});
      advance(j - i);
      continue;
    }
    at_line_start = false;
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string close = ")" + delim + "\"";
      const auto end = src.find(close, j);
      advance((end == std::string::npos ? n : end + close.size()) - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      advance(std::min(n, j + 1) - i);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      // A string literal prefixed by an encoding (u8"...") lexes as an
      // identifier followed by the string — good enough for these rules.
      out.tokens.push_back({src.substr(i, j - i), line, TokKind::Identifier});
      advance(j - i);
      continue;
    }
    if (is_digit(c)) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({src.substr(i, j - i), line, TokKind::Number});
      advance(j - i);
      continue;
    }
    // Punctuation; merge the two-char tokens the rules care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({"::", line, TokKind::Punct});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({"->", line, TokKind::Punct});
      advance(2);
      continue;
    }
    out.tokens.push_back({std::string(1, c), line, TokKind::Punct});
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Findings and rules

struct Finding {
  std::string rule;
  int line = 0;
  std::string message;
};

struct FileContext {
  std::string path;     // effective (virtual in self-test) repo path, '/' sep
  bool is_header = false;
  const LexedFile* lexed = nullptr;
};

bool path_contains(const FileContext& ctx, const std::string& fragment) {
  return ctx.path.find(fragment) != std::string::npos;
}

bool is_member_access(const std::vector<Token>& toks, std::size_t idx) {
  return idx > 0 && (toks[idx - 1].text == "." || toks[idx - 1].text == "->");
}

bool next_is(const std::vector<Token>& toks, std::size_t idx,
             const std::string& text) {
  return idx + 1 < toks.size() && toks[idx + 1].text == text;
}

// nondeterministic-rng: unseeded / wall-clock randomness outside rng/.
void rule_nondeterministic_rng(const FileContext& ctx,
                               std::vector<Finding>& findings) {
  if (path_contains(ctx, "src/noisypull/rng/")) return;
  const auto& toks = ctx.lexed->tokens;
  static const std::set<std::string> kBannedIdents = {
      "srand", "random_device", "random_shuffle"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (kBannedIdents.count(t.text) != 0) {
      findings.push_back({"nondeterministic-rng", t.line,
                          t.text + " is nondeterministic; use the seeded "
                                   "noisypull::Rng substreams"});
      continue;
    }
    if (t.text == "rand" && !is_member_access(toks, i)) {
      findings.push_back({"nondeterministic-rng", t.line,
                          "std::rand is nondeterministic; use the seeded "
                          "noisypull::Rng substreams"});
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && next_is(toks, i, "(") &&
        !is_member_access(toks, i)) {
      findings.push_back({"nondeterministic-rng", t.line,
                          t.text + "() reads the wall clock; simulations must "
                                   "be reproducible from the seed alone"});
      continue;
    }
    if (t.text == "mt19937" || t.text == "mt19937_64") {
      // Default-seeded declaration: `std::mt19937 gen;` / `gen{}` / `gen()`.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::Identifier) ++j;
      const bool argless =
          j < toks.size() &&
          (toks[j].text == ";" ||
           (toks[j].text == "(" && next_is(toks, j, ")")) ||
           (toks[j].text == "{" && next_is(toks, j, "}")));
      if (argless) {
        findings.push_back({"nondeterministic-rng", t.line,
                            "default-seeded std::" + t.text +
                                " is nondeterministic across standard "
                                "libraries; seed noisypull::Rng instead"});
      }
    }
  }
}

// float-type: probability/statistics arithmetic is double-only.
void rule_float_type(const FileContext& ctx, std::vector<Finding>& findings) {
  for (const Token& t : ctx.lexed->tokens) {
    if (t.kind == TokKind::Identifier && t.text == "float") {
      findings.push_back({"float-type", t.line,
                          "probability paths are double-only; single "
                          "precision silently degrades noise statistics"});
      continue;
    }
    if (t.kind == TokKind::Number && !t.text.empty() &&
        (t.text.back() == 'f' || t.text.back() == 'F') &&
        t.text.compare(0, 2, "0x") != 0 && t.text.compare(0, 2, "0X") != 0 &&
        (t.text.find('.') != std::string::npos ||
         t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos)) {
      findings.push_back({"float-type", t.line,
                          "float literal " + t.text +
                              "; probability paths are double-only"});
    }
  }
}

// pragma-once: the first directive of every header is `#pragma once`.
void rule_pragma_once(const FileContext& ctx, std::vector<Finding>& findings) {
  if (!ctx.is_header) return;
  const auto& dirs = ctx.lexed->directives;
  if (dirs.empty() || dirs.front().words.size() < 3 ||
      dirs.front().words[1] != "pragma" || dirs.front().words[2] != "once") {
    findings.push_back({"pragma-once", dirs.empty() ? 1 : dirs.front().line,
                        "header must open with #pragma once before any other "
                        "directive"});
  }
}

// bare-assert: internal invariants go through NOISYPULL_ASSERT.
void rule_bare_assert(const FileContext& ctx, std::vector<Finding>& findings) {
  const auto& toks = ctx.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::Identifier && t.text == "assert" &&
        next_is(toks, i, "(") && !is_member_access(toks, i)) {
      findings.push_back({"bare-assert", t.line,
                          "bare assert() compiles out under NDEBUG; use "
                          "NOISYPULL_ASSERT (invariants) or NOISYPULL_CHECK "
                          "(preconditions)"});
    }
  }
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        (d.words[2] == "<cassert>" || d.words[2] == "<assert.h>")) {
      findings.push_back({"bare-assert", d.line,
                          "include of " + d.words[2] +
                              "; use noisypull/common/check.hpp"});
    }
  }
}

// unordered-container: hash-order iteration in deterministic paths.
void rule_unordered_container(const FileContext& ctx,
                              std::vector<Finding>& findings) {
  if (!path_contains(ctx, "src/noisypull/") && !path_contains(ctx, "bench/")) {
    return;
  }
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const Token& t : ctx.lexed->tokens) {
    if (t.kind == TokKind::Identifier && kUnordered.count(t.text) != 0) {
      findings.push_back({"unordered-container", t.line,
                          "std::" + t.text +
                              " iterates in hash order — nondeterminism "
                              "hazard in simulation paths; use an ordered "
                              "container or suppress with justification"});
    }
  }
}

// iostream-in-header: no <iostream> in core library headers.
void rule_iostream_in_header(const FileContext& ctx,
                             std::vector<Finding>& findings) {
  if (!ctx.is_header || !path_contains(ctx, "src/noisypull/")) return;
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        d.words[2] == "<iostream>") {
      findings.push_back({"iostream-in-header", d.line,
                          "<iostream> in a core header drags global stream "
                          "objects into every TU; use <ostream> or <iosfwd>"});
    }
  }
}

// threading-header: raw threading primitives stay confined to the files
// that implement or drive the shared ThreadPool.  A scoped allowlist, not a
// directory exclusion: a new file wanting <thread> must either route its
// parallelism through Engine::set_threads / RepeatOptions or be added here
// with a reason.
void rule_threading_header(const FileContext& ctx,
                           std::vector<Finding>& findings) {
  if (!path_contains(ctx, "src/noisypull/") && !path_contains(ctx, "bench/")) {
    return;
  }
  static constexpr const char* kAllowedSuffixes[] = {
      // the pool itself
      "src/noisypull/common/thread_pool.hpp",
      "src/noisypull/common/thread_pool.cpp",
      // outer repetition workers (join the pool-less std::thread fan-out)
      "src/noisypull/sim/repeat.cpp",
      // experiment scheduler: drives the pool; queue state under one mutex,
      // plus the watchdog thread cancelling overdue repetitions
      "src/noisypull/analysis/scheduler.cpp",
      // crash-safe I/O seam: atomic tmp-name counter and backoff sleeps
      "src/noisypull/common/atomic_io.cpp",
      // cooperative cancellation token (one relaxed atomic<bool>)
      "src/noisypull/common/cancel.hpp",
      // relaxed fault-stat accumulators read under block parallelism
      "src/noisypull/fault/faulty_engine.hpp",
      // reports hardware_concurrency next to its measurements
      "bench/perf_round_kernel.cpp",
      "bench/perf_sweep_scheduler.cpp",
  };
  for (const char* suffix : kAllowedSuffixes) {
    if (ctx.path.ends_with(suffix)) return;
  }
  static const std::set<std::string> kThreadingHeaders = {
      "<thread>", "<atomic>", "<mutex>", "<condition_variable>"};
  for (const Directive& d : ctx.lexed->directives) {
    if (d.words.size() >= 3 && d.words[1] == "include" &&
        kThreadingHeaders.count(d.words[2]) != 0) {
      findings.push_back(
          {"threading-header", d.line,
           d.words[2] +
               " outside the thread-pool allowlist; route parallelism "
               "through Engine::set_threads / the shared ThreadPool"});
    }
  }
}

// raw-file-io: durable writes bypassing the crash-safe seam.  Everything
// the harness persists must go through common/atomic_io (tmp+rename
// publish, bounded retry, quarantine, fault injection); a raw std::ofstream
// or rename() elsewhere reopens the torn-write window the chaos tests
// close.  fopen-based perf loggers are out of scope: the rule targets the
// artifact writers (cache, manifest, CSV/JSON emitters).
void rule_raw_file_io(const FileContext& ctx, std::vector<Finding>& findings) {
  if (!path_contains(ctx, "src/noisypull/") && !path_contains(ctx, "bench/")) {
    return;
  }
  static constexpr const char* kAllowedSuffixes[] = {
      // the seam itself
      "src/noisypull/common/atomic_io.hpp",
      "src/noisypull/common/atomic_io.cpp",
  };
  for (const char* suffix : kAllowedSuffixes) {
    if (ctx.path.ends_with(suffix)) return;
  }
  const auto& toks = ctx.lexed->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Identifier) continue;
    if (t.text == "ofstream") {
      findings.push_back({"raw-file-io", t.line,
                          "std::ofstream outside common/atomic_io; durable "
                          "writes must use io::atomic_write_file / "
                          "io::append_line for crash safety"});
      continue;
    }
    if (t.text == "rename" && next_is(toks, i, "(") &&
        !is_member_access(toks, i)) {
      findings.push_back({"raw-file-io", t.line,
                          "rename() outside common/atomic_io; atomic "
                          "publishes must go through io::atomic_write_file"});
    }
  }
}

using RuleFn = void (*)(const FileContext&, std::vector<Finding>&);

struct Rule {
  const char* name;
  RuleFn fn;
};

constexpr Rule kRules[] = {
    {"nondeterministic-rng", rule_nondeterministic_rng},
    {"float-type", rule_float_type},
    {"pragma-once", rule_pragma_once},
    {"bare-assert", rule_bare_assert},
    {"unordered-container", rule_unordered_container},
    {"iostream-in-header", rule_iostream_in_header},
    {"threading-header", rule_threading_header},
    {"raw-file-io", rule_raw_file_io},
};

// ---------------------------------------------------------------------------
// Annotations (suppressions + fixture expectations) from comments

struct Annotations {
  std::map<int, std::set<std::string>> allow;   // line → suppressed rules
  std::map<int, std::set<std::string>> expect;  // line → expected rules
  std::set<std::string> expect_anywhere;        // rules expected on any line
  std::string lint_path;                        // fixture virtual path
};

// Extracts comma/space-separated rule names following `key` in comment text.
void parse_rule_list(const std::string& text, std::size_t after,
                     std::set<std::string>& out) {
  std::size_t i = after;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == ',' ||
                               text[i] == '(' ))
      ++i;
    std::size_t j = i;
    while (j < text.size() &&
           (is_ident_char(text[j]) || text[j] == '-'))
      ++j;
    if (j == i) break;
    out.insert(text.substr(i, j - i));
    i = j;
    if (i < text.size() && text[i] == ')') break;
  }
}

Annotations parse_annotations(const LexedFile& lexed) {
  Annotations a;
  for (const Comment& c : lexed.comments) {
    if (auto pos = c.text.find("nplint: allow"); pos != std::string::npos) {
      parse_rule_list(c.text, pos + 13, a.allow[c.line]);
    }
    if (auto pos = c.text.find("expect-anywhere:"); pos != std::string::npos) {
      parse_rule_list(c.text, pos + 16, a.expect_anywhere);
    } else if (auto pos2 = c.text.find("expect:"); pos2 != std::string::npos) {
      parse_rule_list(c.text, pos2 + 7, a.expect[c.line]);
    }
    if (auto pos = c.text.find("lint-path:"); pos != std::string::npos) {
      std::size_t i = pos + 10;
      while (i < c.text.size() && c.text[i] == ' ') ++i;
      std::size_t j = i;
      while (j < c.text.size() && c.text[j] != ' ' && c.text[j] != '\n') ++j;
      a.lint_path = c.text.substr(i, j - i);
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Driver

struct LintResult {
  std::vector<Finding> findings;  // after suppression
  Annotations annotations;
};

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

LintResult lint_file(const fs::path& real_path, const std::string& src) {
  const LexedFile lexed = lex(src);
  LintResult result;
  result.annotations = parse_annotations(lexed);

  FileContext ctx;
  ctx.path = result.annotations.lint_path.empty()
                 ? real_path.generic_string()
                 : result.annotations.lint_path;
  ctx.is_header = fs::path(ctx.path).extension() == ".hpp";
  ctx.lexed = &lexed;

  std::vector<Finding> raw;
  for (const Rule& rule : kRules) rule.fn(ctx, raw);

  for (Finding& f : raw) {
    const auto it = result.annotations.allow.find(f.line);
    if (it != result.annotations.allow.end() && it->second.count(f.rule) != 0) {
      continue;
    }
    result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return result;
}

bool should_skip(const fs::path& p) {
  const std::string s = p.generic_string();
  return s.find("lint_fixtures") != std::string::npos ||
         s.find("/build") != std::string::npos;
}

std::vector<fs::path> collect_files(const std::vector<std::string>& roots,
                                    bool include_fixtures) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp);
      continue;
    }
    if (!fs::is_directory(rp)) {
      std::fprintf(stderr, "noisypull_lint: no such path: %s\n", root.c_str());
      std::exit(2);
    }
    for (const auto& entry : fs::recursive_directory_iterator(rp)) {
      if (!entry.is_regular_file()) continue;
      const fs::path& p = entry.path();
      const auto ext = p.extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      if (!include_fixtures && should_skip(p)) continue;
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_lint(const std::vector<std::string>& roots) {
  std::size_t total = 0;
  for (const fs::path& p : collect_files(roots, /*include_fixtures=*/false)) {
    std::string src;
    if (!read_file(p, src)) {
      std::fprintf(stderr, "noisypull_lint: cannot read %s\n",
                   p.generic_string().c_str());
      return 2;
    }
    const LintResult r = lint_file(p, src);
    for (const Finding& f : r.findings) {
      std::printf("%s:%d: [%s] %s\n", p.generic_string().c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      ++total;
    }
  }
  if (total != 0) {
    std::printf("noisypull_lint: %zu finding(s)\n", total);
    return 1;
  }
  return 0;
}

// Self-test: every `expect:` annotation must produce exactly that finding on
// that line, every `expect-anywhere:` at least once per file, and nothing
// unexpected may fire.  Clean fixtures simply carry no annotations.
int run_self_test(const std::vector<std::string>& roots) {
  std::size_t errors = 0;
  std::size_t files = 0;
  std::set<std::string> rules_exercised;
  for (const fs::path& p : collect_files(roots, /*include_fixtures=*/true)) {
    ++files;
    std::string src;
    if (!read_file(p, src)) {
      std::fprintf(stderr, "noisypull_lint: cannot read %s\n",
                   p.generic_string().c_str());
      return 2;
    }
    const std::string name = p.generic_string();
    const LintResult r = lint_file(p, src);
    const Annotations& a = r.annotations;

    // An expectation is satisfied by one or more findings of that rule (on
    // that line for `expect:`, anywhere for `expect-anywhere:`); findings
    // matching no expectation, and expectations matching no finding, fail.
    std::set<std::pair<int, std::string>> matched;
    std::set<std::string> matched_anywhere;
    for (const Finding& f : r.findings) {
      rules_exercised.insert(f.rule);
      if (auto it = a.expect.find(f.line);
          it != a.expect.end() && it->second.count(f.rule) != 0) {
        matched.insert({f.line, f.rule});
        continue;
      }
      if (a.expect_anywhere.count(f.rule) != 0) {
        matched_anywhere.insert(f.rule);
        continue;
      }
      std::printf("self-test: %s:%d: unexpected finding [%s] %s\n",
                  name.c_str(), f.line, f.rule.c_str(), f.message.c_str());
      ++errors;
    }
    for (const auto& [line, rules] : a.expect) {
      for (const std::string& rule : rules) {
        if (matched.count({line, rule}) == 0) {
          std::printf("self-test: %s:%d: expected [%s] did not fire\n",
                      name.c_str(), line, rule.c_str());
          ++errors;
        }
      }
    }
    for (const std::string& rule : a.expect_anywhere) {
      if (matched_anywhere.count(rule) == 0) {
        std::printf("self-test: %s: expected [%s] somewhere; did not fire\n",
                    name.c_str(), rule.c_str());
        ++errors;
      }
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "noisypull_lint: self-test found no fixtures\n");
    return 2;
  }
  // Every rule in the table must be exercised by at least one bad fixture —
  // a rule nobody can trip is a rule that silently rotted.
  for (const Rule& rule : kRules) {
    if (rules_exercised.count(rule.name) == 0) {
      std::printf("self-test: rule [%s] has no firing fixture\n", rule.name);
      ++errors;
    }
  }
  std::printf("noisypull_lint self-test: %zu fixture file(s), %zu error(s)\n",
              files, errors);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--self-test") {
      self_test = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: noisypull_lint [--self-test] <file-or-dir>...\n"
          "lints the noisypull tree for determinism invariants; exits 1 on\n"
          "findings, 2 on usage/IO errors.\n");
      return 0;
    } else {
      roots.push_back(a);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "noisypull_lint: no paths given (try --help)\n");
    return 2;
  }
  return self_test ? run_self_test(roots) : run_lint(roots);
}
