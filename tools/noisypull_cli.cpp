// noisypull_cli — run any protocol/configuration from the command line.
//
//   noisypull_cli --protocol sf --n 10000 --h 10000 --delta 0.2 --s1 1
//   noisypull_cli --protocol ssf --n 2000 --delta 0.05
//                 --corruption wrong-consensus --reps 16 --stability 50
//   noisypull_cli --protocol kary --n 2000 --sources 3,2,2,1 --delta 0.05
//   noisypull_cli --protocol push --n 4000 --delta 0.1 --h 1
//   noisypull_cli --protocol sf --n 1000 --delta 0.2 --trajectory
//
// Prints one row per repetition plus a summary; `--csv <path>` mirrors the
// rows to CSV.  Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;

struct CliOptions {
  std::string protocol = "sf";
  std::uint64_t n = 1000;
  std::uint64_t h = 0;  // 0 → n
  double delta = 0.1;
  std::uint64_t s1 = 1;
  std::uint64_t s0 = 0;
  std::vector<std::uint64_t> kary_sources;  // --sources a,b,c (kary only)
  double c1 = 2.0;
  std::uint64_t seed = 1;
  std::uint64_t reps = 8;
  std::uint64_t max_rounds = 0;       // 0 → protocol's planned horizon
  std::uint64_t stability = 0;        // extra all-correct rounds required
  std::uint64_t window = 0;           // repeated-majority window (0 → n)
  std::string corruption = "none";    // ssf corruption policy
  std::string engine = "aggregate";   // aggregate | exact | sequential
                                      // | heterogeneous
  std::uint64_t threads = 1;          // block-parallel lanes inside the engine
  bool compiled = false;              // compiled automaton fast path (sf/ssf)
  std::string order = "random";       // sequential activation order
  bool trajectory = false;            // print per-round correct counts
  bool verify_replay = false;         // run twice, compare replay digests
  bool csv = false;
  std::string csv_path;

  // Runtime fault injection (fault/fault_plan.hpp); any non-zero rate wraps
  // the engine in a FaultyEngine.
  double byz = 0.0;                   // Byzantine fraction
  std::string byz_strategy = "always-wrong";
  double p_drop = 0.0;                // per-observation loss probability
  double crash_rate = 0.0;            // per-agent per-round crash probability
  std::uint64_t stall_min = 2;
  std::uint64_t stall_max = 10;
  double burst_rate = 0.0;            // per-round burst-start probability
  double burst_delta = 0.0;           // spiked uniform noise level
  std::uint64_t burst_rounds = 2;
  std::uint64_t fault_seed = 0;
  std::uint64_t stale_flush = 0;      // SSF stale-flush timeout (0 = off)
};

[[noreturn]] void usage(int code) {
  std::printf(R"(noisypull_cli — noisy PULL/PUSH information-spreading simulator

  --protocol P    sf | ssf | kary | voter | majority | repeated | push | tagless
  --n N           population size                      (default 1000)
  --h H           sample size / push fan-out; 0 = n    (default 0)
  --delta D       uniform noise level                  (default 0.1)
  --s1 K --s0 K   sources preferring 1 / 0             (default 1 / 0)
  --sources a,b,c per-opinion source counts (kary only)
  --c1 C          schedule constant                    (default 2.0)
  --seed S        base RNG seed                        (default 1)
  --reps R        independent repetitions              (default 8)
  --max-rounds T  round budget; 0 = protocol horizon   (default 0)
  --stability W   require consensus to hold W extra rounds
  --window K      repeated-majority window; 0 = n
  --corruption C  none | random-state | wrong-consensus |
                  overflow-memory | desync-clocks      (ssf/tagless)
  --engine E      aggregate | exact | sequential | heterogeneous | lumped
                                                       (default aggregate)
                  lumped: O(#states)-per-round population dynamics (sf/ssf
                  only, no faults/corruption; statistically equivalent to
                  aggregate, not bit-identical — digests only compare
                  lumped-to-lumped)
  --threads T     block-parallel lanes inside the engine (default 1);
                  results are bit-identical for every T
  --compiled      run the protocol as a CompiledPopulation on the engines'
                  table-driven fast path (sf/ssf only; bit-identical to the
                  interpreted run; 2-3x faster for sf, but SLOWER for ssf,
                  whose fresh-state churn defeats the table memoization —
                  see DESIGN.md s13; incompatible with --corruption and
                  --stale-flush, which have no compiled mirror)
  --order O       random | ascending | descending      (sequential engine)
  --trajectory    print per-round correct counts of repetition 0
  --verify-replay run the whole configuration twice with identical seeds and
                  compare per-repetition replay digests (FNV-1a over every
                  round's display vector); exits 0 iff bit-for-bit identical
  --csv PATH      mirror the result table to PATH.csv

 runtime fault injection (any non-zero rate wraps the engine in a
 FaultyEngine; pull protocols only):
  --byz F           fraction of Byzantine agents        (default 0)
  --byz-strategy S  always-wrong | flip-flop | mimic-source
  --p-drop P        per-observation loss probability    (default 0)
  --crash-rate P    per-agent per-round crash probability
  --stall-min K     min stall duration in rounds        (default 2)
  --stall-max K     max stall duration in rounds        (default 10)
  --burst-rate P    per-round burst-start probability   (default 0)
  --burst-delta D   noise level during a burst; 0 = 1/|alphabet|
  --burst-rounds K  burst duration in rounds            (default 2)
  --fault-seed S    fault-schedule seed; 0 = --seed     (default 0)
  --stale-flush R   SSF: flush partial memory after R stale rounds
  --help
)");
  std::exit(code);
}

std::uint64_t parse_u64(const char* value) {
  char* end = nullptr;
  const auto v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: expected integer, got '%s'\n", value);
    std::exit(2);
  }
  return v;
}

double parse_double(const char* value) {
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: expected number, got '%s'\n", value);
    std::exit(2);
  }
  return v;
}

std::vector<std::uint64_t> parse_list(const std::string& value) {
  std::vector<std::uint64_t> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string token =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    out.push_back(parse_u64(token.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--protocol") opt.protocol = need_value(i++);
    else if (a == "--n") opt.n = parse_u64(need_value(i++));
    else if (a == "--h") opt.h = parse_u64(need_value(i++));
    else if (a == "--delta") opt.delta = parse_double(need_value(i++));
    else if (a == "--s1") opt.s1 = parse_u64(need_value(i++));
    else if (a == "--s0") opt.s0 = parse_u64(need_value(i++));
    else if (a == "--sources") opt.kary_sources = parse_list(need_value(i++));
    else if (a == "--c1") opt.c1 = parse_double(need_value(i++));
    else if (a == "--seed") opt.seed = parse_u64(need_value(i++));
    else if (a == "--reps") opt.reps = parse_u64(need_value(i++));
    else if (a == "--max-rounds") opt.max_rounds = parse_u64(need_value(i++));
    else if (a == "--stability") opt.stability = parse_u64(need_value(i++));
    else if (a == "--window") opt.window = parse_u64(need_value(i++));
    else if (a == "--corruption") opt.corruption = need_value(i++);
    else if (a == "--engine") opt.engine = need_value(i++);
    else if (a == "--threads") opt.threads = parse_u64(need_value(i++));
    else if (a == "--compiled") opt.compiled = true;
    else if (a == "--order") opt.order = need_value(i++);
    else if (a == "--trajectory") opt.trajectory = true;
    else if (a == "--verify-replay") opt.verify_replay = true;
    else if (a == "--byz") opt.byz = parse_double(need_value(i++));
    else if (a == "--byz-strategy") opt.byz_strategy = need_value(i++);
    else if (a == "--p-drop") opt.p_drop = parse_double(need_value(i++));
    else if (a == "--crash-rate") opt.crash_rate = parse_double(need_value(i++));
    else if (a == "--stall-min") opt.stall_min = parse_u64(need_value(i++));
    else if (a == "--stall-max") opt.stall_max = parse_u64(need_value(i++));
    else if (a == "--burst-rate") opt.burst_rate = parse_double(need_value(i++));
    else if (a == "--burst-delta") opt.burst_delta = parse_double(need_value(i++));
    else if (a == "--burst-rounds") opt.burst_rounds = parse_u64(need_value(i++));
    else if (a == "--fault-seed") opt.fault_seed = parse_u64(need_value(i++));
    else if (a == "--stale-flush") opt.stale_flush = parse_u64(need_value(i++));
    else if (a == "--csv") {
      opt.csv = true;
      opt.csv_path = need_value(i++);
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage(2);
    }
  }
  return opt;
}

CorruptionPolicy parse_policy(const std::string& name) {
  for (const auto policy : kAllCorruptionPolicies) {
    if (name == to_string(policy)) return policy;
  }
  std::fprintf(stderr, "error: unknown corruption policy '%s'\n",
               name.c_str());
  std::exit(2);
}

ByzantineStrategy parse_strategy(const std::string& name) {
  for (const auto strategy :
       {ByzantineStrategy::AlwaysWrong, ByzantineStrategy::FlipFlop,
        ByzantineStrategy::MimicSource}) {
    if (name == to_string(strategy)) return strategy;
  }
  std::fprintf(stderr, "error: unknown Byzantine strategy '%s'\n",
               name.c_str());
  std::exit(2);
}

bool wants_faults(const CliOptions& opt) {
  return opt.byz > 0.0 || opt.p_drop > 0.0 || opt.crash_rate > 0.0 ||
         opt.burst_rate > 0.0;
}

// Translate the fault flags into a FaultPlan for the chosen protocol: the
// Byzantine display symbols come from the protocol family's preset (tagged
// for ssf, plain wrong-vs-correct otherwise) and sources stay immune.
FaultPlan make_fault_plan(const CliOptions& opt, Opinion correct,
                          std::size_t alphabet, std::uint64_t sources) {
  FaultPlan plan = opt.protocol == "ssf" ? FaultPlan::for_ssf(correct)
                                         : FaultPlan::for_binary(correct);
  if (alphabet > 2 && opt.protocol != "ssf") {
    // k-ary alphabet without tags: any other opinion is "wrong".
    plan.byzantine.wrong_symbol =
        static_cast<Symbol>((correct + 1) % alphabet);
    plan.byzantine.honest_symbol = static_cast<Symbol>(correct);
    plan.byzantine.mimic_symbol = plan.byzantine.wrong_symbol;
  }
  plan.seed = opt.fault_seed == 0 ? opt.seed : opt.fault_seed;
  plan.first_eligible = sources;
  plan.byzantine.fraction = opt.byz;
  plan.byzantine.strategy = parse_strategy(opt.byz_strategy);
  plan.drop.p = opt.p_drop;
  plan.stall.crash_rate = opt.crash_rate;
  plan.stall.min_rounds = opt.stall_min;
  plan.stall.max_rounds = opt.stall_max;
  plan.burst.rate = opt.burst_rate;
  plan.burst.rounds = opt.burst_rounds;
  plan.burst.delta = opt.burst_delta == 0.0
                         ? 1.0 / static_cast<double>(alphabet)
                         : opt.burst_delta;
  return plan;
}

std::unique_ptr<Engine> make_engine(const CliOptions& opt,
                                    std::size_t alphabet) {
  if (opt.engine == "aggregate") return std::make_unique<AggregateEngine>();
  if (opt.engine == "exact") return std::make_unique<ExactEngine>();
  if (opt.engine == "heterogeneous") {
    // Uniform per-agent channels at the configured delta — enough to route
    // the run (and its replay digest) through the per-agent code path.
    return std::make_unique<HeterogeneousEngine>(std::vector<NoiseMatrix>(
        opt.n, NoiseMatrix::uniform(alphabet, opt.delta)));
  }
  if (opt.engine == "sequential") {
    auto order = SequentialEngine::Order::Random;
    if (opt.order == "ascending") {
      order = SequentialEngine::Order::FixedAscending;
    } else if (opt.order == "descending") {
      order = SequentialEngine::Order::FixedDescending;
    } else if (opt.order != "random") {
      std::fprintf(stderr, "error: unknown order '%s'\n", opt.order.c_str());
      std::exit(2);
    }
    return std::make_unique<SequentialEngine>(order);
  }
  std::fprintf(stderr, "error: unknown engine '%s'\n", opt.engine.c_str());
  std::exit(2);
}

struct PullSetup {
  std::unique_ptr<PullProtocol> protocol;
  NoiseMatrix noise;
  Opinion correct;
  std::uint64_t default_rounds = 0;  // budget when the protocol has no horizon
};

PullSetup make_pull_setup(const CliOptions& opt, std::uint64_t h, Rng& init) {
  const PopulationConfig pop{.n = opt.n, .s1 = opt.s1, .s0 = opt.s0};
  const CorruptionPolicy policy = parse_policy(opt.corruption);

  if (opt.protocol == "kary") {
    KaryPopulation kpop{.n = opt.n, .sources = opt.kary_sources};
    if (kpop.sources.empty()) kpop.sources = {opt.s0, opt.s1};
    auto protocol =
        std::make_unique<KarySourceFilter>(kpop, Holdings{h}, Delta{opt.delta},
                                           C1{opt.c1});
    const auto d = kpop.num_opinions();
    return {std::move(protocol), NoiseMatrix::uniform(d, opt.delta),
            kpop.plurality_opinion()};
  }

  const Opinion correct = pop.correct_opinion();
  if (opt.protocol == "sf") {
    if (opt.compiled) {
      const SfSchedule schedule =
          make_sf_schedule(pop, Holdings{h}, Delta{opt.delta}, C1{opt.c1});
      return {make_compiled_sf(pop, schedule),
              NoiseMatrix::uniform(2, opt.delta), correct};
    }
    return {std::make_unique<SourceFilter>(pop, Holdings{h}, Delta{opt.delta},
                                           C1{opt.c1}),

            NoiseMatrix::uniform(2, opt.delta), correct};
  }
  // Budget for protocols with no intrinsic horizon: 20 memory cycles for
  // the self-stabilizing family, 50·n/h rounds for the baselines.
  const std::uint64_t baseline_budget =
      std::max<std::uint64_t>(100, 50 * ((pop.n + h - 1) / h));
  if (opt.protocol == "ssf") {
    if (opt.compiled) {
      // Same Eq. 30 budget and 4·⌈m/h⌉ + 1 convergence deadline the
      // production SelfStabilizingSourceFilter derives for itself.
      const std::uint64_t m =
          ssf_memory_budget(pop, Delta{opt.delta}, C1{opt.c1});
      const std::uint64_t deadline = 4 * ((m + h - 1) / h) + 1;
      return {make_compiled_ssf(pop, MemoryBudget{m}),
              NoiseMatrix::uniform(4, opt.delta), correct, deadline};
    }
    auto ssf = std::make_unique<SelfStabilizingSourceFilter>(pop, Holdings{h},
                                                             Delta{opt.delta},
                                                             C1{opt.c1});
    if (opt.stale_flush > 0) ssf->set_stale_flush(opt.stale_flush);
    corrupt_population(*ssf, policy, correct, init);
    const std::uint64_t deadline = ssf->convergence_deadline();
    return {std::move(ssf), NoiseMatrix::uniform(4, opt.delta), correct,
            deadline};
  }
  if (opt.protocol == "tagless") {
    const auto m = ssf_memory_budget(pop, Delta{opt.delta}, C1{opt.c1});
    auto tagless = std::make_unique<TaglessSsf>(pop, Holdings{h},
                                                MemoryBudget{m});
    corrupt_population(*tagless, policy, correct, init);
    return {std::move(tagless), NoiseMatrix::uniform(2, opt.delta), correct,
            4 * ((m + h - 1) / h) + 1};
  }
  if (opt.protocol == "voter") {
    return {std::make_unique<VoterProtocol>(pop, init),
            NoiseMatrix::uniform(2, opt.delta), correct, baseline_budget};
  }
  if (opt.protocol == "majority") {
    return {std::make_unique<MajorityDynamics>(pop, init),
            NoiseMatrix::uniform(2, opt.delta), correct, baseline_budget};
  }
  if (opt.protocol == "repeated") {
    const std::uint64_t window = opt.window == 0 ? opt.n : opt.window;
    return {std::make_unique<RepeatedMajority>(pop, window, init),
            NoiseMatrix::uniform(2, opt.delta), correct, baseline_budget};
  }
  std::fprintf(stderr, "error: unknown protocol '%s'\n",
               opt.protocol.c_str());
  std::exit(2);
}

int run_push_protocol(const CliOptions& opt, std::uint64_t h) {
  const PopulationConfig pop{.n = opt.n, .s1 = opt.s1, .s0 = opt.s0};
  const auto noise = NoiseMatrix::uniform(2, opt.delta);
  Table table({"rep", "converged", "first-correct", "rounds", "correct"});
  std::uint64_t successes = 0;
  for (std::uint64_t rep = 0; rep < opt.reps; ++rep) {
    PushSpread push(pop, Holdings{h}, Delta{opt.delta});
    AggregatePushEngine engine;
    Rng rng(opt.seed, 2 * rep + 1);
    const auto r = run_push(push, engine, noise, pop.correct_opinion(),
                            RunConfig{.h = h,
                                      .max_rounds = opt.max_rounds,
                                      .stability_window = opt.stability,
                                      .record_trajectory = opt.trajectory &&
                                                           rep == 0},
                            rng);
    successes += r.all_correct_at_end ? 1 : 0;
    table.cell(rep)
        .cell(r.all_correct_at_end ? "yes" : "no")
        .cell(r.first_all_correct == kNever
                  ? std::string("never")
                  : std::to_string(r.first_all_correct))
        .cell(r.rounds_run)
        .cell(r.correct_at_end)
        .end_row();
    if (opt.trajectory && rep == 0) {
      for (std::size_t t = 0; t < r.trajectory.size(); ++t) {
        std::printf("round %zu: %llu correct\n", t,
                    static_cast<unsigned long long>(r.trajectory[t]));
      }
    }
  }
  table.print(std::cout);
  const auto iv = wilson_interval(successes, opt.reps);
  std::printf("\nsuccess %llu/%llu (95%% CI [%.2f, %.2f])\n",
              static_cast<unsigned long long>(successes),
              static_cast<unsigned long long>(opt.reps), iv.lower, iv.upper);
  if (opt.csv) {
    std::ofstream file(opt.csv_path + ".csv");
    if (file) table.write_csv(file);
  }
  return successes == opt.reps ? 0 : 1;
}

// One full pull experiment: all repetitions of the configured protocol /
// engine / fault plan.  Factored out of main() so --verify-replay can run
// the identical configuration twice and compare per-repetition digests.
struct PullOutcome {
  std::uint64_t successes = 0;
  std::vector<std::uint64_t> digests;  // replay digest per repetition
  std::vector<std::uint64_t> trajectory;
  FaultStats fault_totals{};
  Table table{{"rep", "converged", "stable", "first-correct", "rounds",
               "correct"}};
};

// Lumped-engine repetitions: histogram dynamics instead of agent records,
// so population size is a configuration value (n = 10¹² works).  SF/SSF
// only; fault injection and adversarial corruption act on individual agent
// memories and have no population-level counterpart (sim/lumped_engine.hpp).
int run_lumped_reps(const CliOptions& opt, std::uint64_t h, PullOutcome& out) {
  if (opt.protocol != "sf" && opt.protocol != "ssf") {
    std::fprintf(stderr,
                 "error: --engine lumped supports --protocol sf | ssf\n");
    return 2;
  }
  if (wants_faults(opt) || opt.corruption != "none") {
    std::fprintf(stderr,
                 "error: --engine lumped does not compose with fault "
                 "injection or corruption (per-agent randomness)\n");
    return 2;
  }
  const PopulationConfig pop{.n = opt.n, .s1 = opt.s1, .s0 = opt.s0};
  const Opinion correct = pop.correct_opinion();
  for (std::uint64_t rep = 0; rep < opt.reps; ++rep) {
    // Same run-substream derivation as the agent engines; the init stream
    // (2·rep) is unused because lumped initial states are deterministic.
    Rng rng(opt.seed, 2 * rep + 1);
    LumpedSetup setup;
    if (opt.protocol == "sf") {
      const SfSchedule schedule =
          make_sf_schedule(pop, Holdings{h}, Delta{opt.delta}, C1{opt.c1});
      setup = make_lumped_sf(pop, schedule, NoiseMatrix::uniform(2, opt.delta));
    } else {
      const auto m = ssf_memory_budget(pop, Delta{opt.delta}, C1{opt.c1});
      setup = make_lumped_ssf(pop, Holdings{h}, MemoryBudget{m},
                              NoiseMatrix::uniform(4, opt.delta));
    }
    const auto r =
        run_lumped(*setup.engine, correct,
                   RunConfig{.h = h,
                             .max_rounds = opt.max_rounds,
                             .stability_window = opt.stability,
                             .record_trajectory = opt.trajectory && rep == 0},
                   rng);
    out.successes += r.all_correct_at_end ? 1 : 0;
    out.digests.push_back(setup.engine->replay_digest());
    if (rep == 0) out.trajectory = r.trajectory;
    out.table.cell(rep)
        .cell(r.all_correct_at_end ? "yes" : "no")
        .cell(opt.stability == 0 ? "-" : (r.stable ? "yes" : "no"))
        .cell(r.first_all_correct == kNever
                  ? std::string("never")
                  : std::to_string(r.first_all_correct))
        .cell(r.rounds_run)
        .cell(r.correct_at_end)
        .end_row();
  }
  return 0;
}

int run_pull_reps(const CliOptions& opt, std::uint64_t h, PullOutcome& out) {
  if (opt.engine == "lumped") return run_lumped_reps(opt, h, out);
  std::uint64_t num_sources = opt.s1 + opt.s0;
  if (opt.protocol == "kary" && !opt.kary_sources.empty()) {
    num_sources = 0;
    for (const auto s : opt.kary_sources) num_sources += s;
  }

  for (std::uint64_t rep = 0; rep < opt.reps; ++rep) {
    Rng init(opt.seed, 2 * rep);
    Rng rng(opt.seed, 2 * rep + 1);
    auto setup = make_pull_setup(opt, h, init);
    auto engine = make_engine(opt, setup.protocol->alphabet_size());
    if (opt.threads == 0 || opt.threads > 256) {
      std::fprintf(stderr, "error: --threads must be in [1, 256]\n");
      return 2;
    }
    engine->set_threads(static_cast<unsigned>(opt.threads));
    std::unique_ptr<FaultyEngine> faulty;
    Engine* eng = engine.get();
    if (wants_faults(opt)) {
      const FaultPlan plan = make_fault_plan(
          opt, setup.correct, setup.protocol->alphabet_size(), num_sources);
      try {
        plan.validate(setup.protocol->alphabet_size());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
      faulty = std::make_unique<FaultyEngine>(*engine, plan);
      eng = faulty.get();
    }
    std::uint64_t budget = opt.max_rounds;
    if (budget == 0 && setup.protocol->planned_rounds() == 0) {
      budget = setup.default_rounds;
    }
    const auto r =
        run(*setup.protocol, *eng, setup.noise, setup.correct,
            RunConfig{.h = h,
                      .max_rounds = budget,
                      .stability_window = opt.stability,
                      .record_trajectory = opt.trajectory && rep == 0,
                      .compiled = opt.compiled},
            rng);
    out.successes += r.all_correct_at_end ? 1 : 0;
    out.digests.push_back(eng->replay_digest());
    if (rep == 0) out.trajectory = r.trajectory;
    if (faulty) {
      const auto& fs = faulty->stats();
      out.fault_totals.byzantine_agents = fs.byzantine_agents;
      out.fault_totals.crashes += fs.crashes;
      out.fault_totals.stalled_updates += fs.stalled_updates;
      out.fault_totals.dropped_observations += fs.dropped_observations;
      out.fault_totals.burst_rounds += fs.burst_rounds;
    }
    out.table.cell(rep)
        .cell(r.all_correct_at_end ? "yes" : "no")
        .cell(opt.stability == 0 ? "-" : (r.stable ? "yes" : "no"))
        .cell(r.first_all_correct == kNever
                  ? std::string("never")
                  : std::to_string(r.first_all_correct))
        .cell(r.rounds_run)
        .cell(r.correct_at_end)
        .end_row();
  }
  return 0;
}

// Runs the configured experiment twice from identical seeds and compares
// the per-repetition replay digests — the dynamic determinism audit.
int run_verify_replay(const CliOptions& opt, std::uint64_t h) {
  PullOutcome first, second;
  if (const int rc = run_pull_reps(opt, h, first); rc != 0) return rc;
  if (const int rc = run_pull_reps(opt, h, second); rc != 0) return rc;

  Table table({"rep", "digest-run-1", "digest-run-2", "match"});
  std::uint64_t mismatches = 0;
  for (std::uint64_t rep = 0; rep < opt.reps; ++rep) {
    char d1[32], d2[32];
    std::snprintf(d1, sizeof d1, "%016llx",
                  static_cast<unsigned long long>(first.digests[rep]));
    std::snprintf(d2, sizeof d2, "%016llx",
                  static_cast<unsigned long long>(second.digests[rep]));
    const bool match = first.digests[rep] == second.digests[rep];
    mismatches += match ? 0 : 1;
    table.cell(rep).cell(d1).cell(d2).cell(match ? "yes" : "NO").end_row();
  }
  table.print(std::cout);
  if (mismatches == 0 && first.successes == second.successes) {
    std::printf("\nverify-replay: OK — %llu repetition(s) bit-for-bit "
                "reproducible\n",
                static_cast<unsigned long long>(opt.reps));
    return 0;
  }
  std::printf("\nverify-replay: FAILED — %llu digest mismatch(es); "
              "nondeterminism in the simulation path\n",
              static_cast<unsigned long long>(mismatches));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse_args(argc, argv);
  const std::uint64_t h = opt.h == 0 ? opt.n : opt.h;

  if (opt.compiled) {
    // The compiled fast path runs the interned SF/SSF mirrors
    // (core/automaton); the other families and the state-mutation knobs
    // have no compiled counterpart.
    if (opt.protocol != "sf" && opt.protocol != "ssf") {
      std::fprintf(stderr,
                   "error: --compiled supports --protocol sf | ssf only\n");
      return 2;
    }
    if (opt.corruption != "none") {
      std::fprintf(stderr,
                   "error: --compiled does not compose with --corruption "
                   "(corrupted initial states have no compiled mirror)\n");
      return 2;
    }
    if (opt.stale_flush > 0) {
      std::fprintf(stderr,
                   "error: --compiled does not compose with --stale-flush "
                   "(the compiled SSF mirror runs stale_flush = 0)\n");
      return 2;
    }
    if (opt.engine == "lumped") {
      std::fprintf(stderr,
                   "error: --compiled is an agent-engine fast path; "
                   "--engine lumped already runs O(#states) per round\n");
      return 2;
    }
  }

  std::printf("protocol=%s n=%llu h=%llu delta=%.3f seed=%llu reps=%llu\n\n",
              opt.protocol.c_str(), static_cast<unsigned long long>(opt.n),
              static_cast<unsigned long long>(h), opt.delta,
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(opt.reps));

  if (opt.protocol == "push") {
    if (wants_faults(opt)) {
      std::fprintf(stderr,
                   "error: fault injection targets pull engines; "
                   "--protocol push is not supported\n");
      return 2;
    }
    if (opt.verify_replay) {
      std::fprintf(stderr,
                   "error: --verify-replay audits the pull engines; "
                   "--protocol push is not supported\n");
      return 2;
    }
    return run_push_protocol(opt, h);
  }

  if (opt.verify_replay) return run_verify_replay(opt, h);

  PullOutcome out;
  if (const int rc = run_pull_reps(opt, h, out); rc != 0) return rc;
  const std::uint64_t successes = out.successes;
  const std::vector<std::uint64_t>& trajectory = out.trajectory;
  const FaultStats& fault_totals = out.fault_totals;
  Table& table = out.table;
  if (opt.trajectory) {
    for (std::size_t t = 0; t < trajectory.size(); ++t) {
      std::printf("round %zu: %llu correct\n", t,
                  static_cast<unsigned long long>(trajectory[t]));
    }
    std::printf("\n");
  }
  table.print(std::cout);
  const auto iv = wilson_interval(successes, opt.reps);
  std::printf("\nsuccess %llu/%llu (95%% CI [%.2f, %.2f])\n",
              static_cast<unsigned long long>(successes),
              static_cast<unsigned long long>(opt.reps), iv.lower, iv.upper);
  if (wants_faults(opt)) {
    std::printf("faults (all reps): %llu byzantine agents/rep, %llu crashes, "
                "%llu stalled updates,\n  %llu dropped observations, "
                "%llu burst rounds\n",
                static_cast<unsigned long long>(fault_totals.byzantine_agents),
                static_cast<unsigned long long>(fault_totals.crashes),
                static_cast<unsigned long long>(fault_totals.stalled_updates),
                static_cast<unsigned long long>(
                    fault_totals.dropped_observations),
                static_cast<unsigned long long>(fault_totals.burst_rounds));
  }
  if (opt.csv) {
    std::ofstream file(opt.csv_path + ".csv");
    if (file) table.write_csv(file);
  }
  return successes == opt.reps ? 0 : 1;
}
