// Runtime fault model for the noisy PULL(h) simulator.
//
// Every adversary the repo had before this module strikes *before* the run:
// sim/adversary.hpp corrupts initial state (Theorem 5's time-0 adversary) and
// sim/churn.hpp resets state between rounds.  A FaultPlan instead describes
// *ongoing* corruption injected while a round executes, in the spirit of the
// faulty/omitting channels of Feinerman–Haeupler–Korman (arXiv:1311.3425) and
// the adversarial senders of Boczkowski et al. (arXiv:1712.08507):
//
//   Byzantine   a fixed fraction of agents whose *displayed* message is
//               adversarially chosen each round (the agent's internal state
//               still evolves honestly; only what others sample is forged),
//   Drop        each pulled observation is independently lost with
//               probability p, so agents receive fewer than h samples,
//   Stall       crash/sleep faults: agents stop sampling and updating for a
//               random interval (or one synchronized adversarial blackout),
//               then resume with stale state; their stale display remains
//               visible to others throughout,
//   Burst       rounds where the effective noise level δ spikes — the
//               channel is replaced by uniform noise at `delta`, which may
//               exceed the δ-upper-bound the protocol was tuned to.
//
// All fault randomness is drawn from dedicated substreams of `seed`, never
// from the run's Rng: a FaultyEngine wrapping any engine with an all-zero
// plan reproduces the bare engine bit-for-bit under the same run seed, and
// the realized fault schedule is a deterministic function of (plan, round,
// agent) independent of the wrapped engine's activation order.
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"

namespace noisypull {

// How a Byzantine agent chooses the message it displays.
enum class ByzantineStrategy {
  AlwaysWrong,  // `wrong_symbol` every round (steady wrong-opinion pressure)
  FlipFlop,     // `wrong_symbol` on even rounds, `honest_symbol` on odd ones
                // (destabilizes protocols that average across rounds)
  MimicSource,  // `mimic_symbol` every round — for tagged alphabets (SSF)
                // this impersonates a source with the wrong preference,
                // attacking the source filter itself
};

const char* to_string(ByzantineStrategy strategy) noexcept;

struct ByzantineFault {
  // Fraction of eligible agents (see FaultPlan::first_eligible) that are
  // Byzantine.  The ⌊fraction · eligible⌋ highest-indexed agents are chosen:
  // sampling is uniform over the population, so placement is irrelevant, and
  // a deterministic choice keeps the schedule engine-order independent.
  double fraction = 0.0;
  ByzantineStrategy strategy = ByzantineStrategy::AlwaysWrong;
  Symbol wrong_symbol = 1;   // AlwaysWrong / FlipFlop even rounds
  Symbol honest_symbol = 0;  // FlipFlop odd rounds
  Symbol mimic_symbol = 1;   // MimicSource
};

struct DropFault {
  // Per-observation loss probability.  Applied receiver-side to every agent
  // (sources included): each of the h pulled messages is independently
  // discarded before the update sees it.
  double p = 0.0;
};

struct StallFault {
  // Each awake eligible agent crashes with probability `crash_rate` per
  // round; a crashed agent skips its sampling/update for a duration drawn
  // uniformly from [min_rounds, max_rounds], then resumes with stale state.
  double crash_rate = 0.0;
  std::uint64_t min_rounds = 1;
  std::uint64_t max_rounds = 8;

  // Adversarial synchronized blackout: starting at `blackout_start`, the
  // ⌊blackout_fraction · eligible⌋ lowest-indexed eligible agents all stall
  // for `blackout_rounds` rounds at once (disjoint from the Byzantine set,
  // which takes the highest-indexed agents).
  double blackout_fraction = 0.0;
  std::uint64_t blackout_start = 0;
  std::uint64_t blackout_rounds = 0;
};

struct BurstFault {
  // Each non-burst round starts a burst with probability `rate`; a burst
  // lasts `rounds` rounds during which the channel passed to the wrapped
  // engine is replaced by NoiseMatrix::uniform(alphabet, delta).
  double rate = 0.0;
  std::uint64_t rounds = 1;
  double delta = 0.0;
};

struct FaultPlan {
  // Seed of the fault schedule's private random streams (independent of the
  // run seed so faulted and fault-free runs share sampling randomness).
  std::uint64_t seed = 0;

  // Agents with index < first_eligible are immune to Byzantine conversion
  // and stalls (callers typically pass the number of sources: sourcehood is
  // an input in the paper's model, not corruptible state).  Drops and noise
  // bursts are channel faults and apply to everyone.
  std::uint64_t first_eligible = 0;

  ByzantineFault byzantine;
  DropFault drop;
  StallFault stall;
  BurstFault burst;

  // True if any fault class can ever fire.  An all-zero plan makes a
  // FaultyEngine a transparent pass-through.
  bool any() const noexcept;

  // Throws std::invalid_argument on out-of-range rates/durations or
  // Byzantine symbols outside the alphabet.
  void validate(std::size_t alphabet_size) const;

  // Byzantine symbol presets for binary-alphabet protocols (SF, voter,
  // majority, repeated majority, tagless SSF): wrong = 1 − correct.
  static FaultPlan for_binary(Opinion correct);

  // Presets for SSF's tagged {0,1}² alphabet: AlwaysWrong displays an
  // untagged wrong weak opinion, MimicSource a source-tagged wrong
  // preference (the strictly stronger identity attack).
  static FaultPlan for_ssf(Opinion correct);
};

}  // namespace noisypull
