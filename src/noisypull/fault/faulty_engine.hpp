// FaultyEngine — an Engine decorator that injects runtime faults.
//
// Wraps any existing engine (Exact, Aggregate, Sequential, Heterogeneous)
// and realizes a FaultPlan per round without the inner engine knowing:
//
//   * Byzantine displays and crash stalls are applied through a PullProtocol
//     proxy handed to the inner engine — display() is forged for Byzantine
//     agents and update() is swallowed for stalled agents / binomially
//     thinned for drops, so every engine's sampling logic works unchanged,
//   * noise bursts swap the channel matrix passed down for the burst rounds.
//
// Determinism contract: fault decisions come from substreams of the plan's
// own seed, keyed by (round, agent) where per-agent, so the realized fault
// schedule is identical across engines and activation orders; the run Rng is
// never touched by the fault layer.  With FaultPlan::any() == false the
// decorator forwards the step verbatim — bit-for-bit identical to running
// the inner engine directly (tests/test_fault.cpp holds this as the
// identity requirement).
//
// Composition: FaultyEngine is itself an Engine, so it drops into run(),
// measure_steady_state(), and run_with_churn() unchanged — churn resets and
// runtime faults compose by passing a FaultyEngine to the churn runner.
#pragma once

// <atomic> is allowlisted here by tools/noisypull_lint.cpp's threading-header
// rule: the fault proxy's event counters are incremented from the inner
// engine's block-parallel update phase (model/engine.hpp), so they must be
// race-free.  Relaxed additions of non-negative event counts commute, which
// keeps the totals deterministic across thread counts.
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "noisypull/fault/fault_plan.hpp"
#include "noisypull/model/engine.hpp"

namespace noisypull {

// Counters of realized fault events, for reporting and tests.
struct FaultStats {
  std::uint64_t byzantine_agents = 0;   // current Byzantine-set size
  std::uint64_t crashes = 0;            // random crash events
  std::uint64_t stalled_updates = 0;    // update calls swallowed by stalls
  std::uint64_t dropped_observations = 0;
  std::uint64_t burst_rounds = 0;       // rounds run under spiked noise
};

class FaultyEngine final : public Engine {
 public:
  // Non-owning: `inner` must outlive the decorator.
  FaultyEngine(Engine& inner, FaultPlan plan);

  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
  void set_artificial_noise(std::optional<Matrix> p) override;

  // The decorator never steps agents itself: thread-count and sampler-cache
  // settings belong to the inner engine doing the work.
  void set_threads(unsigned lanes) override { inner_.set_threads(lanes); }
  unsigned threads() const noexcept override { return inner_.threads(); }
  void set_sampler_cache(bool enabled) override {
    inner_.set_sampler_cache(enabled);
  }
  bool sampler_cache() const noexcept override {
    return inner_.sampler_cache();
  }
  void set_compiled(bool enabled) override { inner_.set_compiled(enabled); }
  bool compiled() const noexcept override { return inner_.compiled(); }

  // The inner engine runs against the fault proxy, so its digest observes
  // the *decorated* (forged) displays — exactly what a replay must
  // reproduce.
  std::uint64_t replay_digest() const noexcept override {
    return inner_.replay_digest();
  }

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultStats& stats() const noexcept { return stats_; }

  // Fault-set membership, exposed for tests and reporting.  Stall state is
  // as of the most recently executed round.
  bool is_byzantine(std::uint64_t agent) const noexcept;
  bool is_stalled(std::uint64_t agent) const noexcept;

 private:
  friend class FaultedProtocolView;

  void bind_population(std::uint64_t n, std::size_t alphabet);
  void advance_stall_schedule(std::uint64_t round);
  Symbol byzantine_display(std::uint64_t round) const noexcept;

  Engine& inner_;
  FaultPlan plan_;
  FaultStats stats_;
  // Counters the proxy bumps from inside the (possibly parallel) update
  // phase; folded into stats_ after each step.  The folded totals are
  // order-independent sums, hence identical for every thread count.
  std::atomic<std::uint64_t> stalled_updates_accum_{0};
  std::atomic<std::uint64_t> dropped_accum_{0};

  std::uint64_t n_ = 0;            // population bound at first step
  std::uint64_t byz_count_ = 0;    // Byzantine set = agents [n − count, n)
  std::uint64_t current_round_ = 0;
  std::vector<std::uint64_t> stalled_until_;  // per agent, exclusive bound
  std::uint64_t burst_until_ = 0;
  bool validated_ = false;
};

}  // namespace noisypull
