#include "noisypull/fault/faulty_engine.hpp"

#include <algorithm>

#include "noisypull/common/check.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {
namespace {

// Salts separating the fault schedule's independent substreams of one seed.
constexpr std::uint64_t kStallSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kBurstSalt = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kDropSalt = 0x94d049bb133111ebULL;

}  // namespace

// The protocol proxy handed to the wrapped engine: forges Byzantine
// displays, swallows updates of stalled agents, and binomially thins
// observation counts for drop faults.  Everything else forwards.
class FaultedProtocolView final : public PullProtocol {
 public:
  FaultedProtocolView(FaultyEngine& eng, PullProtocol& base)
      : eng_(eng), base_(base) {}

  std::size_t alphabet_size() const override { return base_.alphabet_size(); }
  std::uint64_t num_agents() const override { return base_.num_agents(); }
  std::uint64_t planned_rounds() const override {
    return base_.planned_rounds();
  }
  Opinion opinion(std::uint64_t agent) const override {
    return base_.opinion(agent);
  }

  Symbol display(std::uint64_t agent, std::uint64_t round) const override {
    if (eng_.is_byzantine(agent)) return eng_.byzantine_display(round);
    return base_.display(agent, round);
  }

  // May run concurrently for different agents (the inner engine's
  // block-parallel update phase), so shared counters are relaxed atomics;
  // everything else touched here is per-(round, agent).
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override {
    if (agent >= eng_.plan_.first_eligible &&
        round < eng_.stalled_until_[agent]) {
      // Crashed: no sampling, no update.
      eng_.stalled_updates_accum_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const double p = eng_.plan_.drop.p;
    if (p <= 0.0) {
      base_.update(agent, round, obs, rng);
      return;
    }
    // Thin each symbol's count binomially with loss probability p.  The
    // randomness comes from a per-(round, agent) substream of the fault
    // seed, so the realized losses do not depend on the engine's agent
    // activation order and never perturb the run Rng.
    Rng drop_rng(eng_.plan_.seed ^ kDropSalt, round * eng_.n_ + agent);
    SymbolCounts thinned(obs.size);
    std::uint64_t lost_total = 0;
    for (std::size_t s = 0; s < obs.size; ++s) {
      const std::uint64_t lost = sample_binomial(drop_rng, obs[s], p);
      thinned[s] = obs[s] - lost;
      lost_total += lost;
    }
    if (lost_total > 0) {
      eng_.dropped_accum_.fetch_add(lost_total, std::memory_order_relaxed);
    }
    base_.update(agent, round, thinned, rng);
  }

  // Passes the inner protocol's compiled handle through with the fault
  // fields filled in, so the engine's fast path routes exactly the faulted
  // agents onto this proxy's virtual display()/update() (core/protocol.hpp
  // documents each field).  Called by the inner engine after
  // bind_population/advance_stall_schedule, so the fault sets are current
  // for the round and stalled_until_'s storage is stable for the step.
  CompiledAccess compiled_access() override {
    CompiledAccess access = base_.compiled_access();
    if (access.population == nullptr) return access;
    if (eng_.byz_count_ > 0) {
      access.forged_begin = eng_.n_ - eng_.byz_count_;
    }
    if (eng_.plan_.stall.crash_rate > 0.0 ||
        eng_.plan_.stall.blackout_fraction > 0.0) {
      access.stalled_until = eng_.stalled_until_.data();
      access.stall_first_eligible = eng_.plan_.first_eligible;
    }
    if (eng_.plan_.drop.p > 0.0) access.force_virtual_updates = true;
    return access;
  }

 private:
  FaultyEngine& eng_;
  PullProtocol& base_;
};

FaultyEngine::FaultyEngine(Engine& inner, FaultPlan plan)
    : inner_(inner), plan_(plan) {}

void FaultyEngine::set_artificial_noise(std::optional<Matrix> p) {
  inner_.set_artificial_noise(std::move(p));
}

bool FaultyEngine::is_byzantine(std::uint64_t agent) const noexcept {
  return byz_count_ > 0 && agent >= n_ - byz_count_;
}

bool FaultyEngine::is_stalled(std::uint64_t agent) const noexcept {
  return agent < stalled_until_.size() &&
         current_round_ < stalled_until_[agent];
}

Symbol FaultyEngine::byzantine_display(std::uint64_t round) const noexcept {
  switch (plan_.byzantine.strategy) {
    case ByzantineStrategy::AlwaysWrong:
      return plan_.byzantine.wrong_symbol;
    case ByzantineStrategy::FlipFlop:
      return round % 2 == 0 ? plan_.byzantine.wrong_symbol
                            : plan_.byzantine.honest_symbol;
    case ByzantineStrategy::MimicSource:
      return plan_.byzantine.mimic_symbol;
  }
  return plan_.byzantine.wrong_symbol;
}

void FaultyEngine::bind_population(std::uint64_t n, std::size_t alphabet) {
  if (!validated_) {
    plan_.validate(alphabet);
    NOISYPULL_CHECK(plan_.first_eligible <= n,
                    "first_eligible exceeds the population size");
    n_ = n;
    const std::uint64_t eligible = n - plan_.first_eligible;
    byz_count_ = static_cast<std::uint64_t>(
        plan_.byzantine.fraction * static_cast<double>(eligible));
    stats_.byzantine_agents = byz_count_;
    stalled_until_.assign(n, 0);
    validated_ = true;
    return;
  }
  NOISYPULL_CHECK(n == n_, "FaultyEngine bound to a different population");
}

void FaultyEngine::advance_stall_schedule(std::uint64_t round) {
  const StallFault& stall = plan_.stall;
  if (stall.blackout_fraction > 0.0 && round == stall.blackout_start) {
    // Synchronized blackout hits the lowest-indexed eligible agents —
    // disjoint from the Byzantine set, which takes the highest indices.
    const std::uint64_t eligible = n_ - plan_.first_eligible;
    const std::uint64_t count = static_cast<std::uint64_t>(
        stall.blackout_fraction * static_cast<double>(eligible));
    const std::uint64_t until = round + stall.blackout_rounds;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t agent = plan_.first_eligible + i;
      stalled_until_[agent] = std::max(stalled_until_[agent], until);
      ++stats_.crashes;
    }
  }
  if (stall.crash_rate <= 0.0) return;
  // One substream per round, consumed in agent-index order: the schedule is
  // identical no matter which engine (or activation order) runs below.
  Rng stall_rng(plan_.seed ^ kStallSalt, round);
  for (std::uint64_t i = plan_.first_eligible; i < n_; ++i) {
    if (round < stalled_until_[i]) continue;  // already down
    if (!stall_rng.bernoulli(stall.crash_rate)) continue;
    const std::uint64_t span = stall.max_rounds - stall.min_rounds + 1;
    const std::uint64_t duration =
        stall.min_rounds + stall_rng.next_below(span);
    stalled_until_[i] = round + duration;
    ++stats_.crashes;
  }
}

void FaultyEngine::step(PullProtocol& protocol, const NoiseMatrix& noise,
                        Holdings h, std::uint64_t round, Rng& rng) {
  if (!plan_.any()) {
    // Transparent pass-through: the identity contract requires bit-for-bit
    // agreement with the bare engine, so not even the proxy is interposed.
    inner_.step(protocol, noise, h, round, rng);
    return;
  }
  bind_population(protocol.num_agents(), protocol.alphabet_size());
  current_round_ = round;
  advance_stall_schedule(round);

  bool burst_active = round < burst_until_;
  if (!burst_active && plan_.burst.rate > 0.0) {
    Rng burst_rng(plan_.seed ^ kBurstSalt, round);
    if (burst_rng.bernoulli(plan_.burst.rate)) {
      burst_until_ = round + plan_.burst.rounds;
      burst_active = true;
    }
  }
  if (burst_active) ++stats_.burst_rounds;

  FaultedProtocolView view(*this, protocol);
  if (burst_active) {
    const NoiseMatrix spiked =
        NoiseMatrix::uniform(protocol.alphabet_size(), plan_.burst.delta);
    inner_.step(view, spiked, h, round, rng);
  } else {
    inner_.step(view, noise, h, round, rng);
  }
  // Fold the proxy's concurrent counters into the plain stats snapshot now
  // that the round's update phase has quiesced.
  stats_.stalled_updates +=
      stalled_updates_accum_.exchange(0, std::memory_order_relaxed);
  stats_.dropped_observations +=
      dropped_accum_.exchange(0, std::memory_order_relaxed);
}

}  // namespace noisypull
