#include "noisypull/fault/fault_plan.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

const char* to_string(ByzantineStrategy strategy) noexcept {
  switch (strategy) {
    case ByzantineStrategy::AlwaysWrong:
      return "always-wrong";
    case ByzantineStrategy::FlipFlop:
      return "flip-flop";
    case ByzantineStrategy::MimicSource:
      return "mimic-source";
  }
  return "unknown";
}

bool FaultPlan::any() const noexcept {
  return byzantine.fraction > 0.0 || drop.p > 0.0 || stall.crash_rate > 0.0 ||
         stall.blackout_fraction > 0.0 || burst.rate > 0.0;
}

void FaultPlan::validate(std::size_t alphabet_size) const {
  NOISYPULL_CHECK(
      byzantine.fraction >= 0.0 && byzantine.fraction <= 1.0,
      "Byzantine fraction must be in [0, 1]");
  NOISYPULL_CHECK(drop.p >= 0.0 && drop.p <= 1.0,
                  "drop probability must be in [0, 1]");
  NOISYPULL_CHECK(stall.crash_rate >= 0.0 && stall.crash_rate <= 1.0,
                  "crash rate must be in [0, 1]");
  NOISYPULL_CHECK(
      stall.blackout_fraction >= 0.0 && stall.blackout_fraction <= 1.0,
      "blackout fraction must be in [0, 1]");
  NOISYPULL_CHECK(burst.rate >= 0.0 && burst.rate <= 1.0,
                  "burst rate must be in [0, 1]");
  if (stall.crash_rate > 0.0) {
    NOISYPULL_CHECK(stall.min_rounds >= 1 &&
                        stall.min_rounds <= stall.max_rounds,
                    "stall duration range must satisfy 1 <= min <= max");
  }
  if (stall.blackout_fraction > 0.0) {
    NOISYPULL_CHECK(stall.blackout_rounds >= 1,
                    "blackout needs a positive duration");
  }
  if (burst.rate > 0.0) {
    NOISYPULL_CHECK(burst.rounds >= 1, "burst needs a positive duration");
    NOISYPULL_CHECK(
        burst.delta >= 0.0 &&
            burst.delta <= 1.0 / static_cast<double>(alphabet_size),
        "burst delta must be in [0, 1/|alphabet|] (a uniform noise level)");
  }
  if (byzantine.fraction > 0.0) {
    NOISYPULL_CHECK(byzantine.wrong_symbol < alphabet_size &&
                        byzantine.honest_symbol < alphabet_size &&
                        byzantine.mimic_symbol < alphabet_size,
                    "Byzantine display symbols must fit the alphabet");
  }
}

FaultPlan FaultPlan::for_binary(Opinion correct) {
  const Symbol wrong = static_cast<Symbol>(1 - (correct & 1));
  FaultPlan plan;
  plan.byzantine.wrong_symbol = wrong;
  plan.byzantine.honest_symbol = correct & 1;
  plan.byzantine.mimic_symbol = wrong;  // binary sources just display wrong
  return plan;
}

FaultPlan FaultPlan::for_ssf(Opinion correct) {
  // SSF's alphabet is {0,1}² encoded as first_bit·2 + second_bit (see
  // core/ssf.hpp): the first bit claims sourcehood, the second carries the
  // opinion payload.
  const Symbol wrong = static_cast<Symbol>(1 - (correct & 1));
  FaultPlan plan;
  plan.byzantine.wrong_symbol = wrong;                          // (0, wrong)
  plan.byzantine.honest_symbol = correct & 1;                   // (0, correct)
  plan.byzantine.mimic_symbol = static_cast<Symbol>(2 | wrong); // (1, wrong)
  return plan;
}

}  // namespace noisypull
