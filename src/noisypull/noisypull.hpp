// Umbrella header: the full public API of the noisypull library.
//
// Quickstart:
//   PopulationConfig pop{.n = 10'000, .s1 = 1, .s0 = 0};
//   NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);
//   SourceFilter sf(pop, /*h=*/pop.n, /*delta=*/0.2);
//   AggregateEngine engine;
//   Rng rng(42);
//   RunResult r = run(sf, engine, noise, pop.correct_opinion(),
//                     RunConfig{.h = pop.n}, rng);
#pragma once

#include "noisypull/analysis/scheduler.hpp"
#include "noisypull/analysis/stats.hpp"
#include "noisypull/analysis/sweep.hpp"
#include "noisypull/analysis/table.hpp"
#include "noisypull/common/symbols.hpp"
#include "noisypull/common/thread_pool.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/baselines/majority_dynamics.hpp"
#include "noisypull/baselines/repeated_majority.hpp"
#include "noisypull/baselines/voter.hpp"
#include "noisypull/core/automaton/automaton.hpp"
#include "noisypull/core/automaton/compiled_population.hpp"
#include "noisypull/core/automaton/protocol_automata.hpp"
#include "noisypull/core/kary.hpp"
#include "noisypull/core/schedule.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/core/ssf.hpp"
#include "noisypull/core/variants.hpp"
#include "noisypull/fault/fault_plan.hpp"
#include "noisypull/fault/faulty_engine.hpp"
#include "noisypull/linalg/lu.hpp"
#include "noisypull/linalg/matrix.hpp"
#include "noisypull/core/protocol.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/noise/noise_matrix.hpp"
#include "noisypull/noise/reduction.hpp"
#include "noisypull/push/push_engine.hpp"
#include "noisypull/push/push_protocol.hpp"
#include "noisypull/push/push_spread.hpp"
#include "noisypull/rng/binomial.hpp"
#include "noisypull/rng/observation_cache.hpp"
#include "noisypull/rng/rng.hpp"
#include "noisypull/sim/adversary.hpp"
#include "noisypull/sim/churn.hpp"
#include "noisypull/sim/lumped_engine.hpp"
#include "noisypull/sim/repeat.hpp"
#include "noisypull/sim/runner.hpp"
#include "noisypull/theory/bounds.hpp"
#include "noisypull/theory/exact_chain.hpp"
#include "noisypull/theory/protocol_automata.hpp"
#include "noisypull/theory/two_party.hpp"
