// Core value types of the noisy PULL(h) model (Section 1.3 of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <numeric>

#include "noisypull/common/check.hpp"
#include "noisypull/noise/noise_matrix.hpp"

namespace noisypull {

// A binary opinion (the paper's Y^(i) ∈ {0,1}).
using Opinion = std::uint8_t;

// Per-symbol observation tallies an agent receives in one round (or phase).
// All protocols in the paper are functions of these counts only, which is
// what makes the aggregate engine exact (see engine.hpp).
struct SymbolCounts {
  std::array<std::uint64_t, kMaxAlphabet> c{};
  std::size_t size = 0;

  explicit SymbolCounts(std::size_t alphabet = 2) : size(alphabet) {
    NOISYPULL_CHECK(alphabet >= 2 && alphabet <= kMaxAlphabet,
                    "unsupported alphabet size");
  }

  std::uint64_t operator[](std::size_t s) const noexcept { return c[s]; }
  std::uint64_t& operator[](std::size_t s) noexcept { return c[s]; }

  std::uint64_t total() const noexcept {
    return std::accumulate(c.begin(), c.begin() + size, std::uint64_t{0});
  }

  void clear() noexcept { c.fill(0); }
};

// Population layout.  Agents are indexed 0..n-1; by convention the first s1
// agents are sources preferring opinion 1, the next s0 are sources preferring
// opinion 0, and the remainder are non-sources.  Placement is irrelevant in a
// well-mixed population (sampling is uniform over all agents).
struct PopulationConfig {
  std::uint64_t n = 0;   // total number of agents
  std::uint64_t s1 = 0;  // sources preferring opinion 1
  std::uint64_t s0 = 0;  // sources preferring opinion 0

  void validate() const {
    NOISYPULL_CHECK(n >= 2, "population needs at least 2 agents");
    NOISYPULL_CHECK(s0 + s1 <= n, "more sources than agents");
    NOISYPULL_CHECK(s0 + s1 >= 1, "at least one source is required");
  }

  std::uint64_t num_sources() const noexcept { return s0 + s1; }

  // The paper's bias s = |s1 − s0|.
  std::uint64_t bias() const noexcept {
    return s1 >= s0 ? s1 - s0 : s0 - s1;
  }

  // Majority preference among sources; requires a strict majority.
  Opinion correct_opinion() const {
    NOISYPULL_CHECK(s0 != s1, "correct opinion undefined when s0 == s1");
    return s1 > s0 ? Opinion{1} : Opinion{0};
  }

  bool is_source(std::uint64_t agent) const noexcept {
    return agent < s0 + s1;
  }

  // Preference of a source agent (undefined semantics for non-sources).
  Opinion source_preference(std::uint64_t agent) const noexcept {
    return agent < s1 ? Opinion{1} : Opinion{0};
  }
};

}  // namespace noisypull
