// Round engines for the noisy PULL(h) model.
//
// ExactEngine is the literal model: each agent draws h uniform indices with
// replacement (possibly itself) and each sampled message passes through the
// noise channel independently.  Θ(n·h) work per round — the ground truth used
// by tests and small runs.
//
// AggregateEngine exploits that protocols consume observation *counts*: the h
// observations of one agent are i.i.d. categorical draws whose distribution
// is q = cᵀN / n, where c is the population's display histogram this round.
// The count vector is therefore exactly Multinomial(h, q); drawing it
// directly is identical in distribution and costs O(|Σ|) per agent, making
// n = 10⁶ with h = n feasible.  Tests cross-validate the two engines
// statistically (tests/test_engines.cpp).  Because q is one distribution
// shared by all n agents, AggregateEngine further funnels the per-agent draw
// through an ObservationSampler (rng/observation_cache.hpp): one per-round
// inverse-CDF table, one uniform per agent.  HeterogeneousEngine reuses the
// same cache per *distinct* effective channel.
//
// Block-parallel kernel (DESIGN.md §9): ExactEngine, AggregateEngine, and
// HeterogeneousEngine split each round's sampling+update phase into fixed
// kBlockSize-agent blocks.  Per round the engine draws ONE 64-bit round key
// from the caller's rng and block b runs on the substream Rng(round_key, b) —
// the same derivation whether the blocks execute serially or on a ThreadPool,
// so the trajectory (and hence the replay digest) is a function of seed and
// configuration alone, bit-identical for 1 and T threads.  The serial
// display/digest phase precedes the parallel phase, which only writes
// per-agent protocol state (the update() contract in core/protocol.hpp).
// SequentialEngine is inherently order-dependent and ignores set_threads().
//
// Both engines can apply an "artificial noise" matrix P to every observation
// (Definition 6) — ExactEngine by literally re-corrupting each message,
// AggregateEngine by composing the channel to N·P — which is how Theorem 8's
// reduction is exercised end to end.
//
// Engine is also the decoration seam for runtime faults: FaultyEngine
// (fault/faulty_engine.hpp) wraps any of the engines below and injects
// Byzantine displays, message drops, stalls, and noise bursts without
// the inner engine noticing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "noisypull/common/fnv.hpp"
#include "noisypull/core/protocol.hpp"
#include "noisypull/noise/noise_matrix.hpp"
#include "noisypull/rng/observation_cache.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class ThreadPool;  // common/thread_pool.hpp; kept out of this header so the
                   // threading-header lint allowlist stays minimal

class Engine {
 public:
  Engine();
  virtual ~Engine();

  // Executes one full round: displays → sampling → noise → updates.
  // `h` is the sample size of the PULL(h) model.
  virtual void step(PullProtocol& protocol, const NoiseMatrix& noise,
                    Holdings h, std::uint64_t round, Rng& rng) = 0;

  // Installs artificial noise applied after the channel (Definition 6), or
  // removes it when called with std::nullopt.
  virtual void set_artificial_noise(std::optional<Matrix> p) = 0;

  // Number of execution lanes for the block-parallel round phase; lanes == 1
  // (the default) runs fully serial with no pool.  The trajectory is
  // independent of this setting by construction (see the header comment);
  // only wall-clock changes.  Requires lanes >= 1.  Decorators forward to
  // their inner engine; SequentialEngine accepts but ignores the setting.
  virtual void set_threads(unsigned lanes);
  virtual unsigned threads() const noexcept { return lanes_; }

  // Toggles per-round observation-sampler table caching in the aggregate
  // engines (rng/observation_cache.hpp).  Trajectory-invariant: both
  // settings realize the identical uniform→outcome map.  On by default.
  virtual void set_sampler_cache(bool enabled) { sampler_cache_ = enabled; }
  virtual bool sampler_cache() const noexcept { return sampler_cache_; }

  // Toggles the compiled fast path (DESIGN.md §13): when enabled AND the
  // protocol exposes a CompiledPopulation (core/protocol.hpp,
  // compiled_access()), AggregateEngine and HeterogeneousEngine replace the
  // per-agent virtual display()/update() calls with table lookups over
  // interned automaton state ids.  Trajectory-invariant by construction —
  // same draws from the same substreams, identical replay digest — so like
  // the sampler cache it is excluded from experiment cache keys
  // (tests/test_compiled_path.cpp pins the bit-identity).  Off by default;
  // engines without a compiled path accept and ignore the setting.
  virtual void set_compiled(bool enabled) { compiled_ = enabled; }
  virtual bool compiled() const noexcept { return compiled_; }

  // Replay auditor: chained FNV-1a digest over (round number, start-of-round
  // display vector) of every round stepped so far.  Identical configurations
  // and seeds must yield identical digests — the dynamic complement to the
  // static determinism lints (tools/noisypull_lint.cpp); exercised by the
  // CLI's --verify-replay mode and tests/test_replay_digest.cpp.  Decorators
  // (FaultyEngine) report their inner engine's digest, which observes the
  // decorated displays.
  virtual std::uint64_t replay_digest() const noexcept { return digest_; }

 protected:
  // Agents per RNG block.  Fixed — NOT derived from the thread count — so the
  // block↦substream map, and with it the trajectory, is thread-invariant.
  // 4096 agents amortize the substream setup while leaving enough blocks for
  // load balancing at bench scales (n = 10⁶ → 245 blocks).
  static constexpr std::uint64_t kBlockSize = 4096;

  // Folds the round header into the digest; engines then fold each display
  // symbol via absorb_display().
  void absorb_round(std::uint64_t round) noexcept {
    digest_ = fnv::hash_u64(digest_, round);
  }
  void absorb_display(Symbol s) noexcept {
    digest_ = fnv::hash_byte(digest_, s);
  }

  // Snapshot display histogram of one round (c[σ] = number of agents
  // displaying σ), folded into the replay digest along the way — the shared
  // first step of every aggregate-style engine.
  std::array<std::uint64_t, kMaxAlphabet> display_histogram(
      const PullProtocol& protocol, std::uint64_t round);

  // Compiled-path variant: per-agent symbols come from the population's
  // display memo table (one array lookup per agent) except for agents at
  // index >= access.forged_begin, whose displays a fault decorator forges
  // and which therefore go through the virtual path.  Digest absorption is
  // identical to the virtual variant, byte for byte.  Requires
  // access.population != nullptr.
  std::array<std::uint64_t, kMaxAlphabet> display_histogram(
      PullProtocol& protocol, const CompiledAccess& access,
      std::uint64_t round);

  // Runs body(begin, end, block_rng) for every block [begin, end) of
  // [0, n), where block b's rng is Rng(round_key, b) — serially when lanes
  // == 1, on the pool otherwise.  The caller draws round_key from the run
  // rng (exactly one draw per round) so the master stream advances the same
  // way regardless of lane count.
  using BlockBody =
      std::function<void(std::uint64_t, std::uint64_t, Rng&)>;
  void for_each_block(std::uint64_t n, std::uint64_t round_key,
                      const BlockBody& body);

 private:
  std::uint64_t digest_ = fnv::kOffsetBasis;
  unsigned lanes_ = 1;
  bool sampler_cache_ = true;
  bool compiled_ = false;
  std::unique_ptr<ThreadPool> pool_;  // null when lanes_ == 1
};

class ExactEngine final : public Engine {
 public:
  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
  void set_artificial_noise(std::optional<Matrix> p) override;

 private:
  std::optional<NoiseMatrix> artificial_;
  std::vector<Symbol> displays_;  // scratch, reused across rounds
};

class AggregateEngine final : public Engine {
 public:
  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
  void set_artificial_noise(std::optional<Matrix> p) override;

 private:
  std::optional<Matrix> artificial_;
  ObservationSampler sampler_;  // reset per round; read-only during blocks
};

// Asynchronous (sequential-activation) engine: instead of the synchronous
// display-snapshot semantics, agents are activated one at a time within a
// round — each samples h *live* displays (reflecting all updates performed
// earlier in the same round) and updates immediately.  This is the
// population-protocol-style scheduler; protocols without a global clock
// (SSF, the baselines) should behave the same under it, while SF's phase
// synchrony is not required to survive it.  The display histogram is
// maintained incrementally, so a round still costs O(n·|Σ|).  Inherently
// serial: later activations observe earlier updates, so there is no
// order-free decomposition to parallelize; set_threads() is ignored.
class SequentialEngine final : public Engine {
 public:
  enum class Order {
    Random,           // fresh uniform permutation per round
    FixedAscending,   // 0, 1, ..., n−1 (adversarially regular)
    FixedDescending,  // n−1, ..., 0 (sources activate last)
  };

  explicit SequentialEngine(Order order = Order::Random) : order_(order) {}

  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
  void set_artificial_noise(std::optional<Matrix> p) override;

 private:
  Order order_;
  std::optional<Matrix> artificial_;
  std::vector<std::uint64_t> perm_;  // scratch
};

// Heterogeneous-noise engine: each *receiving* agent has its own channel
// matrix (the paper assumes one common N; real sensor populations don't).
// Observation i's law is q_i ∝ cᵀ·N_i, so the aggregate trick still applies
// per receiver at O(|Σ|²) each.  The `noise` argument passed to step() is
// only validated for alphabet compatibility — the per-agent matrices given
// at construction are what corrupt observations.  The THM4-D style
// robustness claim this enables: SF tuned to the worst agent's δ_max still
// converges when most agents are much cleaner (bench tab_heterogeneous).
//
// Agents sharing a bit-identical effective channel share one per-round
// ObservationSampler, so the per-agent cost drops from O(|Σ|²) plus a
// multinomial to a single cached inverse-CDF draw whenever the number of
// distinct channels is small (the realistic sensor-tier case).
class HeterogeneousEngine final : public Engine {
 public:
  // One noise matrix per agent (size must equal the protocol's n; all
  // matrices must share the protocol's alphabet).
  explicit HeterogeneousEngine(std::vector<NoiseMatrix> per_agent);

  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
  void set_artificial_noise(std::optional<Matrix> p) override;

  // Tightest δ such that every per-agent matrix is δ-upper-bounded — the
  // level a protocol must be tuned to.
  double worst_upper_bound() const noexcept;

  // Number of distinct effective channels (valid after the first step).
  std::size_t distinct_channels() const noexcept { return num_groups_; }

 private:
  void rebuild_channel_cache();

  std::vector<NoiseMatrix> per_agent_;
  std::optional<Matrix> artificial_;
  std::vector<double> channels_;  // n·d·d flattened effective channels
  // Channel deduplication: agent i draws from group group_of_[i], whose
  // effective channel is group_channels_[g·d² .. (g+1)·d²).
  std::vector<std::uint32_t> group_of_;
  std::vector<double> group_channels_;
  std::vector<std::uint64_t> group_sizes_;  // agents per group: the draw
                                            // count its sampler amortizes over
  std::size_t num_groups_ = 0;
  std::vector<ObservationSampler> samplers_;  // one per group, reset per round
  bool cache_valid_ = false;
};

}  // namespace noisypull
