#include "noisypull/model/engine.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <span>

#include "noisypull/common/check.hpp"
#include "noisypull/common/thread_pool.hpp"
#include "noisypull/core/automaton/compiled_population.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {

Engine::Engine() = default;
Engine::~Engine() = default;  // out of line: ~unique_ptr<ThreadPool> needs
                              // the complete type

void Engine::set_threads(unsigned lanes) {
  NOISYPULL_CHECK(lanes >= 1, "engine needs at least one lane");
  lanes_ = lanes;
  if (lanes == 1) {
    pool_.reset();
  } else if (!pool_ || pool_->lanes() != lanes) {
    pool_ = std::make_unique<ThreadPool>(lanes);
  }
}

void Engine::for_each_block(std::uint64_t n, std::uint64_t round_key,
                            const BlockBody& body) {
  const std::uint64_t blocks = (n + kBlockSize - 1) / kBlockSize;
  const auto run_block = [&](std::uint64_t b) {
    // Counter substream: a function of (round_key, b) only — never of the
    // lane that happens to execute the block — so serial and pooled
    // execution realize identical trajectories.
    Rng block_rng(round_key, b);
    const std::uint64_t begin = b * kBlockSize;
    const std::uint64_t end = std::min(n, begin + kBlockSize);
    body(begin, end, block_rng);
  };
  if (!pool_ || blocks <= 1) {
    for (std::uint64_t b = 0; b < blocks; ++b) run_block(b);
    return;
  }
  pool_->parallel_for(blocks, run_block);
}

std::array<std::uint64_t, kMaxAlphabet> Engine::display_histogram(
    const PullProtocol& protocol, std::uint64_t round) {
  std::array<std::uint64_t, kMaxAlphabet> c{};
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  absorb_round(round);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Symbol s = protocol.display(i, round);
    NOISYPULL_ASSERT(s < d);
    absorb_display(s);
    ++c[s];
  }
  return c;
}

std::array<std::uint64_t, kMaxAlphabet> Engine::display_histogram(
    PullProtocol& protocol, const CompiledAccess& access, std::uint64_t round) {
  NOISYPULL_ASSERT(access.population != nullptr);
  CompiledPopulation& pop = *access.population;
  std::array<std::uint64_t, kMaxAlphabet> c{};
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  pop.begin_display_round(round);
  absorb_round(round);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Forged agents (Byzantine decorators) display through the virtual path
    // — the decorator, not the automaton state, decides what they show.
    const Symbol s = i >= access.forged_begin ? protocol.display(i, round)
                                              : pop.display_at(i, round);
    NOISYPULL_ASSERT(s < d);
    absorb_display(s);
    ++c[s];
  }
  return c;
}

namespace {

// True when the fault decorator must see agent i's update through the
// virtual path this round: drops rewrite the observation counts for
// everyone, stalls swallow (and count) the update for the stalled agent.
inline bool needs_virtual_update(const CompiledAccess& access, std::uint64_t i,
                                 std::uint64_t round) {
  if (access.force_virtual_updates) return true;
  return access.stalled_until != nullptr &&
         i >= access.stall_first_eligible && round < access.stalled_until[i];
}

}  // namespace

void ExactEngine::set_artificial_noise(std::optional<Matrix> p) {
  if (p) {
    artificial_.emplace(std::move(*p));
  } else {
    artificial_.reset();
  }
}

void ExactEngine::step(PullProtocol& protocol, const NoiseMatrix& noise,
                       Holdings h_in, std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");

  // Snapshot displays: all messages of a round are chosen before any
  // observation of that round is delivered (model step 1 precedes step 4).
  // Serial, in agent-index order — this is the digest-absorbing phase.
  displays_.resize(n);
  absorb_round(round);
  for (std::uint64_t i = 0; i < n; ++i) {
    displays_[i] = protocol.display(i, round);
    NOISYPULL_ASSERT(displays_[i] < d);
    absorb_display(displays_[i]);
  }

  // Sampling + update phase: reads the frozen display snapshot, writes only
  // per-agent protocol state — block-parallel on counter substreams.
  const std::uint64_t round_key = rng.next();
  for_each_block(
      n, round_key, [&](std::uint64_t begin, std::uint64_t end, Rng& brng) {
        SymbolCounts obs(d);
        for (std::uint64_t i = begin; i < end; ++i) {
          obs.clear();
          for (std::uint64_t k = 0; k < h; ++k) {
            const std::uint64_t j =
                brng.next_below(n);  // with replacement; may be i
            Symbol received = noise.corrupt(displays_[j], brng);
            if (artificial_) received = artificial_->corrupt(received, brng);
            ++obs[received];
          }
          protocol.update(i, round, obs, brng);
        }
      });
}

void AggregateEngine::set_artificial_noise(std::optional<Matrix> p) {
  artificial_ = std::move(p);
}

void AggregateEngine::step(PullProtocol& protocol, const NoiseMatrix& noise,
                           Holdings h_in, std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");

  // Compiled fast path (DESIGN.md §13): only when the toggle is on AND the
  // protocol stack exposes a CompiledPopulation.  Trajectory-invariant —
  // the virtual and compiled branches below absorb the same displays and
  // draw the same values from the same substreams.
  CompiledAccess access{};
  if (compiled()) access = protocol.compiled_access();

  const auto c = access.population != nullptr
                     ? display_histogram(protocol, access, round)
                     : display_histogram(protocol, round);

  // One observation is distributed as: pick a displayed symbol σ with
  // probability c[σ]/n, then corrupt through the (possibly composed)
  // channel.  So q[σ'] ∝ Σ_σ c[σ]·channel(σ,σ').
  Matrix channel = noise.matrix();
  if (artificial_) channel = channel * *artificial_;

  std::array<double, kMaxAlphabet> q{};
  for (std::size_t to = 0; to < d; ++to) {
    double w = 0.0;
    for (std::size_t from = 0; from < d; ++from) {
      w += static_cast<double>(c[from]) * channel(from, to);
    }
    q[to] = w;
  }

  // q is one distribution for all n agents: build the per-round sampler once
  // and draw each agent's count vector from it with a single uniform.  The
  // draw count n lets the sampler skip table construction when the outcome
  // space would not amortize over the population (amortization gate,
  // rng/observation_cache.hpp).
  sampler_.reset(h, std::span<const double>(q.data(), d), sampler_cache(), n);

  const std::uint64_t round_key = rng.next();
  if (access.population != nullptr &&
      sampler_.mode() == ObservationSampler::Mode::InverseCdf &&
      access.population->build_update_tables(round, sampler_)) {
    // Table-driven update phase: one sample_index() + one packed-edge apply
    // per agent, no virtual dispatch.  Faulted agents take the per-agent
    // virtual fallback, which consumes the identical draws (sample() and
    // sample_index() share one uniform and one stopping rule).
    CompiledPopulation& pop = *access.population;
    const bool faults_possible =
        access.force_virtual_updates || access.stalled_until != nullptr;
    for_each_block(
        n, round_key, [&](std::uint64_t begin, std::uint64_t end, Rng& brng) {
          if (!faults_possible) {
            // No fault decorator this round: the whole block takes the
            // group-hoisted tight loop — same draws, same writes, without
            // the per-agent group lookup and fault check.
            pop.apply_block(begin, end, sampler_, brng);
            return;
          }
          SymbolCounts obs(d);
          for (std::uint64_t i = begin; i < end; ++i) {
            if (needs_virtual_update(access, i, round)) {
              obs.clear();
              sampler_.sample(brng, obs);
              protocol.update(i, round, obs, brng);
            } else {
              pop.apply(i, sampler_.sample_index(brng), brng);
            }
          }
        });
    return;
  }
  // Virtual path — also the compiled mode's whole-round fallback when the
  // outcome space is not enumerable (Decomposition mode) or when this
  // round's missing transition rows fail the build gate
  // (core/automaton/compiled_population.hpp): per-agent
  // CompiledPopulation::update mirrors the production draws exactly.
  for_each_block(
      n, round_key, [&](std::uint64_t begin, std::uint64_t end, Rng& brng) {
        SymbolCounts obs(d);
        for (std::uint64_t i = begin; i < end; ++i) {
          obs.clear();
          sampler_.sample(brng, obs);
          protocol.update(i, round, obs, brng);
        }
      });
}

HeterogeneousEngine::HeterogeneousEngine(std::vector<NoiseMatrix> per_agent)
    : per_agent_(std::move(per_agent)) {
  NOISYPULL_CHECK(!per_agent_.empty(), "need at least one noise matrix");
  const std::size_t d = per_agent_.front().alphabet_size();
  for (const auto& m : per_agent_) {
    NOISYPULL_CHECK(m.alphabet_size() == d,
                    "per-agent noise matrices must share one alphabet");
  }
}

void HeterogeneousEngine::set_artificial_noise(std::optional<Matrix> p) {
  artificial_ = std::move(p);
  cache_valid_ = false;
}

void HeterogeneousEngine::rebuild_channel_cache() {
  const std::size_t d = per_agent_.front().alphabet_size();
  const std::size_t dd = d * d;
  channels_.resize(per_agent_.size() * dd);
  for (std::size_t i = 0; i < per_agent_.size(); ++i) {
    Matrix channel = per_agent_[i].matrix();
    if (artificial_) channel = channel * *artificial_;
    for (std::size_t from = 0; from < d; ++from) {
      for (std::size_t to = 0; to < d; ++to) {
        channels_[(i * d + from) * d + to] = channel(from, to);
      }
    }
  }
  // Deduplicate bit-identical effective channels so agents with the same
  // matrix share one per-round sampler.  Ordered map: group ids must not
  // depend on hash iteration order (and unordered containers are lint-banned
  // on simulation paths).
  std::map<std::vector<double>, std::uint32_t> ids;
  group_of_.resize(per_agent_.size());
  group_channels_.clear();
  group_sizes_.clear();
  std::vector<double> key(dd);
  for (std::size_t i = 0; i < per_agent_.size(); ++i) {
    std::copy_n(channels_.begin() + static_cast<std::ptrdiff_t>(i * dd), dd,
                key.begin());
    const auto [it, inserted] =
        ids.emplace(key, static_cast<std::uint32_t>(ids.size()));
    if (inserted) {
      group_channels_.insert(group_channels_.end(), key.begin(), key.end());
      group_sizes_.push_back(0);
    }
    group_of_[i] = it->second;
    ++group_sizes_[static_cast<std::size_t>(it->second)];
  }
  num_groups_ = ids.size();
  cache_valid_ = true;
}

double HeterogeneousEngine::worst_upper_bound() const noexcept {
  double worst = 0.0;
  for (const auto& m : per_agent_) {
    worst = std::max(worst, m.tightest_upper_bound());
  }
  return worst;
}

void HeterogeneousEngine::step(PullProtocol& protocol,
                               const NoiseMatrix& noise, Holdings h_in,
                               std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(per_agent_.size() == n,
                  "need exactly one noise matrix per agent");
  NOISYPULL_CHECK(per_agent_.front().alphabet_size() == d,
                  "per-agent noise alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");

  CompiledAccess access{};
  if (compiled()) access = protocol.compiled_access();

  const auto c = access.population != nullptr
                     ? display_histogram(protocol, access, round)
                     : display_histogram(protocol, round);
  if (!cache_valid_) rebuild_channel_cache();

  // One sampler per distinct channel per round; q_g ∝ cᵀ·channel_g.  Built
  // serially before the parallel phase, read-only during it.
  samplers_.resize(num_groups_);
  std::array<double, kMaxAlphabet> q{};
  for (std::size_t g = 0; g < num_groups_; ++g) {
    const double* channel = &group_channels_[g * d * d];
    for (std::size_t to = 0; to < d; ++to) {
      double w = 0.0;
      for (std::size_t from = 0; from < d; ++from) {
        w += static_cast<double>(c[from]) * channel[from * d + to];
      }
      q[to] = w;
    }
    // A group's sampler serves exactly group_sizes_[g] draws this round, so
    // the amortization gate sees the per-group (not whole-population) count.
    samplers_[g].reset(h, std::span<const double>(q.data(), d),
                       sampler_cache(), group_sizes_[g]);
  }

  const std::uint64_t round_key = rng.next();
  if (access.population != nullptr) {
    // The outcome enumeration is a function of (h, d) only, so any one
    // InverseCdf sampler can build this round's transition tables; agents
    // whose channel group fell back to Decomposition (tiny groups under the
    // amortization gate) take the per-agent virtual fallback instead.
    const ObservationSampler* enumerator = nullptr;
    for (const ObservationSampler& s : samplers_) {
      if (s.mode() == ObservationSampler::Mode::InverseCdf) {
        enumerator = &s;
        break;
      }
    }
    if (enumerator != nullptr &&
        access.population->build_update_tables(round, *enumerator)) {
      CompiledPopulation& pop = *access.population;
      for_each_block(
          n, round_key,
          [&](std::uint64_t begin, std::uint64_t end, Rng& brng) {
            SymbolCounts obs(d);
            for (std::uint64_t i = begin; i < end; ++i) {
              const ObservationSampler& smp =
                  samplers_[static_cast<std::size_t>(group_of_[i])];
              if (smp.mode() != ObservationSampler::Mode::InverseCdf ||
                  needs_virtual_update(access, i, round)) {
                obs.clear();
                smp.sample(brng, obs);
                protocol.update(i, round, obs, brng);
              } else {
                pop.apply(i, smp.sample_index(brng), brng);
              }
            }
          });
      return;
    }
  }
  for_each_block(
      n, round_key, [&](std::uint64_t begin, std::uint64_t end, Rng& brng) {
        SymbolCounts obs(d);
        for (std::uint64_t i = begin; i < end; ++i) {
          obs.clear();
          // group_of_ holds 32-bit ids; widen explicitly so every index
          // expression in the engines is 64-bit before arithmetic
          // (clang-tidy bugprone-implicit-widening gate, .clang-tidy).
          samplers_[static_cast<std::size_t>(group_of_[i])].sample(brng, obs);
          protocol.update(i, round, obs, brng);
        }
      });
}

void SequentialEngine::set_artificial_noise(std::optional<Matrix> p) {
  artificial_ = std::move(p);
}

void SequentialEngine::step(PullProtocol& protocol, const NoiseMatrix& noise,
                            Holdings h_in, std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");

  auto c = display_histogram(protocol, round);

  Matrix channel = noise.matrix();
  if (artificial_) channel = channel * *artificial_;

  perm_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) perm_[i] = i;
  switch (order_) {
    case Order::Random:
      for (std::uint64_t i = n; i > 1; --i) {  // Fisher–Yates
        std::swap(perm_[i - 1], perm_[rng.next_below(i)]);
      }
      break;
    case Order::FixedAscending:
      break;
    case Order::FixedDescending:
      for (std::uint64_t i = 0; i < n / 2; ++i) {
        std::swap(perm_[i], perm_[n - 1 - i]);
      }
      break;
  }

  SymbolCounts obs(d);
  std::array<double, kMaxAlphabet> q{};
  for (std::uint64_t idx = 0; idx < n; ++idx) {
    const std::uint64_t agent = perm_[idx];
    // Observation law against the *current* display histogram.
    for (std::size_t to = 0; to < d; ++to) {
      double w = 0.0;
      for (std::size_t from = 0; from < d; ++from) {
        w += static_cast<double>(c[from]) * channel(from, to);
      }
      q[to] = w;
    }
    obs.clear();
    sample_multinomial(rng, h, std::span<const double>(q.data(), d),
                       std::span<std::uint64_t>(obs.c.data(), d));
    // Update immediately; keep the histogram in sync with display changes.
    const Symbol before = protocol.display(agent, round);
    protocol.update(agent, round, obs, rng);
    const Symbol after = protocol.display(agent, round);
    if (after != before) {
      NOISYPULL_ASSERT(c[before] > 0);
      --c[before];
      ++c[after];
    }
  }
}

}  // namespace noisypull
