#include "noisypull/sim/adversary.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

const char* to_string(CorruptionPolicy policy) noexcept {
  switch (policy) {
    case CorruptionPolicy::None:
      return "none";
    case CorruptionPolicy::RandomState:
      return "random-state";
    case CorruptionPolicy::WrongConsensus:
      return "wrong-consensus";
    case CorruptionPolicy::OverflowMemory:
      return "overflow-memory";
    case CorruptionPolicy::DesyncClocks:
      return "desync-clocks";
  }
  return "unknown";
}

namespace {

// Shared per-agent corruption; `stagger` drives the DesyncClocks fill level
// (the agent index for whole-population corruption, a random value for
// churn).
void corrupt_one(SelfStabilizingSourceFilter& protocol, std::uint64_t agent,
                 CorruptionPolicy policy, Opinion correct,
                 std::uint64_t stagger, Rng& rng) {
  const std::uint64_t m = protocol.memory_budget();
  const Opinion wrong = correct ^ 1;
  const Symbol fake_source_wrong =
      SelfStabilizingSourceFilter::encode(true, wrong);

  SymbolCounts mem(4);
  Opinion weak = 0;
  Opinion opinion = 0;
  switch (policy) {
    case CorruptionPolicy::None:
      return;
    case CorruptionPolicy::RandomState: {
      std::uint64_t total = m > 1 ? rng.next_below(m) : 0;
      while (total-- > 0) ++mem[rng.next_below(4)];
      weak = rng.next_bool() ? 1 : 0;
      opinion = rng.next_bool() ? 1 : 0;
      break;
    }
    case CorruptionPolicy::WrongConsensus: {
      // Memory one message short of an update, all of it fake source
      // messages supporting the wrong opinion; the agent already believes
      // the wrong value.
      mem[fake_source_wrong] = m > 0 ? m - 1 : 0;
      weak = wrong;
      opinion = wrong;
      break;
    }
    case CorruptionPolicy::OverflowMemory: {
      mem[fake_source_wrong] = 10 * m + 7;
      mem[SelfStabilizingSourceFilter::encode(false, wrong)] = 10 * m + 7;
      weak = wrong;
      opinion = wrong;
      break;
    }
    case CorruptionPolicy::DesyncClocks: {
      // Stagger fill levels so that update rounds are spread over a whole
      // cycle; content is wrong-leaning noise.
      const std::uint64_t fill = (m * (stagger % 97)) / 97;
      mem[fake_source_wrong] = fill / 2;
      mem[SelfStabilizingSourceFilter::encode(false, wrong)] =
          fill - fill / 2;
      weak = wrong;
      opinion = wrong;
      break;
    }
  }
  protocol.corrupt(agent, mem, weak, opinion);
}

}  // namespace

void corrupt_population(SelfStabilizingSourceFilter& protocol,
                        CorruptionPolicy policy, Opinion correct, Rng& rng) {
  const std::uint64_t n = protocol.num_agents();
  for (std::uint64_t i = 0; i < n; ++i) {
    corrupt_one(protocol, i, policy, correct, i, rng);
  }
}

void corrupt_agent(SelfStabilizingSourceFilter& protocol, std::uint64_t agent,
                   CorruptionPolicy policy, Opinion correct, Rng& rng) {
  corrupt_one(protocol, agent, policy, correct, rng.next_below(97), rng);
}

void corrupt_population(TaglessSsf& protocol, CorruptionPolicy policy,
                        Opinion correct, Rng& rng) {
  const std::uint64_t n = protocol.num_agents();
  const Opinion wrong = correct ^ 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    switch (policy) {
      case CorruptionPolicy::None:
        continue;
      case CorruptionPolicy::RandomState: {
        const Opinion w = rng.next_bool() ? 1 : 0;
        protocol.corrupt(i, rng.next_below(64), rng.next_below(64), w, w);
        break;
      }
      case CorruptionPolicy::WrongConsensus:
        protocol.corrupt(i, wrong ? 1 : 0, wrong ? 0 : 1, wrong, wrong);
        break;
      case CorruptionPolicy::OverflowMemory:
        protocol.corrupt(i, wrong ? 0 : 1000000, wrong ? 1000000 : 0, wrong,
                         wrong);
        break;
      case CorruptionPolicy::DesyncClocks:
        protocol.corrupt(i, (i % 89), (i % 13), wrong, wrong);
        break;
    }
  }
}

}  // namespace noisypull
