#include "noisypull/sim/repeat.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "noisypull/common/check.hpp"

namespace noisypull {

std::vector<RunResult> run_repetitions(const ProtocolFactory& make_protocol,
                                       const NoiseMatrix& noise,
                                       Opinion correct, const RunConfig& cfg,
                                       const RepeatOptions& opts) {
  NOISYPULL_CHECK(opts.repetitions >= 1, "need at least one repetition");
  std::vector<RunResult> results(opts.repetitions);

  unsigned threads = opts.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, opts.repetitions));

  // Inner (per-engine) lanes: explicit value, or auto-split the machine
  // across the outer workers so outer × inner never oversubscribes.
  unsigned engine_threads = opts.engine_threads;
  if (engine_threads == 0) {
    engine_threads =
        std::max(1u, std::thread::hardware_concurrency() / threads);
  }

  std::atomic<std::uint64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    try {
      std::unique_ptr<Engine> engine;
      if (opts.use_aggregate_engine) {
        engine = std::make_unique<AggregateEngine>();
      } else {
        engine = std::make_unique<ExactEngine>();
      }
      if (opts.artificial_noise) {
        engine->set_artificial_noise(*opts.artificial_noise);
      }
      engine->set_threads(engine_threads);
      for (;;) {
        const std::uint64_t r = next.fetch_add(1);
        if (r >= opts.repetitions) return;
        Rng init_rng(opts.seed, 2 * r);
        Rng run_rng(opts.seed, 2 * r + 1);
        auto protocol = make_protocol(init_rng);
        results[r] = run(*protocol, *engine, noise, correct, cfg, run_rng);
      }
    } catch (...) {
      // Record the first failure and let the other workers drain; the
      // exception is rethrown on the caller's thread after join.
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      next.store(opts.repetitions);  // stop handing out work
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

double success_rate(const std::vector<RunResult>& results,
                    bool require_stability) {
  NOISYPULL_CHECK(!results.empty(), "no results to aggregate");
  std::uint64_t good = 0;
  for (const auto& r : results) {
    // run_impl only sets stable after an all-correct final round, but a
    // RunResult can also be built by hand (tests, future engines): a run
    // stable on the *wrong* opinion must never count as success, so the
    // predicate requires both.
    const bool ok = require_stability ? (r.stable && r.all_correct_at_end)
                                      : r.all_correct_at_end;
    if (ok) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(results.size());
}

std::optional<double> mean_convergence_round(
    const std::vector<RunResult>& results) {
  NOISYPULL_CHECK(!results.empty(), "no results to aggregate");
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& r : results) {
    if (r.first_all_correct != kNever) {
      sum += static_cast<double>(r.first_all_correct);
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace noisypull
