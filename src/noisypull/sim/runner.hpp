// Simulation run loop and convergence measurement (Definition 2).
//
// A run executes a protocol under an engine for a given number of rounds and
// reports when (if ever) the whole population — sources included — holds the
// correct opinion, and whether that consensus then persists through an
// optional stability window (the "remains with it" part of the paper's
// self-stabilizing convergence definition).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "noisypull/common/cancel.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/core/protocol.hpp"
#include "noisypull/push/push_engine.hpp"

namespace noisypull {

inline constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();

struct RunConfig {
  std::uint64_t h = 1;  // sample size of the PULL(h) model

  // Rounds to execute; 0 means "use protocol.planned_rounds()" (which must
  // then be non-zero).
  std::uint64_t max_rounds = 0;

  // Extra rounds executed after max_rounds during which consensus must hold
  // every round for the run to count as stable.  0 disables the check.
  std::uint64_t stability_window = 0;

  // Record, for every executed round, how many agents hold the correct
  // opinion (used by the boosting-trajectory experiment).
  bool record_trajectory = false;

  // Execution lanes for the engine's block-parallel round phase
  // (Engine::set_threads); 0 leaves the engine's current setting untouched.
  // Trajectory-invariant — only wall-clock changes.  Ignored by engines
  // without the knob (PushEngine, SequentialEngine).
  unsigned engine_threads = 0;

  // Enables the compiled fast path (Engine::set_compiled, DESIGN.md §13) —
  // effective only when the protocol exposes a CompiledPopulation.
  // Trajectory-invariant like engine_threads, and excluded from the
  // experiment cache key for the same reason.  Ignored by engines without
  // the knob.
  bool compiled = false;

  // Polled once per round; when set, the run unwinds with
  // OperationCancelled.  Used by the scheduler's --rep-timeout watchdog.
  // Trajectory-invariant while unset: a run that completes was never
  // cancelled, so its statistics cannot depend on the token.
  const CancelToken* cancel = nullptr;
};

struct RunResult {
  bool all_correct_at_end = false;
  bool stable = false;  // meaningful only if stability_window > 0
  std::uint64_t rounds_run = 0;

  // First round index r such that all opinions were correct at the end of
  // every round from r through the end of the run (kNever if none).
  std::uint64_t first_all_correct = kNever;

  std::uint64_t correct_at_end = 0;       // # agents correct after last round
  std::vector<std::uint64_t> trajectory;  // per-round correct counts (opt-in)
};

// Number of agents currently holding `correct`.
std::uint64_t count_correct(const PullProtocol& protocol, Opinion correct);
std::uint64_t count_correct(const PushProtocol& protocol, Opinion correct);

// Executes the run.  `correct` is the ground-truth opinion the population
// must converge to (PopulationConfig::correct_opinion() in all experiments).
RunResult run(PullProtocol& protocol, Engine& engine, const NoiseMatrix& noise,
              Opinion correct, const RunConfig& cfg, Rng& rng);

// PUSH-model counterpart of run(); cfg.h is the per-sender fan-out.
RunResult run_push(PushProtocol& protocol, PushEngine& engine,
                   const NoiseMatrix& noise, Opinion correct,
                   const RunConfig& cfg, Rng& rng);

// Steady-state measurement for runs under ongoing perturbation (churn,
// runtime faults): perfect, permanent consensus is unattainable there, so
// the meaningful metric is the correct fraction once the dynamics has
// equilibrated.
struct SteadyStateResult {
  std::uint64_t rounds_run = 0;
  double mean_correct_fraction = 0.0;   // averaged over the measure window
  double min_correct_fraction = 1.0;    // worst round in the measure window
  double final_correct_fraction = 0.0;  // after the last round
};

// Invoked before every round (round index, run rng).  The churn runner
// injects per-round resets through this hook; fault experiments can add
// custom interventions.  Faults injected by a FaultyEngine need no hook —
// the engine decorator applies them inside step().
using RoundHook = std::function<void(std::uint64_t, Rng&)>;

// Runs `warmup + measure` rounds; statistics are taken over the final
// `measure` rounds (the steady state).  Requires measure >= 1.
SteadyStateResult measure_steady_state(PullProtocol& protocol, Engine& engine,
                                       const NoiseMatrix& noise,
                                       Opinion correct, Holdings h,
                                       std::uint64_t warmup,
                                       std::uint64_t measure, Rng& rng,
                                       const RoundHook& pre_round = {},
                                       const CancelToken* cancel = nullptr);

}  // namespace noisypull
