#include "noisypull/sim/churn.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

ChurnResult run_with_churn(SelfStabilizingSourceFilter& protocol,
                           Engine& engine, const NoiseMatrix& noise,
                           Opinion correct, std::uint64_t h,
                           std::uint64_t warmup, std::uint64_t measure,
                           const ChurnConfig& churn, Rng& rng) {
  NOISYPULL_CHECK(churn.rate >= 0.0 && churn.rate <= 1.0,
                  "churn rate must be in [0, 1]");
  NOISYPULL_CHECK(measure >= 1, "need at least one measured round");

  const std::uint64_t n = protocol.num_agents();
  const std::uint64_t sources = protocol.population().num_sources();
  ChurnResult result;
  double fraction_sum = 0.0;

  for (std::uint64_t t = 0; t < warmup + measure; ++t) {
    // Churn strikes between rounds: each eligible agent resets with
    // probability `rate` (binomially thinned for speed).
    if (churn.rate > 0.0) {
      const std::uint64_t first = churn.churn_sources ? 0 : sources;
      for (std::uint64_t i = first; i < n; ++i) {
        if (!rng.bernoulli(churn.rate)) continue;
        corrupt_agent(protocol, i, churn.policy, correct, rng);
        ++result.resets;
      }
    }
    engine.step(protocol, noise, h, t, rng);
    if (t >= warmup) {
      const double fraction =
          static_cast<double>(count_correct(protocol, correct)) /
          static_cast<double>(n);
      fraction_sum += fraction;
      result.min_correct_fraction =
          std::min(result.min_correct_fraction, fraction);
    }
    ++result.rounds_run;
  }
  result.mean_correct_fraction = fraction_sum / static_cast<double>(measure);
  return result;
}

}  // namespace noisypull
