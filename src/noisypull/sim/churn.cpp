#include "noisypull/sim/churn.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

ChurnResult run_with_churn(SelfStabilizingSourceFilter& protocol,
                           Engine& engine, const NoiseMatrix& noise,
                           Opinion correct, Holdings h,
                           std::uint64_t warmup, std::uint64_t measure,
                           const ChurnConfig& churn, Rng& rng,
                           const CancelToken* cancel) {
  NOISYPULL_CHECK(churn.rate >= 0.0 && churn.rate <= 1.0,
                  "churn rate must be in [0, 1]");
  NOISYPULL_CHECK(measure >= 1, "need at least one measured round");

  const std::uint64_t n = protocol.num_agents();
  const std::uint64_t sources = protocol.population().num_sources();
  ChurnResult result;

  // Churn strikes between rounds: each eligible agent resets with
  // probability `rate`.  Expressed as a pre-round hook of the generic
  // steady-state runner so churn composes with any engine — including a
  // FaultyEngine injecting runtime faults on top of the resets.
  const RoundHook churn_hook = [&](std::uint64_t /*round*/, Rng& hook_rng) {
    if (churn.rate <= 0.0) return;
    const std::uint64_t first = churn.churn_sources ? 0 : sources;
    for (std::uint64_t i = first; i < n; ++i) {
      if (!hook_rng.bernoulli(churn.rate)) continue;
      corrupt_agent(protocol, i, churn.policy, correct, hook_rng);
      ++result.resets;
    }
  };
  const SteadyStateResult steady =
      measure_steady_state(protocol, engine, noise, correct, h, warmup,
                           measure, rng, churn_hook, cancel);
  result.rounds_run = steady.rounds_run;
  result.mean_correct_fraction = steady.mean_correct_fraction;
  result.min_correct_fraction = steady.min_correct_fraction;
  return result;
}

}  // namespace noisypull
