// Self-stabilization adversary (Section 1.3, "Self-stabilizing setting").
//
// At time 0 the adversary may arbitrarily set every agent's internal state —
// memory multisets with fake "earlier" samples, weak opinions, opinions —
// but not the agents' sourcehood, preferences, or knowledge of n and N.
// These policies cover the qualitatively distinct attacks:
//
//   None                 clean start (the non-adversarial baseline),
//   RandomState          i.i.d. random memories (random sizes < m) and bits,
//   WrongConsensus       everyone already "agrees" on the incorrect opinion,
//                        memories pre-loaded with fake source messages
//                        supporting it — the hardest semantic corruption,
//   OverflowMemory       memories inflated far beyond m with wrong-opinion
//                        messages (forces immediate, poisoned updates),
//   DesyncClocks         memories filled to different levels so agents'
//                        update rounds are maximally out of phase (the
//                        no-common-clock aspect SSF must tolerate).
#pragma once

#include "noisypull/core/ssf.hpp"
#include "noisypull/core/variants.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

enum class CorruptionPolicy {
  None,
  RandomState,
  WrongConsensus,
  OverflowMemory,
  DesyncClocks,
};

const char* to_string(CorruptionPolicy policy) noexcept;

// All policies, in a stable order (for sweeps over adversaries).
inline constexpr CorruptionPolicy kAllCorruptionPolicies[] = {
    CorruptionPolicy::None, CorruptionPolicy::RandomState,
    CorruptionPolicy::WrongConsensus, CorruptionPolicy::OverflowMemory,
    CorruptionPolicy::DesyncClocks};

// Applies the policy to every agent of an SSF instance.  `correct` is the
// ground-truth opinion (the adversary pushes toward 1 − correct).
void corrupt_population(SelfStabilizingSourceFilter& protocol,
                        CorruptionPolicy policy, Opinion correct, Rng& rng);

// Applies the policy to a single agent (used by the churn runner, which
// keeps resetting random agents while the protocol runs).
void corrupt_agent(SelfStabilizingSourceFilter& protocol, std::uint64_t agent,
                   CorruptionPolicy policy, Opinion correct, Rng& rng);

// Same attacks against the 1-bit ablation protocol.
void corrupt_population(TaglessSsf& protocol, CorruptionPolicy policy,
                        Opinion correct, Rng& rng);

}  // namespace noisypull
