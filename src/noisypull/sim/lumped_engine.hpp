// Lumped population engine: O(#occupied states) per round, any n.
//
// In PULL(h) every observation is an i.i.d. draw from the global display
// histogram, so agents sharing one (automaton, state, channel, fault
// schedule) are exchangeable — the same lumping theory/exact_chain exploits
// symbolically.  Where the exact chain propagates the full *distribution*
// over class histograms (tractable only for n ≲ 12), this engine propagates
// ONE sampled trajectory of the histogram `class → (state → count)`:
//
//   1. display histogram c from the class histograms (O(#states) work),
//   2. per class, per occupied state with count k: the k agents' observation
//      outcomes are jointly Multinomial(k, outcome pmf), drawn in one
//      ObservationSampler::split pass (O(#outcomes) binomial draws, never
//      O(k)),
//   3. each (state, outcome) bucket of size b splits over the automaton's
//      exact transition law — one more multinomial, Multinomial(b, law).
//
// Per-round cost is therefore Σ_class #occupied · #outcomes, independent of
// n; counts are 64-bit, so n = 10¹² is a configuration value, not a memory
// size.  The trajectory is *distribution-identical* to running ExactEngine /
// AggregateEngine over an AutomatonProtocol with the same classes — but NOT
// bit-identical (the randomness is spent on population-level splits instead
// of per-agent draws), which is why scheduler cache keys fold a distinct
// engine kind (analysis/scheduler.hpp) and replay digests are only
// comparable lumped-to-lumped.
//
// Determinism: step() draws exactly one 64-bit round key from the caller's
// rng and class i runs on the substream Rng(round_key, i) — the same
// counter-substream discipline as the block-parallel engines (model/
// engine.hpp), so trajectories are a function of seed and configuration
// alone.  Class histograms are kept sorted by state id; all iteration is in
// that deterministic order.
//
// Scope: deterministic per-class fault schedules (forged displays, stall
// windows) mirror the exact chain's; randomized FaultPlan faults and churn
// key their randomness to per-(round, agent) substreams that have no
// population-level counterpart, so fault/FaultyEngine does not wrap this
// engine (enforced at the scheduler seam).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/core/schedule.hpp"
#include "noisypull/linalg/matrix.hpp"
#include "noisypull/noise/noise_matrix.hpp"
#include "noisypull/rng/observation_cache.hpp"
#include "noisypull/rng/rng.hpp"
#include "noisypull/sim/runner.hpp"
#include "noisypull/theory/exact_chain.hpp"

namespace noisypull {

// One exchangeability class — the sampled-trajectory counterpart of
// theory/exact_chain's ChainClass.  `channel` is the class's base receiver
// channel (the noise matrix N); artificial noise is composed by the engine
// (set_artificial_noise), matching how the agent-level engines compose N·P.
struct LumpedClass {
  AgentCount count{0};
  const AgentAutomaton* automaton = nullptr;  // non-owning
  AutomatonState initial = 0;
  Matrix channel;
  DisplayOverride forged;
  StallWindow stall;
};

class LumpedEngine {
 public:
  explicit LumpedEngine(std::vector<LumpedClass> classes);

  std::uint64_t num_agents() const noexcept { return n_; }
  std::size_t alphabet_size() const noexcept { return d_; }

  // Artificial post-channel noise (Definition 6): every class's effective
  // channel becomes N_k·P, exactly as the agent-level engines compose it.
  void set_artificial_noise(std::optional<Matrix> p);

  // Observation-sampler table caching for the per-draw fallback path;
  // trajectory-invariant (split() never reads the cached table).
  void set_sampler_cache(bool enabled) noexcept { sampler_cache_ = enabled; }
  bool sampler_cache() const noexcept { return sampler_cache_; }

  // Round horizon installed by the builders below (SF schedule length, SSF
  // convergence deadline); run_lumped uses it when RunConfig.max_rounds == 0.
  void set_planned_rounds(std::uint64_t rounds) noexcept {
    planned_rounds_ = rounds;
  }
  std::uint64_t planned_rounds() const noexcept { return planned_rounds_; }

  // Chained FNV-1a digest over (round, display histogram) of every round
  // stepped — the lumped counterpart of Engine::replay_digest.  Digests are
  // deterministic and comparable between lumped runs of one configuration,
  // but deliberately NOT comparable to the agent-level engines' digests
  // (those absorb per-agent display symbols; at n = 10¹² there are no
  // per-agent symbols to absorb).
  std::uint64_t replay_digest() const noexcept { return digest_; }

  // Executes one synchronous round.  Consumes exactly one draw from `rng`
  // (the round key); all sampling runs on per-class substreams.
  void step(Holdings h, std::uint64_t round, Rng& rng);

  // Number of agents whose automaton opinion equals `correct`.
  std::uint64_t count_correct(Opinion correct) const;

  // Start-of-round display histogram (length alphabet_size()) — what step()
  // folds into the digest; exposed for the oracle/GOF harnesses.
  std::vector<std::uint64_t> display_histogram(std::uint64_t round) const;

  // Occupied (class, state) pairs — the quantity per-round cost scales with.
  std::size_t support_size() const noexcept;

 private:
  struct ClassState {
    LumpedClass cls;
    Matrix effective;  // cls.channel (·artificial)
    // State histogram as (state, count), sorted by state, counts positive.
    std::vector<std::pair<AutomatonState, std::uint64_t>> hist;
  };

  void rebuild_effective();
  // Observation law q[to] ∝ Σ_from c[from]·effective(from, to).
  std::vector<double> observation_law(const ClassState& cs,
                                      const std::vector<std::uint64_t>& c) const;

  std::vector<ClassState> classes_;
  std::size_t d_ = 0;
  std::uint64_t n_ = 0;
  std::uint64_t planned_rounds_ = 0;
  std::optional<Matrix> artificial_;
  bool sampler_cache_ = true;
  std::uint64_t digest_;
  ObservationSampler sampler_;  // reset per (class, round)
};

// Executes a full lumped run with the same bookkeeping as sim/runner's
// run(): trajectory recording, first-all-correct streaks, the optional
// stability window, and per-round cancellation.  cfg.engine_threads is
// ignored (the engine is O(#states) serial by construction).
RunResult run_lumped(LumpedEngine& engine, Opinion correct,
                     const RunConfig& cfg, Rng& rng);

// A lumped engine plus the automaton mirrors backing its classes (the
// engine holds non-owning pointers, matching ChainClass).
struct LumpedSetup {
  std::vector<std::unique_ptr<const AgentAutomaton>> automata;  // outlive engine
  std::unique_ptr<LumpedEngine> engine;
};

// Source-Filter population (Theorem 4) as lumped classes: sources preferring
// 1, sources preferring 0, non-sources.  planned_rounds is the schedule's
// total_rounds().
LumpedSetup make_lumped_sf(const PopulationConfig& pop,
                           const SfSchedule& schedule,
                           const NoiseMatrix& noise);

// Self-stabilizing Source Filter population (Theorem 5, stale_flush = 0).
// planned_rounds mirrors SelfStabilizingSourceFilter::convergence_deadline.
// Note the Theorem 5 budget m grows ~linearly in n, so lumped SSF runs at
// huge n are bounded by the protocol's own Ω(m/h) horizon, not the engine.
LumpedSetup make_lumped_ssf(const PopulationConfig& pop, Holdings h,
                            MemoryBudget m, const NoiseMatrix& noise);

}  // namespace noisypull
