#include "noisypull/sim/lumped_engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "noisypull/common/check.hpp"
#include "noisypull/common/fnv.hpp"
#include "noisypull/common/overflow.hpp"
#include "noisypull/rng/binomial.hpp"
#include "noisypull/theory/protocol_automata.hpp"

namespace noisypull {

LumpedEngine::LumpedEngine(std::vector<LumpedClass> classes)
    : digest_(fnv::kOffsetBasis) {
  NOISYPULL_CHECK(!classes.empty(), "lumped engine needs at least one class");
  for (const LumpedClass& cls : classes) {
    NOISYPULL_CHECK(cls.count.get() >= 1, "empty lumped class");
    NOISYPULL_CHECK(cls.automaton != nullptr, "class needs an automaton");
    const std::size_t d = cls.automaton->alphabet_size();
    if (d_ == 0) d_ = d;
    NOISYPULL_CHECK(d == d_, "all classes must share one alphabet");
    NOISYPULL_CHECK(cls.channel.rows() == d_ && cls.channel.cols() == d_,
                    "class channel does not match the alphabet");
    NOISYPULL_CHECK(cls.channel.is_stochastic(),
                    "class channel must be row-stochastic");
    if (cls.forged.kind != DisplayOverride::Kind::None) {
      NOISYPULL_CHECK(cls.forged.even < d_ && cls.forged.odd < d_,
                      "forged display outside the alphabet");
    }
    n_ = checked_add(n_, cls.count.get(),
                     "total lumped population overflows 64 bits");
    ClassState cs;
    cs.cls = cls;
    cs.effective = cls.channel;
    cs.hist = {{cls.initial, cls.count.get()}};
    classes_.push_back(std::move(cs));
  }
  NOISYPULL_CHECK(d_ >= 2 && d_ <= kMaxAlphabet, "unsupported alphabet size");
}

void LumpedEngine::set_artificial_noise(std::optional<Matrix> p) {
  if (p.has_value()) {
    NOISYPULL_CHECK(p->rows() == d_ && p->cols() == d_,
                    "artificial noise does not match the alphabet");
    NOISYPULL_CHECK(p->is_stochastic(),
                    "artificial noise must be row-stochastic");
  }
  artificial_ = std::move(p);
  rebuild_effective();
}

void LumpedEngine::rebuild_effective() {
  for (ClassState& cs : classes_) {
    cs.effective =
        artificial_.has_value() ? cs.cls.channel * *artificial_ : cs.cls.channel;
  }
}

std::vector<std::uint64_t> LumpedEngine::display_histogram(
    std::uint64_t round) const {
  std::vector<std::uint64_t> c(d_, 0);
  for (const ClassState& cs : classes_) {
    const DisplayOverride& forged = cs.cls.forged;
    if (forged.kind != DisplayOverride::Kind::None) {
      const Symbol s = (forged.kind == DisplayOverride::Kind::Constant ||
                        round % 2 == 0)
                           ? forged.even
                           : forged.odd;
      c[s] = invariant_add(c[s], cs.cls.count.get());
      continue;
    }
    for (const auto& [state, count] : cs.hist) {
      const Symbol s = cs.cls.automaton->display(state, round);
      NOISYPULL_ASSERT(s < d_);
      c[s] = invariant_add(c[s], count);
    }
  }
  return c;
}

std::vector<double> LumpedEngine::observation_law(
    const ClassState& cs, const std::vector<std::uint64_t>& c) const {
  // q[to] ∝ Σ_from c[from]·channel(from, to); passed to the sampler
  // unnormalized (it normalizes internally), matching AggregateEngine.
  std::vector<double> q(d_, 0.0);
  for (std::size_t from = 0; from < d_; ++from) {
    if (c[from] == 0) continue;
    const double weight = static_cast<double>(c[from]);
    for (std::size_t to = 0; to < d_; ++to) {
      q[to] += weight * cs.effective(from, to);
    }
  }
  return q;
}

std::uint64_t LumpedEngine::count_correct(Opinion correct) const {
  std::uint64_t good = 0;
  for (const ClassState& cs : classes_) {
    for (const auto& [state, count] : cs.hist) {
      if (cs.cls.automaton->opinion(state) == correct) {
        good = invariant_add(good, count);
      }
    }
  }
  return good;
}

std::size_t LumpedEngine::support_size() const noexcept {
  std::size_t occupied = 0;
  for (const ClassState& cs : classes_) occupied += cs.hist.size();
  return occupied;
}

void LumpedEngine::step(Holdings h, std::uint64_t round, Rng& rng) {
  NOISYPULL_CHECK(h.get() >= 1, "lumped step needs h >= 1");
  const std::vector<std::uint64_t> c = display_histogram(round);
  digest_ = fnv::hash_u64(digest_, round);
  for (const std::uint64_t count : c) digest_ = fnv::hash_u64(digest_, count);

  // One draw from the master stream per round; class i samples on the
  // substream Rng(round_key, i) — the engines' counter-substream discipline.
  const std::uint64_t round_key = rng.next();

  std::vector<double> law_weights;
  std::vector<std::uint64_t> law_counts;
  for (std::size_t ci = 0; ci < classes_.size(); ++ci) {
    ClassState& cs = classes_[ci];
    if (cs.cls.stall.active(round)) continue;  // stale displays stay visible
    Rng class_rng(round_key, static_cast<std::uint64_t>(ci));

    const std::vector<double> q = observation_law(cs, c);
    // Amortization gate fed the whole class count: the split path needs the
    // enumerable outcome space, and every occupied state of the class reuses
    // this one per-round reset.
    sampler_.reset(h.get(), q, sampler_cache_, cs.cls.count.get());

    std::map<AutomatonState, std::uint64_t> next;
    const auto land = [&](AutomatonState state, std::uint64_t count) {
      auto [it, inserted] = next.emplace(state, count);
      if (!inserted) it->second = invariant_add(it->second, count);
    };
    // Splits `share` agents over the transition law with one multinomial.
    const auto transition_split = [&](AutomatonState state, std::uint64_t share,
                                      const SymbolCounts& obs) {
      const std::vector<WeightedState> law =
          cs.cls.automaton->transition(state, round, obs);
      NOISYPULL_ASSERT(!law.empty());
      if (law.size() == 1) {
        land(law[0].state, share);
        return;
      }
      law_weights.resize(law.size());
      law_counts.resize(law.size());
      for (std::size_t i = 0; i < law.size(); ++i) {
        law_weights[i] = law[i].prob;
      }
      sample_multinomial(class_rng, share, law_weights, law_counts);
      for (std::size_t i = 0; i < law.size(); ++i) {
        if (law_counts[i] > 0) land(law[i].state, law_counts[i]);
      }
    };

    SymbolCounts obs(d_);
    for (const auto& [state, count] : cs.hist) {
      if (sampler_.mode() == ObservationSampler::Mode::InverseCdf) {
        // Population-level path: one multinomial split of the count over the
        // outcome space, then one split per outcome bucket over the law.
        sampler_.split(class_rng, count,
                       [&](std::uint64_t share,
                           std::span<const std::uint64_t> counts) {
                         for (std::size_t s = 0; s < d_; ++s) {
                           obs.c[s] = counts[s];
                         }
                         transition_split(state, share, obs);
                       });
      } else {
        // Outcome space too large to enumerate (or h beyond the table cap):
        // per-agent fallback, identical in distribution to AggregateEngine's
        // per-agent draws.  O(count) — only reachable when the gate judged
        // the class count smaller than the outcome space, or for huge-h
        // configurations the lumped engine is not meant for.
        for (std::uint64_t a = 0; a < count; ++a) {
          sampler_.sample(class_rng, obs);
          const std::vector<WeightedState> law =
              cs.cls.automaton->transition(state, round, obs);
          NOISYPULL_ASSERT(!law.empty());
          const double u = class_rng.next_double();
          double acc = 0.0;
          AutomatonState target = law.back().state;
          for (const WeightedState& ws : law) {
            acc += ws.prob;
            if (u < acc) {
              target = ws.state;
              break;
            }
          }
          land(target, 1);
        }
      }
    }

    cs.hist.assign(next.begin(), next.end());
  }
}

RunResult run_lumped(LumpedEngine& engine, Opinion correct,
                     const RunConfig& cfg, Rng& rng) {
  std::uint64_t rounds = cfg.max_rounds;
  if (rounds == 0) rounds = engine.planned_rounds();
  NOISYPULL_CHECK(rounds > 0,
                  "max_rounds is 0 and the engine has no planned horizon");

  const std::uint64_t n = engine.num_agents();
  RunResult result;
  if (cfg.record_trajectory) result.trajectory.reserve(rounds);

  std::uint64_t streak_start = kNever;
  for (std::uint64_t t = 0; t < rounds; ++t) {
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      throw OperationCancelled();
    }
    engine.step(Holdings{cfg.h}, t, rng);
    const std::uint64_t good = engine.count_correct(correct);
    if (cfg.record_trajectory) result.trajectory.push_back(good);
    if (good == n) {
      if (streak_start == kNever) streak_start = t;
    } else {
      streak_start = kNever;
    }
  }
  result.rounds_run = rounds;
  result.correct_at_end = engine.count_correct(correct);
  result.all_correct_at_end = result.correct_at_end == n;
  result.first_all_correct = streak_start;

  if (cfg.stability_window > 0) {
    bool held = result.all_correct_at_end;
    for (std::uint64_t t = rounds; held && t < rounds + cfg.stability_window;
         ++t) {
      if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
        throw OperationCancelled();
      }
      engine.step(Holdings{cfg.h}, t, rng);
      held = engine.count_correct(correct) == n;
      ++result.rounds_run;
    }
    result.stable = held;
  }
  return result;
}

LumpedSetup make_lumped_sf(const PopulationConfig& pop,
                           const SfSchedule& schedule,
                           const NoiseMatrix& noise) {
  pop.validate();
  NOISYPULL_CHECK(noise.alphabet_size() == 2,
                  "SF runs on the binary alphabet");
  LumpedSetup setup;
  std::vector<LumpedClass> classes;
  const auto add_class = [&](std::uint64_t count, bool is_source,
                             Opinion preference) {
    if (count == 0) return;
    setup.automata.push_back(
        std::make_unique<SfAutomaton>(schedule, is_source, preference));
    classes.push_back({.count = AgentCount{count},
                       .automaton = setup.automata.back().get(),
                       .initial = 0,
                       .channel = noise.matrix(),
                       .forged = DisplayOverride::none(),
                       .stall = {}});
  };
  add_class(pop.s1, true, 1);
  add_class(pop.s0, true, 0);
  add_class(pop.n - pop.s1 - pop.s0, false, 0);
  setup.engine = std::make_unique<LumpedEngine>(std::move(classes));
  setup.engine->set_planned_rounds(schedule.total_rounds());
  return setup;
}

LumpedSetup make_lumped_ssf(const PopulationConfig& pop, Holdings h,
                            MemoryBudget m, const NoiseMatrix& noise) {
  pop.validate();
  NOISYPULL_CHECK(noise.alphabet_size() == 4,
                  "SSF runs on the {0,1}^2 alphabet");
  NOISYPULL_CHECK(h.get() >= 1, "SSF needs h >= 1");
  LumpedSetup setup;
  std::vector<LumpedClass> classes;
  const auto add_class = [&](std::uint64_t count, bool is_source,
                             Opinion preference) {
    if (count == 0) return;
    setup.automata.push_back(
        std::make_unique<SsfAutomaton>(m, is_source, preference));
    classes.push_back({.count = AgentCount{count},
                       .automaton = setup.automata.back().get(),
                       .initial = 0,
                       .channel = noise.matrix(),
                       .forged = DisplayOverride::none(),
                       .stall = {}});
  };
  add_class(pop.s1, true, 1);
  add_class(pop.s0, true, 0);
  add_class(pop.n - pop.s1 - pop.s0, false, 0);
  setup.engine = std::make_unique<LumpedEngine>(std::move(classes));
  // SelfStabilizingSourceFilter::convergence_deadline with the same cycle
  // arithmetic: all agents past their third update plus one absorbing cycle.
  const std::uint64_t cycle = (m.get() + h.get() - 1) / h.get();
  setup.engine->set_planned_rounds(4 * cycle + 1);
  return setup;
}

}  // namespace noisypull
