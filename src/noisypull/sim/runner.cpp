#include "noisypull/sim/runner.hpp"

#include <algorithm>

#include "noisypull/common/check.hpp"

namespace noisypull {
namespace {

template <typename Protocol>
std::uint64_t count_correct_impl(const Protocol& protocol, Opinion correct) {
  std::uint64_t count = 0;
  const std::uint64_t n = protocol.num_agents();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (protocol.opinion(i) == correct) ++count;
  }
  return count;
}

// Shared run loop: the PULL and PUSH engines expose the same step()
// signature, so the bookkeeping (trajectory, streaks, stability) is common.
template <typename Protocol, typename EngineT>
RunResult run_impl(Protocol& protocol, EngineT& engine,
                   const NoiseMatrix& noise, Opinion correct,
                   const RunConfig& cfg, Rng& rng) {
  std::uint64_t rounds = cfg.max_rounds;
  if (rounds == 0) rounds = protocol.planned_rounds();
  NOISYPULL_CHECK(rounds > 0,
                  "max_rounds is 0 and the protocol has no planned horizon");

  if (cfg.engine_threads != 0) {
    // PushEngine has no block-parallel kernel; the constraint keeps the
    // shared loop compiling for both engine families.
    if constexpr (requires { engine.set_threads(cfg.engine_threads); }) {
      engine.set_threads(cfg.engine_threads);
    }
  }
  if (cfg.compiled) {
    if constexpr (requires { engine.set_compiled(true); }) {
      engine.set_compiled(true);
    }
  }

  const std::uint64_t n = protocol.num_agents();
  RunResult result;
  if (cfg.record_trajectory) result.trajectory.reserve(rounds);

  std::uint64_t streak_start = kNever;  // start of the current all-correct run
  for (std::uint64_t t = 0; t < rounds; ++t) {
    if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
      throw OperationCancelled();
    }
    engine.step(protocol, noise, Holdings{cfg.h}, t, rng);
    const std::uint64_t good = count_correct_impl(protocol, correct);
    if (cfg.record_trajectory) result.trajectory.push_back(good);
    if (good == n) {
      if (streak_start == kNever) streak_start = t;
    } else {
      streak_start = kNever;
    }
  }
  result.rounds_run = rounds;
  result.correct_at_end = count_correct_impl(protocol, correct);
  result.all_correct_at_end = result.correct_at_end == n;
  result.first_all_correct = streak_start;

  if (cfg.stability_window > 0) {
    bool held = result.all_correct_at_end;
    for (std::uint64_t t = rounds; held && t < rounds + cfg.stability_window;
         ++t) {
      if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
        throw OperationCancelled();
      }
      engine.step(protocol, noise, Holdings{cfg.h}, t, rng);
      held = count_correct_impl(protocol, correct) == n;
      ++result.rounds_run;
    }
    result.stable = held;
  }
  return result;
}

}  // namespace

std::uint64_t count_correct(const PullProtocol& protocol, Opinion correct) {
  return count_correct_impl(protocol, correct);
}

std::uint64_t count_correct(const PushProtocol& protocol, Opinion correct) {
  return count_correct_impl(protocol, correct);
}

RunResult run(PullProtocol& protocol, Engine& engine, const NoiseMatrix& noise,
              Opinion correct, const RunConfig& cfg, Rng& rng) {
  return run_impl(protocol, engine, noise, correct, cfg, rng);
}

RunResult run_push(PushProtocol& protocol, PushEngine& engine,
                   const NoiseMatrix& noise, Opinion correct,
                   const RunConfig& cfg, Rng& rng) {
  return run_impl(protocol, engine, noise, correct, cfg, rng);
}

SteadyStateResult measure_steady_state(PullProtocol& protocol, Engine& engine,
                                       const NoiseMatrix& noise,
                                       Opinion correct, Holdings h,
                                       std::uint64_t warmup,
                                       std::uint64_t measure, Rng& rng,
                                       const RoundHook& pre_round,
                                       const CancelToken* cancel) {
  NOISYPULL_CHECK(measure >= 1, "need at least one measured round");

  const double n = static_cast<double>(protocol.num_agents());
  SteadyStateResult result;
  double fraction_sum = 0.0;
  double fraction = 0.0;
  for (std::uint64_t t = 0; t < warmup + measure; ++t) {
    if (cancel != nullptr && cancel->cancelled()) {
      throw OperationCancelled();
    }
    if (pre_round) pre_round(t, rng);
    engine.step(protocol, noise, h, t, rng);
    if (t >= warmup) {
      fraction = static_cast<double>(count_correct(protocol, correct)) / n;
      fraction_sum += fraction;
      result.min_correct_fraction =
          std::min(result.min_correct_fraction, fraction);
    }
    ++result.rounds_run;
  }
  result.mean_correct_fraction = fraction_sum / static_cast<double>(measure);
  result.final_correct_fraction = fraction;
  return result;
}

}  // namespace noisypull
