// Seeded, optionally multi-threaded repetition harness.
//
// Every experiment in bench/ estimates success probabilities and convergence
// times from R independent runs.  Each repetition r derives two independent
// RNG substreams from (seed, r): one for protocol construction (initial
// opinions, adversarial corruption) and one for the run itself, so results
// are bit-reproducible regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "noisypull/sim/runner.hpp"

namespace noisypull {

struct RepeatOptions {
  std::uint64_t repetitions = 32;
  std::uint64_t seed = 1;

  // true → AggregateEngine (default; exact in distribution, O(n·|Σ|)/round),
  // false → ExactEngine (literal per-message simulation).
  bool use_aggregate_engine = true;

  // 0 → std::thread::hardware_concurrency().
  unsigned threads = 0;

  // Artificial noise matrix P applied by agents to every observation
  // (Definition 6 / Theorem 8 reduction), if any.
  std::optional<Matrix> artificial_noise = std::nullopt;
};

// Builds a fresh protocol instance for one repetition.  `init_rng` must be
// used for all randomness of construction/corruption.
using ProtocolFactory =
    std::function<std::unique_ptr<PullProtocol>(Rng& init_rng)>;

// Runs R independent repetitions; result[r] is repetition r's RunResult.
std::vector<RunResult> run_repetitions(const ProtocolFactory& make_protocol,
                                       const NoiseMatrix& noise,
                                       Opinion correct, const RunConfig& cfg,
                                       const RepeatOptions& opts);

// Fraction of runs with all_correct_at_end (and stable, when a stability
// window was configured).
double success_rate(const std::vector<RunResult>& results,
                    bool require_stability = false);

// Mean first_all_correct over converged runs; kNever if none converged.
double mean_convergence_round(const std::vector<RunResult>& results);

}  // namespace noisypull
