// Seeded, optionally multi-threaded repetition harness.
//
// Every experiment in bench/ estimates success probabilities and convergence
// times from R independent runs.  Each repetition r derives two independent
// RNG substreams from (seed, r): one for protocol construction (initial
// opinions, adversarial corruption) and one for the run itself, so results
// are bit-reproducible regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "noisypull/sim/runner.hpp"

namespace noisypull {

struct RepeatOptions {
  std::uint64_t repetitions = 32;
  std::uint64_t seed = 1;

  // true → AggregateEngine (default; exact in distribution, O(n·|Σ|)/round),
  // false → ExactEngine (literal per-message simulation).
  bool use_aggregate_engine = true;

  // Worker threads for the outer repetition loop.
  // 0 → std::thread::hardware_concurrency().
  unsigned threads = 0;

  // Execution lanes for the block-parallel engine *inside* each repetition
  // (Engine::set_threads).  Default 1: repetition-level parallelism is
  // embarrassingly parallel and preferred when R is large.  0 → auto:
  // hardware_concurrency / outer workers (at least 1), so outer × inner
  // parallelism composes without oversubscribing the machine — the intended
  // setting for few huge repetitions (R < cores, n ≥ 10⁶).  Either way the
  // results are bit-identical to engine_threads = 1.
  unsigned engine_threads = 1;

  // Artificial noise matrix P applied by agents to every observation
  // (Definition 6 / Theorem 8 reduction), if any.
  std::optional<Matrix> artificial_noise = std::nullopt;
};

// Builds a fresh protocol instance for one repetition.  `init_rng` must be
// used for all randomness of construction/corruption.
using ProtocolFactory =
    std::function<std::unique_ptr<PullProtocol>(Rng& init_rng)>;

// Runs R independent repetitions; result[r] is repetition r's RunResult.
std::vector<RunResult> run_repetitions(const ProtocolFactory& make_protocol,
                                       const NoiseMatrix& noise,
                                       Opinion correct, const RunConfig& cfg,
                                       const RepeatOptions& opts);

// Fraction of runs with all_correct_at_end; with require_stability, a run
// must additionally be stable (consensus held through the whole stability
// window).  A stable run is never counted unless it is also correct at the
// end — stability on the wrong opinion is failure, not success
// (tests/test_repeat.cpp pins this).
double success_rate(const std::vector<RunResult>& results,
                    bool require_stability = false);

// Mean first_all_correct over converged runs; std::nullopt if none
// converged (rendered as "never" by Table::cell — never a numeric
// sentinel that could leak into tables or CSVs as if it were a round
// count).
std::optional<double> mean_convergence_round(
    const std::vector<RunResult>& results);

}  // namespace noisypull
