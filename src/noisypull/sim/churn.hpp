// Continuous-churn stress for the self-stabilizing protocol.
//
// Theorem 5's adversary strikes once, at time 0.  A natural robustness
// question for a deployed system is *continuous* churn: in every round each
// non-source agent independently has its state destroyed (rebooted,
// reflashed, tampered) with probability `rate`.  Perfect consensus is then
// impossible — freshly churned agents hold garbage until their next update
// round — so the meaningful metric is the steady-state fraction of correct
// agents.  The churn experiment (bench tab_churn) maps that fraction as a
// function of the churn rate and locates the rate at which SSF's
// self-correction collapses (roughly when an agent's expected lifetime drops
// below one memory cycle m/h).
#pragma once

#include "noisypull/core/ssf.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/sim/adversary.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {

struct ChurnConfig {
  double rate = 0.0;  // per-agent, per-round reset probability
  CorruptionPolicy policy = CorruptionPolicy::RandomState;
  bool churn_sources = false;  // sources' sourcehood is never corruptible;
                               // this resets only their mutable state
};

struct ChurnResult {
  std::uint64_t rounds_run = 0;
  std::uint64_t resets = 0;             // total churn events applied
  double mean_correct_fraction = 0.0;   // averaged over the measure window
  double min_correct_fraction = 1.0;    // worst round in the measure window
};

// Runs SSF under churn for `warmup + measure` rounds; statistics are taken
// over the final `measure` rounds (steady state).
ChurnResult run_with_churn(SelfStabilizingSourceFilter& protocol,
                           Engine& engine, const NoiseMatrix& noise,
                           Opinion correct, Holdings h,
                           std::uint64_t warmup, std::uint64_t measure,
                           const ChurnConfig& churn, Rng& rng,
                           const CancelToken* cancel = nullptr);

}  // namespace noisypull
