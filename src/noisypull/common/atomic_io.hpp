// Crash-safe file I/O seam for every durable artifact the harness writes.
//
// The result cache, the sweep manifest, and the CSV/JSON emitters all funnel
// their filesystem traffic through this module, for two reasons:
//
//   1. One choke point for crash safety.  Whole-file writes publish via
//      tmp + rename (atomic on POSIX), transient failures (EINTR-class
//      stream errors, ENOSPC, rename races between concurrent writers) get
//      a bounded retry with a deterministic backoff schedule, and corrupt
//      artifacts can be quarantined instead of silently deleted.  The
//      tools/noisypull_lint.cpp `raw-file-io` rule forbids raw
//      std::ofstream / rename outside this module, so future cache or
//      manifest writers cannot bypass the seam.
//
//   2. One choke point for fault injection.  FsFaultPlan mirrors the
//      simulation FaultPlan design (fault/fault_plan.hpp): seeded,
//      deterministic, and an all-zero plan is a bit-identical passthrough.
//      tests/test_chaos.cpp drives torn writes, short reads, rename
//      failures, and ENOSPC through this seam and asserts the sweep runtime
//      never crashes, never hangs, and never changes statistics.
//
// Determinism note: retries and backoff affect timing only.  Nothing in
// this module feeds simulation statistics — a failed write means a missing
// or quarantined artifact, which callers treat as "recompute".
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

namespace noisypull::io {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.  Used
// as the per-entry checksum of the cache and manifest record formats; it
// detects torn writes and bit rot, not adversaries.
std::uint32_t crc32(std::string_view data) noexcept;

// Seeded fault-injection plan for the filesystem seam.  All rates are
// probabilities in [0, 1]; an all-zero plan never fires and never draws
// from its streams, so behavior is bit-identical to no plan at all.
struct FsFaultPlan {
  std::uint64_t seed = 0;

  // A write "succeeds" but only a prefix of the payload reaches the final
  // path — the crash-mid-write case the entry checksums exist to catch.
  double torn_write = 0.0;

  // A read returns only a prefix of the file.  Transient: callers retry
  // reads a bounded number of times before declaring the file corrupt.
  double short_read = 0.0;

  // The tmp -> final rename fails (rename race / transient EIO).  Retried.
  double rename_failure = 0.0;

  // The payload write fails outright (ENOSPC / EINTR-class).  Retried.
  double enospc = 0.0;

  bool any() const noexcept;

  // Throws std::invalid_argument on rates outside [0, 1] or NaN.
  void validate() const;
};

// Deterministic realization of an FsFaultPlan: the k-th operation of each
// kind fires independently with its class rate, drawn from a dedicated
// substream of `seed` — which operations fail is a function of (plan,
// per-kind operation index) alone.  NOT thread-safe: callers serialize
// access (the scheduler performs all cache/manifest I/O under its own lock
// or on the coordinating thread).
class FsFaults {
 public:
  FsFaults() = default;  // all-zero plan: every fire_* is false, no draws
  explicit FsFaults(const FsFaultPlan& plan);

  bool fire_torn_write() noexcept;
  bool fire_short_read() noexcept;
  bool fire_rename_failure() noexcept;
  bool fire_enospc() noexcept;

  // The prefix a torn write / short read leaves behind: half the payload,
  // rounded down — enough to destroy the trailing checksum of any record
  // format built on this seam.
  static std::string_view tear(std::string_view payload) noexcept {
    return payload.substr(0, payload.size() / 2);
  }

 private:
  FsFaultPlan plan_{};
  // Per-kind splitmix64 states; advanced only when the class rate is > 0.
  std::uint64_t torn_state_ = 0;
  std::uint64_t short_state_ = 0;
  std::uint64_t rename_state_ = 0;
  std::uint64_t enospc_state_ = 0;
};

struct IoOptions {
  // Additional attempts after the first transient failure; total attempts
  // per operation = 1 + max_retries.
  std::uint64_t max_retries = 3;

  // Sleep between retry attempts following the deterministic schedule
  // 1ms, 2ms, 4ms, 8ms, 16ms (capped).  Timing only — never statistics.
  bool backoff = true;

  // Injection point; nullptr disables injection entirely.
  FsFaults* faults = nullptr;
};

// Atomically publishes `payload` at `path`: parent directories are created,
// the payload is written to a uniquely named sibling tmp file, and the tmp
// is renamed over `path`.  Transient failures are retried per `opts`.
// Returns false only when every attempt failed (callers treat the artifact
// as best-effort and carry on).  An injected torn write reports success —
// that is the fault being modeled; readers detect it by checksum.
bool atomic_write_file(const std::filesystem::path& path,
                       std::string_view payload, const IoOptions& opts = {});

// Reads the whole file; std::nullopt when the file does not exist or could
// not be opened.  An injected short read truncates the returned payload —
// callers validate (checksum/parse) and re-read a bounded number of times.
std::optional<std::string> read_file(const std::filesystem::path& path,
                                     const IoOptions& opts = {});

// Appends `line` plus a newline to `path` (created if missing).  Appends
// are NOT atomic across crashes: a torn tail line is an expected artifact,
// which is why the journal formats built on this give every line its own
// checksum.  Transient failures are retried per `opts`; returns false when
// every attempt failed.
bool append_line(const std::filesystem::path& path, std::string_view line,
                 const IoOptions& opts = {});

// Moves `path` into a `.quarantine/` sidecar directory next to it, renamed
// `<name>.<tag>` — preserving the corrupt artifact for diagnosis instead of
// deleting the evidence or leaving it to fail again.  Best-effort: returns
// false (and removes the file as a last resort) when the move fails.
bool quarantine_file(const std::filesystem::path& path, std::string_view tag);

}  // namespace noisypull::io
