// Cooperative cancellation for long-running repetitions.
//
// The scheduler's watchdog cannot kill a thread that is deep inside a
// simulation round loop; instead every round loop polls a CancelToken and
// unwinds with OperationCancelled when it is set.  The poll is a single
// relaxed atomic load per round — invisible next to the per-round sampling
// work — and a null token (the default everywhere) costs one branch.
//
// OperationCancelled is classified as a *transient* repetition failure by
// the scheduler: the repetition is requeued up to the retry budget, and an
// exhausted budget degrades the cell instead of aborting the sweep.
#pragma once

#include <atomic>
#include <stdexcept>

namespace noisypull {

class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

struct OperationCancelled : std::runtime_error {
  OperationCancelled() : std::runtime_error("operation cancelled") {}
};

}  // namespace noisypull
