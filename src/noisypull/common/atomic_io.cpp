#include "noisypull/common/atomic_io.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <system_error>
#include <thread>

#include "noisypull/common/check.hpp"

namespace noisypull::io {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kCrcPolynomial = 0xEDB88320u;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (kCrcPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// splitmix64: the per-kind fault streams need statistical independence and
// a trivially serializable state, not simulation-grade quality, so they do
// not share the xoshiro Rng used by the protocols.
std::uint64_t splitmix_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Uniform draw in [0, 1) from the top 53 bits, matching Rng::next_double.
bool fire(double rate, std::uint64_t& state) {
  if (rate <= 0.0) {
    return false;  // no draw: a zero-rate class never perturbs its stream
  }
  const double u =
      static_cast<double>(splitmix_next(state) >> 11) * 0x1.0p-53;
  return u < rate;
}

void check_rate(double rate, const char* name) {
  NOISYPULL_CHECK(std::isfinite(rate) && rate >= 0.0 && rate <= 1.0,
                  std::string("FsFaultPlan: ") + name +
                      " must be a probability in [0, 1]");
}

void backoff_sleep(std::uint64_t attempt, const IoOptions& opts) {
  if (!opts.backoff) {
    return;
  }
  const std::uint64_t shift = attempt < 4 ? attempt : 4;
  std::this_thread::sleep_for(std::chrono::milliseconds(1ULL << shift));
}

// Unique tmp names keep concurrent writers of the same artifact from
// clobbering each other's in-flight payloads; the rename still races, but
// both payloads are complete so either winner is valid.
fs::path tmp_sibling(const fs::path& path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  fs::path tmp = path;
  tmp += ".tmp" + std::to_string(id);
  return tmp;
}

bool write_payload(const fs::path& tmp, std::string_view payload) {
  // nplint: allow(raw-file-io) — this is the one sanctioned write site.
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool FsFaultPlan::any() const noexcept {
  return torn_write > 0.0 || short_read > 0.0 || rename_failure > 0.0 ||
         enospc > 0.0;
}

void FsFaultPlan::validate() const {
  check_rate(torn_write, "torn_write");
  check_rate(short_read, "short_read");
  check_rate(rename_failure, "rename_failure");
  check_rate(enospc, "enospc");
}

FsFaults::FsFaults(const FsFaultPlan& plan) : plan_(plan) {
  plan.validate();
  // Distinct odd offsets give each fault class its own splitmix stream.
  torn_state_ = plan.seed ^ 0x746F726E00000001ULL;
  short_state_ = plan.seed ^ 0x73686F7200000003ULL;
  rename_state_ = plan.seed ^ 0x72656E6100000005ULL;
  enospc_state_ = plan.seed ^ 0x656E6F7300000007ULL;
}

bool FsFaults::fire_torn_write() noexcept {
  return fire(plan_.torn_write, torn_state_);
}
bool FsFaults::fire_short_read() noexcept {
  return fire(plan_.short_read, short_state_);
}
bool FsFaults::fire_rename_failure() noexcept {
  return fire(plan_.rename_failure, rename_state_);
}
bool FsFaults::fire_enospc() noexcept {
  return fire(plan_.enospc, enospc_state_);
}

bool atomic_write_file(const fs::path& path, std::string_view payload,
                       const IoOptions& opts) {
  std::error_code ec;
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path(), ec);  // best-effort
  }
  for (std::uint64_t attempt = 0; attempt <= opts.max_retries; ++attempt) {
    if (attempt > 0) {
      backoff_sleep(attempt - 1, opts);
    }
    const fs::path tmp = tmp_sibling(path);
    if (opts.faults != nullptr && opts.faults->fire_enospc()) {
      fs::remove(tmp, ec);
      continue;  // transient write failure: retry from scratch
    }
    std::string_view effective = payload;
    if (opts.faults != nullptr && opts.faults->fire_torn_write()) {
      // A torn write is a *successful* syscall sequence whose payload was
      // cut short by a crash, so it still publishes and reports success;
      // the reader's checksum is the layer that catches it.
      effective = FsFaults::tear(payload);
    }
    if (!write_payload(tmp, effective)) {
      fs::remove(tmp, ec);
      continue;
    }
    if (opts.faults != nullptr && opts.faults->fire_rename_failure()) {
      fs::remove(tmp, ec);
      continue;
    }
    fs::rename(tmp, path, ec);  // nplint: allow(raw-file-io) -- the seam
    if (ec) {
      fs::remove(tmp, ec);
      continue;
    }
    return true;
  }
  return false;
}

std::optional<std::string> read_file(const fs::path& path,
                                     const IoOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return std::nullopt;
  }
  if (opts.faults != nullptr && opts.faults->fire_short_read()) {
    payload.resize(FsFaults::tear(payload).size());
  }
  return payload;
}

bool append_line(const fs::path& path, std::string_view line,
                 const IoOptions& opts) {
  std::error_code ec;
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path(), ec);
  }
  for (std::uint64_t attempt = 0; attempt <= opts.max_retries; ++attempt) {
    if (attempt > 0) {
      backoff_sleep(attempt - 1, opts);
    }
    if (opts.faults != nullptr && opts.faults->fire_enospc()) {
      continue;
    }
    // nplint: allow(raw-file-io) — the sanctioned append site.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
      continue;
    }
    if (opts.faults != nullptr && opts.faults->fire_torn_write()) {
      const std::string_view torn = FsFaults::tear(line);
      out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
      out.flush();
      return true;  // torn append: the line loses its newline + checksum
    }
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.put('\n');
    out.flush();
    if (out) {
      return true;
    }
  }
  return false;
}

bool quarantine_file(const fs::path& path, std::string_view tag) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return false;
  }
  const fs::path dir =
      (path.has_parent_path() ? path.parent_path() : fs::path(".")) /
      ".quarantine";
  fs::create_directories(dir, ec);
  fs::path dest = dir / path.filename();
  dest += ".";
  dest += std::string(tag);
  fs::rename(path, dest, ec);  // nplint: allow(raw-file-io) -- the seam
  if (!ec) {
    return true;
  }
  // Cross-device or permission trouble: removing the corrupt artifact is
  // worse for forensics but keeps the runtime self-healing.
  fs::remove(path, ec);
  return false;
}

}  // namespace noisypull::io
