// Strong domain types for the paper's parameter vocabulary.
//
// Nearly every API in this reproduction is parameterized by some slice of
// (n, s1, s0, h, delta, c1) — and most of those slices are adjacent
// same-type parameters, exactly the call-site hazard
// bugprone-easily-swappable-parameters exists to catch.  Rather than
// suppressing the check tree-wide (the state of affairs before this
// header; see .clang-tidy history), the domain quantities get zero-cost
// explicit wrapper types: a swap of `h` and `m`, or `delta` and `c1`, at a
// call site is now a type error instead of a silently wrong experiment.
//
// Conventions:
//   * construction is explicit — `Holdings{64}`, never a bare `64`;
//   * `.get()` is the only way out, `constexpr` and free of any cost;
//   * the wrappers are deliberately operator-free: arithmetic happens on
//     the unwrapped value at the point of use, so the types document intent
//     without growing a units-algebra nobody asked for.
#pragma once

#include <cstdint>

#include "noisypull/common/check.hpp"

namespace noisypull {

namespace detail {

// CRTP base so each wrapper is a distinct, non-interconvertible type.
template <typename Tag, typename Rep>
class StrongValue {
 public:
  using rep = Rep;

  constexpr StrongValue() noexcept = default;
  explicit constexpr StrongValue(Rep value) noexcept : value_(value) {}

  constexpr Rep get() const noexcept { return value_; }

  friend constexpr bool operator==(StrongValue a, StrongValue b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongValue a, StrongValue b) noexcept {
    return a.value_ != b.value_;
  }

 private:
  Rep value_{};
};

}  // namespace detail

// Total number of agents n.
struct AgentCount final : detail::StrongValue<AgentCount, std::uint64_t> {
  using StrongValue::StrongValue;
};

// A count of source agents (s1 or s0 — the type cannot distinguish the two
// preferences, but it does stop a source count from landing in an agent- or
// sample-count slot).
struct SourceCount final : detail::StrongValue<SourceCount, std::uint64_t> {
  using StrongValue::StrongValue;
};

// The PULL(h) sample size: how many displays an agent holds per round.
struct Holdings final : detail::StrongValue<Holdings, std::uint64_t> {
  using StrongValue::StrongValue;
};

// A message/memory budget m (Eq. 19 listening budget, Eq. 30 SSF memory).
struct MemoryBudget final : detail::StrongValue<MemoryBudget, std::uint64_t> {
  using StrongValue::StrongValue;
};

// The noise level δ of Definition 1.
struct Delta final : detail::StrongValue<Delta, double> {
  using StrongValue::StrongValue;
};

// The schedule constant c1 (Eq. 19 / Eq. 30); experiments pass a calibrated
// small value, see DESIGN.md "substitutions".
struct C1 final : detail::StrongValue<C1, double> {
  using StrongValue::StrongValue;
};

inline constexpr C1 kDefaultC1{2.0};

// Population layout.  Agents are indexed 0..n-1; by convention the first s1
// agents are sources preferring opinion 1, the next s0 are sources preferring
// opinion 0, and the remainder are non-sources.  Placement is irrelevant in a
// well-mixed population (sampling is uniform over all agents).
//
// Deliberately an aggregate: construction sites use designated initializers
// (`PopulationConfig{.n = 1000, .s1 = 10, .s0 = 0}`), which carry the field
// names and are therefore swap-proof without wrapper types.
struct PopulationConfig {
  std::uint64_t n = 0;   // total number of agents
  std::uint64_t s1 = 0;  // sources preferring opinion 1
  std::uint64_t s0 = 0;  // sources preferring opinion 0

  void validate() const {
    NOISYPULL_CHECK(n >= 2, "population needs at least 2 agents");
    NOISYPULL_CHECK(s0 + s1 <= n, "more sources than agents");
    NOISYPULL_CHECK(s0 + s1 >= 1, "at least one source is required");
  }

  std::uint64_t num_sources() const noexcept { return s0 + s1; }

  // The paper's bias s = |s1 − s0|.
  std::uint64_t bias() const noexcept {
    return s1 >= s0 ? s1 - s0 : s0 - s1;
  }

  // Majority preference among sources; requires a strict majority.
  std::uint8_t correct_opinion() const {
    NOISYPULL_CHECK(s0 != s1, "correct opinion undefined when s0 == s1");
    return s1 > s0 ? std::uint8_t{1} : std::uint8_t{0};
  }

  bool is_source(std::uint64_t agent) const noexcept {
    return agent < s0 + s1;
  }

  // Preference of a source agent (undefined semantics for non-sources).
  std::uint8_t source_preference(std::uint64_t agent) const noexcept {
    return agent < s1 ? std::uint8_t{1} : std::uint8_t{0};
  }
};

}  // namespace noisypull
