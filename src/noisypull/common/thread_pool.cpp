#include "noisypull/common/thread_pool.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

ThreadPool::ThreadPool(unsigned lanes) : lanes_(lanes) {
  NOISYPULL_CHECK(lanes >= 1, "thread pool needs at least one lane");
  workers_.reserve(lanes - 1);
  for (unsigned i = 1; i < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain() {
  for (;;) {
    const std::uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs_) return;
    try {
      (*job_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Skip the remaining indices; blocks are independent so a partial
      // round is safe to abandon once the caller is going to rethrow.
      cursor_.store(jobs_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--busy_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::uint64_t jobs,
                              const std::function<void(std::uint64_t)>& job) {
  if (jobs == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    jobs_ = jobs;
    cursor_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    busy_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  wake_.notify_all();
  drain();  // the caller is lane 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return busy_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace noisypull
