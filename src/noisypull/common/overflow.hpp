// Checked 64-bit arithmetic for population-scale accumulation.
//
// The lumped engine (sim/lumped_engine.hpp) carries per-class agent counts
// up to n = 10¹², and its bookkeeping forms sums over classes and products
// with the holding size h.  At those magnitudes silent wrap-around is a
// plausible failure mode (n·h exceeds 2⁶⁴ already at n = 2⁵⁴, h = 1024), so
// every accumulation on the n-scale paths goes through these helpers: the
// throwing versions reject bad *inputs* (constructor validation), the
// asserting versions guard *internal invariants* that a correct engine can
// never violate.
#pragma once

#include <cstdint>

#include "noisypull/common/check.hpp"

namespace noisypull {

// a + b, throwing std::invalid_argument on wrap-around (input validation).
inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b,
                                 const char* what) {
  std::uint64_t out = 0;
  NOISYPULL_CHECK(!__builtin_add_overflow(a, b, &out), what);
  return out;
}

// a · b, throwing std::invalid_argument on wrap-around (input validation).
inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b,
                                 const char* what) {
  std::uint64_t out = 0;
  NOISYPULL_CHECK(!__builtin_mul_overflow(a, b, &out), what);
  return out;
}

// a + b, aborting on wrap-around (internal-invariant guard: sums of class
// counts are bounded by the validated population size, so an overflow here
// is engine corruption, not bad input).
inline std::uint64_t invariant_add(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t out = 0;
  NOISYPULL_ASSERT(!__builtin_add_overflow(a, b, &out));
  return out;
}

}  // namespace noisypull
