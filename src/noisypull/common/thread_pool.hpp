// Reusable fixed-size worker pool for intra-round block parallelism.
//
// The block-parallel engines (model/engine.cpp) split each round's n agents
// into fixed-size blocks and hand the blocks to a ThreadPool.  Work is
// distributed dynamically (an atomic cursor), so lane scheduling is
// arbitrary — which is exactly why the engines derive each block's RNG from
// a counter substream rather than from any per-lane state: the simulation
// trajectory must be a function of the block index alone, never of which
// lane happened to run it (DESIGN.md §9).
//
// The pool is deliberately tiny: parallel_for() over an index range, the
// calling thread participates as a lane, exceptions from jobs are captured
// and the first one is rethrown on the caller.  Workers persist across
// calls (engines step millions of rounds; per-round thread spawn would
// dominate), parked on a condition variable between rounds.
//
// This header is one of the few under src/noisypull/ allowed to touch
// <thread>/<atomic> — tools/noisypull_lint.cpp's threading-header rule keeps
// concurrency primitives out of every other simulation path by an explicit
// allowlist, not a blanket exclusion.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noisypull {

class ThreadPool {
 public:
  // A pool with `lanes` execution lanes total; the calling thread of
  // parallel_for() is lane 0, so `lanes - 1` workers are spawned.
  // Requires lanes >= 1.
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned lanes() const noexcept { return lanes_; }

  // Invokes job(i) exactly once for every i in [0, jobs), distributing
  // indices dynamically over all lanes (including the caller).  Returns when
  // every invocation has finished; the first exception thrown by any job is
  // rethrown here (remaining indices are skipped once a job has thrown).
  // Not reentrant: one parallel_for at a time per pool.
  void parallel_for(std::uint64_t jobs,
                    const std::function<void(std::uint64_t)>& job);

 private:
  void worker_loop();
  void drain();  // pulls indices until the cursor runs past jobs_

  unsigned lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for a new generation
  std::condition_variable done_;   // caller waits for the round to finish
  std::uint64_t generation_ = 0;   // bumped once per parallel_for
  unsigned busy_ = 0;              // workers still draining this generation
  bool stop_ = false;

  const std::function<void(std::uint64_t)>* job_ = nullptr;
  std::uint64_t jobs_ = 0;
  std::atomic<std::uint64_t> cursor_{0};
  std::exception_ptr first_error_;
};

}  // namespace noisypull
