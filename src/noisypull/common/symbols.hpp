// Alphabet and observation primitives shared by every layer.
//
// These types used to live in model/types.hpp and noise/noise_matrix.hpp,
// which forced rng/ (the observation sampler needs SymbolCounts) to include
// model/ — an upward edge in the layer DAG the tree-aware linter now
// enforces (tools/noisypull_lint.cpp, `layering` rule; DESIGN.md §8.1).
// They are pure value vocabulary with no behavior of their own, so they
// belong in the base layer.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>

#include "noisypull/common/check.hpp"

namespace noisypull {

// A message symbol σ ∈ Σ.  Alphabets in this library are index sets
// {0, ..., size-1}; protocols define the meaning of each index (for SSF,
// symbol = first_bit*2 + second_bit).
using Symbol = std::uint8_t;

inline constexpr std::size_t kMaxAlphabet = 8;

// A binary opinion (the paper's Y^(i) ∈ {0,1}).
using Opinion = std::uint8_t;

// Per-symbol observation tallies an agent receives in one round (or phase).
// All protocols in the paper are functions of these counts only, which is
// what makes the aggregate engine exact (see model/engine.hpp).
struct SymbolCounts {
  std::array<std::uint64_t, kMaxAlphabet> c{};
  std::size_t size = 0;

  explicit SymbolCounts(std::size_t alphabet = 2) : size(alphabet) {
    NOISYPULL_CHECK(alphabet >= 2 && alphabet <= kMaxAlphabet,
                    "unsupported alphabet size");
  }

  std::uint64_t operator[](std::size_t s) const noexcept { return c[s]; }
  std::uint64_t& operator[](std::size_t s) noexcept { return c[s]; }

  std::uint64_t total() const noexcept {
    return std::accumulate(c.begin(), c.begin() + size, std::uint64_t{0});
  }

  void clear() noexcept { c.fill(0); }
};

}  // namespace noisypull
