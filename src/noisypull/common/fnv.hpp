// FNV-1a 64-bit hashing for replay-digest auditing.
//
// The engines fold every round's display vector into a chained FNV-1a
// digest (engine.hpp).  Two runs of the same configuration and seed must
// produce identical digests; any divergence pinpoints nondeterminism —
// unseeded randomness, hash-order iteration, uninitialized reads — that
// neither the compiler gate nor noisypull_lint can prove absent.  FNV-1a is
// used for its trivial constexpr implementation and byte-order independence,
// not for adversarial collision resistance (the auditor compares a run
// against itself, not against attackers).
#pragma once

#include <cstdint>

namespace noisypull::fnv {

inline constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kPrime = 1099511628211ULL;

// Folds one byte into the running digest.
constexpr std::uint64_t hash_byte(std::uint64_t digest,
                                  std::uint8_t byte) noexcept {
  return (digest ^ byte) * kPrime;
}

// Folds a 64-bit value, little-endian byte order (explicitly, so digests are
// comparable across platforms).
constexpr std::uint64_t hash_u64(std::uint64_t digest,
                                 std::uint64_t value) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    digest = hash_byte(digest, static_cast<std::uint8_t>(value >> shift));
  }
  return digest;
}

}  // namespace noisypull::fnv
