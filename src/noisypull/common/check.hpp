// Precondition checking for public API boundaries.
//
// The library validates constructor / function preconditions with
// NOISYPULL_CHECK, which throws std::invalid_argument with a readable
// message.  Internal invariants (bugs, never user-triggerable) use
// NOISYPULL_ASSERT, which aborts.  Neither is used for control flow.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace noisypull::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "noisypull: precondition violated: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void abort_assert_failure(const char* expr,
                                              const char* file,
                                              int line) noexcept {
  std::fprintf(stderr,
               "noisypull: internal invariant violated: (%s) at %s:%d\n", expr,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace noisypull::detail

// Checks a user-facing precondition; throws std::invalid_argument on failure.
// The message argument is a string (or anything streamable via std::string).
#define NOISYPULL_CHECK(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::noisypull::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                               (msg));                   \
    }                                                                    \
  } while (false)

// Internal invariant; failure indicates a library bug.  Prints the failed
// expression to stderr and aborts (invariant violations are never
// recoverable, unlike API misuse).
#define NOISYPULL_ASSERT(expr)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::noisypull::detail::abort_assert_failure(#expr, __FILE__, __LINE__);  \
    }                                                                        \
  } while (false)
