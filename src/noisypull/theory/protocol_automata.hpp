// Thin re-export: the automaton families moved to core/automaton so the
// production engines can consume them through the compiled fast path
// (DESIGN.md §13) without a theory→model edge in the layer DAG.  This
// header keeps every oracle-side include site (theory/exact_chain users,
// the fuzz campaign, the golden-digest tests) compiling unchanged; theory/
// retains the exact-law half of the machinery — ChainClass and the chain
// builder in theory/exact_chain.hpp — which is what is genuinely
// oracle-specific.
#pragma once

#include "noisypull/core/automaton/automaton.hpp"          // IWYU pragma: export
#include "noisypull/core/automaton/protocol_automata.hpp"  // IWYU pragma: export
