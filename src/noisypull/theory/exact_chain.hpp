// theory/exact_chain — exact small-n Markov oracle for the noisy PULL(h)
// round kernel.
//
// Every engine in model/ is a Monte-Carlo sampler; until now their
// correctness rested on cross-validating each other statistically.  For
// small populations the round update is an *exactly computable* Markov
// kernel, and this module computes it by direct enumeration — an
// independent, non-Monte-Carlo oracle the engines are held to with
// total-variation-distance assertions (tests/test_oracle_engines.cpp,
// tests/test_oracle_fuzz.cpp; DESIGN.md §12 test pyramid).
//
// Model.  Agents are partitioned into *exchangeability classes* in
// agent-index order: every agent of a class shares one finite per-agent
// state machine (AgentAutomaton), one initial state, one effective receiver
// channel, and one deterministic fault schedule.  Because PULL(h) samples
// uniformly with replacement, the joint chain is lumpable: a configuration
// is, per class, the *histogram* of agent states (not the labelled vector),
// which keeps n ≤ ~12 tractable.  One synchronous round given a
// configuration with display histogram c:
//   1. every agent of class k observes h i.i.d. categorical draws with law
//      q_k[to] ∝ Σ_from c[from] · channel_k(from, to)  (obs ~ Mult(h, q_k)),
//   2. each agent transitions independently through its automaton,
//   3. the class histogram therefore evolves by a convolution of
//      Multinomial(count_s, T_s) splits, where T_s is the per-state law
//      Σ_obs Mult(obs; h, q_k) · transition(s, obs).
// The chain state is the full probability vector over configurations,
// propagated exactly (matrix-free; the linalg/ Matrix type carries the
// channels, matching the engines' channel composition arithmetic).
//
// The SequentialAscending kernel instead replays SequentialEngine's
// FixedAscending activation semantics: agents update one at a time in index
// order against the *live* display histogram.  Index-order activation
// breaks within-class exchangeability (agent k sees the new states of
// agents < k, so the post-round joint law inside a class is not
// permutation-symmetric), so this kernel runs fully labelled: the
// constructor splits every class into singletons and the configuration is
// the ordered per-agent state vector.  Sequential chains are accordingly
// more expensive in n — keep populations smaller than synchronous ones.
//
// Fault semantics (the deterministic-schedule subset of fault/FaultPlan):
// a class may display a forged symbol (Byzantine: constant or even/odd
// round parity), skip updates during stall windows (synchronized
// blackouts; stale displays stay visible), and the chain may swap every
// class's channel for specific rounds (deterministic noise bursts).
// Randomized drop/crash faults key their randomness to a fixed fault seed
// per (round, agent), which is *not* i.i.d. across replicate runs — they
// are deliberately out of the oracle's scope.
//
// Exactness: probabilities are exact up to double rounding (~1e-15 per
// round).  Optional support pruning drops configurations below
// prune_epsilon; the discarded probability is tracked and reported so TV
// assertions can add it to their tolerance instead of silently absorbing
// it.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/core/automaton/automaton.hpp"
#include "noisypull/linalg/matrix.hpp"

namespace noisypull {

// AutomatonState / WeightedState / AgentAutomaton — the per-agent state
// machine vocabulary this oracle is built on — now live in
// core/automaton/automaton.hpp (hoisted so the engines' compiled fast path
// can share the interned automata; DESIGN.md §13).  The chain consumes only
// the exact-law half: transition() as the per-(state, observation)
// distribution, never compile().

// Deterministic display forgery for a whole class (FaultyEngine's Byzantine
// displays: AlwaysWrong/MimicSource are Constant, FlipFlop is EvenOdd).
struct DisplayOverride {
  enum class Kind { None, Constant, EvenOdd };
  Kind kind = Kind::None;
  Symbol even = 0;  // Constant: every round; EvenOdd: even rounds
  Symbol odd = 0;   // EvenOdd: odd rounds

  static DisplayOverride none() { return {}; }
  static DisplayOverride constant(Symbol s) {
    return {Kind::Constant, s, s};
  }
  static DisplayOverride even_odd(Symbol even, Symbol odd) {
    return {Kind::EvenOdd, even, odd};
  }
};

// Update-skipping window [start, start + rounds): FaultyEngine's
// synchronized blackout.  A stalled agent still displays (stale state).
struct StallWindow {
  std::uint64_t start = 0;
  std::uint64_t rounds = 0;

  bool active(std::uint64_t round) const noexcept {
    return rounds > 0 && round >= start && round - start < rounds;
  }
};

// One exchangeability class.  Classes must be listed in agent-index order
// (the order only matters for the SequentialAscending kernel and for
// matching FaultyEngine's index-based fault placement).
struct ChainClass {
  std::uint64_t size = 0;
  const AgentAutomaton* automaton = nullptr;  // non-owning
  AutomatonState initial = 0;
  // Effective receiver channel, artificial noise already composed
  // (noise.matrix() * artificial, exactly as the engines compose it).
  Matrix channel;
  DisplayOverride forged;
  StallWindow stall;
};

struct ExactChainOptions {
  Holdings h{1};

  // Synchronous: snapshot-display semantics (Exact/Aggregate/Heterogeneous
  // engines and FaultyEngine over them).  SequentialAscending:
  // SequentialEngine{Order::FixedAscending} live-histogram semantics.
  enum class Kernel { Synchronous, SequentialAscending };
  Kernel kernel = Kernel::Synchronous;

  // Configurations with probability below this are dropped (0 = never);
  // the discarded mass accumulates in truncated_mass().
  double prune_epsilon = 0.0;

  // Per-round replacement of every class's channel (deterministic noise
  // bursts).  The stored matrix must already include any artificial-noise
  // composition, mirroring how FaultyEngine swaps the channel it passes to
  // the wrapped engine.
  std::map<std::uint64_t, Matrix> channel_override;
};

// Exact distribution over start-of-round display histograms.  The key is
// the length-d display histogram — exactly what Engine::display_histogram
// snapshots (with FaultyEngine's forged displays applied).
using DisplayDistribution = std::map<std::vector<std::uint64_t>, double>;

class ExactChain {
 public:
  ExactChain(std::vector<ChainClass> classes, ExactChainOptions options);

  std::uint64_t num_agents() const noexcept { return n_; }
  std::size_t alphabet_size() const noexcept { return d_; }

  // Number of rounds advanced so far == the round index the next step()
  // executes and display_distribution() describes.
  std::uint64_t round() const noexcept { return round_; }

  // Advances the chain by one exact round.
  void step();

  // Exact marginal law of the display histogram at the current round.
  DisplayDistribution display_distribution() const;

  // Exact expected display histogram at the current round (sharper than TV
  // for mean-shift bugs; tests use both).
  std::vector<double> display_mean() const;

  // Total probability discarded by pruning since construction.  TV
  // assertions must widen their tolerance by this amount.
  double truncated_mass() const noexcept { return truncated_; }

  // Number of configurations currently carrying probability.
  std::size_t support_size() const noexcept { return dist_.size(); }

 private:
  // Per class: state histogram as (state, count) pairs sorted by state.
  using ClassHistogram = std::vector<std::pair<AutomatonState, std::uint32_t>>;
  using Config = std::vector<ClassHistogram>;
  using ConfigDist = std::map<Config, double>;

  // Law of one agent's next state: Σ_obs Mult(obs; h, q)·transition(s, obs).
  std::vector<WeightedState> state_transition_law(
      const ChainClass& cls, AutomatonState state,
      const std::vector<double>& q) const;

  // Memoized state_transition_law: within one round the law depends only on
  // (class, state, display histogram), but many configurations share a
  // histogram — the cache turns a per-configuration recomputation into a
  // lookup.  Cleared at the start of every step.
  const std::vector<WeightedState>& cached_law(
      std::size_t class_index, AutomatonState state,
      const std::vector<std::uint64_t>& c, const std::vector<double>& q) const;

  std::vector<std::uint64_t> display_histogram(const Config& config,
                                               std::uint64_t round) const;
  std::vector<double> observation_law(const ChainClass& cls,
                                      const std::vector<std::uint64_t>& c,
                                      std::uint64_t round) const;
  // Distribution of a class's next histogram given the round's observation
  // law (the convolution of per-state multinomial splits).  `c` is the
  // display histogram the law was derived from, used as the memo key.
  std::vector<std::pair<ClassHistogram, double>> class_step(
      std::size_t class_index, const ClassHistogram& hist,
      const std::vector<std::uint64_t>& c, const std::vector<double>& q,
      std::uint64_t round) const;

  void step_synchronous();
  void step_sequential();
  void prune(ConfigDist& dist);

  Symbol class_display(std::size_t class_index, AutomatonState state,
                       std::uint64_t round) const;

  std::vector<ChainClass> classes_;
  ExactChainOptions options_;
  std::uint64_t n_ = 0;
  std::size_t d_ = 0;
  std::uint64_t round_ = 0;
  double truncated_ = 0.0;
  ConfigDist dist_;
  // All observation count vectors summing to h over d symbols, in a fixed
  // enumeration order; built once.
  std::vector<std::vector<std::uint64_t>> outcomes_;

  // Per-round memo caches (see cached_law / step_synchronous); keyed on the
  // display histogram because that determines the observation law.
  mutable std::map<
      std::tuple<std::size_t, AutomatonState, std::vector<std::uint64_t>>,
      std::vector<WeightedState>>
      law_cache_;
  mutable std::map<
      std::tuple<std::size_t, ClassHistogram, std::vector<std::uint64_t>>,
      std::vector<std::pair<ClassHistogram, double>>>
      class_step_cache_;
};

// Total variation distance between two display distributions (missing keys
// count as zero mass).
double total_variation(const DisplayDistribution& a,
                       const DisplayDistribution& b);

// Statistically sound TV tolerance for comparing an M-sample empirical
// distribution against its exact law with support size K:
//   E[TV] ≤ ½·√(K/M)            (Cauchy–Schwarz over per-cell deviations)
//   P(TV ≥ E[TV] + t) ≤ e^(−2Mt²)   (McDiarmid; each sample moves TV ≤ 1/M)
// so tolerance = ½·√(K/M) + √(log_inv_alpha / (2M)).  Callers add the
// oracle's truncated_mass() on top.
double tv_tolerance(std::size_t support, std::uint64_t samples,
                    double log_inv_alpha);

}  // namespace noisypull
