#include "noisypull/theory/exact_chain.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "noisypull/common/check.hpp"

namespace noisypull {
namespace {

// Exact factorials up to the largest count the chain handles (n and h are
// both far below 20; 20! still fits a double exactly is false, but 170! fits
// a double's range and n ≤ ~12 keeps us in the exact-integer regime).
double factorial(std::uint64_t k) {
  double f = 1.0;
  for (std::uint64_t i = 2; i <= k; ++i) f *= static_cast<double>(i);
  return f;
}

// Multinomial pmf of the count vector `counts` (summing to `total`) under
// cell probabilities `p`.  Cells with p == 0 and count > 0 yield 0.
double multinomial_pmf(const std::vector<std::uint64_t>& counts,
                       std::uint64_t total, const std::vector<double>& p) {
  double pmf = factorial(total);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (p[i] <= 0.0) return 0.0;
    pmf *= std::pow(p[i], static_cast<double>(counts[i])) /
           factorial(counts[i]);
  }
  return pmf;
}

// All length-d count vectors summing to exactly h, in lexicographic order.
std::vector<std::vector<std::uint64_t>> enumerate_outcomes(std::uint64_t h,
                                                           std::size_t d) {
  std::vector<std::vector<std::uint64_t>> out;
  std::vector<std::uint64_t> cur(d, 0);
  // Recursive lambda over cells; the last cell absorbs the remainder.
  auto rec = [&](auto&& self, std::size_t cell, std::uint64_t left) -> void {
    if (cell + 1 == d) {
      cur[cell] = left;
      out.push_back(cur);
      return;
    }
    for (std::uint64_t k = 0; k <= left; ++k) {
      cur[cell] = k;
      self(self, cell + 1, left - k);
    }
  };
  rec(rec, 0, h);
  return out;
}

}  // namespace

ExactChain::ExactChain(std::vector<ChainClass> classes,
                       ExactChainOptions options)
    : classes_(std::move(classes)), options_(options) {
  NOISYPULL_CHECK(!classes_.empty(), "exact chain needs at least one class");
  NOISYPULL_CHECK(options_.h.get() >= 1, "h must be at least 1");
  d_ = 0;
  for (const auto& cls : classes_) {
    NOISYPULL_CHECK(cls.size >= 1, "empty chain class");
    NOISYPULL_CHECK(cls.automaton != nullptr, "chain class needs an automaton");
    if (d_ == 0) d_ = cls.automaton->alphabet_size();
    NOISYPULL_CHECK(cls.automaton->alphabet_size() == d_,
                    "all classes must share one alphabet");
    NOISYPULL_CHECK(cls.channel.rows() == d_ && cls.channel.cols() == d_,
                    "channel shape must match the alphabet");
    NOISYPULL_CHECK(cls.channel.is_stochastic(1e-9),
                    "channel must be row-stochastic");
    if (cls.forged.kind != DisplayOverride::Kind::None) {
      NOISYPULL_CHECK(cls.forged.even < d_ && cls.forged.odd < d_,
                      "forged symbol outside the alphabet");
    }
    n_ += cls.size;
  }
  NOISYPULL_CHECK(d_ >= 2 && d_ <= kMaxAlphabet, "unsupported alphabet size");
  for (const auto& [round, m] : options_.channel_override) {
    (void)round;
    NOISYPULL_CHECK(m.rows() == d_ && m.cols() == d_ && m.is_stochastic(1e-9),
                    "channel override must be a stochastic d x d matrix");
  }
  NOISYPULL_CHECK(options_.prune_epsilon >= 0.0 &&
                      options_.prune_epsilon < 1e-3,
                  "prune_epsilon out of range");

  // A sequential round breaks within-class exchangeability: agent k updates
  // against displays that already include the new states of agents < k, so
  // the post-round joint law inside a class is not permutation-symmetric and
  // a histogram is not a sufficient statistic for later rounds.  The
  // sequential kernel therefore runs fully labelled: every class is split
  // into singletons (identical dynamics, one agent each), making the
  // configuration the ordered per-agent state vector.
  if (options_.kernel == ExactChainOptions::Kernel::SequentialAscending) {
    std::vector<ChainClass> split;
    split.reserve(n_);
    for (const auto& cls : classes_) {
      ChainClass one = cls;
      one.size = 1;
      for (std::uint64_t k = 0; k < cls.size; ++k) split.push_back(one);
    }
    classes_ = std::move(split);
  }

  Config init;
  init.reserve(classes_.size());
  for (const auto& cls : classes_) {
    init.push_back({{cls.initial, static_cast<std::uint32_t>(cls.size)}});
  }
  dist_.emplace(std::move(init), 1.0);
  outcomes_ = enumerate_outcomes(options_.h.get(), d_);
}

Symbol ExactChain::class_display(std::size_t class_index, AutomatonState state,
                                 std::uint64_t round) const {
  const ChainClass& cls = classes_[class_index];
  switch (cls.forged.kind) {
    case DisplayOverride::Kind::Constant:
      return cls.forged.even;
    case DisplayOverride::Kind::EvenOdd:
      return (round % 2 == 0) ? cls.forged.even : cls.forged.odd;
    case DisplayOverride::Kind::None:
      break;
  }
  return cls.automaton->display(state, round);
}

std::vector<std::uint64_t> ExactChain::display_histogram(
    const Config& config, std::uint64_t round) const {
  std::vector<std::uint64_t> c(d_, 0);
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    for (const auto& [state, count] : config[i]) {
      c[class_display(i, state, round)] += count;
    }
  }
  return c;
}

std::vector<double> ExactChain::observation_law(
    const ChainClass& cls, const std::vector<std::uint64_t>& c,
    std::uint64_t round) const {
  const auto it = options_.channel_override.find(round);
  const Matrix& channel =
      (it != options_.channel_override.end()) ? it->second : cls.channel;
  std::vector<double> q(d_, 0.0);
  double total = 0.0;
  for (std::size_t to = 0; to < d_; ++to) {
    double w = 0.0;
    for (std::size_t from = 0; from < d_; ++from) {
      w += static_cast<double>(c[from]) * channel(from, to);
    }
    q[to] = w;
    total += w;
  }
  NOISYPULL_ASSERT(total > 0.0);
  for (auto& v : q) v /= total;
  return q;
}

std::vector<WeightedState> ExactChain::state_transition_law(
    const ChainClass& cls, AutomatonState state,
    const std::vector<double>& q) const {
  std::map<AutomatonState, double> law;
  for (const auto& outcome : outcomes_) {
    const double pmf = multinomial_pmf(outcome, options_.h.get(), q);
    if (pmf <= 0.0) continue;
    SymbolCounts obs(d_);
    for (std::size_t s = 0; s < d_; ++s) obs[s] = outcome[s];
    for (const auto& ws : cls.automaton->transition(state, round_, obs)) {
      if (ws.prob > 0.0) law[ws.state] += pmf * ws.prob;
    }
  }
  std::vector<WeightedState> out;
  out.reserve(law.size());
  for (const auto& [s, p] : law) out.push_back({s, p});
  return out;
}

const std::vector<WeightedState>& ExactChain::cached_law(
    std::size_t class_index, AutomatonState state,
    const std::vector<std::uint64_t>& c, const std::vector<double>& q) const {
  auto key = std::make_tuple(class_index, state, c);
  const auto it = law_cache_.find(key);
  if (it != law_cache_.end()) return it->second;
  return law_cache_
      .emplace(std::move(key),
               state_transition_law(classes_[class_index], state, q))
      .first->second;
}

std::vector<std::pair<ExactChain::ClassHistogram, double>>
ExactChain::class_step(std::size_t class_index, const ClassHistogram& hist,
                       const std::vector<std::uint64_t>& c,
                       const std::vector<double>& q,
                       std::uint64_t round) const {
  const ChainClass& cls = classes_[class_index];
  if (cls.stall.active(round)) {
    return {{hist, 1.0}};  // blackout: nobody in the class updates
  }

  // Convolve, over the class's occupied states, the Multinomial(count, T_s)
  // splits of each state's agents across its transition law's support.
  std::map<std::map<AutomatonState, std::uint32_t>, double> acc;
  acc.emplace(std::map<AutomatonState, std::uint32_t>{}, 1.0);
  for (const auto& [state, count] : hist) {
    const auto& law = cached_law(class_index, state, c, q);
    NOISYPULL_ASSERT(!law.empty());
    std::map<std::map<AutomatonState, std::uint32_t>, double> next;
    // Enumerate compositions of `count` across the law's support.
    std::vector<std::uint32_t> split(law.size(), 0);
    auto rec = [&](auto&& self, std::size_t cell, std::uint32_t left) -> void {
      if (cell + 1 == law.size()) {
        split[cell] = left;
        double w = factorial(count);
        for (std::size_t j = 0; j < law.size(); ++j) {
          if (split[j] == 0) continue;
          w *= std::pow(law[j].prob, static_cast<double>(split[j])) /
               factorial(split[j]);
        }
        if (w <= 0.0) return;
        for (const auto& [base, bp] : acc) {
          auto merged = base;
          for (std::size_t j = 0; j < law.size(); ++j) {
            if (split[j] > 0) merged[law[j].state] += split[j];
          }
          next[std::move(merged)] += bp * w;
        }
        return;
      }
      for (std::uint32_t k = 0; k <= left; ++k) {
        split[cell] = k;
        self(self, cell + 1, left - k);
      }
    };
    rec(rec, 0, static_cast<std::uint32_t>(count));
    acc = std::move(next);
  }

  std::vector<std::pair<ClassHistogram, double>> out;
  out.reserve(acc.size());
  for (const auto& [merged, p] : acc) {
    ClassHistogram hg(merged.begin(), merged.end());
    out.emplace_back(std::move(hg), p);
  }
  return out;
}

void ExactChain::prune(ConfigDist& dist) {
  if (options_.prune_epsilon <= 0.0) return;
  for (auto it = dist.begin(); it != dist.end();) {
    if (it->second < options_.prune_epsilon) {
      truncated_ += it->second;
      it = dist.erase(it);
    } else {
      ++it;
    }
  }
}

void ExactChain::step_synchronous() {
  ConfigDist next;
  for (const auto& [config, p] : dist_) {
    const auto c = display_histogram(config, round_);
    // Per-class outcome lists (memoized on (class, class-histogram, display
    // histogram) — many configurations share all three), then their cross
    // product.
    std::vector<const std::vector<std::pair<ClassHistogram, double>>*> outs;
    outs.reserve(classes_.size());
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      auto key = std::make_tuple(i, config[i], c);
      auto it = class_step_cache_.find(key);
      if (it == class_step_cache_.end()) {
        const auto q = observation_law(classes_[i], c, round_);
        it = class_step_cache_
                 .emplace(std::move(key),
                          class_step(i, config[i], c, q, round_))
                 .first;
      }
      outs.push_back(&it->second);
    }
    Config partial(classes_.size());
    auto rec = [&](auto&& self, std::size_t i, double w) -> void {
      if (i == classes_.size()) {
        next[partial] += w;
        return;
      }
      for (const auto& [hg, hp] : *outs[i]) {
        partial[i] = hg;
        self(self, i + 1, w * hp);
      }
    };
    rec(rec, 0, p);
  }
  prune(next);
  dist_ = std::move(next);
}

void ExactChain::step_sequential() {
  // Mid-round state: per class, (pending old-state histogram, updated
  // new-state histogram).  Agents activate in index order, i.e. class by
  // class.  The constructor split every class into singletons for this
  // kernel, so each activation is a specific labelled agent and the
  // count/remaining pick below is trivially exact.
  struct ExtClass {
    ClassHistogram pending;
    ClassHistogram updated;
    bool operator<(const ExtClass& rhs) const {
      if (pending != rhs.pending) return pending < rhs.pending;
      return updated < rhs.updated;
    }
  };
  using ExtConfig = std::vector<ExtClass>;
  std::map<ExtConfig, double> cur;
  for (const auto& [config, p] : dist_) {
    ExtConfig ext(classes_.size());
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      ext[i].pending = config[i];
    }
    cur[std::move(ext)] += p;
  }

  auto live_histogram = [&](const ExtConfig& ext) {
    std::vector<std::uint64_t> c(d_, 0);
    for (std::size_t j = 0; j < classes_.size(); ++j) {
      for (const auto& [state, count] : ext[j].pending) {
        c[class_display(j, state, round_)] += count;
      }
      for (const auto& [state, count] : ext[j].updated) {
        c[class_display(j, state, round_)] += count;
      }
    }
    return c;
  };
  auto add_count = [](ClassHistogram& hg, AutomatonState s, std::uint32_t k) {
    auto it = std::lower_bound(
        hg.begin(), hg.end(), s,
        [](const auto& e, AutomatonState v) { return e.first < v; });
    if (it != hg.end() && it->first == s) {
      it->second += k;
    } else {
      hg.insert(it, {s, k});
    }
  };
  auto remove_one = [](ClassHistogram& hg, std::size_t idx) {
    if (--hg[idx].second == 0) {
      hg.erase(hg.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  };

  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const ChainClass& cls = classes_[i];
    const bool stalled = cls.stall.active(round_);
    for (std::uint64_t t = 0; t < cls.size; ++t) {
      const double remaining = static_cast<double>(cls.size - t);
      std::map<ExtConfig, double> next;
      for (const auto& [ext, p] : cur) {
        const auto c = live_histogram(ext);
        const auto q = observation_law(cls, c, round_);
        for (std::size_t si = 0; si < ext[i].pending.size(); ++si) {
          const auto [state, count] = ext[i].pending[si];
          const double pick = static_cast<double>(count) / remaining;
          if (stalled) {
            ExtConfig moved = ext;
            remove_one(moved[i].pending, si);
            add_count(moved[i].updated, state, 1);
            next[std::move(moved)] += p * pick;
            continue;
          }
          for (const auto& ws : cached_law(i, state, c, q)) {
            ExtConfig moved = ext;
            remove_one(moved[i].pending, si);
            add_count(moved[i].updated, ws.state, 1);
            next[std::move(moved)] += p * pick * ws.prob;
          }
        }
      }
      // Prune on the extended distribution too — support peaks mid-round.
      if (options_.prune_epsilon > 0.0) {
        for (auto it = next.begin(); it != next.end();) {
          if (it->second < options_.prune_epsilon) {
            truncated_ += it->second;
            it = next.erase(it);
          } else {
            ++it;
          }
        }
      }
      cur = std::move(next);
    }
  }

  ConfigDist collapsed;
  for (const auto& [ext, p] : cur) {
    Config config(classes_.size());
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      NOISYPULL_ASSERT(ext[i].pending.empty());
      config[i] = ext[i].updated;
    }
    collapsed[std::move(config)] += p;
  }
  dist_ = std::move(collapsed);
}

void ExactChain::step() {
  law_cache_.clear();
  class_step_cache_.clear();
  if (options_.kernel == ExactChainOptions::Kernel::Synchronous) {
    step_synchronous();
  } else {
    step_sequential();
  }
  ++round_;
}

DisplayDistribution ExactChain::display_distribution() const {
  DisplayDistribution out;
  for (const auto& [config, p] : dist_) {
    out[display_histogram(config, round_)] += p;
  }
  return out;
}

std::vector<double> ExactChain::display_mean() const {
  std::vector<double> mean(d_, 0.0);
  for (const auto& [config, p] : dist_) {
    const auto c = display_histogram(config, round_);
    for (std::size_t s = 0; s < d_; ++s) {
      mean[s] += p * static_cast<double>(c[s]);
    }
  }
  return mean;
}

double total_variation(const DisplayDistribution& a,
                       const DisplayDistribution& b) {
  double tv = 0.0;
  for (const auto& [key, pa] : a) {
    const auto it = b.find(key);
    tv += std::abs(pa - (it == b.end() ? 0.0 : it->second));
  }
  for (const auto& [key, pb] : b) {
    if (a.find(key) == a.end()) tv += pb;
  }
  return 0.5 * tv;
}

double tv_tolerance(std::size_t support, std::uint64_t samples,
                    double log_inv_alpha) {
  NOISYPULL_CHECK(samples > 0, "tv_tolerance needs at least one sample");
  const double m = static_cast<double>(samples);
  return 0.5 * std::sqrt(static_cast<double>(support) / m) +
         std::sqrt(log_inv_alpha / (2.0 * m));
}

}  // namespace noisypull
