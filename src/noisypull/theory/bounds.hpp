// Closed-form expressions of the paper's bounds and probability lemmas.
//
// This module turns the statements of Theorems 3–5 and the probability
// toolbox of Section 5.1 (Claim 19, Lemmas 21–23) into callable code, so
// that benches can print predicted-vs-measured columns and tests can verify
// the *inequalities themselves* numerically against exact binomial
// computations.  All Θ-expressions omit the unspecified constants; callers
// compare shapes, not absolute values.
#pragma once

#include <cstdint>

#include "noisypull/common/units.hpp"

namespace noisypull {

// Theorem 3 (Boczkowski et al. 2018): rumor spreading in the noisy PULL(h)
// model with δ-lower-bounded noise needs Ω(nδ / (s²·(1−δ|Σ|)²·h)) rounds.
double theorem3_lower_bound(AgentCount n, Holdings h, Delta delta,
                            SourceCount bias, std::size_t alphabet);

// Theorem 4 upper bound (without the constant):
//   (1/h)·( nδ/(min{s²,n}(1−2δ)²) + √n/s + (s0+s1)/s² )·log n + log n.
double theorem4_upper_bound(AgentCount n, Holdings h, Delta delta,
                            SourceCount s1, SourceCount s0);

// Theorem 5 upper bound (without the constant):
//   δ·n·log n/(h(1−4δ)²) + n/h.
double theorem5_upper_bound(AgentCount n, Holdings h, Delta delta);

// Claim 19: X ~ Binomial(n, p) with np ≤ 1 satisfies P(X = 1) ≥ np/e.
double claim19_lower_bound(std::uint64_t n, double p);

// Lemma 21's g(θ, m): a lower bound on P(B ≥ m/2) − P(B < m/2) for
// B ~ Binomial(m, 1/2 + θ):
//   g(θ, m) = θ·(1−θ²)^((m−1)/2)·√(2/π)                    if θ < 1/√m,
//   g(θ, m) = (1/√m)·(1−1/m)^((m−1)/2)·√(2/π)              otherwise.
double lemma21_g(double theta, std::uint64_t m);

// Lemma 22: X a sum of m i.i.d. Rad(1/2+θ) satisfies
//   P(X > 0) − P(X < 0) ≥ √(2/(πe)) · min(√m·θ, 1).
double lemma22_lower_bound(double theta, std::uint64_t m);

// Exact value of P(X > 0) − P(X < 0) for a sum of m Rad(1/2+θ) variables,
// computed from the binomial pmf (used by the validation tests/bench).
double rademacher_sum_advantage_exact(double theta, std::uint64_t m);

// Exact P(X = k) for X ~ Binomial(n, p), via lgamma (numerically stable).
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

// Eq. (2) of Section 2.3: the sufficient condition (p − 1/2)·√ℓ ≥ √(log n/n)
// for weak opinions to carry a detectable bias.  Returns the left-hand side
// minus the right-hand side (≥ 0 means the condition holds).
double weak_opinion_condition_margin(double p, double ell, std::uint64_t n);

// Exact probability that an SF weak opinion is correct (the quantity Lemma
// 28 lower-bounds by 1/2 + 4√(log n/n)), computed from the message
// distributions of Section 5.3.1: Counter1 ~ Binomial(m, pA1) with
// pA1 = (s1/n)(1−δ) + (1−s1/n)δ, Counter0 ~ Binomial(m, pB0) with
// pB0 = (s0/n)(1−δ) + (1−s0/n)δ (independent), weak opinion = 1 iff
// Counter1 > Counter0, ties broken by a fair coin.  Assumes correct opinion
// 1 (s1 > s0).  O(m) time.  Requires δ ∈ [0, 1/2] and m ≥ 1.
double sf_weak_opinion_exact(AgentCount n, MemoryBudget m, Delta delta,
                             SourceCount s1, SourceCount s0);

// Exact probability that an SSF weak opinion is correct (Lemma 36's
// quantity), from the Eq. 33 message distributions: each of the m memory
// slots is +1 w.p. p⁺ = (s1/n)(1−3δ) + (1−s1/n)δ (a tagged correct
// message), −1 w.p. p⁻ = (s0/n)(1−3δ) + (1−s0/n)δ, else 0; the weak
// opinion is correct iff #(+1) > #(−1), ties by coin.  Computed by
// conditioning on the number of non-zero slots (O(m²) lgamma evaluations —
// intended for m up to a few thousand).  Assumes s1 > s0, δ ∈ [0, 1/4].
double ssf_weak_opinion_exact(AgentCount n, MemoryBudget m, Delta delta,
                              SourceCount s1, SourceCount s0);

}  // namespace noisypull
