#include "noisypull/theory/two_party.hpp"

#include <cmath>

#include "noisypull/common/check.hpp"
#include "noisypull/theory/bounds.hpp"

namespace noisypull {

double two_party_error_exact(std::uint64_t m, double delta) {
  NOISYPULL_CHECK(m >= 1, "need at least one message");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 0.5, "delta outside [0, 1/2]");
  // Majority decoding errs when more than m/2 copies are flipped; a tie
  // errs with probability 1/2.
  double error = 0.0;
  for (std::uint64_t k = 0; k <= m; ++k) {
    const double pmf = binomial_pmf(m, k, delta);
    if (2 * k > m) {
      error += pmf;
    } else if (2 * k == m) {
      error += 0.5 * pmf;
    }
  }
  return error;
}

std::uint64_t two_party_messages_needed(double x, double delta,
                                        std::uint64_t limit) {
  NOISYPULL_CHECK(x > 0.0 && x <= 0.5, "reliability target outside (0, 1/2]");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.5, "delta outside [0, 1/2)");
  NOISYPULL_CHECK(limit >= 1, "limit must be positive");
  // Majority error is not monotone in m across parities (adding one message
  // can create ties), but it is monotone along odd m; scan odd values by
  // doubling then binary-search the odd lattice.
  auto error_at = [&](std::uint64_t m) { return two_party_error_exact(m,
                                                                      delta); };
  if (error_at(1) <= x) return 1;
  std::uint64_t lo = 1, hi = 3;
  while (hi <= limit && error_at(hi) > x) {
    lo = hi;
    hi = 2 * hi + 1;  // stays odd
  }
  if (hi > limit) return limit;
  // Binary search odd m in (lo, hi]: smallest odd m with error ≤ x.
  while (hi - lo > 2) {
    std::uint64_t mid = lo + (hi - lo) / 2;
    if (mid % 2 == 0) ++mid;
    if (mid >= hi) mid = hi - 2;
    if (error_at(mid) <= x) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double pull_rounds_via_two_party(AgentCount n, Holdings h, SourceCount s,
                                 Delta delta, double x) {
  NOISYPULL_CHECK(n.get() >= 2 && h.get() >= 1 && s.get() >= 1,
                  "invalid model parameters");
  NOISYPULL_CHECK(s.get() <= n.get(), "more sources than agents");
  const double useful_per_round = static_cast<double>(h.get()) *
                                  static_cast<double>(s.get()) /
                                  static_cast<double>(n.get());
  const double messages =
      static_cast<double>(two_party_messages_needed(x, delta.get()));
  return messages / useful_per_round;
}

}  // namespace noisypull
