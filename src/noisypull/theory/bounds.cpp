#include "noisypull/theory/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

double theorem3_lower_bound(AgentCount n_in, Holdings h_in, Delta delta_in,
                            SourceCount bias_in, std::size_t alphabet) {
  const std::uint64_t n = n_in.get();
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  const std::uint64_t bias = bias_in.get();
  NOISYPULL_CHECK(n >= 2 && h >= 1 && bias >= 1 && alphabet >= 2,
                  "invalid lower-bound parameters");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 1.0 / static_cast<double>(alphabet),
                  "delta outside [0, 1/|Sigma|]");
  const double nd = static_cast<double>(n);
  const double sd = static_cast<double>(bias);
  const double margin = 1.0 - delta * static_cast<double>(alphabet);
  if (margin <= 0.0) return 0.0;  // degenerate channel: bound is vacuous
  return nd * delta / (sd * sd * margin * margin * static_cast<double>(h));
}

double theorem4_upper_bound(AgentCount n_in, Holdings h_in, Delta delta_in,
                            SourceCount s1_in, SourceCount s0_in) {
  const std::uint64_t n = n_in.get();
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  const std::uint64_t s1 = s1_in.get();
  const std::uint64_t s0 = s0_in.get();
  NOISYPULL_CHECK(n >= 2 && h >= 1, "invalid upper-bound parameters");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.5, "delta outside [0, 1/2)");
  const std::uint64_t bias = s1 >= s0 ? s1 - s0 : s0 - s1;
  NOISYPULL_CHECK(bias >= 1, "Theorem 4 requires bias >= 1");
  const double nd = static_cast<double>(n);
  const double sd = static_cast<double>(bias);
  const double logn = std::log(nd);
  const double one_minus = 1.0 - 2.0 * delta;
  const double inner =
      nd * delta / (std::min(sd * sd, nd) * one_minus * one_minus) +
      std::sqrt(nd) / sd + static_cast<double>(s0 + s1) / (sd * sd);
  return inner * logn / static_cast<double>(h) + logn;
}

double theorem5_upper_bound(AgentCount n_in, Holdings h_in, Delta delta_in) {
  const std::uint64_t n = n_in.get();
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  NOISYPULL_CHECK(n >= 2 && h >= 1, "invalid upper-bound parameters");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.25, "delta outside [0, 1/4)");
  const double nd = static_cast<double>(n);
  const double one_minus = 1.0 - 4.0 * delta;
  return delta * nd * std::log(nd) /
             (static_cast<double>(h) * one_minus * one_minus) +
         nd / static_cast<double>(h);
}

double claim19_lower_bound(std::uint64_t n, double p) {
  NOISYPULL_CHECK(p >= 0.0 && p <= 1.0, "p outside [0,1]");
  const double np = static_cast<double>(n) * p;
  NOISYPULL_CHECK(np <= 1.0, "Claim 19 requires np <= 1");
  return np / std::exp(1.0);
}

double lemma21_g(double theta, std::uint64_t m) {
  NOISYPULL_CHECK(m >= 1, "m must be positive");
  NOISYPULL_CHECK(theta >= 0.0 && theta <= 0.5, "theta outside [0, 1/2]");
  const double md = static_cast<double>(m);
  const double scale = std::sqrt(2.0 / M_PI);
  const double half_exp = (md - 1.0) / 2.0;
  if (theta < 1.0 / std::sqrt(md)) {
    return scale * theta * std::pow(1.0 - theta * theta, half_exp);
  }
  return scale / std::sqrt(md) * std::pow(1.0 - 1.0 / md, half_exp);
}

double lemma22_lower_bound(double theta, std::uint64_t m) {
  NOISYPULL_CHECK(m >= 1, "m must be positive");
  NOISYPULL_CHECK(theta >= 0.0 && theta < 0.5, "theta outside [0, 1/2)");
  const double md = static_cast<double>(m);
  return std::sqrt(2.0 / (M_PI * std::exp(1.0))) *
         std::min(std::sqrt(md) * theta, 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  NOISYPULL_CHECK(k <= n, "k > n in binomial pmf");
  NOISYPULL_CHECK(p >= 0.0 && p <= 1.0, "p outside [0,1]");
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double log_pmf = std::lgamma(nd + 1) - std::lgamma(kd + 1) -
                         std::lgamma(nd - kd + 1) + kd * std::log(p) +
                         (nd - kd) * std::log1p(-p);
  return std::exp(log_pmf);
}

double rademacher_sum_advantage_exact(double theta, std::uint64_t m) {
  NOISYPULL_CHECK(m >= 1, "m must be positive");
  // X > 0  ⇔  B > m/2 for B = (#successes); X < 0 ⇔ B < m/2.
  const double p = 0.5 + theta;
  double above = 0.0, below = 0.0;
  for (std::uint64_t k = 0; k <= m; ++k) {
    const double pmf = binomial_pmf(m, k, p);
    const double twice = 2.0 * static_cast<double>(k);
    if (twice > static_cast<double>(m)) {
      above += pmf;
    } else if (twice < static_cast<double>(m)) {
      below += pmf;
    }
  }
  return above - below;
}

double sf_weak_opinion_exact(AgentCount n_in, MemoryBudget m_in,
                             Delta delta_in, SourceCount s1_in,
                             SourceCount s0_in) {
  const std::uint64_t n = n_in.get();
  const std::uint64_t m = m_in.get();
  const double delta = delta_in.get();
  const std::uint64_t s1 = s1_in.get();
  const std::uint64_t s0 = s0_in.get();
  NOISYPULL_CHECK(n >= 2 && m >= 1, "invalid population / budget");
  NOISYPULL_CHECK(s1 > s0, "assumes the correct opinion is 1 (s1 > s0)");
  NOISYPULL_CHECK(s0 + s1 <= n, "more sources than agents");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 0.5, "delta outside [0, 1/2]");
  const double nd = static_cast<double>(n);
  const double pa1 = (static_cast<double>(s1) / nd) * (1.0 - delta) +
                     (1.0 - static_cast<double>(s1) / nd) * delta;
  const double pb0 = (static_cast<double>(s0) / nd) * (1.0 - delta) +
                     (1.0 - static_cast<double>(s0) / nd) * delta;
  // P(C1 > C0) + ½·P(C1 = C0) over the independent binomials, using the
  // running cdf of C0.
  double cdf_b_below = 0.0;  // P(C0 < k), updated as k advances
  double result = 0.0;
  double pmf_b_prev = binomial_pmf(m, 0, pb0);  // P(C0 = k−1) at k = 1
  for (std::uint64_t k = 0; k <= m; ++k) {
    const double pmf_a = binomial_pmf(m, k, pa1);
    const double pmf_b = binomial_pmf(m, k, pb0);
    if (k > 0) {
      cdf_b_below += pmf_b_prev;
    }
    result += pmf_a * (cdf_b_below + 0.5 * pmf_b);
    pmf_b_prev = pmf_b;
  }
  return result;
}

double ssf_weak_opinion_exact(AgentCount n_in, MemoryBudget m_in,
                              Delta delta_in, SourceCount s1_in,
                              SourceCount s0_in) {
  const std::uint64_t n = n_in.get();
  const std::uint64_t m = m_in.get();
  const double delta = delta_in.get();
  const std::uint64_t s1 = s1_in.get();
  const std::uint64_t s0 = s0_in.get();
  NOISYPULL_CHECK(n >= 2 && m >= 1, "invalid population / budget");
  NOISYPULL_CHECK(s1 > s0, "assumes the correct opinion is 1 (s1 > s0)");
  NOISYPULL_CHECK(s0 + s1 <= n, "more sources than agents");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 0.25, "delta outside [0, 1/4]");
  const double nd = static_cast<double>(n);
  const double p_plus = (static_cast<double>(s1) / nd) * (1.0 - 3 * delta) +
                        (1.0 - static_cast<double>(s1) / nd) * delta;
  const double p_minus = (static_cast<double>(s0) / nd) * (1.0 - 3 * delta) +
                         (1.0 - static_cast<double>(s0) / nd) * delta;
  const double p_nz = p_plus + p_minus;
  if (p_nz == 0.0) return 0.5;  // no tagged messages ever: pure coin
  const double q = p_plus / p_nz;  // P(+1 | non-zero), Lemma 20's p

  // Condition on K = #non-zero slots ~ Binomial(m, p_nz); given K, the
  // +1 count is Binomial(K, q) (Lemma 20), and the weak opinion is correct
  // iff it exceeds K/2 (tie → coin).
  double result = 0.0;
  for (std::uint64_t k = 0; k <= m; ++k) {
    const double pk = binomial_pmf(m, k, p_nz);
    if (pk < 1e-18) continue;  // negligible tail (sum error < m·1e-18)
    double win = 0.0;
    for (std::uint64_t a = 0; a <= k; ++a) {
      const double pa = binomial_pmf(k, a, q);
      if (2 * a > k) {
        win += pa;
      } else if (2 * a == k) {
        win += 0.5 * pa;
      }
    }
    result += pk * win;
  }
  return result;
}

double weak_opinion_condition_margin(double p, double ell, std::uint64_t n) {
  NOISYPULL_CHECK(ell >= 0.0, "ell must be non-negative");
  NOISYPULL_CHECK(n >= 2, "population too small");
  const double nd = static_cast<double>(n);
  return (p - 0.5) * std::sqrt(ell) - std::sqrt(std::log(nd) / nd);
}

}  // namespace noisypull
