// The (m, x, δ)-Two-Party abstraction behind the lower bounds (Footnote 3).
//
// Clementi et al. [19] prove their Ω(n log n) w.h.p. lower bound by reducing
// noisy bit dissemination to a two-party problem: party B (the source) must
// transfer one bit to party A over m messages, each flipped independently
// with probability δ, with failure probability at most x.  Since party A in
// the PULL(h) model receives h messages per round — of which only a ~s/n
// fraction touch the source at all — the number of *useful* messages per
// round is ~h·s/n, and the two-party message requirement translates into a
// round lower bound of the Theorem 3 shape.
//
// This module provides the optimal two-party decoder (majority), its exact
// error probability, the minimum m achieving a target reliability, and the
// heuristic translation to PULL(h) rounds — used by tab_two_party to render
// the lower-bound mechanism as numbers.
#pragma once

#include <cstdint>

#include "noisypull/common/units.hpp"

namespace noisypull {

// Exact error probability of majority decoding over m copies of a bit, each
// flipped independently with probability δ (ties → coin).  δ ∈ [0, 1/2].
double two_party_error_exact(std::uint64_t m, double delta);

// Minimal m such that two_party_error_exact(m, δ) ≤ x, found by scanning /
// doubling (exact, no bounds).  Requires x ∈ (0, 1/2], δ ∈ [0, 1/2); returns
// the smallest such m, or `limit` if none ≤ limit exists.
std::uint64_t two_party_messages_needed(double x, double delta,
                                        std::uint64_t limit = 1u << 26);

// Heuristic round requirement for PULL(h) implied by the two-party view:
// party A needs two_party_messages_needed(x, δ) source-touching samples and
// collects ~h·s/n of them per round.  (An illustration of the Footnote 3
// mechanism, not a formal bound — Theorem 3 is the formal statement.)
double pull_rounds_via_two_party(AgentCount n, Holdings h, SourceCount s,
                                 Delta delta, double x);

}  // namespace noisypull
