// Experiment-level scheduler: one global (cell × repetition) work queue.
//
// Every theorem table in bench/ estimates success probabilities over a
// parameter grid.  Before this module, each grid cell called
// run_repetitions() with a fixed repetition count and synchronized before
// the next cell started, so a table's wall-clock was the sum of per-cell
// barriers — and easy cells burned exactly as many repetitions as hard
// ones.  The scheduler flattens the whole table into one queue of
// (cell, repetition) work items drained by a fixed worker pool
// (common/thread_pool.hpp), and optionally stops issuing repetitions for a
// cell once its success-rate confidence interval is tight enough.
//
// Determinism contract (tests/test_scheduler.cpp):
//   * Repetition r of a cell runs on the substreams Rng(seed, 2r) /
//     Rng(seed, 2r+1) — the exact derivation of run_repetitions() — so each
//     repetition's trajectory is a function of (cell, r) alone, never of
//     which worker ran it or when.
//   * The early-stopping decision is evaluated on completed-repetition
//     *prefixes in repetition-index order*: the rule stops a cell at the
//     smallest prefix length m ∈ [min_reps, max_reps] whose Wilson interval
//     half-width is ≤ the target.  Scheduling order can change which
//     repetitions beyond m happen to be computed (and wasted), but never
//     the stopping point or any reported statistic — cell statistics are
//     bit-identical for every worker count and cache setting.
//
// Result cache: with a non-empty cache_dir, each cell's per-repetition
// outcomes are persisted in a file named by an FNV-1a digest of everything
// that determines the trajectories — schema version, protocol-construction
// digest (caller-supplied via CellKey), noise matrix, artificial noise,
// FaultPlan, RunConfig, engine kind, and seed.  Worker count, engine lanes,
// the sampler-cache toggle, and the stopping rule are deliberately NOT part
// of the key: they are trajectory-invariant, so cached outcomes remain
// valid under any of them.  A warm run replays outcomes from the file and
// only computes repetitions the file does not cover (e.g. after tightening
// --ci-halfwidth); statistics are identical cold, warm, and with the cache
// bypassed (tests pin all three).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/common/fnv.hpp"
#include "noisypull/fault/fault_plan.hpp"
#include "noisypull/sim/repeat.hpp"

namespace noisypull {

// Bumped whenever engine or runner semantics change in a way that alters
// trajectories for identical inputs (it is folded into every cache key, so
// a bump invalidates all previously cached cells at once).
inline constexpr std::uint64_t kCellCacheSchemaVersion = 1;

// Incremental FNV-1a digest builder for cache keys.  The scheduler folds
// every input it can see (noise, config, seed, ...); the caller folds the
// parts hidden inside the ProtocolFactory closure — the protocol type name
// and every construction parameter — via this builder and passes the result
// as ExperimentCell::protocol_digest.
class CellKey {
 public:
  CellKey& u64(std::uint64_t v) noexcept {
    digest_ = fnv::hash_u64(digest_, v);
    return *this;
  }
  // Doubles are folded by bit pattern: the key must distinguish exactly the
  // inputs the simulation distinguishes, no epsilon semantics.
  CellKey& f64(double v) noexcept;
  CellKey& str(std::string_view s) noexcept;
  CellKey& matrix(const Matrix& m) noexcept;

  std::uint64_t digest() const noexcept { return digest_; }

 private:
  std::uint64_t digest_ = fnv::kOffsetBasis;
};

// Adaptive early-stopping rule, evaluated on prefixes in repetition-index
// order (header comment).  ci_halfwidth <= 0 disables early stopping: every
// cell runs exactly max_reps repetitions.
struct StopRule {
  std::uint64_t max_reps = 32;
  std::uint64_t min_reps = 8;    // clamped into [1, max_reps]
  double ci_halfwidth = 0.0;     // Wilson 95% half-width target; <= 0 = off
  bool require_stability = false;  // success = correct AND stable
};

// One grid cell: everything needed to run (and cache) its repetitions.
// Field order tracks how often benches set each field (designated
// initializers must follow declaration order, and skipping a *middle*
// field trips -Wmissing-field-initializers under the -Werror build).
struct ExperimentCell {
  std::string label{};  // for logs/errors only; not part of the cache key
  ProtocolFactory make_protocol{};
  NoiseMatrix noise = NoiseMatrix::noiseless(2);
  Opinion correct = 1;
  RunConfig cfg{};  // record_trajectory is not supported by the scheduler
  std::uint64_t seed = 1;
  // CellKey digest over the protocol type and construction parameters
  // captured inside make_protocol.  Required when caching is enabled.
  std::uint64_t protocol_digest = 0;
  bool use_aggregate_engine = true;
  std::optional<Matrix> artificial_noise{};
  // Wraps the engine in a FaultyEngine realizing this plan (a fresh
  // decorator per repetition, so stall state never leaks across runs).
  std::optional<FaultPlan> fault_plan{};
};

// Compact per-repetition outcome — the unit the cache stores.  Everything
// the table benches derive from a RunResult, minus trajectories.
struct RepOutcome {
  bool all_correct_at_end = false;
  bool stable = false;
  std::uint64_t rounds_run = 0;
  std::uint64_t first_all_correct = kNever;
  std::uint64_t correct_at_end = 0;
};

RepOutcome to_outcome(const RunResult& r) noexcept;

// Statistics of one cell over the prefix [0, reps) selected by the stop
// rule.  All fields are deterministic functions of the outcomes in index
// order (never of scheduling or cache state).
struct CellStats {
  std::uint64_t reps = 0;       // prefix length the statistics cover
  std::uint64_t successes = 0;  // all_correct_at_end within the prefix
  std::uint64_t stable_successes = 0;  // ... AND stable
  double success_rate = 0.0;
  double stable_success_rate = 0.0;
  Interval wilson;              // 95% Wilson interval of the stop metric
  double ci_halfwidth = 0.0;    // (wilson.upper - wilson.lower) / 2
  // Welford accumulation over first_all_correct of converged repetitions,
  // in index order; nullopt when none converged.
  std::optional<double> mean_convergence_round;
  double convergence_stddev = 0.0;
  double mean_rounds_run = 0.0;
  bool early_stopped = false;   // reps < max_reps due to the CI rule
  std::uint64_t reps_computed = 0;  // fresh simulations this invocation
  std::uint64_t reps_cached = 0;    // repetitions replayed from the cache
  std::uint64_t cache_key = 0;      // full content digest of the cell
};

struct SchedulerOptions {
  // Worker lanes draining the global queue; 0 = hardware_concurrency.
  unsigned threads = 0;
  StopRule stop{};
  // Directory of the content-addressed result cache; empty disables it.
  std::string cache_dir{};
  // Engine lanes inside each repetition (Engine::set_threads); 0 = auto
  // anti-oversubscription split as in RepeatOptions::engine_threads.
  unsigned engine_threads = 1;
};

// The deterministic stopping point: smallest m in [min_reps, max_reps] whose
// Wilson half-width over outcomes[0, m) meets rule.ci_halfwidth, else
// max_reps (also when early stopping is disabled).  outcomes.size() must be
// >= the returned value; exposed for tests.
std::uint64_t stop_point(const std::vector<RepOutcome>& outcomes,
                         const StopRule& rule);

// Statistics over the prefix [0, reps) of outcomes; exposed for tests.
CellStats finalize_prefix(const std::vector<RepOutcome>& outcomes,
                          std::uint64_t reps, const StopRule& rule);

// Full content digest of one cell (schema version + protocol_digest + every
// scheduler-visible input).  This is the cache file's identity.
std::uint64_t cell_cache_key(const ExperimentCell& cell);

// Runs every cell's repetitions through one global work queue and returns
// one CellStats per cell, in input order.  Throws the first repetition
// error, if any (remaining work is abandoned).
std::vector<CellStats> run_experiment(const std::vector<ExperimentCell>& cells,
                                      const SchedulerOptions& opts);

}  // namespace noisypull
