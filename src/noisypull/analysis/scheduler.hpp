// Experiment-level scheduler: one global (cell × repetition) work queue.
//
// Every theorem table in bench/ estimates success probabilities over a
// parameter grid.  Before this module, each grid cell called
// run_repetitions() with a fixed repetition count and synchronized before
// the next cell started, so a table's wall-clock was the sum of per-cell
// barriers — and easy cells burned exactly as many repetitions as hard
// ones.  The scheduler flattens the whole table into one queue of
// (cell, repetition) work items drained by a fixed worker pool
// (common/thread_pool.hpp), and optionally stops issuing repetitions for a
// cell once its success-rate confidence interval is tight enough.
//
// Determinism contract (tests/test_scheduler.cpp, tests/test_chaos.cpp):
//   * Repetition r of a cell runs on the substreams Rng(seed, 2r) /
//     Rng(seed, 2r+1) — the exact derivation of run_repetitions() — so each
//     repetition's trajectory is a function of (cell, r) alone, never of
//     which worker ran it or when.
//   * The early-stopping decision is evaluated on completed-repetition
//     *prefixes in repetition-index order*: the rule stops a cell at the
//     smallest prefix length m ∈ [min_reps, max_reps] whose Wilson interval
//     half-width is ≤ the target.  Scheduling order can change which
//     repetitions beyond m happen to be computed (and wasted), but never
//     the stopping point or any reported statistic — cell statistics are
//     bit-identical for every worker count and cache setting.
//   * Crash safety extends the same contract across process boundaries: a
//     sweep killed at an arbitrary point and restarted with the same
//     manifest_path replays completed (cell, repetition) outcomes from the
//     manifest, recomputes only what is missing, and reports statistics
//     bit-identical to an uninterrupted run — because every statistic is a
//     function of outcome prefixes and every outcome is a pure function of
//     (cell, r).
//
// Result cache: with a non-empty cache_dir, each cell's per-repetition
// outcomes are persisted in a file named by an FNV-1a digest of everything
// that determines the trajectories — schema version, protocol-construction
// digest (caller-supplied via CellKey), noise matrix, artificial noise,
// FaultPlan, RunConfig, steady-state spec, engine kind, and seed.  Worker
// count, engine lanes, the sampler-cache toggle, and the stopping rule are
// deliberately NOT part of the key: they are trajectory-invariant, so
// cached outcomes remain valid under any of them.  A warm run replays
// outcomes from the file and only computes repetitions the file does not
// cover (e.g. after tightening --ci-halfwidth); statistics are identical
// cold, warm, and with the cache bypassed (tests pin all three).
//
// Cache self-healing: every entry carries a CRC-32 over its record body
// (format v2); corrupt, truncated, or wrong-version entries are quarantined
// to a `.quarantine/` sidecar — preserving the evidence — and recomputed.
// v1 entries (no checksum) still parse and are rewritten as v2 on the next
// store.  All durable I/O goes through common/atomic_io, where
// tests/test_chaos.cpp injects torn writes, short reads, rename failures,
// and ENOSPC; under any such FsFaultPlan the scheduler must never crash,
// hang, or change statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/common/atomic_io.hpp"
#include "noisypull/common/fnv.hpp"
#include "noisypull/fault/fault_plan.hpp"
#include "noisypull/sim/churn.hpp"
#include "noisypull/sim/lumped_engine.hpp"
#include "noisypull/sim/repeat.hpp"

namespace noisypull {

// Bumped whenever engine or runner semantics change in a way that alters
// trajectories for identical inputs (it is folded into every cache key, so
// a bump invalidates all previously cached cells at once).
inline constexpr std::uint64_t kCellCacheSchemaVersion = 1;

// Version of the on-disk cache *record layout*, independent of the key
// schema above: v2 added the entry CRC and the steady-state outcome fields.
// Deliberately NOT folded into the cache key — v1 files keep their names
// and migrate on read (parse legacy, rewrite as v2 on the next store), so a
// layout change never throws away valid trajectories.
inline constexpr std::uint64_t kCacheRecordFormatVersion = 2;

// Incremental FNV-1a digest builder for cache keys.  The scheduler folds
// every input it can see (noise, config, seed, ...); the caller folds the
// parts hidden inside the ProtocolFactory closure — the protocol type name
// and every construction parameter — via this builder and passes the result
// as ExperimentCell::protocol_digest.
class CellKey {
 public:
  CellKey& u64(std::uint64_t v) noexcept {
    digest_ = fnv::hash_u64(digest_, v);
    return *this;
  }
  // Doubles are folded by bit pattern: the key must distinguish exactly the
  // inputs the simulation distinguishes, no epsilon semantics.
  CellKey& f64(double v) noexcept;
  CellKey& str(std::string_view s) noexcept;
  CellKey& matrix(const Matrix& m) noexcept;

  std::uint64_t digest() const noexcept { return digest_; }

 private:
  std::uint64_t digest_ = fnv::kOffsetBasis;
};

// Adaptive early-stopping rule, evaluated on prefixes in repetition-index
// order (header comment).  ci_halfwidth <= 0 disables early stopping: every
// cell runs exactly max_reps repetitions.
struct StopRule {
  std::uint64_t max_reps = 32;
  std::uint64_t min_reps = 8;    // clamped into [1, max_reps]
  double ci_halfwidth = 0.0;     // Wilson 95% half-width target; <= 0 = off
  bool require_stability = false;  // success = correct AND stable
};

// Steady-state repetition mode: instead of a convergence run (sim/runner
// run()), the repetition measures the equilibrium correct fraction over
// `measure` rounds after `warmup` rounds, optionally under continuous churn
// (sim/churn.hpp).  This is how tab_fault_matrix and tab_churn express
// their cells on the scheduler.
struct SteadyStateSpec {
  std::uint64_t warmup = 0;
  std::uint64_t measure = 1;
  std::optional<ChurnConfig> churn{};  // requires an SSF protocol
};

// One grid cell: everything needed to run (and cache) its repetitions.
// Field order tracks how often benches set each field (designated
// initializers must follow declaration order, and skipping a *middle*
// field trips -Wmissing-field-initializers under the -Werror build).
struct ExperimentCell {
  std::string label{};  // for logs/errors only; not part of the cache key
  ProtocolFactory make_protocol{};
  NoiseMatrix noise = NoiseMatrix::noiseless(2);
  Opinion correct = 1;
  RunConfig cfg{};  // record_trajectory is not supported by the scheduler
  std::uint64_t seed = 1;
  // CellKey digest over the protocol type and construction parameters
  // captured inside make_protocol.  Required when caching is enabled.
  std::uint64_t protocol_digest = 0;
  bool use_aggregate_engine = true;
  std::optional<Matrix> artificial_noise{};
  // Wraps the engine in a FaultyEngine realizing this plan (a fresh
  // decorator per repetition, so stall state never leaks across runs).
  std::optional<FaultPlan> fault_plan{};
  // When set, repetitions are steady-state measurements instead of
  // convergence runs (cfg.h is the sample size; cfg.max_rounds is unused).
  std::optional<SteadyStateSpec> steady_state{};
  // Population-dynamics cell: when set, each repetition constructs a fresh
  // LumpedSetup from this factory and runs run_lumped() on the run substream
  // Rng(seed, 2r+1) — the init substream Rng(seed, 2r) is unused because
  // lumped initialization is deterministic.  make_protocol is ignored (pass
  // an empty factory), and fault_plan / steady_state must be unset: the
  // lumped engine supports neither decorators nor churn.  The factory bakes
  // its own NoiseMatrix; keep `noise` equal to the baked matrix (it is part
  // of the cache key) and fold every factory parameter into protocol_digest.
  // Lumped cells fold a distinct engine kind into the cache key, so their
  // entries never alias agent-engine entries for the same parameters.
  std::function<LumpedSetup()> make_lumped{};
};

// Compact per-repetition outcome — the unit the cache stores.  Everything
// the table benches derive from a RunResult, minus trajectories; the three
// trailing fields carry steady-state/churn measurements and are zero for
// convergence cells.
struct RepOutcome {
  bool all_correct_at_end = false;
  bool stable = false;
  std::uint64_t rounds_run = 0;
  std::uint64_t first_all_correct = kNever;
  std::uint64_t correct_at_end = 0;
  double mean_correct_fraction = 0.0;
  double min_correct_fraction = 0.0;
  std::uint64_t resets = 0;
};

RepOutcome to_outcome(const RunResult& r) noexcept;
// Steady-state repetitions count as "successful" when the correct fraction
// never dipped below 1 inside the measure window (full consensus held
// throughout); the interesting metrics are the fraction fields themselves.
RepOutcome to_outcome(const SteadyStateResult& r) noexcept;
RepOutcome to_outcome(const ChurnResult& r) noexcept;

// Statistics of one cell over the prefix [0, reps) selected by the stop
// rule.  All fields are deterministic functions of the outcomes in index
// order (never of scheduling or cache state) — except the bookkeeping tail
// (reps_computed, reps_cached, transient_retries, cache_quarantined), which
// describes this invocation and is excluded from the sweep report.
struct CellStats {
  std::uint64_t reps = 0;       // prefix length the statistics cover
  std::uint64_t successes = 0;  // all_correct_at_end within the prefix
  std::uint64_t stable_successes = 0;  // ... AND stable
  double success_rate = 0.0;
  double stable_success_rate = 0.0;
  Interval wilson;              // 95% Wilson interval of the stop metric
  double ci_halfwidth = 0.0;    // (wilson.upper - wilson.lower) / 2
  // Welford accumulation over first_all_correct of converged repetitions,
  // in index order; nullopt when none converged.
  std::optional<double> mean_convergence_round;
  double convergence_stddev = 0.0;
  double mean_rounds_run = 0.0;
  // Steady-state aggregates over the prefix (meaningful for cells with a
  // SteadyStateSpec; identically 0 / 1 / 0 for convergence cells).
  double mean_steady_fraction = 0.0;  // mean of mean_correct_fraction
  double min_steady_fraction = 1.0;   // min of min_correct_fraction
  std::uint64_t total_resets = 0;     // churn resets summed over the prefix
  bool early_stopped = false;   // reps < max_reps due to the CI rule
  // Graceful degradation: repetitions whose retry budget was exhausted.
  // A failure at index f pins the usable prefix to [0, f); the cell then
  // reports the statistics of that shorter prefix with degraded = true
  // instead of hanging or aborting the sweep.
  std::uint64_t failed_reps = 0;
  bool degraded = false;
  std::uint64_t reps_computed = 0;  // fresh simulations this invocation
  std::uint64_t reps_cached = 0;    // reps replayed from cache or manifest
  std::uint64_t transient_retries = 0;  // requeues after transient failures
  std::uint64_t cache_quarantined = 0;  // corrupt cache entries quarantined
  std::uint64_t cache_key = 0;      // full content digest of the cell
};

// Thrown by a repetition (or injected via SchedulerOptions::rep_hook in
// tests) to signal a transient, retryable failure.  OperationCancelled —
// the watchdog's signal — is classified the same way; any other exception
// is fatal and aborts the sweep as before.
struct TransientRepFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct SchedulerOptions {
  // Worker lanes draining the global queue; 0 = hardware_concurrency.
  unsigned threads = 0;
  StopRule stop{};
  // Directory of the content-addressed result cache; empty disables it.
  std::string cache_dir{};
  // Engine lanes inside each repetition (Engine::set_threads); 0 = auto
  // anti-oversubscription split as in RepeatOptions::engine_threads.
  unsigned engine_threads = 1;
  // Checkpoint/resume manifest file; empty disables.  A sweep restarted
  // with the same path replays completed (cell × repetition) outcomes and
  // recomputes only what is missing.
  std::string manifest_path{};
  // Watchdog deadline per repetition, in seconds; <= 0 disables.  An
  // overdue repetition is cooperatively cancelled (CancelToken) and
  // requeued like any transient failure.
  double rep_timeout = 0.0;
  // Requeue budget per repetition after transient failures; attempt
  // count = 1 + max_retries, then the repetition fails permanently and the
  // cell degrades.
  std::uint64_t max_retries = 2;
  // Path of the deterministic sweep-report JSON; empty disables.  Contains
  // only run-invariant statistics plus the degraded/failure accounting, so
  // interrupted+resumed and uninterrupted sweeps emit byte-identical files.
  std::string report_path{};
  // Filesystem fault injection for the cache/manifest/report I/O (chaos
  // tests); a zero plan is bit-identical passthrough.
  io::FsFaultPlan fs_faults{};
  // Test seam: invoked before each *computed* repetition (cell index, rep
  // index).  A throw from the hook is classified like a throw from the
  // repetition itself — TransientRepFailure/OperationCancelled requeue,
  // anything else aborts (how the chaos tests emulate a mid-sweep crash).
  std::function<void(std::size_t, std::uint64_t)> rep_hook{};
};

// Outcome of parsing one cache entry; exposed (with the parser itself) so
// the regression tests can pin the diagnosis of each corruption class.
enum class CacheEntryStatus {
  kHit,                 // current format, checksum and key verified
  kMigrated,            // valid legacy v1 entry (no checksum) — rewrite due
  kMissing,             // no file
  kTruncatedHeader,     // header line incomplete (torn write at the start)
  kWrongFormatVersion,  // parsed header, unknown record format version
  kKeyMismatch,         // parsed header, entry belongs to a different cell
  kChecksumMismatch,    // v2 body does not match its CRC (torn/corrupt)
  kMalformedRecord,     // header ok, body does not parse
};

std::string_view to_string(CacheEntryStatus status) noexcept;

struct CacheEntry {
  CacheEntryStatus status = CacheEntryStatus::kMissing;
  std::vector<RepOutcome> outcomes;
};

// Parses a cache file payload for the cell identified by `key`.  Outcomes
// are returned only for kHit / kMigrated.
CacheEntry parse_cache_entry(std::string_view payload, std::uint64_t key);

// Serializes the prefix [0, reps) of `outcomes` in the current (v2)
// record format, with the entry CRC in the header.
std::string serialize_cache_entry(std::uint64_t key,
                                  const std::vector<RepOutcome>& outcomes,
                                  std::uint64_t reps);

// The deterministic stopping point: smallest m in [min_reps, max_reps] whose
// Wilson half-width over outcomes[0, m) meets rule.ci_halfwidth, else
// max_reps (also when early stopping is disabled).  outcomes.size() must be
// >= the returned value; exposed for tests.
std::uint64_t stop_point(const std::vector<RepOutcome>& outcomes,
                         const StopRule& rule);

// Statistics over the prefix [0, reps) of outcomes; exposed for tests.
// reps == 0 (a cell whose very first repetition failed permanently) yields
// the all-default stats — the caller flags it degraded.
CellStats finalize_prefix(const std::vector<RepOutcome>& outcomes,
                          std::uint64_t reps, const StopRule& rule);

// Full content digest of one cell (schema version + protocol_digest + every
// scheduler-visible input).  This is the cache file's identity.
std::uint64_t cell_cache_key(const ExperimentCell& cell);

// Deterministic JSON report of a finished sweep: one object per cell with
// the run-invariant statistics and the degradation accounting.  Identical
// byte-for-byte for interrupted+resumed and uninterrupted sweeps.
std::string sweep_report_json(const std::vector<ExperimentCell>& cells,
                              const std::vector<CellStats>& stats);

// Runs every cell's repetitions through one global work queue and returns
// one CellStats per cell, in input order.  Transient repetition failures
// (watchdog cancellation, TransientRepFailure) are retried up to the budget
// and then degrade the cell; any other repetition error is rethrown
// (remaining work is abandoned, completed work is already in the manifest).
std::vector<CellStats> run_experiment(const std::vector<ExperimentCell>& cells,
                                      const SchedulerOptions& opts);

}  // namespace noisypull
