#include "noisypull/analysis/table.hpp"

#include <iomanip>
#include <iostream>
#include <sstream>

#include "noisypull/common/atomic_io.hpp"
#include "noisypull/common/check.hpp"

namespace noisypull {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  NOISYPULL_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::cell(std::string value) {
  NOISYPULL_CHECK(current_.size() < headers_.size(),
                  "row has more cells than headers");
  current_.push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::optional<double> value, int precision) {
  if (!value) return cell(std::string("never"));
  return cell(*value, precision);
}

void Table::end_row() {
  NOISYPULL_CHECK(current_.size() == headers_.size(),
                  "row does not fill every column");
  rows_.push_back(std::move(current_));
  current_.clear();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) line(row);
}

void Table::write_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

bool Table::write_csv_file(const std::string& path) const {
  // Published through the crash-safe seam: a bench killed mid-emit leaves
  // either the previous CSV or the new one, never a torn file.
  std::ostringstream os;
  write_csv(os);
  return io::atomic_write_file(path, os.str());
}

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--csv" && i + 1 < argc) {
      args.csv = true;
      args.csv_path = argv[++i];
    } else if (a == "--ci-halfwidth" && i + 1 < argc) {
      args.ci_halfwidth = std::stod(argv[++i]);
    } else if (a == "--max-reps" && i + 1 < argc) {
      args.max_reps = std::stoull(argv[++i]);
    } else if (a == "--cache-dir" && i + 1 < argc) {
      args.cache_dir = argv[++i];
    } else if (a == "--no-cache") {
      args.no_cache = true;
    } else if (a == "--threads" && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (a == "--resume" && i + 1 < argc) {
      args.manifest_path = argv[++i];
    } else if (a == "--rep-timeout" && i + 1 < argc) {
      args.rep_timeout = std::stod(argv[++i]);
    } else if (a == "--max-retries" && i + 1 < argc) {
      args.max_retries = std::stoull(argv[++i]);
    } else if (a == "--sweep-report" && i + 1 < argc) {
      args.report_path = argv[++i];
    }
  }
  return args;
}

void BenchArgs::emit(const Table& table, const std::string& suffix) const {
  table.print(std::cout);
  std::cout << "\n";
  if (csv) {
    const std::string path = csv_path + suffix + ".csv";
    if (!table.write_csv_file(path)) {
      std::cerr << "warning: could not write " << path << "\n";
    }
  }
}

}  // namespace noisypull
