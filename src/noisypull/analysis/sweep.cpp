#include "noisypull/analysis/sweep.hpp"

#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

std::vector<std::uint64_t> geometric_grid(std::uint64_t lo, std::uint64_t hi,
                                          double factor) {
  NOISYPULL_CHECK(lo >= 1 && lo <= hi, "invalid geometric grid bounds");
  NOISYPULL_CHECK(factor > 1.0, "geometric grid factor must exceed 1");
  std::vector<std::uint64_t> grid;
  double value = static_cast<double>(lo);
  while (value <= static_cast<double>(hi) + 0.5) {
    const auto v = static_cast<std::uint64_t>(std::llround(value));
    if (grid.empty() || grid.back() != v) grid.push_back(v);
    value *= factor;
  }
  return grid;
}

std::vector<double> linear_grid(double lo, double hi, std::size_t points) {
  NOISYPULL_CHECK(points >= 2, "linear grid needs at least 2 points");
  NOISYPULL_CHECK(lo <= hi, "invalid linear grid bounds");
  std::vector<double> grid(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = lo + step * static_cast<double>(i);
  }
  grid.back() = hi;  // avoid accumulation drift on the endpoint
  return grid;
}

}  // namespace noisypull
