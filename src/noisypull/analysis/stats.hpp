// Summary statistics for experiment reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace noisypull {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n−1 denominator)
  double ci95_half_width = 0.0;  // normal-approximation 95% CI on the mean
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

// Computes a Summary of `values`; requires at least one value.
Summary summarize(std::span<const double> values);

// p-quantile (0 ≤ p ≤ 1) by linear interpolation of the sorted sample.
double quantile(std::span<const double> values, double p);

// Wilson score interval for a binomial proportion at 95% confidence:
// returns {lower, upper} for `successes` out of `trials` (trials ≥ 1).
struct Interval {
  double lower = 0.0;
  double upper = 0.0;
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials);

// Half-width of the Wilson interval — the quantity the experiment
// scheduler's adaptive stopping rule compares against its target
// (analysis/scheduler.hpp).
double wilson_halfwidth(std::uint64_t successes, std::uint64_t trials);

// Streaming mean/variance accumulator (Welford's algorithm).  Used by the
// experiment scheduler to fold per-repetition convergence rounds without
// materializing a vector; numerically stable for long streams.  The result
// depends on the order values are pushed, so deterministic consumers must
// push in a canonical order (the scheduler pushes in repetition-index
// order).
class Welford {
 public:
  void push(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  // Sample standard deviation (n−1 denominator); 0 for fewer than 2 values.
  double sample_stddev() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
};

// Pearson chi-square statistic of observed counts against expected
// probabilities (same length, probabilities summing to ~1).  Used by the
// statistical tests that cross-validate samplers and engines.
double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected_probs);

// 99.9% critical values of the chi-square distribution for small degrees of
// freedom (1..16) — enough for alphabet-sized goodness-of-fit tests.
double chi_square_critical_999(std::size_t degrees_of_freedom);

}  // namespace noisypull
