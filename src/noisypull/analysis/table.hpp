// Fixed-width table printing and CSV export for the bench harness.
//
// Every tab_* bench prints its results as an aligned text table (the "rows
// the paper reports") and can mirror them to CSV for plotting.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace noisypull {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell setters for the row being built; call end_row() to commit it.
  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  // Empty optionals (e.g. mean_convergence_round when no run converged)
  // render as "never" — in the table and in the CSV.
  Table& cell(std::optional<double> value, int precision = 3);
  void end_row();

  std::size_t num_rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  // Aligned, pipe-separated rendering.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV (values here never contain commas or quotes).
  void write_csv(std::ostream& os) const;

  // Writes CSV to `path`; returns false (without throwing) on I/O failure.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> current_;
};

// Shared argv convention of the bench binaries: `--csv <path>` mirrors the
// printed table(s) to CSV files (a numeric suffix is appended when a binary
// emits several tables).  The scheduler flags below tune the experiment
// scheduler (analysis/scheduler.hpp) in the tab_* benches; they are stored
// raw here (this module prints tables, it does not schedule) and folded
// into SchedulerOptions by bench::scheduler_options (bench_common.hpp).
struct BenchArgs {
  bool csv = false;
  std::string csv_path;

  // --ci-halfwidth <w>: enable adaptive early stopping at Wilson 95%
  // half-width <= w (0 = off, every cell runs its full repetition count).
  double ci_halfwidth = 0.0;
  // --max-reps <n>: override a bench's repetition budget per cell (0 =
  // keep the bench's built-in default).
  std::uint64_t max_reps = 0;
  // --cache-dir <path>: content-addressed result cache directory.
  // --no-cache: ignore --cache-dir even if given.
  std::string cache_dir;
  bool no_cache = false;
  // --threads <n>: scheduler worker lanes (0 = hardware concurrency).
  unsigned threads = 0;
  // --resume <path>: checkpoint/resume manifest file.  A killed sweep
  // rerun with the same path replays completed repetitions and recomputes
  // only what is missing (bit-identical statistics).
  std::string manifest_path;
  // --rep-timeout <seconds>: watchdog deadline per repetition (0 = off).
  double rep_timeout = 0.0;
  // --max-retries <n>: requeue budget per repetition after transient
  // failures before the cell degrades.
  std::uint64_t max_retries = 2;
  // --sweep-report <path>: write the deterministic sweep-report JSON
  // (per-cell statistics + degraded/failure accounting).
  std::string report_path;

  static BenchArgs parse(int argc, char** argv);

  // Prints the table and, if requested, writes `<csv_path><suffix>.csv`.
  void emit(const Table& table, const std::string& suffix = "") const;
};

}  // namespace noisypull
