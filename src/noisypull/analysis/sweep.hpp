// Parameter grid helpers and wall-clock timing for the bench harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace noisypull {

// {lo, lo·factor, lo·factor², ...} up to and including the last value ≤ hi
// (each value rounded to an integer, duplicates removed).  factor > 1.
std::vector<std::uint64_t> geometric_grid(std::uint64_t lo, std::uint64_t hi,
                                          double factor = 2.0);

// `points` evenly spaced values covering [lo, hi] inclusive; points ≥ 2.
std::vector<double> linear_grid(double lo, double hi, std::size_t points);

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace noisypull
