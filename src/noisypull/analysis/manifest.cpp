#include "noisypull/analysis/manifest.hpp"

#include <bit>
#include <iomanip>
#include <sstream>
#include <string>

namespace noisypull {
namespace {

constexpr const char* kManifestMagic = "noisypull-sweep-manifest";
constexpr std::uint64_t kManifestVersion = 1;

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

std::string header_line(std::uint64_t digest) {
  std::ostringstream os;
  os << kManifestMagic << " " << kManifestVersion << " " << hex16(digest);
  return os.str();
}

// Record body without the trailing CRC token.
std::string record_body(std::uint64_t cell_key, std::uint64_t rep,
                        const RepOutcome& o) {
  std::ostringstream os;
  os << hex16(cell_key) << " " << std::dec << rep << " "
     << (o.all_correct_at_end ? 1 : 0) << " " << (o.stable ? 1 : 0) << " "
     << o.rounds_run << " " << o.first_all_correct << " " << o.correct_at_end
     << " " << hex16(std::bit_cast<std::uint64_t>(o.mean_correct_fraction))
     << " " << hex16(std::bit_cast<std::uint64_t>(o.min_correct_fraction))
     << " " << o.resets;
  return os.str();
}

std::string record_line(std::uint64_t cell_key, std::uint64_t rep,
                        const RepOutcome& o) {
  const std::string body = record_body(cell_key, rep, o);
  std::ostringstream os;
  os << body << " " << std::hex << std::setfill('0') << std::setw(8)
     << io::crc32(body);
  return os.str();
}

// Parses one record line; false on any malformation or CRC mismatch (the
// expected shape of a torn tail).
bool parse_record(const std::string& line, std::uint64_t& cell_key,
                  std::uint64_t& rep, RepOutcome& o) {
  const std::size_t cut = line.find_last_of(' ');
  if (cut == std::string::npos || cut + 1 >= line.size()) return false;
  const std::string body = line.substr(0, cut);
  std::uint32_t stored_crc = 0;
  {
    std::istringstream crc_in(line.substr(cut + 1));
    crc_in >> std::hex >> stored_crc;
    if (!crc_in) return false;
  }
  if (io::crc32(body) != stored_crc) return false;

  std::istringstream in(body);
  int correct = 0;
  int stable = 0;
  std::uint64_t mean_bits = 0;
  std::uint64_t min_bits = 0;
  in >> std::hex >> cell_key >> std::dec >> rep >> correct >> stable >>
      o.rounds_run >> o.first_all_correct >> o.correct_at_end >> std::hex >>
      mean_bits >> min_bits >> std::dec >> o.resets;
  if (!in || (correct != 0 && correct != 1) || (stable != 0 && stable != 1)) {
    return false;
  }
  o.all_correct_at_end = correct == 1;
  o.stable = stable == 1;
  o.mean_correct_fraction = std::bit_cast<double>(mean_bits);
  o.min_correct_fraction = std::bit_cast<double>(min_bits);
  return true;
}

}  // namespace

std::uint64_t sweep_digest(const std::vector<std::uint64_t>& cell_keys) {
  std::uint64_t d = fnv::kOffsetBasis;
  for (const std::uint64_t key : cell_keys) d = fnv::hash_u64(d, key);
  return fnv::hash_u64(d, cell_keys.size());
}

void SweepManifest::open(const std::filesystem::path& path,
                         std::uint64_t digest, const io::IoOptions& io) {
  path_ = path;
  io_ = io;
  enabled_ = true;
  records_.clear();

  const auto payload = io::read_file(path_, io_);
  if (payload) {
    std::istringstream in(*payload);
    std::string first;
    std::getline(in, first);
    if (first != header_line(digest)) {
      // Different sweep, older version, or torn header: this journal can
      // not seed the current sweep.  Preserve it for diagnosis and start
      // fresh rather than silently mixing outcomes across sweeps.
      io::quarantine_file(path_, "stale-manifest");
    } else {
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::uint64_t cell_key = 0;
        std::uint64_t rep = 0;
        RepOutcome o;
        if (!parse_record(line, cell_key, rep, o)) continue;  // torn tail
        records_[{cell_key, rep}] = o;
      }
    }
  }

  // Compact the surviving records back to disk: heals torn tails, drops
  // duplicate lines from earlier resume cycles, and (re)writes the header.
  std::string compacted = header_line(digest);
  compacted += '\n';
  for (const auto& [key, outcome] : records_) {
    compacted += record_line(key.first, key.second, outcome);
    compacted += '\n';
  }
  io::atomic_write_file(path_, compacted, io_);  // best-effort
}

void SweepManifest::record(std::uint64_t cell_key, std::uint64_t rep,
                           const RepOutcome& o) {
  if (!enabled_) return;
  io::append_line(path_, record_line(cell_key, rep, o), io_);  // best-effort
}

}  // namespace noisypull
