#include "noisypull/analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

Summary summarize(std::span<const double> values) {
  NOISYPULL_CHECK(!values.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = values.size();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(ss / static_cast<double>(s.count - 1))
                 : 0.0;
  s.ci95_half_width =
      1.959964 * s.stddev / std::sqrt(static_cast<double>(s.count));
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile(sorted, 0.5);
  return s;
}

double quantile(std::span<const double> values, double p) {
  NOISYPULL_CHECK(!values.empty(), "cannot take a quantile of empty sample");
  NOISYPULL_CHECK(p >= 0.0 && p <= 1.0, "quantile p must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials) {
  NOISYPULL_CHECK(trials >= 1, "Wilson interval needs at least one trial");
  NOISYPULL_CHECK(successes <= trials, "more successes than trials");
  const double z = 1.959964;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  return Interval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

double wilson_halfwidth(std::uint64_t successes, std::uint64_t trials) {
  const Interval iv = wilson_interval(successes, trials);
  return (iv.upper - iv.lower) / 2.0;
}

void Welford::push(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Welford::sample_stddev() const noexcept {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected_probs) {
  NOISYPULL_CHECK(observed.size() == expected_probs.size(),
                  "observed/expected size mismatch");
  NOISYPULL_CHECK(!observed.empty(), "empty chi-square input");
  std::uint64_t total = 0;
  for (auto o : observed) total += o;
  NOISYPULL_CHECK(total > 0, "no observations");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      NOISYPULL_CHECK(observed[i] == 0,
                      "observed mass in a zero-probability cell");
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double chi_square_critical_999(std::size_t degrees_of_freedom) {
  // chi2.isf(0.001, df) for df = 1..16.
  static constexpr double kCritical[] = {
      10.828, 13.816, 16.266, 18.467, 20.515, 22.458, 24.322, 26.124,
      27.877, 29.588, 31.264, 32.909, 34.528, 36.123, 37.697, 39.252};
  NOISYPULL_CHECK(degrees_of_freedom >= 1 && degrees_of_freedom <= 16,
                  "df outside the tabulated range");
  return kCritical[degrees_of_freedom - 1];
}

}  // namespace noisypull
