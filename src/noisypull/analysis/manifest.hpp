// Per-sweep checkpoint manifest: the crash-recovery journal of the
// experiment scheduler.
//
// While a sweep runs, every completed (cell × repetition) outcome is
// appended as one self-checksummed line.  A restarted sweep replays the
// manifest, seeds its outcome tables with the recorded repetitions, and
// recomputes only what is missing — statistically indistinguishable from an
// uninterrupted run because every repetition is a pure function of
// (cell, r) and all statistics read outcome prefixes in index order.
//
// File format (line-oriented text, all integers decimal unless noted):
//
//   noisypull-sweep-manifest 1 <sweep-digest hex16>
//   <cell-key hex16> <rep> <c> <s> <rounds> <first> <corr>
//       <mean-bits hex16> <min-bits hex16> <resets> <crc hex8>
//   (one record per line; wrapped above for width)
//
// The sweep digest is an FNV-1a fold of the cell cache keys in input
// order: a manifest written for a different sweep (different grid, seeds,
// or cell order) never replays into this one — it is quarantined and a
// fresh manifest started.  Each record line carries a CRC-32 over its own
// body, so the torn tail line of a SIGKILLed append is detected and
// dropped (that repetition is simply recomputed).  Doubles are stored as
// bit patterns for exact round-trips.
//
// Crash-safety discipline: appends go through io::append_line (a torn
// append loses at most the line being written); open() compacts the
// surviving valid records back to disk via io::atomic_write_file, healing
// torn tails and bounding file growth across many resume cycles.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "noisypull/analysis/scheduler.hpp"
#include "noisypull/common/atomic_io.hpp"

namespace noisypull {

// Identity of a sweep: FNV-1a over the cell cache keys in input order.
std::uint64_t sweep_digest(const std::vector<std::uint64_t>& cell_keys);

class SweepManifest {
 public:
  // Default-constructed manifest is disabled: record() is a no-op and
  // records() is empty.
  SweepManifest() = default;

  // Opens (creating or resuming) the manifest at `path` for the sweep
  // identified by `digest`.  Valid records are replayed into records();
  // a manifest for a different sweep or with a corrupt header is
  // quarantined and a fresh one started.  Torn tail lines are dropped.
  void open(const std::filesystem::path& path, std::uint64_t digest,
            const io::IoOptions& io);

  bool enabled() const noexcept { return enabled_; }

  // Completed outcomes replayed from disk, keyed by (cell key, rep).
  const std::map<std::pair<std::uint64_t, std::uint64_t>, RepOutcome>&
  records() const noexcept {
    return records_;
  }

  // Appends one completed repetition.  Best-effort: a failed append only
  // means a future resume recomputes this repetition.  NOT thread-safe —
  // the scheduler serializes calls.
  void record(std::uint64_t cell_key, std::uint64_t rep, const RepOutcome& o);

 private:
  bool enabled_ = false;
  std::filesystem::path path_{};
  io::IoOptions io_{};
  std::map<std::pair<std::uint64_t, std::uint64_t>, RepOutcome> records_{};
};

}  // namespace noisypull
