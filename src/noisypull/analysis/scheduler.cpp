#include "noisypull/analysis/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

// The scheduler's shared queue state is guarded by one mutex and a condition
// variable (workers park when every remaining repetition is already in
// flight).  Allowlisted by tools/noisypull_lint.cpp's threading-header rule:
// like sim/repeat.cpp, this file *drives* the shared ThreadPool rather than
// opening a new parallelism seam.
#include <condition_variable>
#include <mutex>
#include <thread>

#include "noisypull/common/check.hpp"
#include "noisypull/common/thread_pool.hpp"
#include "noisypull/fault/faulty_engine.hpp"

namespace noisypull {

namespace {

namespace fs = std::filesystem;

// Cache files are named by the cell's content digest; the format is a small
// line-oriented text record (version line, key echo, then one line per
// repetition in index order).  A file that fails any parse step is treated
// as a miss, never an error — the cache is an accelerator, not a store of
// record.
constexpr const char* kCacheMagic = "noisypull-cell-cache";

std::string cache_file_name(std::uint64_t key) {
  std::ostringstream os;
  os << "cell-" << std::hex << std::setfill('0') << std::setw(16) << key
     << ".npsum";
  return os.str();
}

std::vector<RepOutcome> load_cache_file(const fs::path& path,
                                        std::uint64_t key) {
  std::ifstream in(path);
  if (!in) return {};
  std::string magic;
  std::uint64_t version = 0;
  std::uint64_t stored_key = 0;
  std::uint64_t reps = 0;
  in >> magic >> version >> std::hex >> stored_key >> std::dec >> reps;
  if (!in || magic != kCacheMagic || version != kCellCacheSchemaVersion ||
      stored_key != key) {
    return {};
  }
  std::vector<RepOutcome> outcomes;
  outcomes.reserve(reps);
  for (std::uint64_t r = 0; r < reps; ++r) {
    std::uint64_t index = 0;
    int correct = 0;
    int stable = 0;
    RepOutcome o;
    in >> index >> correct >> stable >> o.rounds_run >> o.first_all_correct >>
        o.correct_at_end;
    if (!in || index != r || (correct != 0 && correct != 1) ||
        (stable != 0 && stable != 1)) {
      return {};
    }
    o.all_correct_at_end = correct == 1;
    o.stable = stable == 1;
    outcomes.push_back(o);
  }
  return outcomes;
}

void store_cache_file(const fs::path& dir, std::uint64_t key,
                      const std::vector<RepOutcome>& outcomes,
                      std::uint64_t reps) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return;  // cache is best-effort; the run already succeeded
  const fs::path final_path = dir / cache_file_name(key);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path);
    if (!out) return;
    out << kCacheMagic << " " << kCellCacheSchemaVersion << " " << std::hex
        << key << std::dec << " " << reps << "\n";
    for (std::uint64_t r = 0; r < reps; ++r) {
      const RepOutcome& o = outcomes[r];
      out << r << " " << (o.all_correct_at_end ? 1 : 0) << " "
          << (o.stable ? 1 : 0) << " " << o.rounds_run << " "
          << o.first_all_correct << " " << o.correct_at_end << "\n";
    }
    if (!out) return;
  }
  fs::rename(tmp_path, final_path, ec);  // atomic publish on POSIX
}

StopRule normalized(StopRule rule) {
  NOISYPULL_CHECK(rule.max_reps >= 1, "stop rule needs at least one rep");
  rule.min_reps = std::clamp<std::uint64_t>(rule.min_reps, 1, rule.max_reps);
  return rule;
}

bool outcome_success(const RepOutcome& o, bool require_stability) noexcept {
  // Mirrors success_rate() in sim/repeat.cpp: stability on the wrong
  // opinion is failure, not success.
  return require_stability ? (o.stable && o.all_correct_at_end)
                           : o.all_correct_at_end;
}

// Mutable scheduling state of one cell.  `outcomes[r]` is valid iff
// `have[r]`; `frontier` is the length of the contiguous completed prefix,
// which is the only thing stopping decisions and statistics ever read.
struct CellState {
  std::vector<RepOutcome> outcomes;
  std::vector<char> have;
  std::uint64_t frontier = 0;
  std::uint64_t next_issue = 0;   // next repetition index to hand out
  std::uint64_t issue_cap = 0;    // reps allowed to issue right now
  std::uint64_t eval_cursor = 0;  // successes folded into eval_successes
  std::uint64_t eval_successes = 0;
  std::uint64_t stop_at = 0;      // decided prefix length (valid iff decided)
  bool decided = false;
  std::uint64_t computed = 0;     // fresh simulations
  std::uint64_t cached = 0;       // outcomes replayed from the cache file
  std::uint64_t cached_file_reps = 0;  // reps the loaded file already held
};

}  // namespace

CellKey& CellKey::f64(double v) noexcept {
  return u64(std::bit_cast<std::uint64_t>(v));
}

CellKey& CellKey::str(std::string_view s) noexcept {
  for (const char c : s) {
    digest_ = fnv::hash_byte(digest_, static_cast<std::uint8_t>(c));
  }
  // Length terminator: distinguishes str("ab").str("c") from str("a").str("bc").
  return u64(s.size());
}

CellKey& CellKey::matrix(const Matrix& m) noexcept {
  u64(m.rows());
  u64(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) f64(m(i, j));
  }
  return *this;
}

RepOutcome to_outcome(const RunResult& r) noexcept {
  return RepOutcome{.all_correct_at_end = r.all_correct_at_end,
                    .stable = r.stable,
                    .rounds_run = r.rounds_run,
                    .first_all_correct = r.first_all_correct,
                    .correct_at_end = r.correct_at_end};
}

std::uint64_t stop_point(const std::vector<RepOutcome>& outcomes,
                         const StopRule& rule_in) {
  const StopRule rule = normalized(rule_in);
  if (rule.ci_halfwidth <= 0.0) return rule.max_reps;
  NOISYPULL_CHECK(outcomes.size() >= rule.min_reps,
                  "stop_point needs at least min_reps outcomes");
  std::uint64_t successes = 0;
  for (std::uint64_t m = 1; m <= rule.max_reps; ++m) {
    if (outcomes.size() < m) break;
    if (outcome_success(outcomes[m - 1], rule.require_stability)) ++successes;
    if (m >= rule.min_reps &&
        wilson_halfwidth(successes, m) <= rule.ci_halfwidth) {
      return m;
    }
  }
  return rule.max_reps;
}

CellStats finalize_prefix(const std::vector<RepOutcome>& outcomes,
                          std::uint64_t reps, const StopRule& rule_in) {
  const StopRule rule = normalized(rule_in);
  NOISYPULL_CHECK(reps >= 1 && reps <= outcomes.size(),
                  "finalize_prefix needs a non-empty completed prefix");
  CellStats stats;
  stats.reps = reps;
  Welford convergence;
  double rounds_sum = 0.0;
  for (std::uint64_t r = 0; r < reps; ++r) {
    const RepOutcome& o = outcomes[r];
    if (o.all_correct_at_end) {
      ++stats.successes;
      if (o.stable) ++stats.stable_successes;
    }
    if (o.first_all_correct != kNever) {
      convergence.push(static_cast<double>(o.first_all_correct));
    }
    rounds_sum += static_cast<double>(o.rounds_run);
  }
  const double denom = static_cast<double>(reps);
  stats.success_rate = static_cast<double>(stats.successes) / denom;
  stats.stable_success_rate =
      static_cast<double>(stats.stable_successes) / denom;
  const std::uint64_t metric =
      rule.require_stability ? stats.stable_successes : stats.successes;
  stats.wilson = wilson_interval(metric, reps);
  stats.ci_halfwidth = (stats.wilson.upper - stats.wilson.lower) / 2.0;
  if (convergence.count() > 0) {
    stats.mean_convergence_round = convergence.mean();
    stats.convergence_stddev = convergence.sample_stddev();
  }
  stats.mean_rounds_run = rounds_sum / denom;
  stats.early_stopped = reps < rule.max_reps;
  return stats;
}

std::uint64_t cell_cache_key(const ExperimentCell& cell) {
  CellKey key;
  key.u64(kCellCacheSchemaVersion);
  key.u64(cell.protocol_digest);
  key.matrix(cell.noise.matrix());
  if (cell.artificial_noise) {
    key.u64(1).matrix(*cell.artificial_noise);
  } else {
    key.u64(0);
  }
  if (cell.fault_plan) {
    const FaultPlan& p = *cell.fault_plan;
    key.u64(1)
        .u64(p.seed)
        .u64(p.first_eligible)
        .f64(p.byzantine.fraction)
        .u64(static_cast<std::uint64_t>(p.byzantine.strategy))
        .u64(p.byzantine.wrong_symbol)
        .u64(p.byzantine.honest_symbol)
        .u64(p.byzantine.mimic_symbol)
        .f64(p.drop.p)
        .f64(p.stall.crash_rate)
        .u64(p.stall.min_rounds)
        .u64(p.stall.max_rounds)
        .f64(p.stall.blackout_fraction)
        .u64(p.stall.blackout_start)
        .u64(p.stall.blackout_rounds)
        .f64(p.burst.rate)
        .u64(p.burst.rounds)
        .f64(p.burst.delta);
  } else {
    key.u64(0);
  }
  // RunConfig: engine_threads is trajectory-invariant and deliberately
  // excluded (the header comment's invalidation contract).
  key.u64(cell.cfg.h)
      .u64(cell.cfg.max_rounds)
      .u64(cell.cfg.stability_window)
      .u64(cell.use_aggregate_engine ? 1 : 0)
      .u64(cell.seed);
  return key.digest();
}

std::vector<CellStats> run_experiment(const std::vector<ExperimentCell>& cells,
                                      const SchedulerOptions& opts) {
  NOISYPULL_CHECK(!cells.empty(), "run_experiment needs at least one cell");
  const StopRule rule = normalized(opts.stop);
  for (const ExperimentCell& cell : cells) {
    NOISYPULL_CHECK(!cell.cfg.record_trajectory,
                    "the scheduler does not record trajectories; use "
                    "run_repetitions for trajectory experiments");
  }

  unsigned threads = opts.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t total_reps =
      rule.max_reps * static_cast<std::uint64_t>(cells.size());
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(1, total_reps)));
  unsigned engine_threads = opts.engine_threads;
  if (engine_threads == 0) {
    engine_threads =
        std::max(1u, std::thread::hardware_concurrency() / threads);
  }

  // With early stopping on, keep at most `lookahead` repetitions beyond the
  // decided prefix in flight per cell: enough to keep every worker busy,
  // bounded so a cell that is about to stop does not flood the queue with
  // work its statistics will never use.  Wasted overshoot changes wall-clock
  // only — never statistics, which read the prefix [0, stop_at).
  const bool adaptive = rule.ci_halfwidth > 0.0;
  const std::uint64_t lookahead =
      adaptive ? std::max<std::uint64_t>(2 * threads, 4) : rule.max_reps;

  std::vector<CellState> states(cells.size());
  const bool use_cache = !opts.cache_dir.empty();
  const fs::path cache_dir(opts.cache_dir);
  std::vector<std::uint64_t> keys(cells.size(), 0);

  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellState& st = states[c];
    st.outcomes.resize(rule.max_reps);
    st.have.assign(rule.max_reps, 0);
    if (use_cache) {
      keys[c] = cell_cache_key(cells[c]);
      const auto cached =
          load_cache_file(cache_dir / cache_file_name(keys[c]), keys[c]);
      const std::uint64_t usable =
          std::min<std::uint64_t>(cached.size(), rule.max_reps);
      for (std::uint64_t r = 0; r < usable; ++r) {
        st.outcomes[r] = cached[r];
        st.have[r] = 1;
      }
      st.frontier = usable;
      st.next_issue = usable;  // the cached prefix is never recomputed
      st.cached = usable;
      st.cached_file_reps = cached.size();
    }
  }

  std::mutex mutex;
  std::condition_variable work_cv;
  std::size_t incomplete = 0;
  std::exception_ptr first_error;
  bool aborted = false;

  // Prefix-order decision advance for one cell; caller holds the mutex.
  // Folds newly contiguous outcomes into the running success count and
  // decides the stopping point the moment the deciding prefix completes.
  const auto advance_decision = [&](CellState& st) {
    while (!st.decided && st.eval_cursor < st.frontier) {
      const std::uint64_t m = st.eval_cursor + 1;
      if (outcome_success(st.outcomes[st.eval_cursor],
                          rule.require_stability)) {
        ++st.eval_successes;
      }
      st.eval_cursor = m;
      if (adaptive && m >= rule.min_reps && m < rule.max_reps &&
          wilson_halfwidth(st.eval_successes, m) <= rule.ci_halfwidth) {
        st.decided = true;
        st.stop_at = m;
      }
      if (m == rule.max_reps) {
        st.decided = true;
        st.stop_at = rule.max_reps;
      }
    }
    st.issue_cap =
        st.decided ? 0
                   : std::min(rule.max_reps,
                              std::max<std::uint64_t>(rule.min_reps,
                                                      st.frontier + lookahead));
  };

  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (CellState& st : states) {
      advance_decision(st);
      if (!st.decided) ++incomplete;
    }
  }

  const auto run_one = [&](const ExperimentCell& cell, std::uint64_t r,
                           Engine& engine_for_run) -> RepOutcome {
    Rng init_rng(cell.seed, 2 * r);
    Rng run_rng(cell.seed, 2 * r + 1);
    auto protocol = cell.make_protocol(init_rng);
    return to_outcome(run(*protocol, engine_for_run, cell.noise, cell.correct,
                          cell.cfg, run_rng));
  };

  const auto worker = [&](std::uint64_t lane) {
    // One engine per worker, rebuilt only when the worker switches cells:
    // repetitions of one cell reuse the engine's scratch buffers exactly as
    // the run_repetitions workers do.  Workers start spread across the grid
    // (lane-seeded cursor) and stay on their cell until it has no issuable
    // work — depth-first per worker completes decision prefixes early, and
    // the cursor only moves (work stealing) when the current cell is
    // drained.  None of this affects results: statistics are a function of
    // outcome prefixes, not of who computed them.
    std::unique_ptr<Engine> engine;
    std::size_t engine_cell = std::numeric_limits<std::size_t>::max();
    std::size_t cursor = static_cast<std::size_t>(lane) % states.size();
    for (;;) {
      std::size_t cell_index = 0;
      std::uint64_t rep = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
          if (aborted || incomplete == 0) return;
          bool found = false;
          for (std::size_t i = 0; i < states.size(); ++i) {
            const std::size_t c = (cursor + i) % states.size();
            CellState& st = states[c];
            if (st.next_issue < st.issue_cap) {
              cell_index = c;
              rep = st.next_issue++;
              cursor = c;  // affinity: keep drawing from this cell
              found = true;
              break;
            }
          }
          if (found) break;
          // Every runnable repetition is in flight; completions may raise
          // issue caps (or finish the experiment), so park until one lands.
          work_cv.wait(lock);
        }
      }

      const ExperimentCell& cell = cells[cell_index];
      try {
        if (engine_cell != cell_index || !engine) {
          if (cell.use_aggregate_engine) {
            engine = std::make_unique<AggregateEngine>();
          } else {
            engine = std::make_unique<ExactEngine>();
          }
          if (cell.artificial_noise) {
            engine->set_artificial_noise(*cell.artificial_noise);
          }
          engine->set_threads(engine_threads);
          engine_cell = cell_index;
        }
        RepOutcome outcome;
        if (cell.fault_plan) {
          // Fresh decorator per repetition: stall schedules and fault stats
          // must not leak across runs.
          FaultyEngine faulty(*engine, *cell.fault_plan);
          faulty.set_threads(engine_threads);
          outcome = run_one(cell, rep, faulty);
        } else {
          outcome = run_one(cell, rep, *engine);
        }

        const std::lock_guard<std::mutex> lock(mutex);
        CellState& st = states[cell_index];
        st.outcomes[rep] = outcome;
        st.have[rep] = 1;
        ++st.computed;
        while (st.frontier < rule.max_reps && st.have[st.frontier] != 0) {
          ++st.frontier;
        }
        const bool was_decided = st.decided;
        advance_decision(st);
        if (!was_decided && st.decided) --incomplete;
        work_cv.notify_all();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        aborted = true;
        work_cv.notify_all();
        return;
      }
    }
  };

  if (incomplete > 0) {
    if (threads == 1) {
      worker(0);
    } else {
      ThreadPool pool(threads);
      pool.parallel_for(threads, worker);
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  std::vector<CellStats> results;
  results.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellState& st = states[c];
    NOISYPULL_ASSERT(st.decided && st.stop_at >= 1);
    CellStats stats = finalize_prefix(st.outcomes, st.stop_at, rule);
    stats.reps_computed = st.computed;
    stats.reps_cached = std::min(st.cached, stats.reps);
    stats.cache_key = use_cache ? keys[c] : cell_cache_key(cells[c]);
    // Persist the full contiguous prefix — including lookahead overshoot
    // beyond the stopping point: those repetitions are valid under this key
    // and may serve a future run with a tighter CI target.
    if (use_cache && st.frontier > st.cached_file_reps) {
      store_cache_file(cache_dir, keys[c], st.outcomes, st.frontier);
    }
    results.push_back(stats);
  }
  return results;
}

}  // namespace noisypull
