#include "noisypull/analysis/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <iterator>
#include <limits>
#include <list>
#include <memory>
#include <map>
#include <sstream>

// The scheduler's shared queue state is guarded by one mutex and a condition
// variable (workers park when every remaining repetition is already in
// flight).  Allowlisted by tools/noisypull_lint.cpp's threading-header rule:
// like sim/repeat.cpp, this file *drives* the shared ThreadPool rather than
// opening a new parallelism seam.  The additional thread is the watchdog,
// which only reads steady_clock and flips CancelTokens — it never touches
// outcomes, so it cannot influence statistics.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "noisypull/analysis/manifest.hpp"
#include "noisypull/common/cancel.hpp"
#include "noisypull/common/check.hpp"
#include "noisypull/common/thread_pool.hpp"
#include "noisypull/core/ssf.hpp"
#include "noisypull/fault/faulty_engine.hpp"

namespace noisypull {

namespace {

namespace fs = std::filesystem;

// Cache files are named by the cell's content digest; the format is a small
// line-oriented text record (see serialize_cache_entry).  A file that fails
// to parse is quarantined and recomputed — the cache is an accelerator, not
// a store of record, but corruption is preserved as evidence, never
// silently swallowed.
constexpr const char* kCacheMagic = "noisypull-cell-cache";
constexpr std::uint64_t kLegacyRecordFormatVersion = 1;

std::string cache_file_name(std::uint64_t key) {
  std::ostringstream os;
  os << "cell-" << std::hex << std::setfill('0') << std::setw(16) << key
     << ".npsum";
  return os.str();
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

// Legacy v1 body: one line per repetition, no checksum, no steady fields.
bool parse_v1_body(std::istream& in, std::uint64_t reps,
                   std::vector<RepOutcome>& outcomes) {
  outcomes.reserve(reps);
  for (std::uint64_t r = 0; r < reps; ++r) {
    std::uint64_t index = 0;
    int correct = 0;
    int stable = 0;
    RepOutcome o;
    in >> index >> correct >> stable >> o.rounds_run >> o.first_all_correct >>
        o.correct_at_end;
    if (!in || index != r || (correct != 0 && correct != 1) ||
        (stable != 0 && stable != 1)) {
      return false;
    }
    o.all_correct_at_end = correct == 1;
    o.stable = stable == 1;
    outcomes.push_back(o);
  }
  return true;
}

bool parse_v2_body(std::istream& in, std::uint64_t reps,
                   std::vector<RepOutcome>& outcomes) {
  outcomes.reserve(reps);
  for (std::uint64_t r = 0; r < reps; ++r) {
    std::uint64_t index = 0;
    int correct = 0;
    int stable = 0;
    std::uint64_t mean_bits = 0;
    std::uint64_t min_bits = 0;
    RepOutcome o;
    in >> index >> correct >> stable >> o.rounds_run >> o.first_all_correct >>
        o.correct_at_end >> std::hex >> mean_bits >> min_bits >> std::dec >>
        o.resets;
    if (!in || index != r || (correct != 0 && correct != 1) ||
        (stable != 0 && stable != 1)) {
      return false;
    }
    o.all_correct_at_end = correct == 1;
    o.stable = stable == 1;
    o.mean_correct_fraction = std::bit_cast<double>(mean_bits);
    o.min_correct_fraction = std::bit_cast<double>(min_bits);
    outcomes.push_back(o);
  }
  return true;
}

StopRule normalized(StopRule rule) {
  NOISYPULL_CHECK(rule.max_reps >= 1, "stop rule needs at least one rep");
  rule.min_reps = std::clamp<std::uint64_t>(rule.min_reps, 1, rule.max_reps);
  return rule;
}

bool outcome_success(const RepOutcome& o, bool require_stability) noexcept {
  // Mirrors success_rate() in sim/repeat.cpp: stability on the wrong
  // opinion is failure, not success.
  return require_stability ? (o.stable && o.all_correct_at_end)
                           : o.all_correct_at_end;
}

// Sentinel for "no repetition has permanently failed".
constexpr std::uint64_t kNoFailure = std::numeric_limits<std::uint64_t>::max();

// Mutable scheduling state of one cell.  `outcomes[r]` is valid iff
// `have[r]`; `frontier` is the length of the contiguous completed prefix,
// which is the only thing stopping decisions and statistics ever read.
struct CellState {
  std::vector<RepOutcome> outcomes;
  std::vector<char> have;
  std::uint64_t frontier = 0;
  std::uint64_t next_issue = 0;   // next repetition index to hand out
  std::uint64_t issue_cap = 0;    // reps allowed to issue right now
  std::uint64_t eval_cursor = 0;  // successes folded into eval_successes
  std::uint64_t eval_successes = 0;
  std::uint64_t stop_at = 0;      // decided prefix length (valid iff decided)
  bool decided = false;
  bool degraded = false;          // decided because of a permanent failure
  std::uint64_t computed = 0;     // fresh simulations
  std::uint64_t cached = 0;       // outcomes replayed from cache or manifest
  std::uint64_t cached_file_reps = 0;  // reps the loaded file already held
  // Fault-tolerance bookkeeping.
  std::vector<std::uint64_t> attempts;  // per-rep claim count
  std::vector<std::uint64_t> retry;     // requeued transient failures
  std::uint64_t first_failed = kNoFailure;  // smallest permanently failed rep
  std::uint64_t failed_reps = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t quarantined = 0;
};

// In-flight repetition registry entry the watchdog scans.
struct InFlightRep {
  std::chrono::steady_clock::time_point start;
  CancelToken token;
};

// Reads and parses the cache entry for `key`, retrying statuses a short
// read can produce and quarantining anything that stays corrupt.
CacheEntry load_cache_entry(const fs::path& path, std::uint64_t key,
                            const io::IoOptions& io,
                            std::uint64_t& quarantined) {
  CacheEntry entry;
  for (std::uint64_t attempt = 0; attempt <= io.max_retries; ++attempt) {
    const auto payload = io::read_file(path, io);
    if (!payload) {
      entry = CacheEntry{};  // kMissing
      return entry;
    }
    entry = parse_cache_entry(*payload, key);
    switch (entry.status) {
      case CacheEntryStatus::kHit:
      case CacheEntryStatus::kMigrated:
        return entry;
      case CacheEntryStatus::kTruncatedHeader:
      case CacheEntryStatus::kChecksumMismatch:
      case CacheEntryStatus::kMalformedRecord:
        // Could be an injected/real short read: re-read before concluding
        // the file itself is damaged.
        continue;
      case CacheEntryStatus::kWrongFormatVersion:
      case CacheEntryStatus::kKeyMismatch:
      case CacheEntryStatus::kMissing:
        // Definitive: the content is wrong, not the read.
        attempt = io.max_retries;  // fall through to quarantine
        continue;
    }
  }
  // Still corrupt after the read retries: preserve the evidence and treat
  // the entry as a miss.
  io::quarantine_file(path, to_string(entry.status));
  ++quarantined;
  entry.outcomes.clear();
  return entry;
}

}  // namespace

CellKey& CellKey::f64(double v) noexcept {
  return u64(std::bit_cast<std::uint64_t>(v));
}

CellKey& CellKey::str(std::string_view s) noexcept {
  for (const char c : s) {
    digest_ = fnv::hash_byte(digest_, static_cast<std::uint8_t>(c));
  }
  // Length terminator: distinguishes str("ab").str("c") from str("a").str("bc").
  return u64(s.size());
}

CellKey& CellKey::matrix(const Matrix& m) noexcept {
  u64(m.rows());
  u64(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) f64(m(i, j));
  }
  return *this;
}

RepOutcome to_outcome(const RunResult& r) noexcept {
  return RepOutcome{.all_correct_at_end = r.all_correct_at_end,
                    .stable = r.stable,
                    .rounds_run = r.rounds_run,
                    .first_all_correct = r.first_all_correct,
                    .correct_at_end = r.correct_at_end};
}

RepOutcome to_outcome(const SteadyStateResult& r) noexcept {
  const bool held = r.min_correct_fraction >= 1.0;
  return RepOutcome{.all_correct_at_end = held,
                    .stable = held,
                    .rounds_run = r.rounds_run,
                    .first_all_correct = kNever,
                    .correct_at_end = 0,
                    .mean_correct_fraction = r.mean_correct_fraction,
                    .min_correct_fraction = r.min_correct_fraction,
                    .resets = 0};
}

RepOutcome to_outcome(const ChurnResult& r) noexcept {
  const bool held = r.min_correct_fraction >= 1.0;
  return RepOutcome{.all_correct_at_end = held,
                    .stable = held,
                    .rounds_run = r.rounds_run,
                    .first_all_correct = kNever,
                    .correct_at_end = 0,
                    .mean_correct_fraction = r.mean_correct_fraction,
                    .min_correct_fraction = r.min_correct_fraction,
                    .resets = r.resets};
}

std::string_view to_string(CacheEntryStatus status) noexcept {
  switch (status) {
    case CacheEntryStatus::kHit: return "hit";
    case CacheEntryStatus::kMigrated: return "migrated";
    case CacheEntryStatus::kMissing: return "missing";
    case CacheEntryStatus::kTruncatedHeader: return "truncated-header";
    case CacheEntryStatus::kWrongFormatVersion: return "wrong-format-version";
    case CacheEntryStatus::kKeyMismatch: return "key-mismatch";
    case CacheEntryStatus::kChecksumMismatch: return "checksum-mismatch";
    case CacheEntryStatus::kMalformedRecord: return "malformed-record";
  }
  return "?";
}

CacheEntry parse_cache_entry(std::string_view payload, std::uint64_t key) {
  CacheEntry entry;
  const std::string text(payload);
  std::istringstream in(text);

  std::string header;
  if (!std::getline(in, header)) {
    entry.status = CacheEntryStatus::kTruncatedHeader;
    return entry;
  }
  std::istringstream head(header);
  std::string magic;
  std::uint64_t version = 0;
  if (!(head >> magic >> version)) {
    entry.status = CacheEntryStatus::kTruncatedHeader;
    return entry;
  }
  if (magic != kCacheMagic) {
    entry.status = CacheEntryStatus::kMalformedRecord;
    return entry;
  }

  if (version == kLegacyRecordFormatVersion) {
    std::uint64_t stored_key = 0;
    std::uint64_t reps = 0;
    if (!(head >> std::hex >> stored_key >> std::dec >> reps)) {
      entry.status = CacheEntryStatus::kTruncatedHeader;
      return entry;
    }
    if (stored_key != key) {
      entry.status = CacheEntryStatus::kKeyMismatch;
      return entry;
    }
    if (!parse_v1_body(in, reps, entry.outcomes)) {
      entry.outcomes.clear();
      entry.status = CacheEntryStatus::kMalformedRecord;
      return entry;
    }
    entry.status = CacheEntryStatus::kMigrated;
    return entry;
  }

  if (version != kCacheRecordFormatVersion) {
    entry.status = CacheEntryStatus::kWrongFormatVersion;
    return entry;
  }

  std::uint64_t stored_key = 0;
  std::uint64_t reps = 0;
  std::uint32_t stored_crc = 0;
  if (!(head >> std::hex >> stored_key >> std::dec >> reps >> std::hex >>
        stored_crc)) {
    entry.status = CacheEntryStatus::kTruncatedHeader;
    return entry;
  }
  if (stored_key != key) {
    entry.status = CacheEntryStatus::kKeyMismatch;
    return entry;
  }
  // The CRC covers the raw body bytes (everything after the header line),
  // so any torn write or bit flip below the header is caught here before
  // the parser ever sees it.
  const std::size_t body_start = text.find('\n');
  const std::string_view body =
      body_start == std::string::npos ? std::string_view{}
                                      : payload.substr(body_start + 1);
  if (io::crc32(body) != stored_crc) {
    entry.status = CacheEntryStatus::kChecksumMismatch;
    return entry;
  }
  if (!parse_v2_body(in, reps, entry.outcomes)) {
    entry.outcomes.clear();
    entry.status = CacheEntryStatus::kMalformedRecord;
    return entry;
  }
  entry.status = CacheEntryStatus::kHit;
  return entry;
}

std::string serialize_cache_entry(std::uint64_t key,
                                  const std::vector<RepOutcome>& outcomes,
                                  std::uint64_t reps) {
  NOISYPULL_CHECK(reps <= outcomes.size(),
                  "serialize_cache_entry: reps exceeds outcomes");
  std::ostringstream body;
  for (std::uint64_t r = 0; r < reps; ++r) {
    const RepOutcome& o = outcomes[r];
    body << r << " " << (o.all_correct_at_end ? 1 : 0) << " "
         << (o.stable ? 1 : 0) << " " << o.rounds_run << " "
         << o.first_all_correct << " " << o.correct_at_end << " "
         << hex16(std::bit_cast<std::uint64_t>(o.mean_correct_fraction))
         << " " << hex16(std::bit_cast<std::uint64_t>(o.min_correct_fraction))
         << " " << o.resets << "\n";
  }
  const std::string body_str = body.str();
  std::ostringstream out;
  out << kCacheMagic << " " << kCacheRecordFormatVersion << " " << hex16(key)
      << " " << reps << " " << std::hex << std::setfill('0') << std::setw(8)
      << io::crc32(body_str) << "\n"
      << body_str;
  return out.str();
}

std::uint64_t stop_point(const std::vector<RepOutcome>& outcomes,
                         const StopRule& rule_in) {
  const StopRule rule = normalized(rule_in);
  if (rule.ci_halfwidth <= 0.0) return rule.max_reps;
  NOISYPULL_CHECK(outcomes.size() >= rule.min_reps,
                  "stop_point needs at least min_reps outcomes");
  std::uint64_t successes = 0;
  for (std::uint64_t m = 1; m <= rule.max_reps; ++m) {
    if (outcomes.size() < m) break;
    if (outcome_success(outcomes[m - 1], rule.require_stability)) ++successes;
    if (m >= rule.min_reps &&
        wilson_halfwidth(successes, m) <= rule.ci_halfwidth) {
      return m;
    }
  }
  return rule.max_reps;
}

CellStats finalize_prefix(const std::vector<RepOutcome>& outcomes,
                          std::uint64_t reps, const StopRule& rule_in) {
  const StopRule rule = normalized(rule_in);
  NOISYPULL_CHECK(reps <= outcomes.size(),
                  "finalize_prefix needs a completed prefix");
  CellStats stats;
  stats.reps = reps;
  if (reps == 0) return stats;  // degraded cell with no usable prefix
  Welford convergence;
  double rounds_sum = 0.0;
  double steady_sum = 0.0;
  for (std::uint64_t r = 0; r < reps; ++r) {
    const RepOutcome& o = outcomes[r];
    if (o.all_correct_at_end) {
      ++stats.successes;
      if (o.stable) ++stats.stable_successes;
    }
    if (o.first_all_correct != kNever) {
      convergence.push(static_cast<double>(o.first_all_correct));
    }
    rounds_sum += static_cast<double>(o.rounds_run);
    steady_sum += o.mean_correct_fraction;
    stats.min_steady_fraction =
        std::min(stats.min_steady_fraction, o.min_correct_fraction);
    stats.total_resets += o.resets;
  }
  const double denom = static_cast<double>(reps);
  stats.success_rate = static_cast<double>(stats.successes) / denom;
  stats.stable_success_rate =
      static_cast<double>(stats.stable_successes) / denom;
  const std::uint64_t metric =
      rule.require_stability ? stats.stable_successes : stats.successes;
  stats.wilson = wilson_interval(metric, reps);
  stats.ci_halfwidth = (stats.wilson.upper - stats.wilson.lower) / 2.0;
  if (convergence.count() > 0) {
    stats.mean_convergence_round = convergence.mean();
    stats.convergence_stddev = convergence.sample_stddev();
  }
  stats.mean_rounds_run = rounds_sum / denom;
  stats.mean_steady_fraction = steady_sum / denom;
  stats.early_stopped = reps < rule.max_reps;
  return stats;
}

std::uint64_t cell_cache_key(const ExperimentCell& cell) {
  CellKey key;
  key.u64(kCellCacheSchemaVersion);
  key.u64(cell.protocol_digest);
  key.matrix(cell.noise.matrix());
  if (cell.artificial_noise) {
    key.u64(1).matrix(*cell.artificial_noise);
  } else {
    key.u64(0);
  }
  if (cell.fault_plan) {
    const FaultPlan& p = *cell.fault_plan;
    key.u64(1)
        .u64(p.seed)
        .u64(p.first_eligible)
        .f64(p.byzantine.fraction)
        .u64(static_cast<std::uint64_t>(p.byzantine.strategy))
        .u64(p.byzantine.wrong_symbol)
        .u64(p.byzantine.honest_symbol)
        .u64(p.byzantine.mimic_symbol)
        .f64(p.drop.p)
        .f64(p.stall.crash_rate)
        .u64(p.stall.min_rounds)
        .u64(p.stall.max_rounds)
        .f64(p.stall.blackout_fraction)
        .u64(p.stall.blackout_start)
        .u64(p.stall.blackout_rounds)
        .f64(p.burst.rate)
        .u64(p.burst.rounds)
        .f64(p.burst.delta);
  } else {
    key.u64(0);
  }
  // RunConfig: engine_threads and compiled are trajectory-invariant and
  // deliberately excluded (the header comment's invalidation contract) —
  // a cached interpreted run answers for a compiled one and vice versa.
  // Engine kind: 0 = exact, 1 = aggregate, 2 = lumped.  The lumped engine
  // is distribution-equivalent but not trajectory-identical to the agent
  // engines, so it must never share cache entries with them; the first two
  // values keep every pre-lumped key bit-identical.
  const std::uint64_t engine_kind =
      cell.make_lumped ? 2 : (cell.use_aggregate_engine ? 1 : 0);
  key.u64(cell.cfg.h)
      .u64(cell.cfg.max_rounds)
      .u64(cell.cfg.stability_window)
      .u64(engine_kind)
      .u64(cell.seed);
  // The steady-state block is folded only when present: convergence cells
  // keep the exact keys they had before the mode existed, so no previously
  // cached trajectory is orphaned.
  if (cell.steady_state) {
    const SteadyStateSpec& ss = *cell.steady_state;
    key.u64(0x5354454144595353ULL)  // "STEADYSS" tag
        .u64(ss.warmup)
        .u64(ss.measure);
    if (ss.churn) {
      key.u64(1)
          .f64(ss.churn->rate)
          .u64(static_cast<std::uint64_t>(ss.churn->policy))
          .u64(ss.churn->churn_sources ? 1 : 0);
    } else {
      key.u64(0);
    }
  }
  return key.digest();
}

std::string sweep_report_json(const std::vector<ExperimentCell>& cells,
                              const std::vector<CellStats>& stats) {
  NOISYPULL_CHECK(cells.size() == stats.size(),
                  "sweep_report_json: cells/stats size mismatch");
  // Shortest exact decimal round-trip would suffice; %.17g is exact for
  // every double and trivially reproducible, which is all the byte-identity
  // contract needs.
  const auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  const auto escape = [](std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are ASCII
      out.push_back(c);
    }
    return out;
  };

  bool any_degraded = false;
  for (const CellStats& s : stats) any_degraded |= s.degraded;

  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"noisypull-sweep-report/1\",\n"
     << "  \"degraded\": " << (any_degraded ? "true" : "false") << ",\n"
     << "  \"cells\": [\n";
  for (std::size_t c = 0; c < stats.size(); ++c) {
    const CellStats& s = stats[c];
    os << "    {\n"
       << "      \"label\": \"" << escape(cells[c].label) << "\",\n"
       << "      \"cache_key\": \"" << hex16(s.cache_key) << "\",\n"
       << "      \"reps\": " << s.reps << ",\n"
       << "      \"successes\": " << s.successes << ",\n"
       << "      \"stable_successes\": " << s.stable_successes << ",\n"
       << "      \"success_rate\": " << num(s.success_rate) << ",\n"
       << "      \"stable_success_rate\": " << num(s.stable_success_rate)
       << ",\n"
       << "      \"wilson_lower\": " << num(s.wilson.lower) << ",\n"
       << "      \"wilson_upper\": " << num(s.wilson.upper) << ",\n"
       << "      \"mean_convergence_round\": "
       << (s.mean_convergence_round ? num(*s.mean_convergence_round) : "null")
       << ",\n"
       << "      \"mean_rounds_run\": " << num(s.mean_rounds_run) << ",\n"
       << "      \"mean_steady_fraction\": " << num(s.mean_steady_fraction)
       << ",\n"
       << "      \"min_steady_fraction\": " << num(s.min_steady_fraction)
       << ",\n"
       << "      \"total_resets\": " << s.total_resets << ",\n"
       << "      \"early_stopped\": " << (s.early_stopped ? "true" : "false")
       << ",\n"
       << "      \"failed_reps\": " << s.failed_reps << ",\n"
       << "      \"degraded\": " << (s.degraded ? "true" : "false") << "\n"
       << "    }" << (c + 1 < stats.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::vector<CellStats> run_experiment(const std::vector<ExperimentCell>& cells,
                                      const SchedulerOptions& opts) {
  NOISYPULL_CHECK(!cells.empty(), "run_experiment needs at least one cell");
  const StopRule rule = normalized(opts.stop);
  for (const ExperimentCell& cell : cells) {
    NOISYPULL_CHECK(!cell.cfg.record_trajectory,
                    "the scheduler does not record trajectories; use "
                    "run_repetitions for trajectory experiments");
    if (cell.steady_state) {
      NOISYPULL_CHECK(cell.steady_state->measure >= 1,
                      "steady-state cells need at least one measured round");
    }
    if (cell.make_lumped) {
      NOISYPULL_CHECK(!cell.fault_plan,
                      "lumped cells do not support fault plans (the lumped "
                      "engine cannot be wrapped by FaultyEngine)");
      NOISYPULL_CHECK(!cell.steady_state,
                      "lumped cells do not support steady-state/churn "
                      "measurements");
    }
  }
  opts.fs_faults.validate();

  unsigned threads = opts.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t total_reps =
      rule.max_reps * static_cast<std::uint64_t>(cells.size());
  threads = static_cast<unsigned>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(1, total_reps)));
  unsigned engine_threads = opts.engine_threads;
  if (engine_threads == 0) {
    engine_threads =
        std::max(1u, std::thread::hardware_concurrency() / threads);
  }

  // With early stopping on, keep at most `lookahead` repetitions beyond the
  // decided prefix in flight per cell: enough to keep every worker busy,
  // bounded so a cell that is about to stop does not flood the queue with
  // work its statistics will never use.  Wasted overshoot changes wall-clock
  // only — never statistics, which read the prefix [0, stop_at).
  const bool adaptive = rule.ci_halfwidth > 0.0;
  const std::uint64_t lookahead =
      adaptive ? std::max<std::uint64_t>(2 * threads, 4) : rule.max_reps;

  // One FsFaults realization shared by all durable I/O of this sweep; all
  // its call sites are serialized (setup, the manifest mutex, teardown).
  io::FsFaults fs_faults(opts.fs_faults);
  io::IoOptions io;
  io.faults = opts.fs_faults.any() ? &fs_faults : nullptr;

  std::vector<CellState> states(cells.size());
  const bool use_cache = !opts.cache_dir.empty();
  const fs::path cache_dir(opts.cache_dir);
  std::vector<std::uint64_t> keys(cells.size(), 0);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    keys[c] = cell_cache_key(cells[c]);
  }

  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellState& st = states[c];
    st.outcomes.resize(rule.max_reps);
    st.have.assign(rule.max_reps, 0);
    st.attempts.assign(rule.max_reps, 0);
    if (use_cache) {
      const CacheEntry entry = load_cache_entry(
          cache_dir / cache_file_name(keys[c]), keys[c], io, st.quarantined);
      const std::uint64_t usable =
          std::min<std::uint64_t>(entry.outcomes.size(), rule.max_reps);
      for (std::uint64_t r = 0; r < usable; ++r) {
        st.outcomes[r] = entry.outcomes[r];
        st.have[r] = 1;
      }
      st.frontier = usable;
      st.next_issue = usable;  // the cached prefix is never recomputed
      st.cached = usable;
      // A migrated v1 entry is valid data in a stale layout: claiming zero
      // on-disk reps forces the final store to rewrite it as v2 even when
      // this run computes nothing new.
      st.cached_file_reps = entry.status == CacheEntryStatus::kMigrated
                                ? 0
                                : entry.outcomes.size();
    }
  }

  // Checkpoint/resume: replay the manifest's completed (cell, rep) outcomes
  // into the outcome tables.  Replayed repetitions are bit-equal to what
  // this sweep would compute (each is a pure function of (cell, r)), so
  // every downstream statistic is unchanged — the resume contract.
  SweepManifest manifest;
  std::mutex manifest_mutex;
  if (!opts.manifest_path.empty()) {
    std::map<std::uint64_t, std::size_t> by_key;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      by_key.emplace(keys[c], c);  // duplicate cells share a key; first wins
    }
    manifest.open(opts.manifest_path, sweep_digest(keys), io);
    for (const auto& [key_rep, outcome] : manifest.records()) {
      const auto it = by_key.find(key_rep.first);
      if (it == by_key.end()) continue;
      CellState& st = states[it->second];
      const std::uint64_t r = key_rep.second;
      if (r >= rule.max_reps || st.have[r] != 0) continue;
      st.outcomes[r] = outcome;
      st.have[r] = 1;
      ++st.cached;
    }
    for (CellState& st : states) {
      while (st.frontier < rule.max_reps && st.have[st.frontier] != 0) {
        ++st.frontier;
      }
      if (st.next_issue < st.frontier) st.next_issue = st.frontier;
    }
  }

  std::mutex mutex;
  std::condition_variable work_cv;
  std::size_t incomplete = 0;
  std::exception_ptr first_error;
  bool aborted = false;
  std::uint64_t running_total = 0;  // in-flight reps (watchdog bookkeeping)

  // Prefix-order decision advance for one cell; caller holds the mutex.
  // Folds newly contiguous outcomes into the running success count and
  // decides the stopping point the moment the deciding prefix completes.
  // A cell whose prefix is pinned by a permanently failed repetition
  // decides "degraded" with the statistics of the shorter prefix — the
  // sweep always completes.
  const auto advance_decision = [&](CellState& st) {
    while (!st.decided && st.eval_cursor < st.frontier) {
      const std::uint64_t m = st.eval_cursor + 1;
      if (outcome_success(st.outcomes[st.eval_cursor],
                          rule.require_stability)) {
        ++st.eval_successes;
      }
      st.eval_cursor = m;
      if (adaptive && m >= rule.min_reps && m < rule.max_reps &&
          wilson_halfwidth(st.eval_successes, m) <= rule.ci_halfwidth) {
        st.decided = true;
        st.stop_at = m;
      }
      if (m == rule.max_reps) {
        st.decided = true;
        st.stop_at = rule.max_reps;
      }
    }
    if (!st.decided && st.first_failed != kNoFailure &&
        st.frontier >= st.first_failed) {
      // Every repetition below the first permanent failure has landed; no
      // future completion can extend the usable prefix.
      st.decided = true;
      st.degraded = true;
      st.stop_at = st.frontier;
      st.retry.clear();
    }
    if (st.decided) st.retry.clear();
    st.issue_cap =
        st.decided ? 0
                   : std::min(rule.max_reps,
                              std::max<std::uint64_t>(rule.min_reps,
                                                      st.frontier + lookahead));
  };

  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (CellState& st : states) {
      advance_decision(st);
      if (!st.decided) ++incomplete;
    }
  }

  // Watchdog: in-flight registry plus a poller that cancels overdue
  // repetitions.  Tokens live in a std::list so their addresses are stable
  // while workers hold them.
  const bool watchdog_on = opts.rep_timeout > 0.0;
  std::mutex wd_mutex;
  std::list<InFlightRep> inflight;
  std::atomic<bool> wd_stop{false};

  const auto run_cell_rep = [&](const ExperimentCell& cell, std::uint64_t r,
                                Engine& engine_for_run,
                                const CancelToken* cancel) -> RepOutcome {
    Rng init_rng(cell.seed, 2 * r);
    Rng run_rng(cell.seed, 2 * r + 1);
    auto protocol = cell.make_protocol(init_rng);
    if (!cell.steady_state) {
      RunConfig cfg = cell.cfg;
      cfg.cancel = cancel;
      return to_outcome(run(*protocol, engine_for_run, cell.noise,
                            cell.correct, cfg, run_rng));
    }
    const SteadyStateSpec& ss = *cell.steady_state;
    if (ss.churn) {
      auto* ssf = dynamic_cast<SelfStabilizingSourceFilter*>(protocol.get());
      NOISYPULL_CHECK(ssf != nullptr,
                      "churn cells require a SelfStabilizingSourceFilter");
      return to_outcome(run_with_churn(*ssf, engine_for_run, cell.noise,
                                       cell.correct, Holdings{cell.cfg.h},
                                       ss.warmup, ss.measure, *ss.churn,
                                       run_rng, cancel));
    }
    return to_outcome(measure_steady_state(
        *protocol, engine_for_run, cell.noise, cell.correct,
        Holdings{cell.cfg.h}, ss.warmup, ss.measure, run_rng, {}, cancel));
  };

  // Transient-failure handler: requeue within the retry budget, otherwise
  // mark the repetition permanently failed (which pins the cell's usable
  // prefix and eventually decides it degraded).  A decided cell drops the
  // failure entirely — its statistics are already fixed.
  const auto on_transient = [&](std::size_t cell_index, std::uint64_t rep) {
    const std::lock_guard<std::mutex> lock(mutex);
    CellState& st = states[cell_index];
    --running_total;
    if (!st.decided) {
      if (st.attempts[rep] <= opts.max_retries) {
        st.retry.push_back(rep);
        ++st.transient_retries;
      } else {
        ++st.failed_reps;
        st.first_failed = std::min(st.first_failed, rep);
        const bool was_decided = st.decided;
        advance_decision(st);
        if (!was_decided && st.decided) --incomplete;
      }
    }
    work_cv.notify_all();
  };

  const auto worker = [&](std::uint64_t lane) {
    // One engine per worker, rebuilt only when the worker switches cells:
    // repetitions of one cell reuse the engine's scratch buffers exactly as
    // the run_repetitions workers do.  Workers start spread across the grid
    // (lane-seeded cursor) and stay on their cell until it has no issuable
    // work — depth-first per worker completes decision prefixes early, and
    // the cursor only moves (work stealing) when the current cell is
    // drained.  None of this affects results: statistics are a function of
    // outcome prefixes, not of who computed them.
    std::unique_ptr<Engine> engine;
    std::size_t engine_cell = std::numeric_limits<std::size_t>::max();
    std::size_t cursor = static_cast<std::size_t>(lane) % states.size();
    for (;;) {
      std::size_t cell_index = 0;
      std::uint64_t rep = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
          if (aborted || incomplete == 0) return;
          bool found = false;
          for (std::size_t i = 0; i < states.size(); ++i) {
            const std::size_t c = (cursor + i) % states.size();
            CellState& st = states[c];
            if (st.decided) continue;
            if (!st.retry.empty()) {
              // Requeued transient failures outrank fresh issuance: they
              // sit on the critical path of this cell's decision prefix.
              cell_index = c;
              rep = st.retry.back();
              st.retry.pop_back();
              cursor = c;
              found = true;
              break;
            }
            // Issuing beyond the first permanent failure is pure waste —
            // the frontier can never cross it.
            const std::uint64_t cap = std::min(st.issue_cap, st.first_failed);
            while (st.next_issue < cap && st.have[st.next_issue] != 0) {
              ++st.next_issue;  // skip outcomes replayed from the manifest
            }
            if (st.next_issue < cap) {
              cell_index = c;
              rep = st.next_issue++;
              cursor = c;  // affinity: keep drawing from this cell
              found = true;
              break;
            }
          }
          if (found) {
            ++states[cell_index].attempts[rep];
            ++running_total;
            break;
          }
          // Every runnable repetition is in flight; completions may raise
          // issue caps (or finish the experiment), so park until one lands.
          work_cv.wait(lock);
        }
      }

      const ExperimentCell& cell = cells[cell_index];

      // Register with the watchdog before the repetition starts so a hung
      // simulation cannot outlive its deadline unobserved.
      std::list<InFlightRep>::iterator wd_entry;
      const CancelToken* cancel = nullptr;
      if (watchdog_on) {
        const std::lock_guard<std::mutex> wd_lock(wd_mutex);
        inflight.emplace_back();
        wd_entry = std::prev(inflight.end());
        wd_entry->start = std::chrono::steady_clock::now();
        cancel = &wd_entry->token;
      }
      const auto deregister = [&] {
        if (watchdog_on) {
          const std::lock_guard<std::mutex> wd_lock(wd_mutex);
          inflight.erase(wd_entry);
        }
      };

      try {
        if (opts.rep_hook) opts.rep_hook(cell_index, rep);
        RepOutcome outcome;
        if (cell.make_lumped) {
          // Lumped cells carry their population state inside the engine, so
          // a fresh setup per repetition is mandatory — there is nothing to
          // reuse across repetitions the way agent engines reuse buffers.
          // Initialization is deterministic; only the run substream
          // Rng(seed, 2r+1) is consumed, matching run_cell_rep's derivation.
          LumpedSetup setup = cell.make_lumped();
          NOISYPULL_CHECK(setup.engine != nullptr,
                          "make_lumped returned a null engine");
          if (cell.artificial_noise) {
            setup.engine->set_artificial_noise(*cell.artificial_noise);
          }
          Rng run_rng(cell.seed, 2 * rep + 1);
          RunConfig cfg = cell.cfg;
          cfg.cancel = cancel;
          outcome =
              to_outcome(run_lumped(*setup.engine, cell.correct, cfg, run_rng));
        } else {
          if (engine_cell != cell_index || !engine) {
            if (cell.use_aggregate_engine) {
              engine = std::make_unique<AggregateEngine>();
            } else {
              engine = std::make_unique<ExactEngine>();
            }
            if (cell.artificial_noise) {
              engine->set_artificial_noise(*cell.artificial_noise);
            }
            engine->set_threads(engine_threads);
            engine_cell = cell_index;
          }
          if (cell.fault_plan) {
            // Fresh decorator per repetition: stall schedules and fault stats
            // must not leak across runs.
            FaultyEngine faulty(*engine, *cell.fault_plan);
            faulty.set_threads(engine_threads);
            outcome = run_cell_rep(cell, rep, faulty, cancel);
          } else {
            outcome = run_cell_rep(cell, rep, *engine, cancel);
          }
        }
        deregister();

        {
          const std::lock_guard<std::mutex> lock(mutex);
          CellState& st = states[cell_index];
          --running_total;
          st.outcomes[rep] = outcome;
          st.have[rep] = 1;
          ++st.computed;
          while (st.frontier < rule.max_reps && st.have[st.frontier] != 0) {
            ++st.frontier;
          }
          const bool was_decided = st.decided;
          advance_decision(st);
          if (!was_decided && st.decided) --incomplete;
          work_cv.notify_all();
        }
        if (manifest.enabled()) {
          const std::lock_guard<std::mutex> m_lock(manifest_mutex);
          manifest.record(keys[cell_index], rep, outcome);
        }
      } catch (const OperationCancelled&) {
        deregister();
        on_transient(cell_index, rep);
      } catch (const TransientRepFailure&) {
        deregister();
        on_transient(cell_index, rep);
      } catch (...) {
        deregister();
        const std::lock_guard<std::mutex> lock(mutex);
        --running_total;
        if (!first_error) first_error = std::current_exception();
        aborted = true;
        work_cv.notify_all();
        return;
      }
    }
  };

  std::thread watchdog;
  if (watchdog_on) {
    const auto timeout = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(opts.rep_timeout));
    auto poll = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::duration<double>(opts.rep_timeout / 4.0));
    poll = std::clamp(poll, std::chrono::milliseconds(1),
                      std::chrono::milliseconds(20));
    watchdog = std::thread([&, timeout, poll] {
      while (!wd_stop.load(std::memory_order_relaxed)) {
        {
          const std::lock_guard<std::mutex> wd_lock(wd_mutex);
          const auto now = std::chrono::steady_clock::now();
          for (InFlightRep& entry : inflight) {
            if (now - entry.start > timeout) entry.token.cancel();
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  if (incomplete > 0) {
    if (threads == 1) {
      worker(0);
    } else {
      ThreadPool pool(threads);
      pool.parallel_for(threads, worker);
    }
  }
  if (watchdog_on) {
    wd_stop.store(true, std::memory_order_relaxed);
    watchdog.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  std::vector<CellStats> results;
  results.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellState& st = states[c];
    NOISYPULL_ASSERT(st.decided && (st.stop_at >= 1 || st.degraded));
    CellStats stats = finalize_prefix(st.outcomes, st.stop_at, rule);
    stats.degraded = st.degraded;
    stats.failed_reps = st.failed_reps;
    stats.transient_retries = st.transient_retries;
    stats.cache_quarantined = st.quarantined;
    stats.reps_computed = st.computed;
    stats.reps_cached = std::min(st.cached, stats.reps);
    stats.cache_key = keys[c];
    // Persist the full contiguous prefix — including lookahead overshoot
    // beyond the stopping point: those repetitions are valid under this key
    // and may serve a future run with a tighter CI target.
    if (use_cache && st.frontier > st.cached_file_reps) {
      io::atomic_write_file(
          cache_dir / cache_file_name(keys[c]),
          serialize_cache_entry(keys[c], st.outcomes, st.frontier), io);
    }
    results.push_back(stats);
  }

  if (!opts.report_path.empty()) {
    io::atomic_write_file(opts.report_path, sweep_report_json(cells, results),
                          io);
  }
  return results;
}

}  // namespace noisypull
