// Per-round cached observation sampler for the aggregate-style engines.
//
// In AggregateEngine (and per distinct channel in HeterogeneousEngine) the
// law of one agent's observation counts is fixed for the whole round:
// SymbolCounts ~ Multinomial(h, q) with the same q for all n agents.  The
// conditional-binomial decomposition (rng/binomial.hpp) pays d−1 binomial
// draws per agent; this sampler instead treats the *outcome space* — the
// C(h+d−1, d−1) count vectors summing to h (h+1 outcomes for the binary
// alphabet) — as one discrete distribution and inverts its CDF: one uniform
// per agent, one table lookup.  The table is built once per round and
// amortized over all n agents.
//
// Determinism contract (tests/test_parallel_kernel.cpp): toggling the cache
// may not change the trajectory.  Both modes therefore realize the *same*
// map (uniform u → outcome): the cumulative masses are the partial sums of
// the outcome pmfs in one canonical enumeration order, and
//   cached    = precompute the partial sums, binary-search them,
//   uncached  = recompute the identical partial-sum walk per draw.
// Same u, same sums, same outcome — bit for bit.  When the outcome space
// exceeds kMaxOutcomes (large h with a k-ary alphabet, or h > 16383 binary)
// both modes fall back to the conditional-binomial decomposition, which is
// again identical on both sides of the toggle.
//
// Amortization gate: the inverse-CDF table costs one full enumeration of
// the outcome space per round, which only pays for itself when at least as
// many draws as outcomes will amortize it.  reset() therefore takes the
// expected number of draws this round (the engines pass their agent count,
// or the per-channel group size in HeterogeneousEngine) and falls back to
// the decomposition when the outcome space is larger.  The chosen mode is a
// function of (h, d, expected_draws) only — NEVER of the cache toggle — so
// the cache on/off trajectory-invariance contract above is preserved; the
// gate itself changes trajectories only across releases, which is why the
// experiment result cache folds a schema version into its keys
// (analysis/scheduler.hpp).
//
// Exactness: outcome pmfs are evaluated in log space from a log-factorial
// table, so the distribution is the true multinomial up to double rounding
// (~1e-15 relative) — held to the same chi-square harness as the BINV/BTRS
// samplers (tests/test_observation_cache.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "noisypull/common/check.hpp"
#include "noisypull/common/symbols.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class ObservationSampler {
 public:
  enum class Mode {
    InverseCdf,     // outcome-level inversion (cacheable)
    Decomposition,  // conditional-binomial fallback (outcome space too big)
  };

  // Outcome-space cap for the inverse-CDF path; above it the per-round table
  // would dwarf the n agents it amortizes over.
  static constexpr std::uint64_t kMaxOutcomes = 1ULL << 14;

  // Prepares the sampler for one round of i.i.d. Multinomial(h, weights)
  // draws.  weights must be non-negative with a positive sum when h > 0;
  // their length is the alphabet size d (2 <= d <= kMaxAlphabet).  `cache`
  // selects table memoization; it never changes the sampled values.
  // `expected_draws` is the number of draws this reset will serve (see the
  // amortization gate above); the default keeps the inverse-CDF path for
  // any outcome space within kMaxOutcomes.
  void reset(std::uint64_t h, std::span<const double> weights, bool cache,
             std::uint64_t expected_draws = kNoDrawEstimate);

  // Sentinel for reset(): no draw-count estimate, gate on kMaxOutcomes only.
  static constexpr std::uint64_t kNoDrawEstimate =
      ~static_cast<std::uint64_t>(0);

  Mode mode() const noexcept { return mode_; }
  bool cached() const noexcept { return !cum_.empty(); }

  // Draws one count vector into obs (obs.size must equal d).  Thread-safe:
  // const, touches only the given rng and obs.  InverseCdf mode consumes
  // exactly one uniform per draw in both cache settings.
  void sample(Rng& rng, SymbolCounts& obs) const;

  // Size of the enumerated outcome space.  InverseCdf mode only.
  std::uint64_t num_outcomes() const noexcept { return outcome_count_; }

  // Draws one outcome *index* under the canonical enumeration, consuming the
  // rng exactly like sample(): same uniform, same stopping rule, so
  // sample_index(rng) == index-of(sample(rng)) draw for draw
  // (tests/test_compiled_path.cpp pins this).  The compiled engine path
  // (core/automaton/compiled_population.hpp) keys its memoized transition
  // tables by this index and never materializes the count vector per agent.
  // InverseCdf mode only — the decomposition has no enumerable index.
  // Defined inline: this is the one call per agent of the compiled hot loop,
  // and the cached branch is just a uniform plus a partial-sum search.
  std::uint64_t sample_index(Rng& rng) const {
    NOISYPULL_CHECK(mode_ == Mode::InverseCdf,
                    "sample_index() requires the inverse-CDF mode: the "
                    "outcome space must be enumerable (see the reset() gate)");
    // Mirrors sample() draw for draw: one uniform, and the exact same
    // stopping rule in both cache settings, so the index returned here names
    // precisely the outcome sample() would have written.
    const double target = rng.next_double() * total_mass_;
    if (!cum_.empty()) {
      const std::size_t m = cum_.size();
      std::size_t idx;
      if (m <= kLinearScanOutcomes) {
        // Branchless count of partial sums <= target — on a sorted array
        // this is exactly upper_bound's index, without the data-dependent
        // branches that mispredict about half the time on random targets.
        std::size_t le = 0;
        for (std::size_t i = 0; i < m; ++i) le += cum_[i] <= target ? 1 : 0;
        idx = le;
      } else {
        idx = static_cast<std::size_t>(
            std::upper_bound(cum_.begin(), cum_.end(), target) - cum_.begin());
      }
      if (idx >= m) idx = m - 1;
      return static_cast<std::uint64_t>(idx);
    }
    return sample_index_uncached(target);
  }

  // Below this outcome count the cached search runs the branchless linear
  // count instead of binary search; both return the identical index, so the
  // threshold is wall-clock-only and can never affect a trajectory.
  static constexpr std::size_t kLinearScanOutcomes = 64;

  // Visits every outcome of the canonical enumeration once, in index order:
  // visit(index, counts).  Used to build per-round transition tables (one
  // pass, amortized over all agents).  InverseCdf mode only.
  using OutcomeVisitor =
      std::function<void(std::uint64_t, const SymbolCounts&)>;
  void for_each_outcome(const OutcomeVisitor& visit) const;

  // Called by split() once per outcome that received a positive share:
  // (share, outcome count vector of length d).
  using SplitVisitor =
      std::function<void(std::uint64_t, std::span<const std::uint64_t>)>;

  // Splits k i.i.d. Multinomial(h, weights) draws over the outcome space in
  // one pass — the population-level counterpart of k sample() calls: the
  // vector of per-outcome shares is exactly Multinomial(k, outcome pmf),
  // realized as the conditional-binomial chain along the canonical
  // enumeration (rounding slack lands on the last positive-pmf outcome,
  // mirroring sample_multinomial's zero-tail rule).  O(#outcomes) binomial
  // draws regardless of k — the lumped engine's per-round workhorse
  // (sim/lumped_engine.hpp).  Requires InverseCdf mode: when the gate chose
  // Decomposition the outcome space is too large to enumerate and callers
  // must fall back to per-draw sample().  Independent of the cache toggle
  // (the walk never touches the cached partial sums).
  void split(Rng& rng, std::uint64_t k, const SplitVisitor& visit) const;

 private:
  // Walks the canonical outcome enumeration; visit(pmf, counts) for every
  // outcome in order.  Both the reset-time table build and the uncached
  // per-draw walk run exactly this code, which is what makes the cache
  // toggle trajectory-invariant.
  template <typename Visit>
  void enumerate(Visit&& visit) const;

  // Cache-off half of sample_index(): the linear walk over the identical
  // partial sums, stopping at the first acc > target (or the last outcome).
  std::uint64_t sample_index_uncached(double target) const;

  double outcome_pmf(std::span<const std::uint64_t> counts) const;

  std::uint64_t h_ = 0;
  std::size_t d_ = 0;
  Mode mode_ = Mode::Decomposition;
  std::array<double, kMaxAlphabet> weights_{};  // decomposition fallback
  std::array<double, kMaxAlphabet> logp_{};     // log(w_i / W); 0-weight cells
  std::array<bool, kMaxAlphabet> has_mass_{};   //   flagged instead of -inf
  std::vector<double> log_factorial_;           // lf[k] = log k!, k <= h
  double total_mass_ = 0.0;  // full pmf sum in enumeration order (~1)
  std::uint64_t outcome_count_ = 0;  // outcome-space size (InverseCdf mode)

  // Cached inverse CDF (empty when the cache is disabled).
  std::vector<double> cum_;
  // Outcome decode for d > 2 (binary outcomes decode analytically:
  // index k → counts (h−k, k) under the canonical enumeration).
  std::vector<std::array<std::uint32_t, kMaxAlphabet>> outcomes_;
};

}  // namespace noisypull
