#include "noisypull/rng/rng.hpp"

namespace noisypull {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id through splitmix64 before combining, so that
  // consecutive stream ids yield unrelated states.
  std::uint64_t sm = stream ^ 0xa0761d6478bd642fULL;
  std::uint64_t mixed = splitmix64_next(sm);
  sm = seed ^ mixed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection on the low word.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace noisypull
