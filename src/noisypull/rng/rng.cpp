#include "noisypull/rng/rng.hpp"

namespace noisypull {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id through splitmix64 before combining, so that
  // consecutive stream ids yield unrelated states.
  std::uint64_t sm = stream ^ 0xa0761d6478bd642fULL;
  std::uint64_t mixed = splitmix64_next(sm);
  sm = seed ^ mixed;
  for (auto& w : s_) w = splitmix64_next(sm);
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace noisypull
