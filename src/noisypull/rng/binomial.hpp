// Exact samplers for binomial, multinomial, and small discrete distributions.
//
// The AggregateEngine replaces the h per-message draws of an agent by a
// single Multinomial(h, q) draw over observed symbols (see model/engine.hpp),
// so the binomial sampler is the simulator's hot path and must be *exact in
// distribution* — not a normal approximation — for the engines to be
// statistically interchangeable.
//
// Strategy: for n * min(p, 1-p) below a cutoff we use the classic inversion
// (BINV) scheme with expected O(n p) work; above the cutoff we use the BTRS
// transformed-rejection sampler of Hörmann (1993), an exact rejection scheme
// whose acceptance test evaluates the true log-pmf ratio via Stirling
// corrections.  Both draw a bounded expected number of uniforms.
#pragma once

#include <cstdint>
#include <span>

#include "noisypull/rng/rng.hpp"

namespace noisypull {

// Draws X ~ Binomial(n, p) exactly.  Requires p in [0, 1].
std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p);

// Draws counts ~ Multinomial(n, weights / sum(weights)) exactly via the
// conditional-binomial decomposition.  counts.size() must equal
// weights.size(); weights must be non-negative with a positive sum (unless
// n == 0, in which case all counts are 0).
void sample_multinomial(Rng& rng, std::uint64_t n, std::span<const double> weights,
                        std::span<std::uint64_t> counts);

// Draws one index i with probability weights[i] / sum(weights).  Linear scan;
// intended for small supports (alphabets of size <= 8).
std::size_t sample_discrete(Rng& rng, std::span<const double> weights);

}  // namespace noisypull
