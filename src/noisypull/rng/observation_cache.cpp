#include "noisypull/rng/observation_cache.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {

namespace {

// Number of count vectors over d symbols summing to h, i.e. C(h+d-1, d-1),
// computed incrementally (each partial product is itself a binomial
// coefficient, so the division is exact).  Saturates at cap+1 to avoid
// overflow for large h.
std::uint64_t composition_count(std::uint64_t h, std::size_t d,
                                std::uint64_t cap) {
  std::uint64_t num = 1;
  for (std::uint64_t i = 1; i + 1 <= static_cast<std::uint64_t>(d); ++i) {
    num = num * (h + i) / i;
    if (num > cap) return cap + 1;
  }
  return num;
}

}  // namespace

void ObservationSampler::reset(std::uint64_t h, std::span<const double> weights,
                               bool cache, std::uint64_t expected_draws) {
  const std::size_t d = weights.size();
  NOISYPULL_CHECK(d >= 2 && d <= kMaxAlphabet,
                  "observation sampler needs an alphabet in [2, kMaxAlphabet]");
  h_ = h;
  d_ = d;
  cum_.clear();
  outcomes_.clear();

  double total_weight = 0.0;
  for (std::size_t s = 0; s < d; ++s) {
    NOISYPULL_CHECK(weights[s] >= 0.0, "negative observation weight");
    weights_[s] = weights[s];
    total_weight += weights[s];
  }
  NOISYPULL_CHECK(h == 0 || total_weight > 0.0,
                  "observation weights must have positive total mass");

  const std::uint64_t outcome_count = composition_count(h, d, kMaxOutcomes);
  if (h == 0 || outcome_count > kMaxOutcomes ||
      outcome_count > expected_draws) {
    // Outcome space too large for the table cap, too large to amortize over
    // the round's draws (the gate in the header comment), or degenerate
    // h = 0: conditional-binomial decomposition, identical with and without
    // the cache.
    mode_ = Mode::Decomposition;
    outcome_count_ = 0;
    return;
  }
  mode_ = Mode::InverseCdf;
  outcome_count_ = outcome_count;

  for (std::size_t s = 0; s < d; ++s) {
    has_mass_[s] = weights_[s] > 0.0;
    logp_[s] = has_mass_[s] ? std::log(weights_[s] / total_weight) : 0.0;
  }
  log_factorial_.resize(h + 1);
  log_factorial_[0] = 0.0;
  for (std::uint64_t k = 1; k <= h; ++k) {
    log_factorial_[k] =
        log_factorial_[k - 1] + std::log(static_cast<double>(k));
  }

  // One enumeration pass computes total_mass_ (the walk's normalizer); the
  // cached mode additionally records every partial sum and, for d > 2, the
  // outcome count vectors.  The partial sums are exactly the values the
  // uncached walk recomputes per draw, so the cache toggle cannot move any
  // draw across an outcome boundary.
  total_mass_ = 0.0;
  if (cache) {
    const auto count = composition_count(h, d, kMaxOutcomes);
    cum_.reserve(count);
    if (d > 2) outcomes_.reserve(count);
  }
  enumerate([&](double pmf, std::span<const std::uint64_t> counts) {
    total_mass_ += pmf;
    if (cache) {
      cum_.push_back(total_mass_);
      if (d_ > 2) {
        std::array<std::uint32_t, kMaxAlphabet> packed{};
        for (std::size_t s = 0; s < d_; ++s) {
          packed[s] = static_cast<std::uint32_t>(counts[s]);
        }
        outcomes_.push_back(packed);
      }
    }
    return true;
  });
  NOISYPULL_ASSERT(total_mass_ > 0.0);
}

template <typename Visit>
void ObservationSampler::enumerate(Visit&& visit) const {
  // Weak compositions of h over d parts in NEXCOM order (Nijenhuis–Wilf):
  // (h,0,...,0), ..., (0,...,0,h).  Both the table build and the uncached
  // walk use this exact loop.
  std::array<std::uint64_t, kMaxAlphabet> c{};
  c[0] = h_;
  for (;;) {
    if (!visit(outcome_pmf(std::span<const std::uint64_t>(c.data(), d_)),
               std::span<const std::uint64_t>(c.data(), d_))) {
      return;
    }
    std::size_t j = 0;
    while (c[j] == 0) ++j;
    if (j + 1 == d_) return;  // (0,...,0,h) is the last composition
    const std::uint64_t v = c[j];
    c[j] = 0;
    c[0] = v - 1;
    c[j + 1] += 1;
  }
}

double ObservationSampler::outcome_pmf(
    std::span<const std::uint64_t> counts) const {
  double logpmf = log_factorial_[h_];
  for (std::size_t s = 0; s < d_; ++s) {
    const std::uint64_t cs = counts[s];
    if (cs == 0) continue;  // skip: avoids 0 * log(0) for zero-weight symbols
    if (!has_mass_[s]) return 0.0;
    logpmf += static_cast<double>(cs) * logp_[s] - log_factorial_[cs];
  }
  return std::exp(logpmf);
}

void ObservationSampler::split(Rng& rng, std::uint64_t k,
                               const SplitVisitor& visit) const {
  NOISYPULL_CHECK(mode_ == Mode::InverseCdf,
                  "split() requires the inverse-CDF mode: the outcome space "
                  "must be enumerable (see the reset() amortization gate)");
  if (k == 0) return;
  // Conditional-binomial chain over the enumeration, with the last
  // *positive*-pmf outcome taking the leftover instead of a binomial draw
  // (sample_multinomial's zero-tail rule).  The last positive outcome is not
  // known until the walk ends, so emission lags one positive outcome behind:
  // when a new positive outcome appears, the pending one is finalized with a
  // binomial draw; whatever is pending at the end absorbs the remainder.
  double wsum = total_mass_;
  std::uint64_t remaining = k;
  std::array<std::uint64_t, kMaxAlphabet> pending{};
  double pending_pmf = 0.0;
  bool have_pending = false;
  enumerate([&](double pmf, std::span<const std::uint64_t> counts) {
    if (pmf <= 0.0) return true;
    if (have_pending) {
      if (remaining == 0) return false;  // leftover 0: nothing more to place
      if (wsum > 0.0) {
        double p = pending_pmf / wsum;
        if (p > 1.0) p = 1.0;  // guard round-off in the running mass
        const std::uint64_t cnt = sample_binomial(rng, remaining, p);
        if (cnt > 0) {
          visit(cnt, std::span<const std::uint64_t>(pending.data(), d_));
          remaining -= cnt;
        }
      }
      wsum -= pending_pmf;
    }
    std::copy(counts.begin(), counts.end(), pending.begin());
    pending_pmf = pmf;
    have_pending = true;
    return true;
  });
  NOISYPULL_ASSERT(have_pending);  // total_mass_ > 0 guarantees one outcome
  if (remaining > 0) {
    visit(remaining, std::span<const std::uint64_t>(pending.data(), d_));
  }
}

void ObservationSampler::sample(Rng& rng, SymbolCounts& obs) const {
  NOISYPULL_CHECK(obs.size == d_,
                  "observation buffer does not match the sampler alphabet");
  if (mode_ == Mode::Decomposition) {
    sample_multinomial(rng, h_, std::span<const double>(weights_.data(), d_),
                       std::span<std::uint64_t>(obs.c.data(), d_));
    return;
  }

  const double target = rng.next_double() * total_mass_;
  if (!cum_.empty()) {
    // Cached: binary search the precomputed partial sums.  upper_bound finds
    // the first index with cum_[i] > target — the same index the walk below
    // stops at — clamped to the last outcome for target at/above the total.
    std::size_t idx = static_cast<std::size_t>(
        std::upper_bound(cum_.begin(), cum_.end(), target) - cum_.begin());
    if (idx >= cum_.size()) idx = cum_.size() - 1;
    if (d_ == 2) {
      obs.c[0] = h_ - static_cast<std::uint64_t>(idx);
      obs.c[1] = static_cast<std::uint64_t>(idx);
    } else {
      for (std::size_t s = 0; s < d_; ++s) obs.c[s] = outcomes_[idx][s];
    }
    return;
  }

  // Uncached: linear walk over the identical partial sums.
  double acc = 0.0;
  bool found = false;
  enumerate([&](double pmf, std::span<const std::uint64_t> counts) {
    acc += pmf;
    const bool last = counts[d_ - 1] == h_;
    if (acc > target || last) {
      for (std::size_t s = 0; s < d_; ++s) obs.c[s] = counts[s];
      found = true;
      return false;  // stop enumeration
    }
    return true;
  });
  NOISYPULL_ASSERT(found);
}

std::uint64_t ObservationSampler::sample_index_uncached(double target) const {
  double acc = 0.0;
  std::uint64_t index = 0;
  std::uint64_t result = 0;
  bool found = false;
  enumerate([&](double pmf, std::span<const std::uint64_t> counts) {
    acc += pmf;
    const bool last = counts[d_ - 1] == h_;
    if (acc > target || last) {
      result = index;
      found = true;
      return false;
    }
    ++index;
    return true;
  });
  NOISYPULL_ASSERT(found);
  return result;
}

void ObservationSampler::for_each_outcome(const OutcomeVisitor& visit) const {
  NOISYPULL_CHECK(mode_ == Mode::InverseCdf,
                  "for_each_outcome() requires the inverse-CDF mode: the "
                  "outcome space must be enumerable (see the reset() gate)");
  SymbolCounts obs(d_);
  std::uint64_t index = 0;
  enumerate([&](double /*pmf*/, std::span<const std::uint64_t> counts) {
    for (std::size_t s = 0; s < d_; ++s) obs.c[s] = counts[s];
    visit(index, obs);
    ++index;
    return true;
  });
}

}  // namespace noisypull
