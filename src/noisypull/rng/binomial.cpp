#include "noisypull/rng/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {
namespace {

// Tail of the Stirling series: log(k!) = stirling + (k+1/2)log(k+1) - (k+1)
// + log(sqrt(2*pi)) shifted so that the BTRS acceptance test below telescopes
// exactly.  Exact table for k <= 9, 3-term series otherwise (error < 1e-15
// for k >= 10, far below the acceptance test's tolerance needs).
double stirling_approx_tail(double k) noexcept {
  static constexpr double kTable[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9.0) return kTable[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / (k + 1.0);
}

// Inversion ("BINV"): walk the cdf from 0.  Expected O(n p) iterations.
// Requires p <= 0.5 and n * p small enough that q^n does not underflow
// (guaranteed by the caller's cutoff).
//
// Round-off in the running pmf recurrence can push the walk past x = n with
// residual mass left; the classic remedy restarts the whole inversion with a
// fresh uniform.  For a healthy (n, p) the restart probability is ~ the
// accumulated rounding error (≪ 1e-10), so consecutive restarts certify a
// pathological input rather than bad luck — after kMaxRestarts the sampler
// returns the mode-adjacent boundary n (where the unaccounted mass lives)
// instead of looping unboundedly.
constexpr int kBinvMaxRestarts = 64;

std::uint64_t binv(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = rng.next_double();
  std::uint64_t x = 0;
  int restarts = 0;
  while (u > r) {
    u -= r;
    ++x;
    if (x > n) {  // numeric guard against accumulated round-off
      if (++restarts >= kBinvMaxRestarts) return n;
      x = 0;
      r = std::pow(q, static_cast<double>(n));
      u = rng.next_double();
      continue;
    }
    r *= (a / static_cast<double>(x) - s);
  }
  return x;
}

// Hörmann's BTRS transformed-rejection sampler.  Exact; requires p <= 0.5
// and n * p >= 10.
std::uint64_t btrs(Rng& rng, std::uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double np = nd * p;
  const double q = 1.0 - p;
  const double stddev = std::sqrt(np * q);
  const double b = 1.15 + 2.53 * stddev;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = np + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * stddev;
  const double m = std::floor((nd + 1) * p);
  for (;;) {
    const double u = rng.next_double() - 0.5;
    double v = rng.next_double();
    const double us = 0.5 - std::fabs(u);
    const double kf = std::floor((2 * a / us + b) * u + c);
    if (kf < 0 || kf > nd) continue;
    // Fast acceptance region (covers ~86% of draws).
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kf);
    // Exact acceptance test against the true pmf ratio f(k)/f(m).
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1) / (r * (nd - m + 1))) +
        (nd + 1) * std::log((nd - m + 1) / (nd - kf + 1)) +
        (kf + 0.5) * std::log(r * (nd - kf + 1) / (kf + 1)) +
        stirling_approx_tail(m) + stirling_approx_tail(nd - m) -
        stirling_approx_tail(kf) - stirling_approx_tail(nd - kf);
    if (v <= upper) return static_cast<std::uint64_t>(kf);
  }
}

}  // namespace

std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p) {
  NOISYPULL_CHECK(p >= 0.0 && p <= 1.0, "binomial probability outside [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - sample_binomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) return binv(rng, n, p);
  return btrs(rng, n, p);
}

void sample_multinomial(Rng& rng, std::uint64_t n,
                        std::span<const double> weights,
                        std::span<std::uint64_t> counts) {
  NOISYPULL_CHECK(weights.size() == counts.size(),
                  "weights/counts size mismatch");
  NOISYPULL_CHECK(!weights.empty(), "empty multinomial support");
  double wsum = 0.0;
  for (double w : weights) {
    NOISYPULL_CHECK(w >= 0.0, "negative multinomial weight");
    wsum += w;
  }
  NOISYPULL_CHECK(n == 0 || wsum > 0.0, "zero total weight with n > 0");
  const std::size_t k = weights.size();
  std::fill(counts.begin(), counts.end(), 0);
  if (n == 0) return;
  // The conditional-binomial chain must terminate at the last *positive*
  // weight.  Handing the remainder to the final bucket unconditionally
  // leaks counts into zero-probability cells: for the last positive bucket
  // p = w/wsum rounds to just below 1, sample_binomial undershoots, and the
  // leftover lands in a bucket whose weight is 0.  For weight vectors whose
  // final entry is positive the loop below is iteration- and RNG-identical
  // to the plain 0..k-2 chain (zero-weight middle buckets draw p = 0, which
  // consumes no randomness).
  std::size_t last_pos = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (weights[i] > 0.0) last_pos = i;
  }
  std::uint64_t remaining = n;
  for (std::size_t i = 0; i < last_pos; ++i) {
    if (remaining == 0) continue;
    if (wsum <= 0.0) break;  // running sum exhausted by round-off
    double p = weights[i] / wsum;
    if (p > 1.0) p = 1.0;  // guard round-off in the running weight sum
    counts[i] = sample_binomial(rng, remaining, p);
    remaining -= counts[i];
    wsum -= weights[i];
  }
  counts[last_pos] = remaining;
}

std::size_t sample_discrete(Rng& rng, std::span<const double> weights) {
  NOISYPULL_CHECK(!weights.empty(), "empty discrete support");
  double wsum = 0.0;
  for (double w : weights) {
    NOISYPULL_CHECK(w >= 0.0, "negative discrete weight");
    wsum += w;
  }
  NOISYPULL_CHECK(wsum > 0.0, "zero total discrete weight");
  double u = rng.next_double() * wsum;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace noisypull
