// Deterministic pseudo-random number generation for simulations.
//
// The simulator needs (1) a fast, high-quality generator, (2) reproducibility
// from a single 64-bit seed, and (3) the ability to derive statistically
// independent substreams (one per repetition / per agent) so that parallel
// repetitions are deterministic regardless of thread scheduling.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through splitmix64, the
// combination recommended by the xoshiro authors.  Substreams are derived via
// the generator's jump() polynomial or by re-seeding with a splitmix64-mixed
// (seed, stream) pair; both give streams that are independent for all
// practical simulation purposes.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace noisypull {

// splitmix64 step: advances *state and returns the next 64-bit output.
// Used for seeding and for cheap hash-style stream derivation.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator so it
// can also be plugged into <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four 64-bit words of state from splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept;

  // Derives a generator for an independent substream: the state is seeded
  // from a splitmix64 mix of (seed, stream).  Distinct streams for the same
  // seed do not overlap in any detectable way.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  // Uniform integer in [0, bound) using Lemire's nearly-divisionless method;
  // unbiased.  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Fair coin.
  bool next_bool() noexcept { return (next() >> 63) != 0; }

  // Bernoulli(p) draw; p is clamped to [0, 1].
  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Equivalent of 2^128 calls to next(); used to split non-overlapping
  // substreams from one generator.
  void jump() noexcept;

  std::array<std::uint64_t, 4> state() const noexcept { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace noisypull
