// Deterministic pseudo-random number generation for simulations.
//
// The simulator needs (1) a fast, high-quality generator, (2) reproducibility
// from a single 64-bit seed, and (3) the ability to derive statistically
// independent substreams (one per repetition / per agent) so that parallel
// repetitions are deterministic regardless of thread scheduling.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through splitmix64, the
// combination recommended by the xoshiro authors.  Substreams are derived via
// the generator's jump() polynomial or by re-seeding with a splitmix64-mixed
// (seed, stream) pair; both give streams that are independent for all
// practical simulation purposes.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace noisypull {

// splitmix64 step: advances *state and returns the next 64-bit output.
// Used for seeding and for cheap hash-style stream derivation.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator so it
// can also be plugged into <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four 64-bit words of state from splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept;

  // Derives a generator for an independent substream: the state is seeded
  // from a splitmix64 mix of (seed, stream).  Distinct streams for the same
  // seed do not overlap in any detectable way.
  Rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Next raw 64-bit output.  Defined inline (with the other per-draw calls
  // below): every engine consumes one or more draws per agent per round, and
  // an out-of-line definition would put a cross-TU call on that hot path.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) using Lemire's nearly-divisionless method;
  // unbiased.  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift with rejection on the low word.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Fair coin.
  bool next_bool() noexcept { return (next() >> 63) != 0; }

  // Bernoulli(p) draw; p is clamped to [0, 1].
  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Equivalent of 2^128 calls to next(); used to split non-overlapping
  // substreams from one generator.
  void jump() noexcept;

  std::array<std::uint64_t, 4> state() const noexcept { return s_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace noisypull
