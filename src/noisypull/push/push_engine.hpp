// Round engines for the noisy PUSH(h) model.
//
// ExactPushEngine is the literal model: every sending agent draws h receiver
// indices (uniform, with replacement, possibly itself) and each copy passes
// through the noise channel independently — Θ(#senders·h) per round.
//
// AggregatePushEngine draws the same joint distribution directly: the M =
// #senders·h (message, receiver) pairs are i.i.d., with the observed symbol
// marginal q ∝ cᵀN (c = histogram of sent symbols) independent of the
// uniformly random receiver.  The full n×|Σ| delivery table is therefore one
// multinomial over symbols followed by an occupancy split across receivers —
// O(n·|Σ|) per round regardless of h.  Tests cross-validate both engines.
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/noise/noise_matrix.hpp"
#include "noisypull/push/push_protocol.hpp"

namespace noisypull {

class PushEngine {
 public:
  virtual ~PushEngine() = default;

  // Executes one round: send decisions → transmission → noise → deliveries.
  // Every agent gets exactly one deliver() call per round (possibly empty).
  virtual void step(PushProtocol& protocol, const NoiseMatrix& noise,
                    Holdings h, std::uint64_t round, Rng& rng) = 0;
};

class ExactPushEngine final : public PushEngine {
 public:
  void step(PushProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;

 private:
  std::vector<SymbolCounts> inbox_;  // scratch, reused across rounds
};

class AggregatePushEngine final : public PushEngine {
 public:
  void step(PushProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override;
};

}  // namespace noisypull
