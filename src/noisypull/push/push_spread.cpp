#include "noisypull/push/push_spread.hpp"

#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

PushSpread::PushSpread(const PopulationConfig& pop, Holdings h_in,
                       Delta delta_in, double c_growth, double c_cleanup)
    : pop_(pop), agents_(pop.n) {
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  pop_.validate();
  NOISYPULL_CHECK(h >= 1, "push fan-out h must be at least 1");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.5,
                  "PushSpread requires delta in [0, 1/2)");
  NOISYPULL_CHECK(c_growth > 0.0 && c_cleanup > 0.0,
                  "phase constants must be positive");

  const double margin = 1.0 - 2.0 * delta;
  // Smallest odd window k with k·margin² ≥ 4: makes the post-activation
  // re-estimation map expansive around 1/2, so the cascade's polynomial
  // tilt gets boosted to a fixed point near 1 (see header).
  std::uint64_t k =
      static_cast<std::uint64_t>(std::ceil(4.0 / (margin * margin)));
  if (k % 2 == 0) ++k;
  k_ = std::max<std::uint64_t>(k, 3);

  const double logn = std::log(static_cast<double>(pop.n));
  // Growth = activation cascade (~log2 n rounds) plus a dozen refresh
  // cycles of k_/h rounds each for the boosting iterations to converge.
  const std::uint64_t refresh_rounds = (k_ + h - 1) / h;
  growth_rounds_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(c_growth * logn)) +
             12 * refresh_rounds);
  cleanup_rounds_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(c_cleanup * logn / (margin * margin *
                                           static_cast<double>(h)))) +
             2);

  // Sources are active from round 0 and never change their estimate.
  for (std::uint64_t i = 0; i < pop.num_sources(); ++i) {
    agents_[i].active = true;
    agents_[i].estimate = pop.source_preference(i);
  }
}

bool PushSpread::sends(std::uint64_t agent, std::uint64_t round) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  (void)round;
  return agents_[agent].active;  // silence of the uninformed is the signal
}

Symbol PushSpread::message(std::uint64_t agent, std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  if (pop_.is_source(agent)) return pop_.source_preference(agent);
  return agents_[agent].estimate;
}

Opinion PushSpread::majority(std::uint64_t ones, std::uint64_t zeros,
                             Rng& rng) {
  if (ones > zeros) return 1;
  if (ones < zeros) return 0;
  return rng.next_bool() ? 1 : 0;
}

void PushSpread::deliver(std::uint64_t agent, std::uint64_t round,
                         const SymbolCounts& received, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(received.size == 2, "PushSpread expects binary alphabet");
  AgentState& a = agents_[agent];

  if (round + 1 == growth_rounds_) {
    // Last growth round: reset tallies so the cleanup majority only sees
    // cleanup-phase messages (activation is still allowed below).
    if (!a.active && received.total() > 0) {
      a.active = true;
      a.estimate = majority(received[1], received[0], rng);
    }
    a.zeros = a.ones = 0;
    return;
  }

  if (round < growth_rounds_) {
    if (!a.active) {
      if (received.total() == 0) return;
      // First contact: adopt the majority of this round's deliveries.
      a.active = true;
      a.estimate = majority(received[1], received[0], rng);
      return;
    }
    if (pop_.is_source(agent)) return;  // sources never re-estimate
    a.zeros += received[0];
    a.ones += received[1];
    if (a.zeros + a.ones >= k_) {
      a.estimate = majority(a.ones, a.zeros, rng);
      a.zeros = a.ones = 0;
    }
    return;
  }

  // Cleanup phase: accumulate everything; decide on the very last round.
  // Any agent somehow still silent activates on its first cleanup message.
  if (!a.active) {
    if (received.total() == 0) return;
    a.active = true;
  }
  a.zeros += received[0];
  a.ones += received[1];
  if (round + 1 == planned_rounds() && !pop_.is_source(agent)) {
    if (a.zeros + a.ones > 0) {
      a.estimate = majority(a.ones, a.zeros, rng);
    }
  }
}

Opinion PushSpread::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].estimate;
}

std::uint64_t PushSpread::active_count() const noexcept {
  std::uint64_t count = 0;
  for (const auto& a : agents_) count += a.active ? 1 : 0;
  return count;
}

}  // namespace noisypull
