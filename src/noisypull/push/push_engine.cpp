#include "noisypull/push/push_engine.hpp"

#include <array>
#include <span>

#include "noisypull/common/check.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {
namespace {

// Histogram of symbols chosen by this round's senders.
std::array<std::uint64_t, kMaxAlphabet> sent_histogram(
    const PushProtocol& protocol, std::uint64_t round,
    std::uint64_t* num_senders) {
  std::array<std::uint64_t, kMaxAlphabet> c{};
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  std::uint64_t senders = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!protocol.sends(i, round)) continue;
    const Symbol s = protocol.message(i, round);
    NOISYPULL_ASSERT(s < d);
    ++c[s];
    ++senders;
  }
  *num_senders = senders;
  return c;
}

}  // namespace

void ExactPushEngine::step(PushProtocol& protocol, const NoiseMatrix& noise,
                           Holdings h_in, std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "push fan-out h must be at least 1");

  inbox_.assign(n, SymbolCounts(d));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!protocol.sends(i, round)) continue;
    const Symbol msg = protocol.message(i, round);
    for (std::uint64_t k = 0; k < h; ++k) {
      const std::uint64_t receiver = rng.next_below(n);
      ++inbox_[receiver][noise.corrupt(msg, rng)];
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    protocol.deliver(i, round, inbox_[i], rng);
  }
}

void AggregatePushEngine::step(PushProtocol& protocol,
                               const NoiseMatrix& noise, Holdings h_in,
                               std::uint64_t round, Rng& rng) {
  const std::uint64_t h = h_in.get();
  const std::uint64_t n = protocol.num_agents();
  const std::size_t d = protocol.alphabet_size();
  NOISYPULL_CHECK(noise.alphabet_size() == d,
                  "noise matrix alphabet does not match protocol");
  NOISYPULL_CHECK(h >= 1, "push fan-out h must be at least 1");

  std::uint64_t senders = 0;
  const auto c = sent_histogram(protocol, round, &senders);
  const std::uint64_t total_messages = senders * h;

  // Total delivered copies per observed symbol: Multinomial(M, q) with
  // q[σ'] ∝ Σ_σ c[σ]·N(σ,σ').
  std::array<std::uint64_t, kMaxAlphabet> totals{};
  if (total_messages > 0) {
    std::array<double, kMaxAlphabet> q{};
    for (std::size_t to = 0; to < d; ++to) {
      for (std::size_t from = 0; from < d; ++from) {
        q[to] += static_cast<double>(c[from]) *
                 noise(static_cast<Symbol>(from), static_cast<Symbol>(to));
      }
    }
    sample_multinomial(rng, total_messages,
                       std::span<const double>(q.data(), d),
                       std::span<std::uint64_t>(totals.data(), d));
  }

  // Occupancy split: receivers are uniform i.i.d. per copy, so sweep the
  // agents and peel Binomial(remaining, 1/(n−i)) per symbol.
  auto remaining = totals;
  SymbolCounts received(d);
  for (std::uint64_t i = 0; i < n; ++i) {
    received.clear();
    const double inv = 1.0 / static_cast<double>(n - i);
    for (std::size_t s = 0; s < d; ++s) {
      if (remaining[s] == 0) continue;
      const std::uint64_t take =
          (i + 1 == n) ? remaining[s]
                       : sample_binomial(rng, remaining[s], inv);
      received[s] = take;
      remaining[s] -= take;
    }
    protocol.deliver(i, round, received, rng);
  }
}

}  // namespace noisypull
