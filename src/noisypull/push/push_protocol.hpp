// The noisy PUSH(h) model (Section 1.5 of the paper).
//
// In PUSH, each agent may *send* its message to h agents chosen uniformly at
// random (with replacement) per round; receivers get independently corrupted
// copies.  The crucial structural difference from PULL — the reason for the
// exponential separation proved in [Boczkowski et al. 2018] vs [Feinerman,
// Haeupler, Korman 2017] — is that *intent is reliable*: a receiver cannot
// trust a message's content, but it can trust that somebody chose to send
// it.  Silence is therefore a noise-free signal, which PULL lacks.
//
// This interface mirrors PullProtocol but adds that choice: an agent either
// sends a symbol or stays silent, and deliveries can be empty.
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class PushProtocol {
 public:
  virtual ~PushProtocol() = default;

  virtual std::size_t alphabet_size() const = 0;
  virtual std::uint64_t num_agents() const = 0;

  // Whether `agent` transmits this round (silent agents send nothing, and
  // receivers can rely on that).
  virtual bool sends(std::uint64_t agent, std::uint64_t round) const = 0;

  // The symbol pushed by a sending agent (unspecified for silent agents).
  virtual Symbol message(std::uint64_t agent, std::uint64_t round) const = 0;

  // Delivers the (possibly empty) multiset of noisy messages that reached
  // `agent` this round.  Unlike PULL, received.total() is random: it is the
  // number of senders whose h pushes happened to land on this agent.
  virtual void deliver(std::uint64_t agent, std::uint64_t round,
                       const SymbolCounts& received, Rng& rng) = 0;

  virtual Opinion opinion(std::uint64_t agent) const = 0;

  // Rounds the protocol is designed to run, or 0 if unbounded.
  virtual std::uint64_t planned_rounds() const { return 0; }
};

}  // namespace noisypull
