// PushSpread — fast information spreading in the noisy PUSH(h) model, in the
// spirit of Feinerman–Haeupler–Korman ("Breathe before speaking", 2017).
//
// The paper's related-work section contrasts its Ω(n/h) PULL bound with the
// O(log n) achievable under noisy PUSH(1); this protocol realizes (a
// simplified variant of) that upper bound so the separation can be measured
// (bench tab_push_vs_pull).  It exploits the one reliable feature of PUSH:
// an agent knows whether a message was *sent* to it, even if the content is
// noisy.
//
// Structure (synchronous start, like SF):
//   Growth phase (G = ⌈c_g·ln n⌉ rounds): sources push their preference
//   every round.  A silent agent that receives at least one message becomes
//   *active* with estimate = majority of that round's deliveries, and from
//   then on pushes its estimate.  Active agents keep a tally of everything
//   they receive and re-estimate by majority each time the tally reaches
//   k = smallest odd integer ≥ 8/(1−2δ)² messages, then reset the tally.
//   The re-estimation map has its fixed point strictly above 1/2 whenever
//   k·(1−2δ) is large enough, so the active population's correctness decays
//   from the (perfectly correct) sources only down to a constant p* > 1/2
//   while the active set doubles every O(1) rounds.
//   Cleanup phase (L = ⌈c_l·ln n/((1−2δ)²·h)⌉ + c rounds): everybody pushes
//   its current estimate and accumulates every delivery; at the end, each
//   agent's opinion is the majority over the whole cleanup phase — Θ(log n)
//   messages with per-message correctness ≥ 1/2 + Ω(1), hence w.h.p. correct
//   for all agents simultaneously.
//
// Total: O(log n·(1 + 1/((1−2δ)²h))) rounds — exponentially faster than the
// Ω(n·δ/h) PULL(h) lower bound at h = O(1), which is the separation the
// paper's introduction highlights.
//
// Scope: this targets the classic spreading task where all sources agree
// (s0 = 0), matching the PUSH-vs-PULL separation discussion; sources keep
// their preference rather than converging to a plurality.
//
// Noise range: the simple first-contact copy cascade carries a systematic
// tilt of order n^(log2(2(1−2δ))) correct-leaning agents against Θ(√n)
// sampling fluctuation, so reliability requires 2(1−2δ) > √2, i.e.
// δ < (1−1/√2)/2 ≈ 0.146 (at δ = 0.2 success degrades to ~75%, at δ = 0.3
// to a coin flip).  The full Feinerman–Haeupler–Korman protocol removes
// this restriction with graded-confidence signaling; reproducing it is out
// of scope here — the separation benches run at δ = 0.1 (see DESIGN.md
// substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/push/push_protocol.hpp"

namespace noisypull {

class PushSpread final : public PushProtocol {
 public:
  // Builds the protocol for the given population, fan-out h and uniform
  // noise level δ ∈ [0, 1/2).  `c_growth` and `c_cleanup` are the phase
  // constants (calibrated defaults).
  PushSpread(const PopulationConfig& pop, Holdings h, Delta delta,
             double c_growth = 6.0, double c_cleanup = 24.0);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  bool sends(std::uint64_t agent, std::uint64_t round) const override;
  Symbol message(std::uint64_t agent, std::uint64_t round) const override;
  void deliver(std::uint64_t agent, std::uint64_t round,
               const SymbolCounts& received, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;
  std::uint64_t planned_rounds() const override {
    return growth_rounds_ + cleanup_rounds_;
  }

  std::uint64_t growth_rounds() const noexcept { return growth_rounds_; }
  std::uint64_t cleanup_rounds() const noexcept { return cleanup_rounds_; }
  std::uint64_t refresh_window() const noexcept { return k_; }

  // Number of currently active (informed) agents, sources included.
  std::uint64_t active_count() const noexcept;

 private:
  const PopulationConfig pop_;
  std::uint64_t k_ = 5;              // refresh-majority window
  std::uint64_t growth_rounds_ = 0;  // G
  std::uint64_t cleanup_rounds_ = 0; // L

  struct AgentState {
    bool active = false;
    Opinion estimate = 0;
    std::uint64_t zeros = 0, ones = 0;  // running tally (growth or cleanup)
  };
  std::vector<AgentState> agents_;

  static Opinion majority(std::uint64_t ones, std::uint64_t zeros, Rng& rng);
};

}  // namespace noisypull
