// Small dense matrices over double.
//
// Section 4 of the paper manipulates |Σ|×|Σ| stochastic matrices (|Σ| ≤ 4 in
// the protocols, arbitrary d in the theory).  This module provides exactly
// the operations the proofs use: products, the ∞-operator norm (Definition
// 10), and the (weak-)stochasticity predicates of Definition 9.  It is a
// deliberately small row-major value type — no expression templates, no
// views — because every matrix in this codebase is tiny.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace noisypull {

class Matrix {
 public:
  Matrix() = default;

  // rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  // Square matrix from a row-major initializer list; the list's size must be
  // a perfect square.
  Matrix(std::initializer_list<double> row_major);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool is_square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  // Checked element access (throws std::invalid_argument out of range).
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(double scalar) const;

  // ∞-operator norm: max over rows of the row's absolute sum (Eq. (4)).
  double inf_norm() const noexcept;

  // Largest absolute entry difference to another matrix of the same shape.
  double max_abs_diff(const Matrix& rhs) const;

  // Definition 9: every row sums to 1 (within tol).
  bool is_weakly_stochastic(double tol = 1e-9) const noexcept;

  // Definition 9: weakly stochastic and entrywise >= -tol.
  bool is_stochastic(double tol = 1e-9) const noexcept;

  const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace noisypull
