// LU decomposition with partial pivoting, for inverting noise matrices.
//
// Corollary 14 of the paper proves that every δ-upper-bounded noise matrix is
// invertible with ‖N⁻¹‖∞ ≤ (d−1)/(1−dδ); the artificial-noise construction
// (Proposition 16) needs the actual inverse, P = N⁻¹·T.  Matrices here are
// tiny (d ≤ 8 in practice), so a dense LU with partial pivoting is both exact
// enough and simple.
#pragma once

#include <optional>
#include <span>

#include "noisypull/linalg/matrix.hpp"

namespace noisypull {

// Factorization result: P·A = L·U packed into one matrix (unit lower
// triangle implicit), plus the row permutation and its sign.
struct LuDecomposition {
  Matrix lu;                       // packed L (strict lower) and U (upper)
  std::vector<std::size_t> perm;   // row permutation applied to A
  int perm_sign = 1;               // +1 / -1, parity of the permutation

  // Solves A·x = b for the factored A.  b.size() must equal the dimension.
  std::vector<double> solve(std::span<const double> b) const;

  double determinant() const noexcept;
};

// Factors a square matrix.  Returns std::nullopt if A is singular to working
// precision (a pivot smaller than `pivot_tol` in magnitude is encountered).
std::optional<LuDecomposition> lu_decompose(const Matrix& a,
                                            double pivot_tol = 1e-12);

// Inverts a square matrix via LU.  Returns std::nullopt if singular.
std::optional<Matrix> invert(const Matrix& a, double pivot_tol = 1e-12);

}  // namespace noisypull
