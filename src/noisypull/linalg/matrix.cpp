#include "noisypull/linalg/matrix.hpp"

#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  NOISYPULL_CHECK(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix::Matrix(std::initializer_list<double> row_major) {
  const auto n = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(row_major.size()))));
  NOISYPULL_CHECK(n > 0 && n * n == row_major.size(),
                  "initializer list size must be a perfect square");
  rows_ = cols_ = n;
  data_.assign(row_major.begin(), row_major.end());
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  NOISYPULL_CHECK(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  NOISYPULL_CHECK(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  NOISYPULL_CHECK(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  NOISYPULL_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix sum shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  NOISYPULL_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix difference shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

double Matrix::inf_norm() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row += std::fabs((*this)(i, j));
    if (row > best) best = row;
  }
  return best;
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  NOISYPULL_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix diff shape mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - rhs.data_[i]));
  }
  return best;
}

bool Matrix::is_weakly_stochastic(double tol) const noexcept {
  for (std::size_t i = 0; i < rows_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row += (*this)(i, j);
    // NaN-rejecting form: a NaN entry makes `row` NaN, which must fail.
    if (!(std::fabs(row - 1.0) <= tol)) return false;
  }
  return true;
}

bool Matrix::is_stochastic(double tol) const noexcept {
  for (double v : data_) {
    if (!(v >= -tol)) return false;  // NaN-rejecting form
  }
  return is_weakly_stochastic(tol);
}

}  // namespace noisypull
