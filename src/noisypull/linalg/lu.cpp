#include "noisypull/linalg/lu.hpp"

#include <cmath>
#include <span>

#include "noisypull/common/check.hpp"

namespace noisypull {

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu.rows();
  NOISYPULL_CHECK(b.size() == n, "rhs size mismatch in LU solve");
  std::vector<double> x(n);
  // Apply permutation, then forward-substitute through unit-lower L.
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu(i, j) * x[j];
    x[i] = sum;
  }
  // Back-substitute through U.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu(ii, j) * x[j];
    x[ii] = sum / lu(ii, ii);
  }
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double det = perm_sign;
  for (std::size_t i = 0; i < lu.rows(); ++i) det *= lu(i, i);
  return det;
}

std::optional<LuDecomposition> lu_decompose(const Matrix& a,
                                            double pivot_tol) {
  NOISYPULL_CHECK(a.is_square(), "LU requires a square matrix");
  const std::size_t n = a.rows();
  LuDecomposition d{a, {}, 1};
  d.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: find the largest magnitude entry in this column.
    std::size_t pivot_row = col;
    double pivot_mag = std::fabs(d.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(d.lu(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < pivot_tol) return std::nullopt;  // singular
    if (pivot_row != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(d.lu(col, j), d.lu(pivot_row, j));
      }
      std::swap(d.perm[col], d.perm[pivot_row]);
      d.perm_sign = -d.perm_sign;
    }
    const double pivot = d.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = d.lu(r, col) / pivot;
      d.lu(r, col) = factor;
      for (std::size_t j = col + 1; j < n; ++j) {
        d.lu(r, j) -= factor * d.lu(col, j);
      }
    }
  }
  return d;
}

std::optional<Matrix> invert(const Matrix& a, double pivot_tol) {
  const auto d = lu_decompose(a, pivot_tol);
  if (!d) return std::nullopt;
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    e[col] = 1.0;
    const auto x = d->solve(e);
    e[col] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inv(i, col) = x[i];
  }
  return inv;
}

}  // namespace noisypull
