#include "noisypull/baselines/majority_dynamics.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

MajorityDynamics::MajorityDynamics(const PopulationConfig& pop, Rng& init_rng)
    : pop_(pop), opinions_(pop.n) {
  pop_.validate();
  for (std::uint64_t i = 0; i < pop_.n; ++i) {
    opinions_[i] = pop_.is_source(i) ? pop_.source_preference(i)
                                     : (init_rng.next_bool() ? 1 : 0);
  }
}

Symbol MajorityDynamics::display(std::uint64_t agent,
                                 std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return opinions_[agent];
}

void MajorityDynamics::update(std::uint64_t agent, std::uint64_t /*round*/,
                              const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 2, "majority dynamics expects binary alphabet");
  if (pop_.is_source(agent)) return;  // zealot
  if (obs[1] > obs[0]) {
    opinions_[agent] = 1;
  } else if (obs[1] < obs[0]) {
    opinions_[agent] = 0;
  } else {
    opinions_[agent] = rng.next_bool() ? 1 : 0;
  }
}

Opinion MajorityDynamics::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return opinions_[agent];
}

}  // namespace noisypull
