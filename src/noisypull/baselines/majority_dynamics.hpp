// Memoryless local-majority baseline.
//
// Each round every non-source adopts the majority of its h noisy
// observations (ties → fair coin); sources are zealots.  This is the
// standard majority/median opinion dynamics studied in the consensus
// literature (Becchetti et al. 2020): it converges extremely fast to *some*
// consensus, but with a small source bias it locks onto the wrong value with
// probability close to 1/2 — exactly the failure mode SF's listening phase
// and SSF's source tag are designed to avoid.
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/protocol.hpp"

namespace noisypull {

class MajorityDynamics final : public PullProtocol {
 public:
  MajorityDynamics(const PopulationConfig& pop, Rng& init_rng);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

 private:
  const PopulationConfig pop_;
  std::vector<Opinion> opinions_;
};

}  // namespace noisypull
