#include "noisypull/baselines/repeated_majority.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

RepeatedMajority::RepeatedMajority(const PopulationConfig& pop,
                                   std::uint64_t window, Rng& init_rng)
    : pop_(pop), window_(window), agents_(pop.n) {
  pop_.validate();
  NOISYPULL_CHECK(window >= 1, "window must be at least 1");
  for (std::uint64_t i = 0; i < pop_.n; ++i) {
    agents_[i].current = pop_.is_source(i) ? pop_.source_preference(i)
                                           : (init_rng.next_bool() ? 1 : 0);
  }
}

Symbol RepeatedMajority::display(std::uint64_t agent,
                                 std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

void RepeatedMajority::update(std::uint64_t agent, std::uint64_t /*round*/,
                              const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 2, "repeated majority expects binary alphabet");
  if (pop_.is_source(agent)) return;  // zealot
  AgentState& a = agents_[agent];
  a.zeros += obs[0];
  a.ones += obs[1];
  if (a.zeros + a.ones < window_) return;
  if (a.ones > a.zeros) {
    a.current = 1;
  } else if (a.ones < a.zeros) {
    a.current = 0;
  } else {
    a.current = rng.next_bool() ? 1 : 0;
  }
  a.zeros = a.ones = 0;
}

Opinion RepeatedMajority::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

}  // namespace noisypull
