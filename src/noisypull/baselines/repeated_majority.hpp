// Repeated-majority baseline: accumulate k observations, adopt the majority.
//
// The "natural first attempt" at beating observation noise: smooth over a
// window of k messages instead of one round.  Non-sources display their
// current opinion throughout (no neutral listening phase), so the window
// mixes source signal with the echo of other uninformed agents.  For small
// bias s the echo dominates and the population locks onto a random value —
// empirically motivating why SF withholds opinions while listening.
// Sources are zealots.
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/protocol.hpp"

namespace noisypull {

class RepeatedMajority final : public PullProtocol {
 public:
  // `window` is k, the number of observations aggregated per decision.
  RepeatedMajority(const PopulationConfig& pop, std::uint64_t window,
                   Rng& init_rng);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

  std::uint64_t window() const noexcept { return window_; }

 private:
  const PopulationConfig pop_;
  const std::uint64_t window_;

  struct AgentState {
    std::uint64_t zeros = 0, ones = 0;
    Opinion current = 0;
  };
  std::vector<AgentState> agents_;
};

}  // namespace noisypull
