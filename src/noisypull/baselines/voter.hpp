// Voter-model baseline ("copy a random observed opinion").
//
// The classic rumor-spreading mechanism in PULL models is to copy the
// opinion of a sampled agent (Karp et al. 2000); with zealot sources this is
// the voter-with-zealots dynamics the paper's crazy-ant discussion builds on
// (Gelblum et al. 2015).  Under noisy observations and a small source bias
// this dynamics is slow and unreliable — it is the contrast class for the
// Ω(n) lower-bound narrative (bench tab_baseline_separation).
//
// Behaviour per round: a non-source adopts a uniformly random one of its h
// (noisy) observations; sources are zealots, always displaying and keeping
// their preference.
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/protocol.hpp"

namespace noisypull {

class VoterProtocol final : public PullProtocol {
 public:
  // Non-source initial opinions are drawn uniformly by `init_rng`.
  VoterProtocol(const PopulationConfig& pop, Rng& init_rng);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

 private:
  const PopulationConfig pop_;
  std::vector<Opinion> opinions_;
};

}  // namespace noisypull
