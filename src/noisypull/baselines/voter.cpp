#include "noisypull/baselines/voter.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

VoterProtocol::VoterProtocol(const PopulationConfig& pop, Rng& init_rng)
    : pop_(pop), opinions_(pop.n) {
  pop_.validate();
  for (std::uint64_t i = 0; i < pop_.n; ++i) {
    opinions_[i] = pop_.is_source(i) ? pop_.source_preference(i)
                                     : (init_rng.next_bool() ? 1 : 0);
  }
}

Symbol VoterProtocol::display(std::uint64_t agent,
                              std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return opinions_[agent];
}

void VoterProtocol::update(std::uint64_t agent, std::uint64_t /*round*/,
                           const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 2, "voter expects a binary alphabet");
  if (pop_.is_source(agent)) return;  // zealot
  // Adopt one of the h observations uniformly at random: the chance of
  // adopting 1 is obs[1] / (obs[0] + obs[1]).
  const std::uint64_t total = obs.total();
  if (total == 0) return;
  opinions_[agent] = rng.next_below(total) < obs[1] ? 1 : 0;
}

Opinion VoterProtocol::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return opinions_[agent];
}

}  // namespace noisypull
