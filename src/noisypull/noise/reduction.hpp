// Reduction from δ-upper-bounded to δ'-uniform noise (Section 4, Theorem 8).
//
// Agents cannot choose the channel N, but they can degrade their *own*
// observations: replacing each received message σ by a draw from row σ of an
// "artificial noise" matrix P turns the end-to-end channel into N·P.
// Proposition 16 shows that choosing P = N⁻¹·T, where T is the δ'-uniform
// matrix with δ' = f(δ) (Definition 7), makes P stochastic — hence
// implementable by agents — and the composed channel exactly δ'-uniform.
// This lets the protocols (and their analysis) assume uniform noise.
#pragma once

#include "noisypull/noise/noise_matrix.hpp"

namespace noisypull {

// Definition 7: f(0) = 0 and, for δ ∈ (0, 1/d),
//   f(δ) = ( d + ½·(d−1)⁻²·(1−dδ)/δ )⁻¹.
// Claim 15: f is continuous and increasing on [0, 1/d) with δ ≤ f(δ) < 1/d.
double uniform_noise_level(std::size_t d, double delta);

struct NoiseReduction {
  Matrix artificial;      // P: the artificial noise each agent applies
  double delta_prime;     // δ' = f(δ): level of the composed uniform channel
  NoiseMatrix effective;  // N·P, equal to the δ'-uniform matrix
};

// Builds the Theorem 8 reduction for a noise matrix N that is
// δ-upper-bounded, with δ = N.tightest_upper_bound() by default or an
// explicit (not smaller) level.  Throws if N is not δ-upper-bounded for the
// given δ, or if δ ≥ 1/d (no uniform reduction exists at that level).
NoiseReduction reduce_to_uniform(const NoiseMatrix& n);
NoiseReduction reduce_to_uniform(const NoiseMatrix& n, double delta);

}  // namespace noisypull
