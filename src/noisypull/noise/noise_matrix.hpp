// Noise matrices of the noisy PULL(h) model (Definition 1 of the paper).
//
// A noise matrix N is a stochastic |Σ|×|Σ| matrix: when an agent samples a
// message σ, it observes σ' with probability N[σ][σ'].  The paper's three
// regularity classes are:
//   δ-lower-bounded : every entry ≥ δ,
//   δ-upper-bounded : diagonal ≥ 1−(|Σ|−1)δ and off-diagonal ≤ δ  (Eq. 1),
//   δ-uniform       : equality in Eq. (1).
// This type wraps a stochastic Matrix, exposes those predicates, the tightest
// δ for each class, constructors for the canonical families, a generator of
// random δ-upper-bounded matrices (used by property tests and FIG1), and
// per-message sampling for the exact engine.
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/linalg/matrix.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class NoiseMatrix {
 public:
  // Wraps an arbitrary stochastic matrix.  Throws if `m` is not square,
  // not stochastic, or larger than kMaxAlphabet.
  explicit NoiseMatrix(Matrix m);

  // The δ-uniform matrix on an alphabet of size d: diagonal 1−(d−1)δ,
  // off-diagonal δ.  Requires d ≥ 2 and δ ∈ [0, 1/d].
  static NoiseMatrix uniform(std::size_t d, double delta);

  // Identity channel (noiseless), i.e. 0-uniform.
  static NoiseMatrix noiseless(std::size_t d) { return uniform(d, 0.0); }

  // A random δ-upper-bounded matrix: each off-diagonal entry drawn uniformly
  // from [0, δ], diagonal set to complete the row.  Requires δ ∈ [0, 1/d].
  static NoiseMatrix random_upper_bounded(std::size_t d, double delta,
                                          Rng& rng);

  std::size_t alphabet_size() const noexcept { return m_.rows(); }

  double operator()(Symbol from, Symbol to) const noexcept {
    return m_(from, to);
  }
  const Matrix& matrix() const noexcept { return m_; }

  // Definition 1 predicates (with numeric tolerance).
  bool is_lower_bounded(double delta, double tol = 1e-12) const noexcept;
  bool is_upper_bounded(double delta, double tol = 1e-12) const noexcept;
  bool is_uniform(double delta, double tol = 1e-9) const noexcept;

  // The smallest δ for which this matrix is δ-upper-bounded:
  //   max( max off-diagonal entry, max over rows of (1−diag)/(d−1) ).
  double tightest_upper_bound() const noexcept;

  // The largest δ for which this matrix is δ-lower-bounded (its min entry).
  double tightest_lower_bound() const noexcept;

  // Samples the observed symbol for a displayed symbol (one use of the
  // channel), i.e. a draw from row `displayed`.
  Symbol corrupt(Symbol displayed, Rng& rng) const;

 private:
  Matrix m_;
};

}  // namespace noisypull
