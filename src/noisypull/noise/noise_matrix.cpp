#include "noisypull/noise/noise_matrix.hpp"

#include <array>
#include <span>

#include "noisypull/common/check.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {

NoiseMatrix::NoiseMatrix(Matrix m) : m_(std::move(m)) {
  NOISYPULL_CHECK(m_.is_square(), "noise matrix must be square");
  NOISYPULL_CHECK(m_.rows() >= 2, "alphabet must have at least 2 symbols");
  NOISYPULL_CHECK(m_.rows() <= kMaxAlphabet, "alphabet larger than supported");
  NOISYPULL_CHECK(m_.is_stochastic(1e-9), "noise matrix must be stochastic");
}

NoiseMatrix NoiseMatrix::uniform(std::size_t d, double delta) {
  NOISYPULL_CHECK(d >= 2, "alphabet must have at least 2 symbols");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 1.0 / static_cast<double>(d),
                  "uniform noise level must be in [0, 1/d]");
  Matrix m(d, d);
  const double diag = 1.0 - static_cast<double>(d - 1) * delta;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) m(i, j) = (i == j) ? diag : delta;
  }
  return NoiseMatrix(std::move(m));
}

NoiseMatrix NoiseMatrix::random_upper_bounded(std::size_t d, double delta,
                                              Rng& rng) {
  NOISYPULL_CHECK(d >= 2, "alphabet must have at least 2 symbols");
  NOISYPULL_CHECK(delta >= 0.0 && delta <= 1.0 / static_cast<double>(d),
                  "upper-bound noise level must be in [0, 1/d]");
  Matrix m(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (i == j) continue;
      m(i, j) = rng.next_double() * delta;
      off_sum += m(i, j);
    }
    m(i, i) = 1.0 - off_sum;  // ≥ 1−(d−1)δ since each off entry ≤ δ
  }
  return NoiseMatrix(std::move(m));
}

bool NoiseMatrix::is_lower_bounded(double delta, double tol) const noexcept {
  const std::size_t d = alphabet_size();
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (m_(i, j) < delta - tol) return false;
    }
  }
  return true;
}

bool NoiseMatrix::is_upper_bounded(double delta, double tol) const noexcept {
  const std::size_t d = alphabet_size();
  const double diag_min = 1.0 - static_cast<double>(d - 1) * delta;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (i == j) {
        if (m_(i, j) < diag_min - tol) return false;
      } else if (m_(i, j) > delta + tol) {
        return false;
      }
    }
  }
  return true;
}

bool NoiseMatrix::is_uniform(double delta, double tol) const noexcept {
  const std::size_t d = alphabet_size();
  const double diag = 1.0 - static_cast<double>(d - 1) * delta;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double want = (i == j) ? diag : delta;
      if (m_(i, j) < want - tol || m_(i, j) > want + tol) return false;
    }
  }
  return true;
}

double NoiseMatrix::tightest_upper_bound() const noexcept {
  const std::size_t d = alphabet_size();
  double delta = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    delta = std::max(delta, (1.0 - m_(i, i)) / static_cast<double>(d - 1));
    for (std::size_t j = 0; j < d; ++j) {
      if (i != j) delta = std::max(delta, m_(i, j));
    }
  }
  return delta;
}

double NoiseMatrix::tightest_lower_bound() const noexcept {
  double delta = 1.0;
  for (double v : m_.data()) delta = std::min(delta, v);
  return delta;
}

Symbol NoiseMatrix::corrupt(Symbol displayed, Rng& rng) const {
  const std::size_t d = alphabet_size();
  NOISYPULL_CHECK(displayed < d, "displayed symbol outside alphabet");
  std::array<double, kMaxAlphabet> row{};
  for (std::size_t j = 0; j < d; ++j) row[j] = m_(displayed, j);
  return static_cast<Symbol>(
      sample_discrete(rng, std::span<const double>(row.data(), d)));
}

}  // namespace noisypull
