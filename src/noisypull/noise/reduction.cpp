#include "noisypull/noise/reduction.hpp"

#include <cmath>

#include "noisypull/common/check.hpp"
#include "noisypull/linalg/lu.hpp"

namespace noisypull {

double uniform_noise_level(std::size_t d, double delta) {
  NOISYPULL_CHECK(d >= 2, "alphabet must have at least 2 symbols");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 1.0 / static_cast<double>(d),
                  "f(delta) requires delta in [0, 1/d)");
  if (delta == 0.0) return 0.0;
  const double dd = static_cast<double>(d);
  const double dm1 = dd - 1.0;
  return 1.0 / (dd + 0.5 / (dm1 * dm1) * (1.0 - dd * delta) / delta);
}

NoiseReduction reduce_to_uniform(const NoiseMatrix& n) {
  return reduce_to_uniform(n, n.tightest_upper_bound());
}

NoiseReduction reduce_to_uniform(const NoiseMatrix& n, double delta) {
  const std::size_t d = n.alphabet_size();
  NOISYPULL_CHECK(delta < 1.0 / static_cast<double>(d),
                  "noise level must be below 1/d for a uniform reduction");
  NOISYPULL_CHECK(n.is_upper_bounded(delta, 1e-9),
                  "matrix is not delta-upper-bounded at the given level");

  const double delta_prime = uniform_noise_level(d, delta);
  const Matrix t = NoiseMatrix::uniform(d, delta_prime).matrix();

  // Corollary 14 guarantees invertibility for every δ-upper-bounded matrix.
  const auto n_inv = invert(n.matrix());
  NOISYPULL_ASSERT(n_inv.has_value());
  Matrix p = *n_inv * t;

  // Proposition 16 guarantees P is stochastic; scrub the float fuzz that the
  // LU solve leaves behind so downstream samplers see clean probabilities.
  for (std::size_t i = 0; i < d; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      NOISYPULL_ASSERT(p(i, j) > -1e-9);
      if (p(i, j) < 0.0) p(i, j) = 0.0;
      row += p(i, j);
    }
    NOISYPULL_ASSERT(std::fabs(row - 1.0) < 1e-6);
    for (std::size_t j = 0; j < d; ++j) p(i, j) /= row;
  }

  NoiseMatrix effective(n.matrix() * p);
  NOISYPULL_ASSERT(effective.is_uniform(delta_prime, 1e-6));
  return NoiseReduction{std::move(p), delta_prime, std::move(effective)};
}

}  // namespace noisypull
