// Ablation variants of SF and SSF.
//
// These exist to make the paper's design choices measurable (bench target
// tab_ablations; DESIGN.md §4):
//
// * EagerSourceFilter removes the neutral "listening" behaviour: during
//   Phases 0/1 non-sources display a randomly initialized opinion instead of
//   the neutral 0-block/1-block.  The display noise of n/2 ± √n uninformed
//   agents then swamps the source signal unless s = Ω(√n) — the √n-bias
//   barrier the paper's introduction contrasts with — and weak opinions
//   become correlated, so boosting amplifies the wrong value about half the
//   time at small bias.
//
// * AlternatingSourceFilter is the §2.1 remark's variant: each non-source
//   flips one fair coin, then alternates 0,1,0,1,... through the two
//   listening phases, counting observed 1s on its 0-display rounds and
//   observed 0s on its 1-display rounds.  The paper conjectures this works
//   as well as SF; the ablation bench checks that empirically.
//
// * TaglessSsf drops SSF's source-tag bit (1-bit messages): everyone
//   displays a single bit (sources their preference, non-sources their weak
//   opinion) and updates by majority over the whole memory.  Without the
//   filter bit there is no way to privilege first-hand information, and the
//   protocol degenerates to majority dynamics, which cannot reliably follow
//   a small source bias.
#pragma once

#include "noisypull/core/source_filter.hpp"
#include "noisypull/core/ssf.hpp"

namespace noisypull {

class EagerSourceFilter final : public SourceFilter {
 public:
  // `init_rng` draws each non-source's initial displayed opinion.
  EagerSourceFilter(const PopulationConfig& pop, SfSchedule schedule,
                    Rng& init_rng);

 protected:
  Symbol nonsource_listen_display(std::uint64_t agent,
                                  std::uint64_t round) const override;

 private:
  std::vector<Opinion> initial_;
};

class AlternatingSourceFilter final : public SourceFilter {
 public:
  // `init_rng` draws each non-source's first-round coin.
  AlternatingSourceFilter(const PopulationConfig& pop, SfSchedule schedule,
                          Rng& init_rng);

  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;

 protected:
  Symbol nonsource_listen_display(std::uint64_t agent,
                                  std::uint64_t round) const override;

 private:
  std::vector<std::uint8_t> coin_;  // first-round display bit per agent
};

class TaglessSsf final : public PullProtocol {
 public:
  TaglessSsf(const PopulationConfig& pop, Holdings h, MemoryBudget m);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

  // Same adversarial injection surface as SSF, minus the source tag.
  void corrupt(std::uint64_t agent, std::uint64_t mem0, std::uint64_t mem1,
               Opinion weak, Opinion opinion);

 private:
  const PopulationConfig pop_;
  const std::uint64_t m_;

  struct AgentState {
    std::uint64_t mem0 = 0, mem1 = 0;
    Opinion weak = 0;
    Opinion current = 0;
  };
  std::vector<AgentState> agents_;
};

}  // namespace noisypull
