// Source Filter (SF) — Algorithm 1 of the paper (Theorem 4).
//
// Alphabet Σ = {0,1}; simultaneous wake-up.  Three phases:
//   Phase 0 (⌈m/h⌉ rounds):  sources display their preference, non-sources
//     display 0; every agent counts observed 1s (Counter1).
//   Phase 1 (⌈m/h⌉ rounds):  sources display their preference, non-sources
//     display 1; every agent counts observed 0s (Counter0).
//   Weak opinion Ŷ = 1{Counter1 > Counter0}, ties broken by a fair coin.
//   Majority boosting:  L = ⌈10·ln n⌉ sub-phases of ⌈w/h⌉ rounds each with
//     w = 100e/(1−2δ)², plus a final sub-phase of ⌈m/h⌉ rounds.  Every agent
//     displays its opinion and, at the end of each sub-phase, adopts the
//     majority of the messages received during that sub-phase.
//
// The neutral displays of non-sources in Phases 0/1 cancel in expectation
// (the noise being uniform), letting the source bias "stand out"; the weak
// opinions are mutually independent and correct with probability
// ≥ 1/2 + 4√(log n / n) (Lemma 28), which boosting amplifies to w.h.p.
// consensus (Lemmas 31–35).
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/schedule.hpp"
#include "noisypull/core/protocol.hpp"

namespace noisypull {

class SourceFilter : public PullProtocol {
 public:
  // Builds SF with the Theorem 4 schedule (see make_sf_schedule).
  SourceFilter(const PopulationConfig& pop, Holdings h, Delta delta,
               C1 c1 = kDefaultC1);

  // Builds SF with an explicit, already-computed schedule.
  SourceFilter(const PopulationConfig& pop, SfSchedule schedule);

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;
  std::uint64_t planned_rounds() const override {
    return schedule_.total_rounds();
  }

  const SfSchedule& schedule() const noexcept { return schedule_; }
  const PopulationConfig& population() const noexcept { return pop_; }

  // Weak opinion Ŷ of an agent (meaningful once Phase 1 has ended).
  Opinion weak_opinion(std::uint64_t agent) const;

  // Listening-phase counters, exposed for tests and the LEM28 experiment.
  std::uint64_t counter1(std::uint64_t agent) const;
  std::uint64_t counter0(std::uint64_t agent) const;

  // True while `round` lies in the boosting phase and is the last round of a
  // sub-phase (the rounds at which opinions change).  Used by experiments
  // that record the A_ℓ trajectory (Lemma 33).
  bool is_subphase_end(std::uint64_t round) const noexcept;

 protected:
  // Display of a non-source agent; overridden by the ablation variants.
  virtual Symbol nonsource_listen_display(std::uint64_t agent,
                                          std::uint64_t round) const;

  const PopulationConfig pop_;
  const SfSchedule schedule_;

  struct AgentState {
    std::uint64_t counter1 = 0;    // 1s observed in Phase 0
    std::uint64_t counter0 = 0;    // 0s observed in Phase 1
    std::uint64_t boost_ones = 0;  // 1s observed in the current sub-phase
    std::uint64_t boost_total = 0;
    Opinion weak = 0;
    Opinion current = 0;
  };
  std::vector<AgentState> agents_;

 private:
  void finish_listening(AgentState& a, Rng& rng);
  void finish_subphase(AgentState& a, Rng& rng);
};

}  // namespace noisypull
