// K-ary Source Filter: plurality spreading over a multi-valued opinion set.
//
// The paper assumes binary opinions "for simplicity" (§1.2) and converges to
// the plurality preference among sources.  This module generalizes SF to k
// opinions, Σ = {0, …, k−1}, keeping the paper's design: a neutral listening
// stage whose symmetry cancels in expectation, followed by plurality
// boosting.
//
// Listening stage — k phases of ⌈m/h⌉ rounds.  In phase j every non-source
// displays the cover symbol j while sources display their preference; every
// agent adds, for each σ ≠ j, its observed count of σ into score[σ].  Since
// each symbol σ is excluded from exactly the one phase in which non-sources
// display it, E[score[σ]] = (k−1)·m·(δ + (1−kδ)·s_σ/n): identical across
// symbols except for the source term, so argmax score is an unbiased
// estimator of the sources' plurality — the k-ary weak opinion.  (For k = 2
// this is exactly Algorithm 1's Counter1-vs-Counter0 comparison.)
//
// Boosting stage — as in SF, with majority replaced by plurality: L =
// ⌈10·ln n⌉ sub-phases of w = 100e/(1−kδ)² messages plus a final sub-phase
// of m messages; at each sub-phase end an agent adopts the plurality of the
// sub-phase's observations (ties broken uniformly among the tied symbols).
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/schedule.hpp"
#include "noisypull/core/protocol.hpp"

namespace noisypull {

// Population with k-valued source preferences.  Agents are laid out with
// all sources first, grouped by preference in increasing opinion order.
struct KaryPopulation {
  std::uint64_t n = 0;
  std::vector<std::uint64_t> sources;  // sources[o] = # sources preferring o

  void validate() const;

  std::size_t num_opinions() const noexcept { return sources.size(); }
  std::uint64_t num_sources() const noexcept;

  // The strict plurality preference; throws if the top count is tied.
  Opinion plurality_opinion() const;

  // Gap between the largest and second-largest source counts (the k-ary
  // analogue of the paper's bias s).
  std::uint64_t bias() const;

  bool is_source(std::uint64_t agent) const noexcept {
    return agent < num_sources();
  }
  // Preference of a source agent (by the grouped layout).
  Opinion source_preference(std::uint64_t agent) const;
};

class KarySourceFilter final : public PullProtocol {
 public:
  // Schedule derived from the k-ary analogue of Eq. 19, with (1−2δ)
  // replaced by (1−kδ); requires δ ∈ [0, 1/k).
  KarySourceFilter(KaryPopulation pop, Holdings h, Delta delta,
                   C1 c1 = kDefaultC1);

  std::size_t alphabet_size() const override { return pop_.num_opinions(); }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;
  std::uint64_t planned_rounds() const override;

  const KaryPopulation& population() const noexcept { return pop_; }
  std::uint64_t phase_rounds() const noexcept { return phase_rounds_; }
  std::uint64_t listening_rounds() const noexcept {
    return phase_rounds_ * pop_.num_opinions();
  }
  std::uint64_t message_budget() const noexcept { return m_; }

  Opinion weak_opinion(std::uint64_t agent) const;
  std::uint64_t score(std::uint64_t agent, Opinion o) const;

 private:
  const KaryPopulation pop_;
  const std::uint64_t h_;
  std::uint64_t m_ = 0;
  std::uint64_t phase_rounds_ = 0;
  std::uint64_t w_ = 0;
  std::uint64_t subphase_rounds_ = 0;
  std::uint64_t num_subphases_ = 0;
  std::uint64_t final_rounds_ = 0;

  struct AgentState {
    std::array<std::uint64_t, kMaxAlphabet> score{};  // listening scores
    std::array<std::uint64_t, kMaxAlphabet> tally{};  // boosting tallies
    Opinion weak = 0;
    Opinion current = 0;
  };
  std::vector<AgentState> agents_;

  bool is_subphase_end(std::uint64_t round) const noexcept;
  Opinion argmax_with_ties(const std::array<std::uint64_t, kMaxAlphabet>& v,
                           Rng& rng) const;
};

}  // namespace noisypull
