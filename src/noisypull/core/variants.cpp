#include "noisypull/core/variants.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

EagerSourceFilter::EagerSourceFilter(const PopulationConfig& pop,
                                     SfSchedule schedule, Rng& init_rng)
    : SourceFilter(pop, schedule), initial_(pop.n) {
  for (auto& v : initial_) v = init_rng.next_bool() ? 1 : 0;
}

Symbol EagerSourceFilter::nonsource_listen_display(
    std::uint64_t agent, std::uint64_t /*round*/) const {
  return initial_[agent];
}

AlternatingSourceFilter::AlternatingSourceFilter(const PopulationConfig& pop,
                                                 SfSchedule schedule,
                                                 Rng& init_rng)
    : SourceFilter(pop, schedule), coin_(pop.n) {
  for (auto& v : coin_) v = init_rng.next_bool() ? 1 : 0;
}

Symbol AlternatingSourceFilter::nonsource_listen_display(
    std::uint64_t agent, std::uint64_t round) const {
  return static_cast<Symbol>((round ^ coin_[agent]) & 1);
}

void AlternatingSourceFilter::update(std::uint64_t agent, std::uint64_t round,
                                     const SymbolCounts& obs, Rng& rng) {
  if (round < schedule_.boosting_start() && !pop_.is_source(agent)) {
    // Count against the bit we displayed ourselves: observed 1s while
    // displaying 0 and observed 0s while displaying 1 — the per-agent
    // analogue of SF's phase counters.
    AgentState& a = agents_[agent];
    if (nonsource_listen_display(agent, round) == 0) {
      a.counter1 += obs[1];
    } else {
      a.counter0 += obs[0];
    }
    if (round + 1 == schedule_.boosting_start()) {
      // Delegate the weak-opinion computation / boosting reset to the base
      // class by replaying its Phase 1 end handling with an empty tally.
      SymbolCounts empty(2);
      SourceFilter::update(agent, round, empty, rng);
    }
    return;
  }
  SourceFilter::update(agent, round, obs, rng);
}

TaglessSsf::TaglessSsf(const PopulationConfig& pop, Holdings h,
                       MemoryBudget m)
    : pop_(pop), m_(m.get()), agents_(pop.n) {
  pop_.validate();
  NOISYPULL_CHECK(h.get() >= 1, "sample size h must be at least 1");
  NOISYPULL_CHECK(m_ >= 1, "memory budget m must be at least 1");
}

Symbol TaglessSsf::display(std::uint64_t agent,
                           std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  if (pop_.is_source(agent)) return pop_.source_preference(agent);
  return agents_[agent].weak;
}

void TaglessSsf::update(std::uint64_t agent, std::uint64_t /*round*/,
                        const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 2, "TaglessSsf expects a binary alphabet");
  AgentState& a = agents_[agent];
  a.mem0 += obs[0];
  a.mem1 += obs[1];
  if (a.mem0 + a.mem1 < m_) return;
  if (a.mem1 > a.mem0) {
    a.weak = 1;
  } else if (a.mem1 < a.mem0) {
    a.weak = 0;
  } else {
    a.weak = rng.next_bool() ? 1 : 0;
  }
  a.current = a.weak;
  a.mem0 = a.mem1 = 0;
}

Opinion TaglessSsf::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

void TaglessSsf::corrupt(std::uint64_t agent, std::uint64_t mem0,
                         std::uint64_t mem1, Opinion weak, Opinion opinion) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  AgentState& a = agents_[agent];
  a.mem0 = mem0;
  a.mem1 = mem1;
  a.weak = weak & 1;
  a.current = opinion & 1;
}

}  // namespace noisypull
