#include "noisypull/core/ssf.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

SelfStabilizingSourceFilter::SelfStabilizingSourceFilter(
    const PopulationConfig& pop, Holdings h, Delta delta, C1 c1)
    : SelfStabilizingSourceFilter(
          pop, h, MemoryBudget{ssf_memory_budget(pop, delta, c1)},
          ExplicitBudget{}) {}

SelfStabilizingSourceFilter::SelfStabilizingSourceFilter(
    const PopulationConfig& pop, Holdings h, MemoryBudget m, ExplicitBudget)
    : pop_(pop), h_(h.get()), m_(m.get()), agents_(pop.n) {
  pop_.validate();
  NOISYPULL_CHECK(h_ >= 1, "sample size h must be at least 1");
  NOISYPULL_CHECK(m_ >= 1, "memory budget m must be at least 1");
}

Symbol SelfStabilizingSourceFilter::display(std::uint64_t agent,
                                            std::uint64_t /*round*/) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  if (pop_.is_source(agent)) {
    return encode(true, pop_.source_preference(agent));
  }
  return encode(false, agents_[agent].weak);
}

Opinion SelfStabilizingSourceFilter::majority(std::uint64_t ones,
                                              std::uint64_t zeros, Rng& rng) {
  if (ones > zeros) return 1;
  if (ones < zeros) return 0;
  return rng.next_bool() ? 1 : 0;
}

void SelfStabilizingSourceFilter::update(std::uint64_t agent,
                                         std::uint64_t round,
                                         const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 4, "SSF expects the {0,1}^2 alphabet");
  AgentState& a = agents_[agent];
  for (std::size_t s = 0; s < 4; ++s) {
    a.mem[s] += obs[s];
    a.mem_total += obs[s];
  }
  // obs.total() may be anything from 0 to h: omission and stall faults
  // deliver partial batches, which simply stretch the fill time.
  const bool full = a.mem_total >= m_;
  const bool stale = stale_flush_ > 0 && a.mem_total > 0 &&
                     round >= a.last_flush + stale_flush_;
  if (!full && !stale) return;

  // Update round: recompute weak opinion and opinion, then empty the memory.
  // Messages tagged as coming from a source are symbols (1,0)=2 and (1,1)=3.
  a.weak = majority(a.mem[3], a.mem[2], rng);
  a.current = majority(a.mem[1] + a.mem[3], a.mem[0] + a.mem[2], rng);
  a.mem.fill(0);
  a.mem_total = 0;
  a.last_flush = round;
}

Opinion SelfStabilizingSourceFilter::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

Opinion SelfStabilizingSourceFilter::weak_opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].weak;
}

void SelfStabilizingSourceFilter::corrupt(std::uint64_t agent,
                                          const SymbolCounts& memory,
                                          Opinion weak, Opinion opinion) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(memory.size == 4, "SSF memory has 4 symbols");
  AgentState& a = agents_[agent];
  a.mem_total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    a.mem[s] = memory[s];
    a.mem_total += memory[s];
  }
  a.weak = weak & 1;
  a.current = opinion & 1;
}

SymbolCounts SelfStabilizingSourceFilter::memory(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  SymbolCounts out(4);
  for (std::size_t s = 0; s < 4; ++s) out[s] = agents_[agent].mem[s];
  return out;
}

}  // namespace noisypull
