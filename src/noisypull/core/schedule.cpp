#include "noisypull/core/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {
namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

std::uint64_t to_count(double x) {
  NOISYPULL_CHECK(x >= 0.0 && x < 9.0e18, "parameter out of range");
  return static_cast<std::uint64_t>(std::ceil(x));
}

std::uint64_t bits_for(std::uint64_t v) noexcept {
  std::uint64_t bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

SfSchedule make_sf_schedule_with_m(const PopulationConfig& pop, Holdings h_in,
                                   Delta delta_in, MemoryBudget m_in) {
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  const std::uint64_t m = m_in.get();
  pop.validate();
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.5,
                  "SF requires delta in [0, 1/2)");
  NOISYPULL_CHECK(m >= 1, "message budget m must be at least 1");

  const double nd = static_cast<double>(pop.n);
  const double one_minus = 1.0 - 2.0 * delta;

  SfSchedule s;
  s.h = h;
  s.m = m;
  s.phase_rounds = ceil_div(m, h);
  s.w = std::max<std::uint64_t>(
      1, to_count(100.0 * std::exp(1.0) / (one_minus * one_minus)));
  s.subphase_rounds = ceil_div(s.w, h);
  s.num_subphases = std::max<std::uint64_t>(1, to_count(10.0 * std::log(nd)));
  s.final_rounds = s.phase_rounds;
  return s;
}

SfSchedule make_sf_schedule(const PopulationConfig& pop, Holdings h,
                            Delta delta_in, C1 c1_in) {
  const double delta = delta_in.get();
  const double c1 = c1_in.get();
  pop.validate();
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.5,
                  "SF requires delta in [0, 1/2)");
  NOISYPULL_CHECK(c1 > 0.0, "c1 must be positive");
  NOISYPULL_CHECK(pop.bias() >= 1, "SF requires bias s >= 1");

  const double nd = static_cast<double>(pop.n);
  const double sd = static_cast<double>(pop.bias());
  const double srcs = static_cast<double>(pop.num_sources());
  const double logn = std::log(nd);
  const double one_minus = 1.0 - 2.0 * delta;

  const double term_noise =
      nd * delta * logn / (std::min(sd * sd, nd) * one_minus * one_minus);
  const double term_sqrt = std::sqrt(nd) * logn / sd;
  const double term_src = srcs * logn / (sd * sd);
  const double term_h = static_cast<double>(h.get()) * logn;

  const std::uint64_t m = std::max<std::uint64_t>(
      1, to_count(c1 * (term_noise + term_sqrt + term_src + term_h)));
  return make_sf_schedule_with_m(pop, h, delta_in, MemoryBudget{m});
}

std::uint64_t ssf_memory_budget(const PopulationConfig& pop, Delta delta_in,
                                C1 c1_in) {
  const double delta = delta_in.get();
  const double c1 = c1_in.get();
  pop.validate();
  NOISYPULL_CHECK(delta >= 0.0 && delta < 0.25,
                  "SSF requires delta in [0, 1/4)");
  NOISYPULL_CHECK(c1 > 0.0, "c1 must be positive");
  const double nd = static_cast<double>(pop.n);
  const double one_minus = 1.0 - 4.0 * delta;
  const double m =
      c1 * (delta * nd * std::log(nd) / (one_minus * one_minus) + nd);
  return std::max<std::uint64_t>(1, to_count(m));
}

std::uint64_t sf_state_bits(const SfSchedule& s) noexcept {
  // Two listening counters bounded by the messages a phase delivers, one
  // (ones, total) pair for boosting bounded by max(w, m) + h slack, the
  // round/phase position, and two opinion bits.
  const std::uint64_t phase_msgs = s.phase_rounds * s.h;
  const std::uint64_t boost_msgs = std::max(s.subphase_rounds,
                                            s.final_rounds) * s.h;
  return 2 * bits_for(phase_msgs) + 2 * bits_for(boost_msgs) +
         bits_for(s.total_rounds()) + 2;
}

std::uint64_t ssf_state_bits(MemoryBudget m, Holdings h) noexcept {
  // Four symbol counters bounded by m + h (the overshoot before an update
  // round), plus weak-opinion and opinion bits.
  return 4 * bits_for(m.get() + h.get()) + 2;
}

}  // namespace noisypull
