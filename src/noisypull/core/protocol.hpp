// The protocol interface executed by the noisy PULL(h) engines.
//
// One round of the model (Section 1.3) is:
//   1. every agent chooses a message σ ∈ Σ to display,
//   2. every agent samples h agents uniformly at random with replacement,
//   3. every sampled message is corrupted independently by the noise matrix,
//   4. every agent updates its opinion and internal state.
// The engine owns steps 2–3; a PullProtocol implements steps 1 and 4.
//
// Updates receive the *count vector* of observed symbols rather than an
// ordered list.  This is without loss of generality for every protocol in
// the paper (SF, SSF, and all baselines aggregate observations by counting
// or majority), and it is what allows an O(n·|Σ|)-per-round engine.
//
// This header lives in core/ (base layer) rather than model/: the concrete
// protocols of core/ implement it and the engines of model/ consume it, so
// under the enforced layer DAG (DESIGN.md §8.1) the interface must sit at
// or below both.
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class CompiledPopulation;  // core/automaton/compiled_population.hpp

// Handle the block-parallel engines use to run a protocol through the
// compiled fast path (DESIGN.md §13).  A null population means "no compiled
// representation — run the virtual path"; that is the default for every
// protocol.  CompiledPopulation returns itself, and fault decorators
// (fault/faulty_engine.hpp) pass their inner protocol's access through with
// the fault fields filled in so the engine can route exactly the faulted
// agents onto the per-agent interpreted fallback:
//
//   * agents at index >= forged_begin display through the virtual path (a
//     Byzantine decorator forges what they show; their own state still
//     updates through the fast path),
//   * stalled_until (when non-null) is the per-agent stall horizon: agent i
//     with i >= stall_first_eligible and round < stalled_until[i] must have
//     its update delivered through the virtual path so the decorator can
//     swallow it (and count it) — the engine still burns the agent's
//     sampling draw either way,
//   * force_virtual_updates routes EVERY update through the virtual path —
//     set when a decorator rewrites observation counts (message drops), so
//     per-(state, outcome-index) tables no longer describe what agents see.
struct CompiledAccess {
  CompiledPopulation* population = nullptr;
  std::uint64_t forged_begin = ~static_cast<std::uint64_t>(0);
  const std::uint64_t* stalled_until = nullptr;
  std::uint64_t stall_first_eligible = 0;
  bool force_virtual_updates = false;
};

class PullProtocol {
 public:
  virtual ~PullProtocol() = default;

  // Size of the communication alphabet Σ (2 for SF, 4 for SSF).
  virtual std::size_t alphabet_size() const = 0;

  virtual std::uint64_t num_agents() const = 0;

  // Message displayed by `agent` at the start of round `round` (0-based).
  virtual Symbol display(std::uint64_t agent, std::uint64_t round) const = 0;

  // Delivers the noisy observations of one round.  In the fault-free model
  // obs.total() == h; fault decorators (fault/faulty_engine.hpp) may deliver
  // fewer — any total in [0, h] — when observations are dropped, so
  // implementations must not assume a full sample.  `rng` supplies the
  // agent's private coin tosses (tie-breaks etc.).
  //
  // Concurrency contract: the block-parallel engines (model/engine.hpp) call
  // update() for *different* agents concurrently within one round.
  // Implementations must therefore only write state owned by `agent` (its
  // own slot in per-agent arrays); reads of shared round-constant state
  // (parameters, the round number) are fine.  Every protocol in this repo
  // satisfies this naturally — agents are anonymous and only see their own
  // observation counts — but a protocol maintaining global mutable
  // statistics inside update() would need its own synchronization.
  virtual void update(std::uint64_t agent, std::uint64_t round,
                      const SymbolCounts& obs, Rng& rng) = 0;

  // The agent's current output opinion Y^(agent).
  virtual Opinion opinion(std::uint64_t agent) const = 0;

  // Number of rounds the protocol is designed to run, or 0 if it has no
  // intrinsic horizon (self-stabilizing and baseline protocols).
  virtual std::uint64_t planned_rounds() const { return 0; }

  // Compiled fast-path handle (see CompiledAccess).  The default — no
  // compiled representation — keeps every existing protocol on the virtual
  // path; only CompiledPopulation and the fault decorators override this.
  virtual CompiledAccess compiled_access() { return {}; }
};

}  // namespace noisypull
