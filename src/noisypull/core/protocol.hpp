// The protocol interface executed by the noisy PULL(h) engines.
//
// One round of the model (Section 1.3) is:
//   1. every agent chooses a message σ ∈ Σ to display,
//   2. every agent samples h agents uniformly at random with replacement,
//   3. every sampled message is corrupted independently by the noise matrix,
//   4. every agent updates its opinion and internal state.
// The engine owns steps 2–3; a PullProtocol implements steps 1 and 4.
//
// Updates receive the *count vector* of observed symbols rather than an
// ordered list.  This is without loss of generality for every protocol in
// the paper (SF, SSF, and all baselines aggregate observations by counting
// or majority), and it is what allows an O(n·|Σ|)-per-round engine.
//
// This header lives in core/ (base layer) rather than model/: the concrete
// protocols of core/ implement it and the engines of model/ consume it, so
// under the enforced layer DAG (DESIGN.md §8.1) the interface must sit at
// or below both.
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

class PullProtocol {
 public:
  virtual ~PullProtocol() = default;

  // Size of the communication alphabet Σ (2 for SF, 4 for SSF).
  virtual std::size_t alphabet_size() const = 0;

  virtual std::uint64_t num_agents() const = 0;

  // Message displayed by `agent` at the start of round `round` (0-based).
  virtual Symbol display(std::uint64_t agent, std::uint64_t round) const = 0;

  // Delivers the noisy observations of one round.  In the fault-free model
  // obs.total() == h; fault decorators (fault/faulty_engine.hpp) may deliver
  // fewer — any total in [0, h] — when observations are dropped, so
  // implementations must not assume a full sample.  `rng` supplies the
  // agent's private coin tosses (tie-breaks etc.).
  //
  // Concurrency contract: the block-parallel engines (model/engine.hpp) call
  // update() for *different* agents concurrently within one round.
  // Implementations must therefore only write state owned by `agent` (its
  // own slot in per-agent arrays); reads of shared round-constant state
  // (parameters, the round number) are fine.  Every protocol in this repo
  // satisfies this naturally — agents are anonymous and only see their own
  // observation counts — but a protocol maintaining global mutable
  // statistics inside update() would need its own synchronization.
  virtual void update(std::uint64_t agent, std::uint64_t round,
                      const SymbolCounts& obs, Rng& rng) = 0;

  // The agent's current output opinion Y^(agent).
  virtual Opinion opinion(std::uint64_t agent) const = 0;

  // Number of rounds the protocol is designed to run, or 0 if it has no
  // intrinsic horizon (self-stabilizing and baseline protocols).
  virtual std::uint64_t planned_rounds() const { return 0; }
};

}  // namespace noisypull
