// core/automaton — finite per-agent state machines as first-class objects.
//
// PR 7 introduced AgentAutomaton as the exact-oracle's view of one agent: a
// finite state set with an exact per-(state, observation) transition *law*.
// This module promotes that interface from oracle mirror to production
// citizen (DESIGN.md §13): the same interned state machines now also drive
// the engines' compiled fast path, where per-agent protocol state is one
// flat vector of interned state ids and the round kernel runs table lookups
// instead of virtual display()/update() calls.
//
// Two complementary views of one automaton:
//
//  * transition(state, round, obs) — the exact probability law of the next
//    state.  Consumed by theory/exact_chain (the oracle) and by the default
//    compile() below.  Protocol coin tosses appear as probability splits.
//
//  * compile(state, round, obs) — the *sampling procedure* for the next
//    state, as a CompiledEdge.  Consumed by the compiled engine path
//    (core/automaton/compiled_population.hpp).  The edge must consume the
//    agent's Rng EXACTLY as the production protocol it mirrors would: the
//    engines hand every agent of a block one shared substream in sequence,
//    so one extra or missing draw shifts every later agent of the block and
//    breaks the bit-identity contract (tests/test_compiled_path.cpp).  The
//    default wraps transition() in a single-uniform inverse-CDF edge —
//    bit-identical to AutomatonProtocol::update, which is the interpreted
//    reference for synthetic table automata.
//
// The signature hooks bound memoization: two rounds with equal
// update_signature() must have identical transition/compile behavior, and
// two rounds with equal display_signature() identical display behavior.
// The defaults return the round number — always correct, never reusing a
// table across rounds; protocol mirrors override them with their small
// phase alphabet so memo tables persist across the whole run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "noisypull/common/symbols.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

// Identifier of one per-agent automaton state.  Automata intern their own
// state encodings; consumers only need equality and ordering.
using AutomatonState = std::uint32_t;

struct WeightedState {
  AutomatonState state = 0;
  double prob = 0.0;
};

// One compiled transition: how to sample the successor state for a fixed
// (state, round-signature, observation) triple.  The Kind determines both
// the successor map and the exact Rng consumption:
//
//   Deterministic — no draw; successor target[0].
//   Coin          — one next_bool(); true → target[1], false → target[0]
//                   (matching the protocols' `rng.next_bool() ? 1 : 0` tie
//                   break, heads landing on opinion 1).
//   CoinPair      — two next_bool() draws b1 then b2 (SSF: weak tie first,
//                   then opinion tie); successor target[(b1?2:0) | (b2?1:0)].
//   InverseCdf    — one next_double(); walk `law` accumulating prob until
//                   u < acc, falling through to the last entry — the exact
//                   loop of AutomatonProtocol::update.
struct CompiledEdge {
  enum class Kind : std::uint8_t { Deterministic, Coin, CoinPair, InverseCdf };

  Kind kind = Kind::Deterministic;
  std::array<AutomatonState, 4> target{};
  std::vector<WeightedState> law;  // InverseCdf only, in summation order

  static CompiledEdge deterministic(AutomatonState to) {
    CompiledEdge e;
    e.kind = Kind::Deterministic;
    e.target[0] = to;
    return e;
  }
  static CompiledEdge coin(AutomatonState tails, AutomatonState heads) {
    CompiledEdge e;
    e.kind = Kind::Coin;
    e.target[0] = tails;
    e.target[1] = heads;
    return e;
  }

  // Samples the successor, consuming the Kind's exact draw pattern.
  AutomatonState resolve(Rng& rng) const {
    switch (kind) {
      case Kind::Deterministic:
        return target[0];
      case Kind::Coin:
        return rng.next_bool() ? target[1] : target[0];
      case Kind::CoinPair: {
        const bool b1 = rng.next_bool();  // first tie (SSF: weak opinion)
        const bool b2 = rng.next_bool();  // second tie (SSF: opinion)
        return target[(b1 ? 2U : 0U) | (b2 ? 1U : 0U)];
      }
      case Kind::InverseCdf: {
        const double u = rng.next_double();
        double acc = 0.0;
        for (const WeightedState& ws : law) {
          acc += ws.prob;
          if (u < acc) return ws.state;
        }
        return law.back().state;  // rounding slack lands on the last entry
      }
    }
    return target[0];  // unreachable; keeps -Wreturn-type quiet
  }
};

// A finite per-agent state machine: the exact counterpart of one agent's
// PullProtocol slice.  display() must match PullProtocol::display for the
// agent's role and transition() must return the *exact* distribution of the
// next state given one delivered observation batch (protocol coin tosses
// become probability splits).  Implementations live in
// core/automaton/protocol_automata.hpp.
//
// Thread-safety contract: interning automata (SF/SSF mirrors) are called
// from the engines' block-parallel update phase through
// CompiledPopulation::update, so compile()/transition() must be internally
// synchronized (the mirrors guard their intern tables with a mutex).  The
// *ids* handed out then depend on call interleaving, which is harmless:
// every observable — display, opinion, transition law — is a function of
// the interned concrete state, never of the id.
class AgentAutomaton {
 public:
  virtual ~AgentAutomaton() = default;

  virtual std::size_t alphabet_size() const = 0;
  virtual Symbol display(AutomatonState state, std::uint64_t round) const = 0;
  virtual std::vector<WeightedState> transition(
      AutomatonState state, std::uint64_t round,
      const SymbolCounts& obs) const = 0;

  // Opinion an agent in `state` reports — the PullProtocol::opinion
  // counterpart, needed wherever convergence is judged from automaton states
  // (AutomatonProtocol, sim/lumped_engine, the compiled path).  The default
  // matches the TableAutomaton fuzz family's encoding (opinion = low state
  // bit); the SF/SSF mirrors override it to read the interned `current`
  // field.
  virtual Opinion opinion(AutomatonState state) const {
    return static_cast<Opinion>(state & 1);
  }

  // Sampling procedure for one update (see the header comment).  Default:
  // one-uniform inverse-CDF over transition() — bit-identical to
  // AutomatonProtocol::update and correct for every automaton, at the cost
  // of always consuming one next_double even for deterministic laws.
  virtual CompiledEdge compile(AutomatonState state, std::uint64_t round,
                               const SymbolCounts& obs) const {
    CompiledEdge e;
    e.kind = CompiledEdge::Kind::InverseCdf;
    e.law = transition(state, round, obs);
    return e;
  }

  // Memoization keys: equal signatures promise equal behavior (header
  // comment).  Defaults never reuse anything across rounds.
  virtual std::uint64_t update_signature(std::uint64_t round) const {
    return round;
  }
  virtual std::uint64_t display_signature(std::uint64_t round) const {
    return round;
  }
};

}  // namespace noisypull
