// Finite per-agent automata for the protocols of the paper.
//
// core/automaton/automaton.hpp defines the AgentAutomaton interface; this
// header provides the three families both the exact oracle
// (theory/exact_chain) and the compiled engine fast path
// (core/automaton/compiled_population.hpp) run on:
//
//  * TableAutomaton — a small synthetic protocol family closed under
//    fuzzing: each state displays a fixed symbol and transitions by
//    comparing two observation cells (greater / less / tie, with an
//    optional fair-coin tie split).  Rich enough to exercise every engine
//    code path, small enough that the exact chain stays cheap.
//
//  * SfAutomaton — the exact mirror of core/SourceFilter for one agent
//    role (source with a fixed preference, or non-source).  The concrete
//    state (counter1, counter0, weak, current, boost_ones, boost_total) is
//    interned on demand; protocol coin tosses (listening / sub-phase ties)
//    become ½-½ probability splits in transition() and single next_bool()
//    draws in compile() — exactly the draws SourceFilter::update makes.
//
//  * SsfAutomaton — the exact mirror of core/SelfStabilizingSourceFilter
//    (stale_flush = 0) for one role.  Memory flush ties split the state up
//    to four ways (weak and current tie-break coins are independent); the
//    compiled edge consumes one next_bool() per realized tie, weak first.
//
// AutomatonProtocol adapts any automaton population to the PullProtocol
// interface so the Monte-Carlo engines can run the *same* dynamics the
// oracle enumerates — the differential test for synthetic protocols.  (The
// production-scale adapter with the flat SoA state and the table-driven
// round kernel is CompiledPopulation, one header over.)
//
// The mirrors are intentionally independent re-implementations from the
// protocol *specification* (the paper's Algorithms 1–2), not wrappers over
// the core/ classes: a bug in core/ must show up as a divergence, not be
// inherited by the oracle.
#pragma once

// <mutex> is allowlisted here by tools/noisypull_lint.cpp's threading-header
// rule: the interning tables of the SF/SSF mirrors are grown lazily from the
// engines' block-parallel update phase (CompiledPopulation::update), so
// lookup+insert must be atomic.  Ids depend on interleaving; observables
// never do (see the AgentAutomaton thread-safety contract).
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "noisypull/common/symbols.hpp"
#include "noisypull/core/automaton/automaton.hpp"
#include "noisypull/core/protocol.hpp"
#include "noisypull/core/schedule.hpp"

namespace noisypull {

// One TableAutomaton state: display `show`, then compare obs[watch_a]
// against obs[watch_b] and move to if_greater / if_less, or on a tie flip a
// fair coin between tie_a and tie_b (tie_a == tie_b makes the tie
// deterministic).
struct TableState {
  Symbol show = 0;
  Symbol watch_a = 0;
  Symbol watch_b = 1;
  AutomatonState if_greater = 0;
  AutomatonState if_less = 0;
  AutomatonState tie_a = 0;
  AutomatonState tie_b = 0;
};

class TableAutomaton final : public AgentAutomaton {
 public:
  TableAutomaton(std::size_t alphabet, std::vector<TableState> states);

  std::size_t num_states() const noexcept { return states_.size(); }

  std::size_t alphabet_size() const override { return alphabet_; }
  Symbol display(AutomatonState state, std::uint64_t round) const override;
  std::vector<WeightedState> transition(AutomatonState state,
                                        std::uint64_t round,
                                        const SymbolCounts& obs) const override;
  // compile() stays the inherited inverse-CDF default: the interpreted
  // reference for table automata is AutomatonProtocol::update, which draws
  // one uniform unconditionally — a Deterministic/Coin edge here would
  // consume differently and break compiled-vs-interpreted bit-identity.

  // Tables are round-homogeneous: one signature for the whole run.
  std::uint64_t update_signature(std::uint64_t /*round*/) const override {
    return 0;
  }
  std::uint64_t display_signature(std::uint64_t /*round*/) const override {
    return 0;
  }

 private:
  std::size_t alphabet_;
  std::vector<TableState> states_;
};

// Exact one-agent mirror of core/SourceFilter (Algorithm 1, Theorem 4).
// States are interned lazily; state 0 is the fresh agent.
class SfAutomaton final : public AgentAutomaton {
 public:
  SfAutomaton(SfSchedule schedule, bool is_source, Opinion preference);

  std::size_t alphabet_size() const override { return 2; }
  Symbol display(AutomatonState state, std::uint64_t round) const override;
  std::vector<WeightedState> transition(AutomatonState state,
                                        std::uint64_t round,
                                        const SymbolCounts& obs) const override;
  Opinion opinion(AutomatonState state) const override;

  // Production-consumption edge: coins only on realized ties, exactly as
  // SourceFilter::finish_listening / finish_subphase draw them.
  CompiledEdge compile(AutomatonState state, std::uint64_t round,
                       const SymbolCounts& obs) const override;

  // Phase alphabet of the update rule: {phase-0, phase-1 middle, listening
  // finish, boosting middle, sub-phase end, terminated}; displays only
  // distinguish {phase-0, phase-1, boosting}.
  std::uint64_t update_signature(std::uint64_t round) const override;
  std::uint64_t display_signature(std::uint64_t round) const override;

 private:
  struct Concrete {
    std::uint64_t counter1 = 0;
    std::uint64_t counter0 = 0;
    std::uint64_t boost_ones = 0;
    std::uint64_t boost_total = 0;
    Opinion weak = 0;
    Opinion current = 0;

    bool operator<(const Concrete& rhs) const {
      if (counter1 != rhs.counter1) return counter1 < rhs.counter1;
      if (counter0 != rhs.counter0) return counter0 < rhs.counter0;
      if (boost_ones != rhs.boost_ones) return boost_ones < rhs.boost_ones;
      if (boost_total != rhs.boost_total) return boost_total < rhs.boost_total;
      if (weak != rhs.weak) return weak < rhs.weak;
      return current < rhs.current;
    }
  };

  AutomatonState intern(const Concrete& c) const;
  bool is_subphase_end(std::uint64_t round) const noexcept;
  Concrete concrete(AutomatonState state) const;

  SfSchedule schedule_;
  bool is_source_;
  Opinion preference_;
  mutable std::mutex intern_mutex_;
  mutable std::vector<Concrete> states_;
  mutable std::map<Concrete, AutomatonState> ids_;
};

// Exact one-agent mirror of core/SelfStabilizingSourceFilter (Algorithm 2,
// Theorem 5) with stale_flush = 0.  State 0 is the fresh agent.
class SsfAutomaton final : public AgentAutomaton {
 public:
  SsfAutomaton(MemoryBudget m, bool is_source, Opinion preference);

  std::size_t alphabet_size() const override { return 4; }
  Symbol display(AutomatonState state, std::uint64_t round) const override;
  std::vector<WeightedState> transition(AutomatonState state,
                                        std::uint64_t round,
                                        const SymbolCounts& obs) const override;
  Opinion opinion(AutomatonState state) const override;

  // Production-consumption edge: one next_bool() per realized flush tie,
  // weak before current — the order SelfStabilizingSourceFilter::update
  // calls majority().
  CompiledEdge compile(AutomatonState state, std::uint64_t round,
                       const SymbolCounts& obs) const override;

  // SSF has no clock: one signature for displays and updates alike.
  std::uint64_t update_signature(std::uint64_t /*round*/) const override {
    return 0;
  }
  std::uint64_t display_signature(std::uint64_t /*round*/) const override {
    return 0;
  }

 private:
  struct Concrete {
    std::array<std::uint64_t, 4> mem{};
    Opinion weak = 0;
    Opinion current = 0;

    bool operator<(const Concrete& rhs) const {
      if (mem != rhs.mem) return mem < rhs.mem;
      if (weak != rhs.weak) return weak < rhs.weak;
      return current < rhs.current;
    }
  };

  AutomatonState intern(const Concrete& c) const;
  Concrete concrete(AutomatonState state) const;

  std::uint64_t m_;
  bool is_source_;
  Opinion preference_;
  mutable std::mutex intern_mutex_;
  mutable std::vector<Concrete> states_;
  mutable std::map<Concrete, AutomatonState> ids_;
};

// A contiguous run of agents sharing one automaton and initial state.
struct AutomatonGroup {
  std::uint64_t count = 0;
  const AgentAutomaton* automaton = nullptr;  // non-owning
  AutomatonState initial = 0;
};

// Runs an automaton population under the Monte-Carlo engines: display()
// reads the agent's automaton state, update() samples the next state from
// the automaton's exact transition law using the engine-provided Rng.
class AutomatonProtocol final : public PullProtocol {
 public:
  explicit AutomatonProtocol(std::vector<AutomatonGroup> groups);

  std::size_t alphabet_size() const override { return alphabet_; }
  std::uint64_t num_agents() const override { return agents_.size(); }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

  AutomatonState state(std::uint64_t agent) const;

 private:
  struct AgentSlot {
    const AgentAutomaton* automaton = nullptr;
    AutomatonState state = 0;
  };
  std::size_t alphabet_ = 0;
  std::vector<AgentSlot> agents_;
};

}  // namespace noisypull
