#include "noisypull/core/automaton/compiled_population.hpp"

#include <algorithm>
#include <utility>

namespace noisypull {

CompiledPopulation::CompiledPopulation(std::vector<CompiledGroup> groups,
                                       std::uint64_t planned_rounds)
    : planned_rounds_(planned_rounds) {
  NOISYPULL_CHECK(!groups.empty(), "compiled population needs agents");
  for (CompiledGroup& cg : groups) {
    NOISYPULL_CHECK(cg.count >= 1, "empty compiled group");
    NOISYPULL_CHECK(cg.automaton != nullptr, "group needs an automaton");
    if (alphabet_ == 0) alphabet_ = cg.automaton->alphabet_size();
    NOISYPULL_CHECK(cg.automaton->alphabet_size() == alphabet_,
                    "all groups must share one alphabet");
    const auto gi = static_cast<std::uint32_t>(groups_.size());
    Group g;
    g.automaton = std::move(cg.automaton);
    g.agent_begin = state_.size();
    g.agent_end = state_.size() + cg.count;
    groups_.push_back(std::move(g));
    for (std::uint64_t i = 0; i < cg.count; ++i) {
      group_of_.push_back(gi);
      state_.push_back(cg.initial);
    }
  }
  num_agents_ = state_.size();
}

Symbol CompiledPopulation::display(std::uint64_t agent,
                                   std::uint64_t round) const {
  NOISYPULL_CHECK(agent < num_agents_, "agent index out of range");
  const Group& g = groups_[group_of_[agent]];
  return g.automaton->display(state_[agent], round);
}

void CompiledPopulation::update(std::uint64_t agent, std::uint64_t round,
                                const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < num_agents_, "agent index out of range");
  const Group& g = groups_[group_of_[agent]];
  // compile() handles arbitrary observation totals (fault decorators may
  // deliver fewer than h) and resolve() consumes the rng exactly as the
  // mirrored production protocol would — see AgentAutomaton::compile.
  const CompiledEdge e = g.automaton->compile(state_[agent], round, obs);
  state_[agent] = e.resolve(rng);
}

Opinion CompiledPopulation::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < num_agents_, "agent index out of range");
  const Group& g = groups_[group_of_[agent]];
  return g.automaton->opinion(state_[agent]);
}

void CompiledPopulation::begin_display_round(std::uint64_t round) {
  for (Group& g : groups_) {
    const std::uint64_t sig = g.automaton->display_signature(round);
    if (!g.display_sig_valid || g.display_sig != sig) {
      g.display_table.clear();
      g.display_sig = sig;
      g.display_sig_valid = true;
    }
  }
}

void CompiledPopulation::extend_display_table(Group& g, std::uint64_t round,
                                              AutomatonState s) {
  // Interned ids are contiguous, so filling [size, s] covers every id the
  // population can currently hold.  One virtual display() per new state —
  // the only virtual calls of the whole display phase.
  for (auto id = static_cast<AutomatonState>(g.display_table.size()); id <= s;
       ++id) {
    g.display_table.push_back(g.automaton->display(id, round));
  }
}

namespace {

// resize() with geometric capacity growth.  Interned state ids (and with
// them the row tables) grow a little nearly every round; libstdc++'s
// resize() allocates exactly the requested size, which would make the
// repeated extensions quadratic in total copying.
template <typename Vec>
void grow_to(Vec& v, std::size_t size, typename Vec::value_type fill = {}) {
  if (size <= v.size()) return;
  if (v.capacity() < size) v.reserve(std::max(size, v.capacity() * 2));
  v.resize(size, fill);
}

}  // namespace

bool CompiledPopulation::build_update_tables(std::uint64_t round,
                                             const ObservationSampler& sampler) {
  NOISYPULL_CHECK(sampler.mode() == ObservationSampler::Mode::InverseCdf,
                  "compiled update tables need an enumerable outcome space");
  const std::uint64_t num_out = sampler.num_outcomes();
  NOISYPULL_ASSERT(num_out >= 1);
  for (Group& g : groups_) {
    const std::uint64_t sig = g.automaton->update_signature(round);
    UpdateTable& t = g.update_tables[sig];  // node-stable across inserts
    if (t.num_outcomes == 0) t.num_outcomes = num_out;
    NOISYPULL_CHECK(t.num_outcomes == num_out,
                    "outcome space changed across rounds sharing an update "
                    "signature (h and alphabet are fixed per run)");
    g.active = &t;
  }
  // Occupancy pass: find the states agents actually hold at the start of
  // this round whose rows are not yet compiled.  States created mid-round
  // are never read back within the round (state writes are only re-read
  // next round), so this is exhaustive for the coming parallel phase.
  // row_built doubles as the visited mark (2 = pending this round).  Each
  // group's agents are one contiguous index run (see the constructor), so
  // the pass walks group ranges with the table hoisted — this O(n) scan
  // runs every round and would otherwise pay a group lookup per agent.
  pending_rows_.clear();
  for (std::uint32_t gi = 0; gi < groups_.size(); ++gi) {
    UpdateTable& t = *groups_[gi].active;
    const std::uint64_t begin = groups_[gi].agent_begin;
    const std::uint64_t end = groups_[gi].agent_end;
    for (std::uint64_t i = begin; i < end; ++i) {
      const AutomatonState s = state_[i];
      if (s >= t.row_built.size()) grow_to(t.row_built, s + 1);
      if (t.row_built[s] != 0) continue;
      t.row_built[s] = 2;
      pending_rows_.emplace_back(gi, s);
    }
  }

  // Build gate (see the header): when compiling the missing rows costs more
  // than the round they serve, un-mark and decline — the engine runs this
  // round through the virtual per-agent path instead.
  const double build_cost =
      static_cast<double>(pending_rows_.size()) * static_cast<double>(num_out);
  if (build_cost > table_build_limit_ * static_cast<double>(num_agents_)) {
    for (const auto& [gi, s] : pending_rows_) {
      groups_[gi].active->row_built[s] = 0;
    }
    return false;
  }

  for (const auto& [gi, s] : pending_rows_) {
    Group& g = groups_[gi];
    UpdateTable& t = *g.active;
    t.row_built[s] = 1;
    const std::uint64_t row = static_cast<std::uint64_t>(s) * t.num_outcomes;
    grow_to(t.edges, row + t.num_outcomes);
    sampler.for_each_outcome([&](std::uint64_t idx, const SymbolCounts& obs) {
      const CompiledEdge e = g.automaton->compile(s, round, obs);
      PackedEdge& p = t.edges[row + idx];
      p.kind = static_cast<std::uint8_t>(e.kind);
      p.target = e.target;
      if (e.kind == CompiledEdge::Kind::InverseCdf) {
        NOISYPULL_CHECK(!e.law.empty(), "empty transition law");
        NOISYPULL_CHECK(t.law_prob.size() + e.law.size() <=
                            static_cast<std::size_t>(~std::uint32_t{0}),
                        "pooled law storage exceeds 32-bit indexing");
        p.law_begin = static_cast<std::uint32_t>(t.law_prob.size());
        p.law_len = static_cast<std::uint32_t>(e.law.size());
        for (const WeightedState& ws : e.law) {
          t.law_prob.push_back(ws.prob);
          t.law_target.push_back(ws.state);
        }
      }
    });
  }
  return true;
}

std::unique_ptr<CompiledPopulation> make_compiled_sf(
    const PopulationConfig& pop, const SfSchedule& schedule) {
  pop.validate();
  std::vector<CompiledGroup> groups;
  if (pop.s1 > 0) {
    groups.push_back(
        {pop.s1, std::make_shared<SfAutomaton>(schedule, true, Opinion{1}), 0});
  }
  if (pop.s0 > 0) {
    groups.push_back(
        {pop.s0, std::make_shared<SfAutomaton>(schedule, true, Opinion{0}), 0});
  }
  const std::uint64_t nonsources = pop.n - pop.num_sources();
  if (nonsources > 0) {
    groups.push_back(
        {nonsources, std::make_shared<SfAutomaton>(schedule, false, Opinion{0}),
         0});
  }
  return std::make_unique<CompiledPopulation>(std::move(groups),
                                              schedule.total_rounds());
}

std::unique_ptr<CompiledPopulation> make_compiled_ssf(
    const PopulationConfig& pop, MemoryBudget m) {
  pop.validate();
  std::vector<CompiledGroup> groups;
  if (pop.s1 > 0) {
    groups.push_back(
        {pop.s1, std::make_shared<SsfAutomaton>(m, true, Opinion{1}), 0});
  }
  if (pop.s0 > 0) {
    groups.push_back(
        {pop.s0, std::make_shared<SsfAutomaton>(m, true, Opinion{0}), 0});
  }
  const std::uint64_t nonsources = pop.n - pop.num_sources();
  if (nonsources > 0) {
    groups.push_back(
        {nonsources, std::make_shared<SsfAutomaton>(m, false, Opinion{0}), 0});
  }
  // SSF is self-stabilizing: no intrinsic horizon (planned_rounds = 0),
  // matching SelfStabilizingSourceFilter.
  return std::make_unique<CompiledPopulation>(std::move(groups), 0);
}

}  // namespace noisypull
