#include "noisypull/core/automaton/protocol_automata.hpp"

#include <utility>

#include "noisypull/common/check.hpp"
#include "noisypull/core/ssf.hpp"

namespace noisypull {
namespace {

// ½-½ split between two states, collapsing equal targets.
std::vector<WeightedState> coin_split(AutomatonState a, AutomatonState b) {
  if (a == b) return {{a, 1.0}};
  return {{a, 0.5}, {b, 0.5}};
}

}  // namespace

// --------------------------------------------------------------------------
// TableAutomaton

TableAutomaton::TableAutomaton(std::size_t alphabet,
                               std::vector<TableState> states)
    : alphabet_(alphabet), states_(std::move(states)) {
  NOISYPULL_CHECK(alphabet_ >= 2 && alphabet_ <= kMaxAlphabet,
                  "unsupported alphabet size");
  NOISYPULL_CHECK(!states_.empty(), "table automaton needs states");
  for (const auto& s : states_) {
    NOISYPULL_CHECK(s.show < alphabet_, "display symbol outside the alphabet");
    NOISYPULL_CHECK(s.watch_a < alphabet_ && s.watch_b < alphabet_,
                    "watched cell outside the alphabet");
    NOISYPULL_CHECK(s.if_greater < states_.size() &&
                        s.if_less < states_.size() &&
                        s.tie_a < states_.size() && s.tie_b < states_.size(),
                    "transition target outside the state set");
  }
}

Symbol TableAutomaton::display(AutomatonState state,
                               std::uint64_t /*round*/) const {
  NOISYPULL_ASSERT(state < states_.size());
  return states_[state].show;
}

std::vector<WeightedState> TableAutomaton::transition(
    AutomatonState state, std::uint64_t /*round*/,
    const SymbolCounts& obs) const {
  NOISYPULL_ASSERT(state < states_.size());
  const TableState& s = states_[state];
  const std::uint64_t a = obs[s.watch_a];
  const std::uint64_t b = obs[s.watch_b];
  if (a > b) return {{s.if_greater, 1.0}};
  if (a < b) return {{s.if_less, 1.0}};
  return coin_split(s.tie_a, s.tie_b);
}

// --------------------------------------------------------------------------
// SfAutomaton

SfAutomaton::SfAutomaton(SfSchedule schedule, bool is_source,
                         Opinion preference)
    : schedule_(schedule), is_source_(is_source),
      preference_(preference & 1) {
  NOISYPULL_CHECK(schedule_.phase_rounds >= 1, "SF needs listening rounds");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  intern(Concrete{});  // state 0: the fresh agent
}

// Callers must hold intern_mutex_.
AutomatonState SfAutomaton::intern(const Concrete& c) const {
  const auto it = ids_.find(c);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<AutomatonState>(states_.size());
  states_.push_back(c);
  ids_.emplace(c, id);
  return id;
}

SfAutomaton::Concrete SfAutomaton::concrete(AutomatonState state) const {
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  return states_[state];
}

Symbol SfAutomaton::display(AutomatonState state, std::uint64_t round) const {
  if (round < schedule_.boosting_start()) {
    if (is_source_) return preference_;
    return round < schedule_.phase_rounds ? Symbol{0} : Symbol{1};
  }
  return concrete(state).current;
}

bool SfAutomaton::is_subphase_end(std::uint64_t round) const noexcept {
  const std::uint64_t start = schedule_.boosting_start();
  if (round < start) return false;
  const std::uint64_t short_span =
      schedule_.num_subphases * schedule_.subphase_rounds;
  const std::uint64_t off = round - start;
  if (off < short_span) {
    return (off + 1) % schedule_.subphase_rounds == 0;
  }
  return off + 1 == short_span + schedule_.final_rounds;
}

std::uint64_t SfAutomaton::update_signature(std::uint64_t round) const {
  if (round < schedule_.phase_rounds) return 0;  // Phase 0: count 1s
  if (round < schedule_.boosting_start()) {      // Phase 1: count 0s, ...
    return round + 1 == schedule_.boosting_start() ? 2 : 1;  // ... then finish
  }
  if (round >= schedule_.total_rounds()) return 5;  // terminated (identity)
  return is_subphase_end(round) ? 4 : 3;  // boosting: sub-phase end / middle
}

std::uint64_t SfAutomaton::display_signature(std::uint64_t round) const {
  if (round < schedule_.phase_rounds) return 0;
  return round < schedule_.boosting_start() ? 1 : 2;
}

std::vector<WeightedState> SfAutomaton::transition(
    AutomatonState state, std::uint64_t round, const SymbolCounts& obs) const {
  NOISYPULL_CHECK(obs.size == 2, "SF expects a binary alphabet");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  Concrete c = states_[state];

  if (round < schedule_.phase_rounds) {
    c.counter1 += obs[1];
    return {{intern(c), 1.0}};
  }
  if (round < schedule_.boosting_start()) {
    c.counter0 += obs[0];
    if (round + 1 != schedule_.boosting_start()) return {{intern(c), 1.0}};
    // finish_listening: weak ← majority of the two counters, tie → coin;
    // current ← weak; boost counters reset (already 0 during listening).
    // The listening counters are dead state from here on — no later
    // transition or display reads them — so they are zeroed too: an
    // exactness-preserving lumping that keeps the chain's support small.
    const bool tie = c.counter1 == c.counter0;
    const Opinion majority = c.counter1 > c.counter0 ? 1 : 0;
    c.counter1 = 0;
    c.counter0 = 0;
    c.boost_ones = 0;
    c.boost_total = 0;
    if (!tie) {
      c.weak = majority;
      c.current = majority;
      return {{intern(c), 1.0}};
    }
    Concrete heads = c;
    heads.weak = 1;
    heads.current = 1;
    Concrete tails = c;
    tails.weak = 0;
    tails.current = 0;
    return coin_split(intern(heads), intern(tails));
  }
  if (round >= schedule_.total_rounds()) return {{state, 1.0}};
  c.boost_ones += obs[1];
  c.boost_total += obs.total();
  if (!is_subphase_end(round)) return {{intern(c), 1.0}};
  // finish_subphase: current ← majority of boost ones vs zeros, tie → coin.
  const std::uint64_t zeros = c.boost_total - c.boost_ones;
  const std::uint64_t ones = c.boost_ones;
  c.boost_ones = 0;
  c.boost_total = 0;
  if (ones != zeros) {
    c.current = ones > zeros ? 1 : 0;
    return {{intern(c), 1.0}};
  }
  Concrete heads = c;
  heads.current = 1;
  Concrete tails = c;
  tails.current = 0;
  return coin_split(intern(heads), intern(tails));
}

// Same branch structure as transition(), but returning the *sampling
// procedure* with SourceFilter::update's exact draw pattern: no draw on
// deterministic moves, one next_bool() per realized tie (heads → opinion 1).
CompiledEdge SfAutomaton::compile(AutomatonState state, std::uint64_t round,
                                  const SymbolCounts& obs) const {
  NOISYPULL_CHECK(obs.size == 2, "SF expects a binary alphabet");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  Concrete c = states_[state];

  if (round < schedule_.phase_rounds) {
    c.counter1 += obs[1];
    return CompiledEdge::deterministic(intern(c));
  }
  if (round < schedule_.boosting_start()) {
    c.counter0 += obs[0];
    if (round + 1 != schedule_.boosting_start()) {
      return CompiledEdge::deterministic(intern(c));
    }
    const bool tie = c.counter1 == c.counter0;
    const Opinion majority = c.counter1 > c.counter0 ? 1 : 0;
    c.counter1 = 0;
    c.counter0 = 0;
    c.boost_ones = 0;
    c.boost_total = 0;
    if (!tie) {
      c.weak = majority;
      c.current = majority;
      return CompiledEdge::deterministic(intern(c));
    }
    Concrete heads = c;
    heads.weak = 1;
    heads.current = 1;
    Concrete tails = c;
    tails.weak = 0;
    tails.current = 0;
    return CompiledEdge::coin(intern(tails), intern(heads));
  }
  if (round >= schedule_.total_rounds()) {
    return CompiledEdge::deterministic(state);
  }
  c.boost_ones += obs[1];
  c.boost_total += obs.total();
  if (!is_subphase_end(round)) return CompiledEdge::deterministic(intern(c));
  const std::uint64_t zeros = c.boost_total - c.boost_ones;
  const std::uint64_t ones = c.boost_ones;
  c.boost_ones = 0;
  c.boost_total = 0;
  if (ones != zeros) {
    c.current = ones > zeros ? 1 : 0;
    return CompiledEdge::deterministic(intern(c));
  }
  Concrete heads = c;
  heads.current = 1;
  Concrete tails = c;
  tails.current = 0;
  return CompiledEdge::coin(intern(tails), intern(heads));
}

Opinion SfAutomaton::opinion(AutomatonState state) const {
  return concrete(state).current;
}

// --------------------------------------------------------------------------
// SsfAutomaton

SsfAutomaton::SsfAutomaton(MemoryBudget m, bool is_source, Opinion preference)
    : m_(m.get()), is_source_(is_source), preference_(preference & 1) {
  NOISYPULL_CHECK(m_ >= 1, "memory budget m must be at least 1");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  intern(Concrete{});  // state 0: the fresh agent
}

// Callers must hold intern_mutex_.
AutomatonState SsfAutomaton::intern(const Concrete& c) const {
  const auto it = ids_.find(c);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<AutomatonState>(states_.size());
  states_.push_back(c);
  ids_.emplace(c, id);
  return id;
}

SsfAutomaton::Concrete SsfAutomaton::concrete(AutomatonState state) const {
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  return states_[state];
}

Symbol SsfAutomaton::display(AutomatonState state,
                             std::uint64_t /*round*/) const {
  if (is_source_) {
    return SelfStabilizingSourceFilter::encode(true, preference_);
  }
  return SelfStabilizingSourceFilter::encode(false, concrete(state).weak);
}

std::vector<WeightedState> SsfAutomaton::transition(
    AutomatonState state, std::uint64_t /*round*/,
    const SymbolCounts& obs) const {
  NOISYPULL_CHECK(obs.size == 4, "SSF expects the {0,1}^2 alphabet");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  Concrete c = states_[state];
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    c.mem[s] += obs[s];
    total += c.mem[s];
  }
  if (total < m_) return {{intern(c), 1.0}};

  // Flush: weak ← majority of second bits among source-tagged messages
  // (symbols 2, 3); current ← majority of second bits of all messages.  Each
  // tie breaks with its own independent fair coin, so a double tie splits
  // the state four ways.
  const std::uint64_t src_ones = c.mem[3];
  const std::uint64_t src_zeros = c.mem[2];
  const std::uint64_t all_ones = c.mem[1] + c.mem[3];
  const std::uint64_t all_zeros = c.mem[0] + c.mem[2];
  c.mem.fill(0);

  std::vector<std::pair<Opinion, double>> weaks;
  if (src_ones != src_zeros) {
    weaks.emplace_back(src_ones > src_zeros ? 1 : 0, 1.0);
  } else {
    weaks.emplace_back(1, 0.5);
    weaks.emplace_back(0, 0.5);
  }
  std::vector<std::pair<Opinion, double>> currents;
  if (all_ones != all_zeros) {
    currents.emplace_back(all_ones > all_zeros ? 1 : 0, 1.0);
  } else {
    currents.emplace_back(1, 0.5);
    currents.emplace_back(0, 0.5);
  }

  std::vector<WeightedState> out;
  out.reserve(weaks.size() * currents.size());
  for (const auto& [w, wp] : weaks) {
    for (const auto& [cur, cp] : currents) {
      Concrete next = c;
      next.weak = w;
      next.current = cur;
      out.push_back({intern(next), wp * cp});
    }
  }
  return out;
}

// Same flush rule as transition(), with SelfStabilizingSourceFilter::update's
// exact draw pattern: majority() consumes one next_bool() only on a tie, the
// weak-opinion majority before the opinion majority.
CompiledEdge SsfAutomaton::compile(AutomatonState state,
                                   std::uint64_t /*round*/,
                                   const SymbolCounts& obs) const {
  NOISYPULL_CHECK(obs.size == 4, "SSF expects the {0,1}^2 alphabet");
  const std::lock_guard<std::mutex> lock(intern_mutex_);
  NOISYPULL_ASSERT(state < states_.size());
  Concrete c = states_[state];
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    c.mem[s] += obs[s];
    total += c.mem[s];
  }
  if (total < m_) return CompiledEdge::deterministic(intern(c));

  const std::uint64_t src_ones = c.mem[3];
  const std::uint64_t src_zeros = c.mem[2];
  const std::uint64_t all_ones = c.mem[1] + c.mem[3];
  const std::uint64_t all_zeros = c.mem[0] + c.mem[2];
  c.mem.fill(0);
  const bool weak_tie = src_ones == src_zeros;
  const bool current_tie = all_ones == all_zeros;
  const Opinion weak = src_ones > src_zeros ? 1 : 0;
  const Opinion current = all_ones > all_zeros ? 1 : 0;
  const auto flushed = [&](Opinion w, Opinion cur) {
    Concrete next = c;
    next.weak = w;
    next.current = cur;
    return intern(next);
  };
  if (!weak_tie && !current_tie) {
    return CompiledEdge::deterministic(flushed(weak, current));
  }
  if (weak_tie && !current_tie) {
    return CompiledEdge::coin(flushed(0, current), flushed(1, current));
  }
  if (!weak_tie) {  // current_tie only
    return CompiledEdge::coin(flushed(weak, 0), flushed(weak, 1));
  }
  CompiledEdge e;
  e.kind = CompiledEdge::Kind::CoinPair;  // b1 = weak coin, b2 = current coin
  e.target[0] = flushed(0, 0);
  e.target[1] = flushed(0, 1);
  e.target[2] = flushed(1, 0);
  e.target[3] = flushed(1, 1);
  return e;
}

Opinion SsfAutomaton::opinion(AutomatonState state) const {
  return concrete(state).current;
}

// --------------------------------------------------------------------------
// AutomatonProtocol

AutomatonProtocol::AutomatonProtocol(std::vector<AutomatonGroup> groups) {
  NOISYPULL_CHECK(!groups.empty(), "automaton protocol needs agents");
  for (const auto& g : groups) {
    NOISYPULL_CHECK(g.count >= 1, "empty automaton group");
    NOISYPULL_CHECK(g.automaton != nullptr, "group needs an automaton");
    if (alphabet_ == 0) alphabet_ = g.automaton->alphabet_size();
    NOISYPULL_CHECK(g.automaton->alphabet_size() == alphabet_,
                    "all groups must share one alphabet");
    for (std::uint64_t i = 0; i < g.count; ++i) {
      agents_.push_back({g.automaton, g.initial});
    }
  }
}

Symbol AutomatonProtocol::display(std::uint64_t agent,
                                  std::uint64_t round) const {
  NOISYPULL_CHECK(agent < agents_.size(), "agent index out of range");
  return agents_[agent].automaton->display(agents_[agent].state, round);
}

void AutomatonProtocol::update(std::uint64_t agent, std::uint64_t round,
                               const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < agents_.size(), "agent index out of range");
  AgentSlot& slot = agents_[agent];
  const auto law = slot.automaton->transition(slot.state, round, obs);
  NOISYPULL_ASSERT(!law.empty());
  // Inverse-CDF sample; the final state absorbs rounding slack.
  const double u = rng.next_double();
  double acc = 0.0;
  for (const auto& ws : law) {
    acc += ws.prob;
    if (u < acc) {
      slot.state = ws.state;
      return;
    }
  }
  slot.state = law.back().state;
}

Opinion AutomatonProtocol::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < agents_.size(), "agent index out of range");
  return agents_[agent].automaton->opinion(agents_[agent].state);
}

AutomatonState AutomatonProtocol::state(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < agents_.size(), "agent index out of range");
  return agents_[agent].state;
}

}  // namespace noisypull
