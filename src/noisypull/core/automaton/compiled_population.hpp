// CompiledPopulation — the production-scale adapter from interned automata
// to the engines' compiled fast path (DESIGN.md §13).
//
// Per-agent protocol state is ONE flat std::vector<std::uint32_t> of
// interned automaton state ids (SoA, cache-linear, no per-agent objects).
// The engines drive two non-virtual phase APIs per round:
//
//   display phase   begin_display_round() + display_at(): a per-state memo
//                   table (state id → symbol) keyed by the automaton's
//                   display_signature, so the serial digest loop does one
//                   array lookup per agent and at most O(#occupied states)
//                   virtual display() calls per signature change.
//
//   update phase    build_update_tables() + apply(): a memoized
//                   (state id, outcome index) → PackedEdge table per
//                   (group, update_signature), grown lazily — rows are
//                   compiled only for states actually occupied at the start
//                   of a round, one for_each_outcome() sweep per new state.
//                   apply() is a table lookup plus the edge's exact Rng
//                   draws: no virtual dispatch anywhere in the hot loop.
//
// Bit-identity contract: under an engine running the fast path, the replay
// digest and final opinions are identical to the same CompiledPopulation
// run through the virtual PullProtocol path, which in turn mirrors the
// production protocol (SourceFilter / SelfStabilizingSourceFilter /
// AutomatonProtocol) draw for draw — see compile() in
// core/automaton/automaton.hpp and tests/test_compiled_path.cpp.
//
// Table growth bounds: a table for signature σ holds (#states occupied
// during σ-rounds) · num_outcomes packed edges.  With the binary alphabet
// num_outcomes = h+1, and an SF listening phase of R rounds occupies at most
// R·h+1 counter states, so tables stay kilobytes at bench scales; every
// table lives for the run and is reused by every round sharing its
// signature.  Protocol phases whose states do NOT recur (SSF memory
// accumulation: almost every histogram is fresh every round) are caught by
// the build gate — see build_update_tables — and run the virtual per-agent
// path for that round instead of compiling rows that would never be reused.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "noisypull/common/check.hpp"
#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"
#include "noisypull/core/automaton/protocol_automata.hpp"
#include "noisypull/core/protocol.hpp"
#include "noisypull/rng/observation_cache.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {

// A contiguous run of agents sharing one automaton and one initial state —
// the owning counterpart of AutomatonGroup (the engines outlive any one
// round, so the population keeps its automata alive).
struct CompiledGroup {
  std::uint64_t count = 0;
  std::shared_ptr<const AgentAutomaton> automaton;
  AutomatonState initial = 0;
};

class CompiledPopulation final : public PullProtocol {
 public:
  CompiledPopulation(std::vector<CompiledGroup> groups,
                     std::uint64_t planned_rounds);

  // ---- PullProtocol (the interpreted / fallback path) -------------------
  std::size_t alphabet_size() const override { return alphabet_; }
  std::uint64_t num_agents() const override { return num_agents_; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  // One compile() + resolve(): consumes the agent's rng exactly like the
  // mirrored production protocol, for ANY observation total — this is the
  // per-agent fallback the engines use for faulted agents (and the whole
  // path when the round's sampler cannot enumerate its outcome space).
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;
  std::uint64_t planned_rounds() const override { return planned_rounds_; }
  CompiledAccess compiled_access() override { return {.population = this}; }

  // ---- Display phase (serial: the engine's digest loop) -----------------
  void begin_display_round(std::uint64_t round);

  Symbol display_at(std::uint64_t agent, std::uint64_t round) {
    Group& g = groups_[group_of_[agent]];
    const AutomatonState s = state_[agent];
    if (s >= g.display_table.size()) extend_display_table(g, round, s);
    return g.display_table[s];
  }

  // ---- Update phase -----------------------------------------------------
  // Builds (or extends) this round's transition tables for every state
  // occupied at the start of the round.  Serial, before the block-parallel
  // phase; `sampler` must be in InverseCdf mode (the engine falls back to
  // the virtual path otherwise) and its enumeration must be the one
  // sample_index() draws from.  All samplers of one round share the outcome
  // *enumeration* — it is a function of (h, d) only — so the heterogeneous
  // engine passes any one of its per-channel InverseCdf samplers.
  //
  // Build gate: returns false — building nothing — when this round's
  // uncompiled rows would cost more compile() calls than the round they
  // serve (new_states · num_outcomes > table_build_limit · num_agents).
  // Memoization pays when states recur across agents and rounds (Table
  // states, SF phase counters); it cannot pay mid-accumulation in SSF,
  // where nearly every occupied memory histogram is new each round and
  // speculative row compilation would intern outcome states no agent ever
  // reaches.  On false the engine runs the round through the virtual
  // per-agent path — bit-identical either way, so the gate (like the
  // sampler's) is a pure wall-clock decision.  The decision is a function
  // of the trajectory only, never of threads or cache toggles.
  bool build_update_tables(std::uint64_t round,
                           const ObservationSampler& sampler);

  // Overrides the build gate's cost factor (default 1.0: one round's worth
  // of compile() calls).  Tests force the fast path with a huge factor;
  // benches may sweep it.
  void set_table_build_limit(double factor) { table_build_limit_ = factor; }

  // Applies outcome index `outcome` (from ObservationSampler::sample_index
  // on the agent's sampler) to one agent.  Hot loop: one table row lookup
  // plus the packed edge's exact draws.  Thread-safe across distinct agents
  // — tables are read-only during the phase, state_[agent] is owner-written.
  void apply(std::uint64_t agent, std::uint64_t outcome, Rng& rng) {
    const Group& g = groups_[group_of_[agent]];
    const UpdateTable& t = *g.active;
    const std::uint64_t row =
        static_cast<std::uint64_t>(state_[agent]) * t.num_outcomes + outcome;
    state_[agent] = resolve_edge(t, row, rng);
  }

  // Runs the whole update phase for agents [begin, end) in one call:
  // per agent, one sample_index() on the agent's rng followed by the packed
  // edge's exact draws — the same draw sequence, draw for draw, as the
  // engine calling apply(i, sampler.sample_index(rng), rng) per agent.  The
  // group's table is hoisted across each contiguous agent run (see Group's
  // agent_begin/agent_end), so the inner loop carries no per-agent group
  // lookup or fault check — the engines route blocks here only when no
  // fault decorator is active for the round.
  void apply_block(std::uint64_t begin, std::uint64_t end,
                   const ObservationSampler& sampler, Rng& rng) {
    std::uint64_t i = begin;
    std::uint32_t gi = group_of_[begin];
    while (i < end) {
      const Group& g = groups_[gi];
      const std::uint64_t run_end = g.agent_end < end ? g.agent_end : end;
      const UpdateTable& t = *g.active;
      for (; i < run_end; ++i) {
        const std::uint64_t row =
            static_cast<std::uint64_t>(state_[i]) * t.num_outcomes +
            sampler.sample_index(rng);
        state_[i] = resolve_edge(t, row, rng);
      }
      ++gi;
    }
  }

  AutomatonState state(std::uint64_t agent) const {
    NOISYPULL_CHECK(agent < num_agents_, "agent index out of range");
    return state_[agent];
  }

 private:
  // One compiled transition row entry.  kind stores a CompiledEdge::Kind;
  // kUncompiled marks slots of states whose rows were never needed (they
  // exist only as resize() filler below the highest built row).
  struct PackedEdge {
    static constexpr std::uint8_t kUncompiled = 0xff;
    std::uint8_t kind = kUncompiled;
    std::array<AutomatonState, 4> target{};
    std::uint32_t law_begin = 0;  // into law_prob/law_target (InverseCdf)
    std::uint32_t law_len = 0;
  };

  struct UpdateTable {
    std::uint64_t num_outcomes = 0;
    std::vector<PackedEdge> edges;        // state-major rows
    std::vector<std::uint8_t> row_built;  // per state id
    std::vector<double> law_prob;         // pooled InverseCdf laws
    std::vector<AutomatonState> law_target;
  };

  struct Group {
    std::shared_ptr<const AgentAutomaton> automaton;
    // The group's agents occupy one contiguous index run [begin, end) —
    // the constructor lays groups out back to back.
    std::uint64_t agent_begin = 0;
    std::uint64_t agent_end = 0;
    // Display memo for the current display signature.
    bool display_sig_valid = false;
    std::uint64_t display_sig = 0;
    std::vector<Symbol> display_table;
    // Update tables, one per update signature, persistent for the run.
    // std::map: node stability keeps `active` valid across insertions (and
    // unordered containers are lint-banned on simulation paths).
    std::map<std::uint64_t, UpdateTable> update_tables;
    UpdateTable* active = nullptr;  // this round's table
  };

  void extend_display_table(Group& g, std::uint64_t round, AutomatonState s);

  // Resolves one compiled transition row on the agent's rng — the shared
  // tail of apply() and apply_block(), consuming draws exactly as the
  // mirrored CompiledEdge::resolve would.
  static AutomatonState resolve_edge(const UpdateTable& t, std::uint64_t row,
                                     Rng& rng) {
    const PackedEdge& e = t.edges[row];
    switch (static_cast<CompiledEdge::Kind>(e.kind)) {
      case CompiledEdge::Kind::Deterministic:
        return e.target[0];
      case CompiledEdge::Kind::Coin:
        return rng.next_bool() ? e.target[1] : e.target[0];
      case CompiledEdge::Kind::CoinPair: {
        const bool b1 = rng.next_bool();
        const bool b2 = rng.next_bool();
        return e.target[(b1 ? 2U : 0U) | (b2 ? 1U : 0U)];
      }
      case CompiledEdge::Kind::InverseCdf: {
        const double u = rng.next_double();
        double acc = 0.0;
        const std::uint32_t end = e.law_begin + e.law_len;
        for (std::uint32_t k = e.law_begin; k < end; ++k) {
          acc += t.law_prob[k];
          if (u < acc) return t.law_target[k];
        }
        return t.law_target[end - 1];
      }
    }
    NOISYPULL_CHECK(false, "apply() hit an uncompiled transition row");
    return 0;
  }

  std::size_t alphabet_ = 0;
  std::uint64_t num_agents_ = 0;
  std::uint64_t planned_rounds_ = 0;
  double table_build_limit_ = 1.0;
  // Scratch for build_update_tables' occupancy pass (kept across rounds to
  // avoid reallocation): states whose rows this round must compile.
  std::vector<std::pair<std::uint32_t, AutomatonState>> pending_rows_;
  std::vector<Group> groups_;
  std::vector<std::uint32_t> group_of_;  // agent → group index
  std::vector<std::uint32_t> state_;     // agent → interned state id (SoA)
};

// Factories mirroring the production populations' agent layout (sources
// preferring 1 first, then sources preferring 0, then non-sources —
// PopulationConfig::is_source/source_preference).  The returned population
// is draw-for-draw interchangeable with the mirrored protocol under any
// engine.
std::unique_ptr<CompiledPopulation> make_compiled_sf(
    const PopulationConfig& pop, const SfSchedule& schedule);
std::unique_ptr<CompiledPopulation> make_compiled_ssf(
    const PopulationConfig& pop, MemoryBudget m);

}  // namespace noisypull
