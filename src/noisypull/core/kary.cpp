#include "noisypull/core/kary.hpp"

#include <algorithm>
#include <cmath>

#include "noisypull/common/check.hpp"

namespace noisypull {

void KaryPopulation::validate() const {
  NOISYPULL_CHECK(n >= 2, "population needs at least 2 agents");
  NOISYPULL_CHECK(sources.size() >= 2 && sources.size() <= kMaxAlphabet,
                  "need between 2 and kMaxAlphabet opinions");
  NOISYPULL_CHECK(num_sources() >= 1, "at least one source is required");
  NOISYPULL_CHECK(num_sources() <= n, "more sources than agents");
}

std::uint64_t KaryPopulation::num_sources() const noexcept {
  std::uint64_t total = 0;
  for (auto s : sources) total += s;
  return total;
}

Opinion KaryPopulation::plurality_opinion() const {
  validate();
  std::size_t best = 0;
  for (std::size_t o = 1; o < sources.size(); ++o) {
    if (sources[o] > sources[best]) best = o;
  }
  for (std::size_t o = 0; o < sources.size(); ++o) {
    NOISYPULL_CHECK(o == best || sources[o] < sources[best],
                    "plurality opinion undefined on a tie");
  }
  return static_cast<Opinion>(best);
}

std::uint64_t KaryPopulation::bias() const {
  validate();
  std::uint64_t top = 0, second = 0;
  for (auto s : sources) {
    if (s >= top) {
      second = top;
      top = s;
    } else if (s > second) {
      second = s;
    }
  }
  return top - second;
}

Opinion KaryPopulation::source_preference(std::uint64_t agent) const {
  NOISYPULL_CHECK(is_source(agent), "agent is not a source");
  std::uint64_t cumulative = 0;
  for (std::size_t o = 0; o < sources.size(); ++o) {
    cumulative += sources[o];
    if (agent < cumulative) return static_cast<Opinion>(o);
  }
  NOISYPULL_ASSERT(false);
  return 0;
}

KarySourceFilter::KarySourceFilter(KaryPopulation pop, Holdings h_in,
                                   Delta delta_in, C1 c1_in)
    : pop_(std::move(pop)), h_(h_in.get()), agents_(pop_.n) {
  const std::uint64_t h = h_in.get();
  const double delta = delta_in.get();
  const double c1 = c1_in.get();
  pop_.validate();
  const auto k = static_cast<double>(pop_.num_opinions());
  NOISYPULL_CHECK(h >= 1, "sample size h must be at least 1");
  NOISYPULL_CHECK(delta >= 0.0 && delta < 1.0 / k,
                  "k-ary SF requires delta in [0, 1/k)");
  NOISYPULL_CHECK(c1 > 0.0, "c1 must be positive");
  NOISYPULL_CHECK(pop_.bias() >= 1, "plurality must be strict");

  // The k-ary analogue of Eq. 19, with the binary margin (1−2δ) replaced by
  // (1−kδ) and the total source count S = Σ sources[o].
  const double nd = static_cast<double>(pop_.n);
  const double sd = static_cast<double>(pop_.bias());
  const double total_sources = static_cast<double>(pop_.num_sources());
  const double logn = std::log(nd);
  const double margin = 1.0 - k * delta;
  const double inner =
      nd * delta / (std::min(sd * sd, nd) * margin * margin) +
      std::sqrt(nd) / sd + total_sources / (sd * sd);
  m_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(
             c1 * (inner + static_cast<double>(h)) * logn)));
  phase_rounds_ = (m_ + h - 1) / h;
  w_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(100.0 * std::exp(1.0) / (margin * margin))));
  subphase_rounds_ = (w_ + h - 1) / h;
  num_subphases_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(10.0 * logn)));
  final_rounds_ = phase_rounds_;

  // Sources start with their preference as the current opinion.
  for (std::uint64_t i = 0; i < pop_.num_sources(); ++i) {
    agents_[i].current = pop_.source_preference(i);
    agents_[i].weak = agents_[i].current;
  }
}

std::uint64_t KarySourceFilter::planned_rounds() const {
  return listening_rounds() + num_subphases_ * subphase_rounds_ +
         final_rounds_;
}

Symbol KarySourceFilter::display(std::uint64_t agent,
                                 std::uint64_t round) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  if (round < listening_rounds()) {
    if (pop_.is_source(agent)) return pop_.source_preference(agent);
    return static_cast<Symbol>(round / phase_rounds_);  // cover symbol j
  }
  return agents_[agent].current;
}

Opinion KarySourceFilter::argmax_with_ties(
    const std::array<std::uint64_t, kMaxAlphabet>& v, Rng& rng) const {
  const std::size_t k = pop_.num_opinions();
  std::uint64_t best = 0;
  for (std::size_t o = 0; o < k; ++o) best = std::max(best, v[o]);
  std::uint64_t ties = 0;
  for (std::size_t o = 0; o < k; ++o) ties += v[o] == best ? 1 : 0;
  std::uint64_t pick = rng.next_below(ties);
  for (std::size_t o = 0; o < k; ++o) {
    if (v[o] == best) {
      if (pick == 0) return static_cast<Opinion>(o);
      --pick;
    }
  }
  NOISYPULL_ASSERT(false);
  return 0;
}

bool KarySourceFilter::is_subphase_end(std::uint64_t round) const noexcept {
  const std::uint64_t start = listening_rounds();
  if (round < start) return false;
  const std::uint64_t short_span = num_subphases_ * subphase_rounds_;
  const std::uint64_t off = round - start;
  if (off < short_span) return (off + 1) % subphase_rounds_ == 0;
  return off + 1 == short_span + final_rounds_;
}

void KarySourceFilter::update(std::uint64_t agent, std::uint64_t round,
                              const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == pop_.num_opinions(),
                  "observation alphabet mismatch");
  AgentState& a = agents_[agent];
  const std::size_t k = pop_.num_opinions();

  if (round < listening_rounds()) {
    const std::size_t cover = round / phase_rounds_;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != cover) a.score[o] += obs[o];
    }
    if (round + 1 == listening_rounds()) {
      a.weak = argmax_with_ties(a.score, rng);
      a.current = a.weak;
      a.tally.fill(0);
    }
    return;
  }
  if (round >= planned_rounds()) return;
  for (std::size_t o = 0; o < k; ++o) a.tally[o] += obs[o];
  if (is_subphase_end(round)) {
    a.current = argmax_with_ties(a.tally, rng);
    a.tally.fill(0);
  }
}

Opinion KarySourceFilter::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

Opinion KarySourceFilter::weak_opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].weak;
}

std::uint64_t KarySourceFilter::score(std::uint64_t agent, Opinion o) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(o < pop_.num_opinions(), "opinion out of range");
  return agents_[agent].score[o];
}

}  // namespace noisypull
