#include "noisypull/core/source_filter.hpp"

#include "noisypull/common/check.hpp"

namespace noisypull {

SourceFilter::SourceFilter(const PopulationConfig& pop, Holdings h,
                           Delta delta, C1 c1)
    : SourceFilter(pop, make_sf_schedule(pop, h, delta, c1)) {}

SourceFilter::SourceFilter(const PopulationConfig& pop, SfSchedule schedule)
    : pop_(pop), schedule_(schedule), agents_(pop.n) {
  pop_.validate();
}

Symbol SourceFilter::nonsource_listen_display(std::uint64_t /*agent*/,
                                              std::uint64_t round) const {
  // Phase 0 → display 0; Phase 1 → display 1.
  return round < schedule_.phase_rounds ? Symbol{0} : Symbol{1};
}

Symbol SourceFilter::display(std::uint64_t agent, std::uint64_t round) const {
  if (round < schedule_.boosting_start()) {
    if (pop_.is_source(agent)) return pop_.source_preference(agent);
    return nonsource_listen_display(agent, round);
  }
  return agents_[agent].current;
}

void SourceFilter::finish_listening(AgentState& a, Rng& rng) {
  if (a.counter1 > a.counter0) {
    a.weak = 1;
  } else if (a.counter1 < a.counter0) {
    a.weak = 0;
  } else {
    a.weak = rng.next_bool() ? 1 : 0;
  }
  a.current = a.weak;
  a.boost_ones = 0;
  a.boost_total = 0;
}

void SourceFilter::finish_subphase(AgentState& a, Rng& rng) {
  const std::uint64_t zeros = a.boost_total - a.boost_ones;
  if (a.boost_ones > zeros) {
    a.current = 1;
  } else if (a.boost_ones < zeros) {
    a.current = 0;
  } else {
    a.current = rng.next_bool() ? 1 : 0;
  }
  a.boost_ones = 0;
  a.boost_total = 0;
}

bool SourceFilter::is_subphase_end(std::uint64_t round) const noexcept {
  const std::uint64_t start = schedule_.boosting_start();
  if (round < start) return false;
  const std::uint64_t short_span =
      schedule_.num_subphases * schedule_.subphase_rounds;
  const std::uint64_t off = round - start;
  if (off < short_span) {
    return (off + 1) % schedule_.subphase_rounds == 0;
  }
  return off + 1 == short_span + schedule_.final_rounds;
}

void SourceFilter::update(std::uint64_t agent, std::uint64_t round,
                          const SymbolCounts& obs, Rng& rng) {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  NOISYPULL_CHECK(obs.size == 2, "SF expects a binary alphabet");
  AgentState& a = agents_[agent];

  if (round < schedule_.phase_rounds) {
    a.counter1 += obs[1];
    return;
  }
  if (round < schedule_.boosting_start()) {
    a.counter0 += obs[0];
    if (round + 1 == schedule_.boosting_start()) finish_listening(a, rng);
    return;
  }
  if (round >= schedule_.total_rounds()) return;  // protocol has terminated
  a.boost_ones += obs[1];
  a.boost_total += obs.total();
  if (is_subphase_end(round)) finish_subphase(a, rng);
}

Opinion SourceFilter::opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].current;
}

Opinion SourceFilter::weak_opinion(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].weak;
}

std::uint64_t SourceFilter::counter1(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].counter1;
}

std::uint64_t SourceFilter::counter0(std::uint64_t agent) const {
  NOISYPULL_CHECK(agent < pop_.n, "agent index out of range");
  return agents_[agent].counter0;
}

}  // namespace noisypull
