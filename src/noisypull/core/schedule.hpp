// Theory-derived parameter calculators for SF and SSF.
//
// Theorem 4's protocol is driven by a single sample budget m (Eq. 19):
//   m = c1·( n·δ·log n / (min{s²,n}·(1−2δ)²)
//          + √n·log n / s
//          + (s0+s1)·log n / s²
//          + h·log n ),
// split into two listening phases of ⌈m/h⌉ rounds, then L = 10·ln n majority
// boosting sub-phases of w = 100e/(1−2δ)² messages each, and one final
// sub-phase of m messages.
//
// Theorem 5's SSF uses a memory budget (Eq. 30):
//   m = c1·( δ·n·log n / (1−4δ)² + n ).
//
// The theoretical c1 is an un-optimized "large enough" constant; experiments
// pass a calibrated small value (default 2.0) — this changes constants, not
// the scaling shape that the paper claims (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "noisypull/common/symbols.hpp"
#include "noisypull/common/units.hpp"

namespace noisypull {

struct SfSchedule {
  std::uint64_t h = 1;                // sample size of PULL(h)
  std::uint64_t m = 0;                // messages per listening phase (Eq. 19)
  std::uint64_t phase_rounds = 0;     // ⌈m/h⌉: length of Phase 0 and Phase 1
  std::uint64_t w = 0;                // messages per boosting sub-phase
  std::uint64_t subphase_rounds = 0;  // ⌈w/h⌉
  std::uint64_t num_subphases = 0;    // L = ⌈10·ln n⌉ short sub-phases
  std::uint64_t final_rounds = 0;     // ⌈m/h⌉: the long last sub-phase

  std::uint64_t boosting_start() const noexcept { return 2 * phase_rounds; }
  std::uint64_t total_rounds() const noexcept {
    return 2 * phase_rounds + num_subphases * subphase_rounds + final_rounds;
  }
};

// Builds the Theorem 4 schedule.  Requires δ ∈ [0, 1/2), h ≥ 1, bias ≥ 1.
SfSchedule make_sf_schedule(const PopulationConfig& pop, Holdings h,
                            Delta delta, C1 c1 = kDefaultC1);

// As above but with an explicit message budget m (used by tests/ablations).
SfSchedule make_sf_schedule_with_m(const PopulationConfig& pop, Holdings h,
                                   Delta delta, MemoryBudget m);

// Eq. 30 memory budget for SSF.  Requires δ ∈ [0, 1/4).
std::uint64_t ssf_memory_budget(const PopulationConfig& pop, Delta delta,
                                C1 c1 = kDefaultC1);

// Upper bound on the bits of per-agent state a schedule implies (the
// O(log T + log h) memory claim of Theorems 4/5): counters are bounded by
// the number of messages a phase can deliver.
std::uint64_t sf_state_bits(const SfSchedule& s) noexcept;
std::uint64_t ssf_state_bits(MemoryBudget m, Holdings h) noexcept;

}  // namespace noisypull
