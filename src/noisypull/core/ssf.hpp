// Self-stabilizing Source Filter (SSF) — Algorithm 2 of the paper (Thm 5).
//
// Alphabet Σ = {0,1}² encoded as symbol = first_bit·2 + second_bit, so
//   (0,0) → 0, (0,1) → 1, (1,0) → 2, (1,1) → 3.
// The first bit tags the sender as a source; the second bit carries the
// source's preference (sources) or the sender's weak opinion (non-sources).
//
// Every round each agent appends its h observations to a memory multiset
// (stored as per-symbol counts — order is irrelevant).  Whenever the memory
// holds at least m messages (an "update round", every ⌈m/h⌉ rounds once the
// memory has been emptied once):
//   weak opinion ← majority of second bits among messages with first bit 1,
//   opinion      ← majority of second bits of all messages,
//   memory       ← ∅,                                (ties → fair coin)
//
// The protocol requires no clocks, identifiers, or knowledge of the bias s;
// an adversary may arbitrarily corrupt memories, weak opinions and opinions
// at time 0 (see corrupt()/sim/adversary.hpp).  After at most two update
// cycles every memory contains only genuinely sampled messages, weak
// opinions are independent and correct with probability ≥ 1/2 + 4√(log n/n)
// (Lemma 36), and all opinions are correct w.h.p. from round 3⌈m/h⌉ on,
// staying correct for polynomially many rounds (Lemmas 39–40).
#pragma once

#include <cstdint>
#include <vector>

#include "noisypull/core/schedule.hpp"
#include "noisypull/core/protocol.hpp"

namespace noisypull {

class SelfStabilizingSourceFilter : public PullProtocol {
 public:
  // Symbol helpers for the {0,1}² alphabet.
  static constexpr Symbol encode(bool source_tag, Opinion second) noexcept {
    return static_cast<Symbol>((source_tag ? 2 : 0) | (second & 1));
  }
  static constexpr bool first_bit(Symbol s) noexcept { return (s & 2) != 0; }
  static constexpr Opinion second_bit(Symbol s) noexcept { return s & 1; }

  // Builds SSF with the Theorem 5 memory budget (see ssf_memory_budget).
  SelfStabilizingSourceFilter(const PopulationConfig& pop, Holdings h,
                              Delta delta, C1 c1 = kDefaultC1);

  // Builds SSF with an explicit memory budget m (tests / ablations).
  static SelfStabilizingSourceFilter with_memory_budget(
      const PopulationConfig& pop, Holdings h, MemoryBudget m) {
    return SelfStabilizingSourceFilter(pop, h, m, ExplicitBudget{});
  }

  std::size_t alphabet_size() const override { return 4; }
  std::uint64_t num_agents() const override { return pop_.n; }
  Symbol display(std::uint64_t agent, std::uint64_t round) const override;
  void update(std::uint64_t agent, std::uint64_t round,
              const SymbolCounts& obs, Rng& rng) override;
  Opinion opinion(std::uint64_t agent) const override;

  const PopulationConfig& population() const noexcept { return pop_; }
  std::uint64_t memory_budget() const noexcept { return m_; }

  // A round count by which Theorem 5 predicts w.h.p. convergence: the
  // analysis needs all agents past their third update (t ≥ 3⌈m/h⌉); one
  // extra cycle absorbs adversarially inflated memories.
  std::uint64_t convergence_deadline() const noexcept {
    const std::uint64_t cycle = (m_ + h_ - 1) / h_;
    return 4 * cycle + 1;
  }

  Opinion weak_opinion(std::uint64_t agent) const;

  // Partial-sample robustness.  update() accepts observation batches of any
  // size (obs.total() need not equal h) — under message-omission or stall
  // faults the engine legitimately delivers fewer than h samples, so the
  // memory fills more slowly and update rounds stretch out.  Under extreme
  // omission the memory may effectively never reach m; a stale flush bounds
  // that starvation: if `rounds` rounds pass after a flush without the
  // memory reaching m, the agent updates from whatever it holds.  0 (the
  // default) disables the timeout, leaving behavior bit-identical to
  // Algorithm 2.  A timeout of at least 2·⌈m/h⌉ never fires in a fault-free
  // run (the memory refills within ⌈m/h⌉ rounds of any state).
  void set_stale_flush(std::uint64_t rounds) noexcept { stale_flush_ = rounds; }
  std::uint64_t stale_flush() const noexcept { return stale_flush_; }

  // Adversarial state injection (the self-stabilization model): overwrites
  // the agent's memory counts, weak opinion and opinion.  Sourcehood and
  // preferences are not corruptible (they are inputs, per Section 1.3).
  void corrupt(std::uint64_t agent, const SymbolCounts& memory, Opinion weak,
               Opinion opinion);

  // Memory contents, exposed for tests.
  SymbolCounts memory(std::uint64_t agent) const;

 protected:
  const PopulationConfig pop_;
  const std::uint64_t h_;
  const std::uint64_t m_;

  struct AgentState {
    std::array<std::uint64_t, 4> mem{};  // multiset as per-symbol counts
    std::uint64_t mem_total = 0;
    std::uint64_t last_flush = 0;  // round of the last memory flush
    Opinion weak = 0;
    Opinion current = 0;
  };
  std::vector<AgentState> agents_;
  std::uint64_t stale_flush_ = 0;  // 0 = disabled (see set_stale_flush)

 private:
  struct ExplicitBudget {};
  SelfStabilizingSourceFilter(const PopulationConfig& pop, Holdings h,
                              MemoryBudget m, ExplicitBudget);

  static Opinion majority(std::uint64_t ones, std::uint64_t zeros, Rng& rng);
};

}  // namespace noisypull
