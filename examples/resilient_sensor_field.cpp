// Self-stabilizing alarm propagation in a sensor field.
//
// Scenario: a field of 3,000 cheap sensors must agree on a binary alarm
// state broadcast by two calibrated anchor nodes.  Sensors reboot, get
// reflashed, or are tampered with — so the network cannot assume a clean,
// synchronized start.  This is exactly the self-stabilizing setting of
// Theorem 5: an adversary sets every internal state at time 0, messages are
// corrupted (here δ = 5% per 2-bit message), and the population must still
// converge to the anchors' value and hold it.
//
// The example runs SSF from every corruption policy the library models and
// also shows the 1-bit ablation (no source tag) failing under the same
// attack — the reason SSF pays for a second message bit.
//
// Build & run:  ./build/examples/resilient_sensor_field
#include <cstdio>
#include <iostream>
#include <memory>

#include "noisypull/noisypull.hpp"

int main() {
  using namespace noisypull;

  const PopulationConfig pop{.n = 3'000, .s1 = 2, .s0 = 0};
  const double delta = 0.05;
  const auto noise4 = NoiseMatrix::uniform(4, delta);

  SelfStabilizingSourceFilter reference(pop, Holdings{pop.n}, Delta{delta},
                                        C1{2.0});
  std::printf("sensor field n = %llu, two anchors, delta = %.2f\n",
              static_cast<unsigned long long>(pop.n), delta);
  std::printf("SSF memory budget m = %llu messages, deadline %llu rounds\n\n",
              static_cast<unsigned long long>(reference.memory_budget()),
              static_cast<unsigned long long>(
                  reference.convergence_deadline()));

  Table table({"corruption at t=0", "recovered", "first all-correct round",
               "held for 2x deadline"});
  for (const auto policy : kAllCorruptionPolicies) {
    SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{delta},
                                    C1{2.0});
    Rng init(31 + static_cast<int>(policy));
    corrupt_population(ssf, policy, pop.correct_opinion(), init);

    AggregateEngine engine;
    Rng rng(41 + static_cast<int>(policy));
    const auto result =
        run(ssf, engine, noise4, pop.correct_opinion(),
            RunConfig{.h = pop.n,
                      .max_rounds = ssf.convergence_deadline(),
                      .stability_window = 2 * ssf.convergence_deadline()},
            rng);
    table.cell(to_string(policy))
        .cell(result.all_correct_at_end ? "yes" : "no")
        .cell(result.first_all_correct == kNever
                  ? std::string("never")
                  : std::to_string(result.first_all_correct))
        .cell(result.stable ? "yes" : "no")
        .end_row();
  }
  table.print(std::cout);

  // The ablation: drop the source-tag bit and repeat the hardest attack.
  std::printf("\nwithout the source-tag bit (1-bit messages), the same "
              "wrong-consensus attack sticks:\n");
  const auto noise2 = NoiseMatrix::uniform(2, delta);
  TaglessSsf tagless(pop, Holdings{pop.n},
                     MemoryBudget{reference.memory_budget()});
  Rng init(51);
  corrupt_population(tagless, CorruptionPolicy::WrongConsensus,
                     pop.correct_opinion(), init);
  AggregateEngine engine;
  Rng rng(52);
  const auto result =
      run(tagless, engine, noise2, pop.correct_opinion(),
          RunConfig{.h = pop.n, .max_rounds = reference.convergence_deadline()},
          rng);
  std::printf("tagless recovered: %s (%llu/%llu correct)\n",
              result.all_correct_at_end ? "yes" : "no",
              static_cast<unsigned long long>(result.correct_at_end),
              static_cast<unsigned long long>(pop.n));
  return 0;
}
