// Cooperative transport by "crazy ants" (Paratrechina longicornis).
//
// The paper's motivating scenario (§1.1): a group of ants carries a food
// load; each carrier senses the *cumulative* force of all carriers through
// the object — a noisy observation of the whole population, i.e. the noisy
// PULL(h) model with h ≈ n.  Occasionally a single informed ant joins and
// must steer the group toward the nest.  The question the paper answers:
// can one informed ant redirect the whole group *quickly*?
//
// This example maps the scenario onto the library:
//   * opinion 1 = "pull toward the nest", opinion 0 = "pull away";
//   * the informed ant is a single source with preference 1;
//   * force sensing is a PULL(h) observation with h = group size;
//   * δ models mechanical/sensory noise in reading the load's motion.
// We compare the SF strategy against the voter-style dynamics (each ant
// aligns with a random sensed force contribution, the Gelblum et al. model)
// for growing group sizes, printing rounds-to-alignment for each.
//
// Build & run:  ./build/examples/crazy_ants
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>

#include "noisypull/noisypull.hpp"

namespace {

using namespace noisypull;

// Rounds until the whole group pulls toward the nest; empty when no
// repetition ever aligned.
std::optional<double> sf_alignment_rounds(std::uint64_t n, double delta,
                                          std::uint64_t seed) {
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto results = run_repetitions(
      [&](Rng&) -> std::unique_ptr<PullProtocol> {
        return std::make_unique<SourceFilter>(pop, Holdings{n}, Delta{delta},
                                              C1{2.0});
      },
      noise, pop.correct_opinion(), RunConfig{.h = n},
      RepeatOptions{.repetitions = 8, .seed = seed});
  return mean_convergence_round(results);
}

std::optional<double> voter_alignment_rounds(std::uint64_t n, double delta,
                                             std::uint64_t seed,
                                             std::uint64_t budget) {
  const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto results = run_repetitions(
      [&](Rng& init) -> std::unique_ptr<PullProtocol> {
        return std::make_unique<VoterProtocol>(pop, init);
      },
      noise, pop.correct_opinion(),
      RunConfig{.h = n, .max_rounds = budget},
      RepeatOptions{.repetitions = 8, .seed = seed});
  return mean_convergence_round(results);
}

}  // namespace

int main() {
  using namespace noisypull;
  const double delta = 0.2;  // sensing noise

  std::printf("Cooperative transport: one informed ant steering the group\n");
  std::printf("(sensing = noisy PULL(h=n), delta = %.2f; voter = align with\n"
              " a random sensed contribution, SF = listen-then-boost)\n\n",
              delta);

  Table table({"ants", "SF rounds to alignment", "voter rounds (budgeted)",
               "voter aligned?"});
  for (std::uint64_t n : {50ULL, 100ULL, 200ULL, 400ULL, 800ULL}) {
    const std::optional<double> sf_rounds =
        sf_alignment_rounds(n, delta, 11 + n);
    // Give the voter dynamics a generous budget of 20·n rounds.
    const std::optional<double> voter_rounds =
        voter_alignment_rounds(n, delta, 13 + n, 20 * n);
    table.cell(n)
        .cell(sf_rounds, 1)
        .cell(voter_rounds, 1)  // "never" when no repetition aligned
        .cell(voter_rounds ? "sometimes" : "no")
        .end_row();
  }
  table.print(std::cout);
  std::printf("\nSF alignment time grows ~logarithmically with group size;\n"
              "the voter-style dynamics does not reliably follow the single\n"
              "informed ant — matching the paper's message that sensing the\n"
              "average tendency (large h) makes fast steering possible.\n");
  return 0;
}
