// Conflicting sources / zealot consensus: a committee vote under noise.
//
// The paper's problem definition allows sources that *disagree*: s1 sources
// prefer 1 and s0 prefer 0, and the population must converge on the
// plurality preference — even when the margin is a single vote (bias s = 1).
// This is the "zealot consensus" / "majority bit dissemination" task.
//
// Scenario: a swarm of 5,000 drones must adopt one of two rendezvous points.
// A small scouting committee has inspected both; 6 scouts prefer point B
// (opinion 1), 5 prefer point A (opinion 0).  Communication is anonymous
// broadcast sampling with 15% message corruption.  The swarm must settle on
// the committee's plurality — B — including convincing the 5 dissenting
// scouts.
//
// Build & run:  ./build/examples/conflicting_committees
#include <cstdio>
#include <iostream>

#include "noisypull/noisypull.hpp"

int main() {
  using namespace noisypull;

  const PopulationConfig pop{.n = 5'000, .s1 = 6, .s0 = 5};
  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);

  std::printf("committee: %llu scouts for B vs %llu for A (bias s = %llu)\n",
              static_cast<unsigned long long>(pop.s1),
              static_cast<unsigned long long>(pop.s0),
              static_cast<unsigned long long>(pop.bias()));
  std::printf("swarm size n = %llu, message corruption delta = %.2f\n\n",
              static_cast<unsigned long long>(pop.n), delta);

  SourceFilter protocol(pop, Holdings{pop.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(7);
  const auto result = run(protocol, engine, noise, pop.correct_opinion(),
                          RunConfig{.h = pop.n}, rng);

  std::printf("consensus reached: %s (%llu/%llu agents on the plurality "
              "choice after %llu rounds)\n",
              result.all_correct_at_end ? "yes" : "no",
              static_cast<unsigned long long>(result.correct_at_end),
              static_cast<unsigned long long>(pop.n),
              static_cast<unsigned long long>(result.rounds_run));

  // Definition 2 demands that even the dissenting scouts converge: check
  // the five A-preferring sources (agents s1 .. s1+s0-1).
  bool dissenters_flipped = true;
  for (std::uint64_t i = pop.s1; i < pop.s1 + pop.s0; ++i) {
    if (protocol.opinion(i) != pop.correct_opinion()) {
      dissenters_flipped = false;
    }
  }
  std::printf("dissenting scouts adopted the plurality choice: %s\n\n",
              dissenters_flipped ? "yes" : "no");

  // How tight can the committee be?  Sweep the bias down to 1.
  std::printf("sensitivity: success rate vs committee margin (24 runs each)\n");
  Table table({"scouts for B", "scouts for A", "bias", "success rate"});
  for (std::uint64_t s0 : {0ULL, 3ULL, 5ULL}) {
    const PopulationConfig p2{.n = 2'000, .s1 = s0 + 1, .s0 = s0};
    const auto results = run_repetitions(
        [&](Rng&) -> std::unique_ptr<PullProtocol> {
          return std::make_unique<SourceFilter>(p2, Holdings{p2.n},
                                                Delta{delta}, C1{2.0});
        },
        noise, p2.correct_opinion(), RunConfig{.h = p2.n},
        RepeatOptions{.repetitions = 24, .seed = 99 + s0});
    table.cell(p2.s1).cell(p2.s0).cell(p2.bias()).cell(
        success_rate(results), 3);
    table.end_row();
  }
  table.print(std::cout);
  std::printf("\neven a one-vote margin is reliably amplified to unanimous\n"
              "consensus — the property Theorem 4 guarantees for s >= 1.\n");
  return result.all_correct_at_end ? 0 : 1;
}
