// House-hunting with multiple candidate nests (the paper's §3 discussion).
//
// When a Temnothorax colony loses its nest, scouts assess candidate sites
// and the colony must converge on the best one.  The paper interprets the
// scouts' strategy through its framework: tandem runs *increase the number
// of sources* (first-hand assessors) instead of relaying noisy estimates,
// and a quorum/majority phase then amplifies the plurality.
//
// This example models the decision stage with the k-ary Source Filter:
// k candidate nests, a handful of scouts per nest (more scouts for better
// nests — the tandem-run rate encodes quality), and a colony of 4,000 ants
// communicating through noisy pairwise-ish contacts (here: noisy PULL with
// h = n contact samples, 5% confusion per contact).  The colony must settle
// on the site with the most scouts — including convincing the scouts that
// assessed inferior sites.
//
// Build & run:  ./build/examples/house_hunting
#include <cstdio>
#include <iostream>

#include "noisypull/noisypull.hpp"

int main() {
  using namespace noisypull;

  // Four candidate nests; scout counts reflect assessed quality.
  // Nest 2 (7 scouts) is the colony's best option.
  KaryPopulation colony{.n = 4'000, .sources = {2, 4, 7, 3}};
  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);

  std::printf("colony of %llu ants; scouts per candidate nest: ",
              static_cast<unsigned long long>(colony.n));
  for (std::size_t o = 0; o < colony.sources.size(); ++o) {
    std::printf("%s#%zu: %llu", o ? ", " : "", o,
                static_cast<unsigned long long>(colony.sources[o]));
  }
  std::printf(
      "\nbest site: #%d (plurality margin %llu), contact noise %.0f%%\n\n",
      colony.plurality_opinion(),
      static_cast<unsigned long long>(colony.bias()), 100 * delta);

  KarySourceFilter protocol(colony, Holdings{colony.n}, Delta{delta});
  AggregateEngine engine;
  Rng rng(1906);  // Pratt et al. would approve of a fixed seed
  const auto result =
      run(protocol, engine, noise, colony.plurality_opinion(),
          RunConfig{.h = colony.n, .record_trajectory = true}, rng);

  std::printf("decision after %llu rounds: %s (%llu/%llu ants on site #%d)\n",
              static_cast<unsigned long long>(result.rounds_run),
              result.all_correct_at_end ? "unanimous" : "split",
              static_cast<unsigned long long>(result.correct_at_end),
              static_cast<unsigned long long>(colony.n),
              colony.plurality_opinion());

  // Scouts of inferior sites must concede (Definition 2 semantics).
  bool scouts_conceded = true;
  for (std::uint64_t i = 0; i < colony.num_sources(); ++i) {
    if (protocol.opinion(i) != colony.plurality_opinion()) {
      scouts_conceded = false;
    }
  }
  std::printf("scouts of inferior sites conceded: %s\n\n",
              scouts_conceded ? "yes" : "no");

  // How close can two sites' quality be?  Margin-1 decisions still work —
  // the paper's bias-1 guarantee, here in its k-ary form.
  std::printf("margin sensitivity (16 colonies per row):\n");
  Table table({"scouts per site", "margin", "success rate"});
  const std::vector<std::vector<std::uint64_t>> scenarios = {
      {5, 4, 3, 2}, {4, 5, 4, 4}, {1, 2, 1, 1}};
  for (const auto& scouts : scenarios) {
    KaryPopulation pop{.n = 2'000, .sources = scouts};
    int wins = 0;
    const int kColonies = 16;
    for (int c = 0; c < kColonies; ++c) {
      KarySourceFilter ksf(pop, Holdings{pop.n}, Delta{delta});
      AggregateEngine eng;
      Rng colony_rng(2000 + c);
      wins += run(ksf, eng, noise, pop.plurality_opinion(),
                  RunConfig{.h = pop.n}, colony_rng)
                  .all_correct_at_end
                  ? 1
                  : 0;
    }
    std::string label;
    for (std::size_t o = 0; o < scouts.size(); ++o) {
      label += (o ? "/" : "") + std::to_string(scouts[o]);
    }
    table.cell(label)
        .cell(pop.bias())
        .cell(static_cast<double>(wins) / kColonies, 2)
        .end_row();
  }
  table.print(std::cout);
  std::printf("\na one-scout margin reliably decides the colony — investing\n"
              "in first-hand assessors (sources) beats relaying estimates,\n"
              "which is the paper's reading of the tandem-run strategy.\n");
  return result.all_correct_at_end ? 0 : 1;
}
