// Quickstart: spread one bit from a single source to 10,000 agents.
//
// Demonstrates the headline result of the paper: with full sampling (h = n)
// and constant noise, the Source Filter protocol reaches consensus on the
// source's opinion in O(log n) rounds — despite every message being flipped
// with probability 20%.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "noisypull/noisypull.hpp"

int main() {
  using namespace noisypull;

  // A population of 10,000 agents; one of them (a "source") knows the truth
  // and prefers opinion 1.
  const PopulationConfig pop{.n = 10'000, .s1 = 1, .s0 = 0};

  // Every observation is flipped with probability δ = 0.2 (uniform noise).
  const double delta = 0.2;
  const NoiseMatrix noise = NoiseMatrix::uniform(2, delta);

  // The Source Filter protocol, tuned by Theorem 4's schedule for h = n.
  SourceFilter protocol(pop, Holdings{/*h=*/pop.n}, Delta{delta},
                        C1{/*c1=*/2.0});
  const auto& schedule = protocol.schedule();
  std::printf("population n = %llu, one source, noise delta = %.2f\n",
              static_cast<unsigned long long>(pop.n), delta);
  std::printf("schedule: 2 listening phases x %llu rounds, %llu boosting "
              "sub-phases, %llu rounds total\n",
              static_cast<unsigned long long>(schedule.phase_rounds),
              static_cast<unsigned long long>(schedule.num_subphases),
              static_cast<unsigned long long>(schedule.total_rounds()));

  // Run the noisy PULL(n) dynamics.  The aggregate engine draws each agent's
  // per-round observation counts exactly, so h = n is cheap.
  AggregateEngine engine;
  Rng rng(/*seed=*/2024);
  const RunResult result =
      run(protocol, engine, noise, pop.correct_opinion(),
          RunConfig{.h = pop.n, .record_trajectory = true}, rng);

  std::printf("\nround | agents holding the correct opinion\n");
  for (std::size_t t = 0; t < result.trajectory.size(); ++t) {
    if (t % 5 == 0 || t + 1 == result.trajectory.size()) {
      std::printf("%5zu | %llu\n", t,
                  static_cast<unsigned long long>(result.trajectory[t]));
    }
  }

  if (result.all_correct_at_end) {
    std::printf("\nconsensus on the correct opinion after %llu rounds "
                "(first all-correct round: %llu)\n",
                static_cast<unsigned long long>(result.rounds_run),
                static_cast<unsigned long long>(result.first_all_correct));
  } else {
    std::printf("\ndid not converge (%llu/%llu correct)\n",
                static_cast<unsigned long long>(result.correct_at_end),
                static_cast<unsigned long long>(pop.n));
  }
  return result.all_correct_at_end ? 0 : 1;
}
