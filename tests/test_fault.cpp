#include "noisypull/fault/faulty_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/core/ssf.hpp"
#include "noisypull/sim/churn.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

// Fixed displays; records every delivered observation batch and the number
// of update calls per agent (the fault layer manipulates exactly those).
class RecordingProtocol : public PullProtocol {
 public:
  RecordingProtocol(std::vector<Symbol> displays, std::size_t alphabet)
      : displays_(std::move(displays)),
        alphabet_(alphabet),
        last_obs_(displays_.size(), SymbolCounts(alphabet)),
        updates_(displays_.size(), 0) {}

  std::size_t alphabet_size() const override { return alphabet_; }
  std::uint64_t num_agents() const override { return displays_.size(); }
  Symbol display(std::uint64_t agent, std::uint64_t) const override {
    return displays_[agent];
  }
  void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
              Rng&) override {
    last_obs_[agent] = obs;
    ++updates_[agent];
  }
  Opinion opinion(std::uint64_t) const override { return 0; }

  const SymbolCounts& last_obs(std::uint64_t agent) const {
    return last_obs_[agent];
  }
  std::uint64_t updates(std::uint64_t agent) const { return updates_[agent]; }

 private:
  std::vector<Symbol> displays_;
  std::size_t alphabet_;
  std::vector<SymbolCounts> last_obs_;
  std::vector<std::uint64_t> updates_;
};

std::vector<Symbol> half_and_half(std::uint64_t n) {
  std::vector<Symbol> d(n);
  for (std::uint64_t i = 0; i < n; ++i) d[i] = i < n / 2 ? 0 : 1;
  return d;
}

std::array<double, 9> binomial_pmf_9(double p) {
  std::array<double, 9> pmf{};
  for (std::uint64_t k = 0; k <= 8; ++k) {
    double c = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(8 - j) / static_cast<double>(j + 1);
    }
    pmf[k] = c * std::pow(p, static_cast<double>(k)) *
             std::pow(1 - p, static_cast<double>(8 - k));
  }
  return pmf;
}

// --- Identity: an all-zero plan is a bit-for-bit transparent wrapper. ----

TEST(FaultyEngine, ZeroPlanIsBitForBitIdentity) {
  const auto noise = NoiseMatrix::uniform(4, 0.1);
  const PopulationConfig pop{.n = 50, .s1 = 2, .s0 = 1};

  auto run_ssf = [&](bool wrapped, std::uint64_t seed) {
    SelfStabilizingSourceFilter ssf(pop, Holdings{/*h=*/16},
                                    Delta{/*delta=*/0.1});
    AggregateEngine inner;
    FaultyEngine faulty(inner, FaultPlan{});
    Engine& engine = wrapped ? static_cast<Engine&>(faulty)
                             : static_cast<Engine&>(inner);
    Rng rng(seed);
    for (std::uint64_t t = 0; t < 40; ++t) {
      engine.step(ssf, noise, Holdings{16}, t, rng);
    }
    std::vector<Opinion> state;
    for (std::uint64_t i = 0; i < pop.n; ++i) {
      state.push_back(ssf.opinion(i));
      state.push_back(ssf.weak_opinion(i));
    }
    return std::make_pair(state, rng.state());
  };

  const auto bare = run_ssf(false, 77);
  const auto wrapped = run_ssf(true, 77);
  EXPECT_EQ(bare.first, wrapped.first);
  // Same final rng state: the fault layer consumed zero run randomness.
  EXPECT_EQ(bare.second, wrapped.second);
}

TEST(FaultyEngine, ZeroPlanIdentityHoldsForExactEngine) {
  const auto noise = NoiseMatrix::uniform(2, 0.2);
  auto trace = [&](bool wrapped) {
    RecordingProtocol protocol(half_and_half(20), 2);
    ExactEngine inner;
    FaultyEngine faulty(inner, FaultPlan{});
    Engine& engine = wrapped ? static_cast<Engine&>(faulty)
                             : static_cast<Engine&>(inner);
    Rng rng(5);
    std::vector<std::uint64_t> out;
    for (std::uint64_t t = 0; t < 10; ++t) {
      engine.step(protocol, noise, Holdings{9}, t, rng);
      for (std::uint64_t i = 0; i < 20; ++i) {
        out.push_back(protocol.last_obs(i)[1]);
      }
    }
    return out;
  };
  EXPECT_EQ(trace(false), trace(true));
}

// --- Cross-engine fault equivalence (same seed, same FaultPlan): Exact ---
// --- and Aggregate must agree statistically, extending the pattern of  ---
// --- tests/test_engines.cpp.                                           ---

class FaultedEngineKind : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<Engine> make_inner() const {
    if (GetParam()) return std::make_unique<AggregateEngine>();
    return std::make_unique<ExactEngine>();
  }
};

TEST_P(FaultedEngineKind, DropThinnedTotalsAreBinomial) {
  // c = (4, 2) displays, δ = 0.25, h = 8, p_drop = 0.25: the delivered
  // batch size is Binomial(8, 0.75) and the delivered count of 1s is
  // Binomial(8, 0.75 · 5/12) regardless of the engine.
  std::vector<Symbol> displays = {0, 0, 0, 0, 1, 1};
  const auto noise = NoiseMatrix::uniform(2, 0.25);
  FaultPlan plan;
  plan.seed = 99;
  plan.drop.p = 0.25;

  RecordingProtocol protocol(displays, 2);
  auto inner = make_inner();
  FaultyEngine engine(*inner, plan);
  Rng rng(GetParam() ? 100 : 200);

  std::array<std::uint64_t, 9> total_hist{};
  std::array<std::uint64_t, 9> ones_hist{};
  for (int t = 0; t < 30000; ++t) {
    engine.step(protocol, noise, Holdings{8}, t, rng);
    ++total_hist[protocol.last_obs(0).total()];
    ++ones_hist[protocol.last_obs(0)[1]];
  }
  EXPECT_LT(chi_square_statistic(total_hist, binomial_pmf_9(0.75)),
            chi_square_critical_999(8));
  EXPECT_LT(chi_square_statistic(ones_hist, binomial_pmf_9(0.75 * 5.0 / 12.0)),
            chi_square_critical_999(8));
  EXPECT_GT(engine.stats().dropped_observations, 0u);
}

TEST_P(FaultedEngineKind, ByzantineDisplaysSkewTheObservationLaw) {
  // Half the agents are Byzantine (always displaying 1) while honest agents
  // display 0; noiseless channel, so P(observe 1) = 1/2 for every engine.
  RecordingProtocol protocol(std::vector<Symbol>(10, 0), 2);
  FaultPlan plan;
  plan.byzantine.fraction = 0.5;
  plan.byzantine.wrong_symbol = 1;

  auto inner = make_inner();
  FaultyEngine engine(*inner, plan);
  Rng rng(GetParam() ? 31 : 32);
  const auto noise = NoiseMatrix::noiseless(2);

  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 400; ++t) {
    engine.step(protocol, noise, Holdings{20}, t, rng);
    for (std::uint64_t i = 0; i < 10; ++i) {
      totals[0] += protocol.last_obs(i)[0];
      totals[1] += protocol.last_obs(i)[1];
    }
  }
  const std::array<double, 2> probs = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
  EXPECT_EQ(engine.stats().byzantine_agents, 5u);
  EXPECT_TRUE(engine.is_byzantine(9));
  EXPECT_FALSE(engine.is_byzantine(4));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, FaultedEngineKind, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Aggregate" : "Exact";
                         });

// --- Byzantine strategies. ----------------------------------------------

TEST(FaultyEngine, FlipFlopAlternatesByRoundParity) {
  RecordingProtocol protocol(std::vector<Symbol>(6, 0), 2);
  FaultPlan plan;
  plan.byzantine.fraction = 1.0;
  plan.byzantine.strategy = ByzantineStrategy::FlipFlop;
  plan.byzantine.wrong_symbol = 1;
  plan.byzantine.honest_symbol = 0;

  ExactEngine inner;
  FaultyEngine engine(inner, plan);
  const auto noise = NoiseMatrix::noiseless(2);
  Rng rng(8);
  for (std::uint64_t t = 0; t < 6; ++t) {
    engine.step(protocol, noise, Holdings{16}, t, rng);
    // All agents are Byzantine: even rounds expose only 1s, odd only 0s.
    const std::uint64_t expect_ones = t % 2 == 0 ? 16u : 0u;
    for (std::uint64_t i = 0; i < 6; ++i) {
      EXPECT_EQ(protocol.last_obs(i)[1], expect_ones) << "round " << t;
    }
  }
}

TEST(FaultyEngine, MimicSourceForgesTheSourceTag) {
  // With correct opinion 1, for_ssf's mimic symbol is (1,0) = 2: a fake
  // source with the wrong preference.  Noiseless, all-Byzantine: every
  // observation carries the forged tag.
  FaultPlan plan = FaultPlan::for_ssf(/*correct=*/1);
  plan.byzantine.fraction = 1.0;
  plan.byzantine.strategy = ByzantineStrategy::MimicSource;
  EXPECT_EQ(plan.byzantine.mimic_symbol, Symbol{2});

  RecordingProtocol protocol(std::vector<Symbol>(5, 1), 4);
  ExactEngine inner;
  FaultyEngine engine(inner, plan);
  Rng rng(4);
  engine.step(protocol, NoiseMatrix::noiseless(4), Holdings{12}, 0, rng);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(protocol.last_obs(i)[2], 12u);
  }
}

// --- Stalls. -------------------------------------------------------------

TEST(FaultyEngine, CertainCrashesSuppressEligibleUpdates) {
  RecordingProtocol protocol(half_and_half(6), 2);
  FaultPlan plan;
  plan.first_eligible = 2;
  plan.stall.crash_rate = 1.0;
  plan.stall.min_rounds = 3;
  plan.stall.max_rounds = 3;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  Rng rng(21);
  const std::uint64_t kRounds = 12;
  for (std::uint64_t t = 0; t < kRounds; ++t) {
    engine.step(protocol, noise, Holdings{4}, t, rng);
  }
  // Immune agents update every round; eligible agents re-crash on every
  // wake-up round (crash_rate = 1) and never get an update through.
  EXPECT_EQ(protocol.updates(0), kRounds);
  EXPECT_EQ(protocol.updates(1), kRounds);
  for (std::uint64_t i = 2; i < 6; ++i) {
    EXPECT_EQ(protocol.updates(i), 0u);
    EXPECT_TRUE(engine.is_stalled(i));
  }
  EXPECT_EQ(engine.stats().stalled_updates, 4 * kRounds);
}

TEST(FaultyEngine, BlackoutStallsExactWindow) {
  RecordingProtocol protocol(half_and_half(4), 2);
  FaultPlan plan;
  plan.stall.blackout_fraction = 1.0;
  plan.stall.blackout_start = 2;
  plan.stall.blackout_rounds = 3;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  Rng rng(22);
  for (std::uint64_t t = 0; t < 8; ++t) {
    engine.step(protocol, noise, Holdings{4}, t, rng);
  }
  // Rounds 0-1 and 5-7 update; rounds 2-4 are blacked out.
  EXPECT_EQ(protocol.updates(0), 5u);
  EXPECT_EQ(engine.stats().stalled_updates, 4 * 3u);
}

// --- Noise bursts. -------------------------------------------------------

TEST(FaultyEngine, BurstReplacesTheChannelWithSpikedUniformNoise) {
  // All agents display 1 over a noiseless channel, but every round bursts
  // at δ = 0.5 (full scramble for a binary alphabet): observations are
  // uniform — the decorator swapped the channel.
  RecordingProtocol protocol(std::vector<Symbol>(10, 1), 2);
  FaultPlan plan;
  plan.burst.rate = 1.0;
  plan.burst.rounds = 1;
  plan.burst.delta = 0.5;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  Rng rng(13);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 300; ++t) {
    engine.step(protocol, NoiseMatrix::noiseless(2), Holdings{20}, t, rng);
    for (std::uint64_t i = 0; i < 10; ++i) {
      totals[0] += protocol.last_obs(i)[0];
      totals[1] += protocol.last_obs(i)[1];
    }
  }
  const std::array<double, 2> probs = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
  EXPECT_EQ(engine.stats().burst_rounds, 300u);
}

TEST(FaultyEngine, RareBurstsCoverRoughlyRateFractionOfRounds) {
  RecordingProtocol protocol(half_and_half(4), 2);
  FaultPlan plan;
  plan.seed = 5;
  plan.burst.rate = 0.1;
  plan.burst.rounds = 2;
  plan.burst.delta = 0.4;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  Rng rng(14);
  const std::uint64_t kRounds = 3000;
  for (std::uint64_t t = 0; t < kRounds; ++t) {
    engine.step(protocol, NoiseMatrix::uniform(2, 0.05), Holdings{4}, t, rng);
  }
  // Expected burst coverage ≈ rate·duration/(1 + rate·duration) ≈ 0.17;
  // loose sanity bounds only.
  const double coverage =
      static_cast<double>(engine.stats().burst_rounds) /
      static_cast<double>(kRounds);
  EXPECT_GT(coverage, 0.08);
  EXPECT_LT(coverage, 0.35);
}

// --- Determinism and validation. ----------------------------------------

TEST(FaultyEngine, FaultScheduleIsDeterministicGivenPlanSeed) {
  auto trace = [&](std::uint64_t plan_seed) {
    RecordingProtocol protocol(half_and_half(12), 2);
    FaultPlan plan;
    plan.seed = plan_seed;
    plan.drop.p = 0.3;
    plan.stall.crash_rate = 0.1;
    ExactEngine inner;
    FaultyEngine engine(inner, plan);
    Rng rng(7);
    std::vector<std::uint64_t> out;
    for (std::uint64_t t = 0; t < 20; ++t) {
      engine.step(protocol, NoiseMatrix::uniform(2, 0.1), Holdings{6}, t, rng);
      for (std::uint64_t i = 0; i < 12; ++i) {
        out.push_back(protocol.last_obs(i).total());
      }
    }
    return out;
  };
  EXPECT_EQ(trace(42), trace(42));
  EXPECT_NE(trace(42), trace(43));
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeConfigs) {
  RecordingProtocol protocol(half_and_half(4), 2);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  Rng rng(1);

  auto step_with = [&](FaultPlan plan) {
    AggregateEngine inner;
    FaultyEngine engine(inner, plan);
    engine.step(protocol, noise, Holdings{4}, 0, rng);
  };

  FaultPlan bad_drop;
  bad_drop.drop.p = 1.5;
  EXPECT_THROW(step_with(bad_drop), std::invalid_argument);

  FaultPlan bad_symbol;
  bad_symbol.byzantine.fraction = 0.5;
  bad_symbol.byzantine.wrong_symbol = 7;  // alphabet is 2
  EXPECT_THROW(step_with(bad_symbol), std::invalid_argument);

  FaultPlan bad_stall;
  bad_stall.stall.crash_rate = 0.1;
  bad_stall.stall.min_rounds = 5;
  bad_stall.stall.max_rounds = 2;
  EXPECT_THROW(step_with(bad_stall), std::invalid_argument);

  FaultPlan bad_burst;
  bad_burst.burst.rate = 0.5;
  bad_burst.burst.delta = 0.9;  // > 1/|alphabet|
  EXPECT_THROW(step_with(bad_burst), std::invalid_argument);
}

// --- SSF partial-sample tolerance (stale flush). -------------------------

TEST(SsfStaleFlush, FlushesStarvedMemoryAfterTimeout) {
  const PopulationConfig pop{.n = 4, .s1 = 1, .s0 = 0};
  auto ssf = SelfStabilizingSourceFilter::with_memory_budget(
      pop, Holdings{/*h=*/8}, MemoryBudget{/*m=*/100});
  ssf.set_stale_flush(3);
  Rng rng(3);
  SymbolCounts partial(4);
  partial[3] = 1;  // one source-tagged 1 per round — far below m = 100
  for (std::uint64_t round = 0; round < 3; ++round) {
    ssf.update(3, round, partial, rng);
  }
  EXPECT_EQ(ssf.memory(3).total(), 3u);  // not yet flushed
  ssf.update(3, 3, partial, rng);        // round 3 >= last_flush(0) + 3
  EXPECT_EQ(ssf.memory(3).total(), 0u);  // flushed from partial memory
  EXPECT_EQ(ssf.weak_opinion(3), Opinion{1});
  EXPECT_EQ(ssf.opinion(3), Opinion{1});
}

TEST(SsfStaleFlush, DisabledByDefaultKeepsAlgorithmTwoSemantics) {
  const PopulationConfig pop{.n = 4, .s1 = 1, .s0 = 0};
  auto ssf = SelfStabilizingSourceFilter::with_memory_budget(
      pop, Holdings{/*h=*/8}, MemoryBudget{/*m=*/100});
  Rng rng(3);
  SymbolCounts partial(4);
  partial[3] = 1;
  for (std::uint64_t round = 0; round < 50; ++round) {
    ssf.update(3, round, partial, rng);
  }
  EXPECT_EQ(ssf.memory(3).total(), 50u);  // still accumulating toward m
  EXPECT_EQ(ssf.opinion(3), Opinion{0});  // never updated
}

// --- Composition with the steady-state runner and churn. -----------------

TEST(FaultyEngine, SteadyStateUnderDropsStaysNearConsensus) {
  // Mild omission (p = 0.3) only stretches SSF's memory-fill time; the
  // steady-state correct fraction must stay essentially 1.
  const PopulationConfig pop{.n = 400, .s1 = 2, .s0 = 0};
  SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{/*delta=*/0.05});
  const auto noise = NoiseMatrix::uniform(4, 0.05);

  FaultPlan plan;
  plan.seed = 11;
  plan.first_eligible = pop.num_sources();
  plan.drop.p = 0.3;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  Rng rng(55);
  const auto r = measure_steady_state(
      ssf, engine, noise, pop.correct_opinion(), Holdings{pop.n},
      /*warmup=*/3 * ssf.convergence_deadline(), /*measure=*/30, rng);
  EXPECT_GT(r.mean_correct_fraction, 0.95);
  EXPECT_GT(engine.stats().dropped_observations, 0u);
}

TEST(FaultyEngine, ComposesWithChurnRunner) {
  // Runtime faults and churn resets are orthogonal layers: a FaultyEngine
  // drops straight into run_with_churn.
  const PopulationConfig pop{.n = 300, .s1 = 2, .s0 = 0};
  SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{/*delta=*/0.05});
  const auto noise = NoiseMatrix::uniform(4, 0.05);

  FaultPlan plan;
  plan.seed = 7;
  plan.first_eligible = pop.num_sources();
  plan.drop.p = 0.2;

  AggregateEngine inner;
  FaultyEngine engine(inner, plan);
  Rng rng(66);
  const auto r = run_with_churn(
      ssf, engine, noise, pop.correct_opinion(), Holdings{pop.n},
      /*warmup=*/3 * ssf.convergence_deadline(), /*measure=*/25,
      ChurnConfig{.rate = 0.005, .policy = CorruptionPolicy::WrongConsensus},
      rng);
  EXPECT_GT(r.resets, 0u);
  EXPECT_GT(r.mean_correct_fraction, 0.8);
  EXPECT_GT(engine.stats().dropped_observations, 0u);
}

TEST(SteadyState, HookRunsOncePerRound) {
  const PopulationConfig pop{.n = 100, .s1 = 1, .s0 = 0};
  SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{/*delta=*/0.05});
  const auto noise = NoiseMatrix::uniform(4, 0.05);
  AggregateEngine engine;
  Rng rng(9);
  std::uint64_t hook_calls = 0;
  const auto r = measure_steady_state(
      ssf, engine, noise, pop.correct_opinion(), Holdings{pop.n}, /*warmup=*/10,
      /*measure=*/5, rng,
      [&](std::uint64_t, Rng&) { ++hook_calls; });
  EXPECT_EQ(hook_calls, 15u);
  EXPECT_EQ(r.rounds_run, 15u);
}

}  // namespace
}  // namespace noisypull
