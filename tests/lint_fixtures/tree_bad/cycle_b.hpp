// lint-path: src/noisypull/core/cycle_b_fixture.hpp
// Fixture: the other half of the include cycle.
#pragma once

#include "noisypull/core/cycle_a_fixture.hpp"  // expect: layering

inline int fixture_cycle_b() { return 0; }
