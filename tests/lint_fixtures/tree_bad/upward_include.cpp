// lint-path: src/noisypull/model/upward_fixture.cpp
// Fixture: a model/ (layer 1) file reaching up into analysis/
// (layer 3), plus the external-consumer umbrella from inside the
// library — both are layering findings.
#include "noisypull/analysis/stats.hpp"  // expect: layering
#include "noisypull/noisypull.hpp"       // expect: layering

int fixture_upward_include() { return 1; }
