// lint-path: src/noisypull/core/cycle_a_fixture.hpp
// Fixture: half of a two-file include cycle inside one layer; the
// tree pass must see both files in the same include graph to catch it.
#pragma once

#include "noisypull/core/cycle_b_fixture.hpp"  // expect: layering

inline int fixture_cycle_a() { return 0; }
