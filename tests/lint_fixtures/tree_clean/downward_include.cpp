// lint-path: src/noisypull/analysis/downward_fixture.cpp
// Fixture: analysis/ (layer 3) may include its own layer and every
// layer below it; none of these edges may fire.
#include "noisypull/core/acyclic_base_fixture.hpp"
#include "noisypull/model/fixture_engine.hpp"
#include "noisypull/theory/fixture_bounds.hpp"

int fixture_downward_include() { return 3; }
