// lint-path: src/noisypull/core/acyclic_base_fixture.hpp
// Fixture: the target of a legal same-layer include.
#pragma once

inline int fixture_acyclic_base() { return 2; }
