// lint-path: src/noisypull/core/acyclic_user_fixture.hpp
// Fixture: a same-layer, acyclic include — no cycle, no upward edge.
#pragma once

#include "noisypull/core/acyclic_base_fixture.hpp"

inline int fixture_acyclic_user() { return fixture_acyclic_base(); }
