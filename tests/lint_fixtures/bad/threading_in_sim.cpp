// lint-path: src/noisypull/sim/adhoc_threads_fixture.cpp
// Fixture: ad-hoc threading primitives on a simulation path.  Parallelism
// must route through Engine::set_threads and the shared ThreadPool so the
// counter-substream kernel stays the only concurrency surface.
#include <thread>              // expect: threading-header
#include <atomic>              // expect: threading-header
#include <mutex>               // expect: threading-header
#include <condition_variable>  // expect: threading-header

int fixture_adhoc_threads() {
  return static_cast<int>(std::thread::hardware_concurrency());
}
