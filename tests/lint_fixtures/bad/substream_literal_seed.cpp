// lint-path: src/noisypull/sim/bad_substream_fixture.cpp
// Fixture: raw integer-literal Rng arguments escaping the
// counter-substream discipline — the seed position, the stream-id
// position, and brace initialization must all fire.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
};

void fixture_bad_substreams(std::uint64_t seed) {
  Rng magic(42);        // expect: substream-discipline
  Rng stream(seed, 7);  // expect: substream-discipline
  Rng braced{31337};    // expect: substream-discipline
}
