// lint-path: src/noisypull/core/iostream_header_fixture.hpp
// Fixture: a core library header dragging in <iostream>.
#pragma once

#include <iostream>  // expect: iostream-in-header

inline void fixture_iostream_header() { std::cout << "hi\n"; }
