// lint-path: src/noisypull/analysis/bad_float_fixture.cpp
// Fixture: single-precision types and literals in a probability path.
double fixture_bad_float(double p) {
  float q = 0.25f;  // expect: float-type
  return p * static_cast<double>(q) + 1.5e0F;  // expect: float-type
}
