// lint-path: src/noisypull/sim/bad_rng_fixture.cpp
// Fixture: every nondeterministic randomness source the linter must catch.
#include <cstdlib>
#include <ctime>
#include <random>

int fixture_bad_rng() {
  std::srand(42);                       // expect: nondeterministic-rng
  int x = std::rand();                  // expect: nondeterministic-rng
  std::random_device rd;                // expect: nondeterministic-rng
  std::mt19937 gen;                     // expect: nondeterministic-rng
  std::mt19937_64 gen64{};              // expect: nondeterministic-rng
  unsigned long t =
      static_cast<unsigned long>(time(nullptr));  // expect: nondeterministic-rng
  return x + static_cast<int>(rd()) + static_cast<int>(gen()) +
         static_cast<int>(gen64()) + static_cast<int>(t);
}
