// lint-path: src/noisypull/core/missing_pragma_fixture.hpp
// expect-anywhere: pragma-once
// Fixture: a header whose first directive is an include, not #pragma once.
#include <cstdint>

inline std::uint64_t fixture_missing_pragma() { return 7; }
