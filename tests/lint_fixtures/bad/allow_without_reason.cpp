// lint-path: src/noisypull/analysis/bad_allow_fixture.cpp
// Fixture: a suppression with no ` -- why` justification.  The
// suppressed rule stays silent (the suppression works) but the naked
// allow is itself the finding.
#include <unordered_set>

int fixture_naked_allow() {
  // nplint: allow-next-line(unordered-container)
  std::unordered_set<int> s;  // expect: allow-without-reason
  return static_cast<int>(s.size());
}
