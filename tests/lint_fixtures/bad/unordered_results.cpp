// lint-path: src/noisypull/analysis/bad_unordered_fixture.cpp
// Fixture: hash-ordered containers in a deterministic simulation path.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::uint64_t fixture_bad_unordered() {
  std::unordered_map<std::uint64_t, double> totals;  // expect: unordered-container
  std::unordered_set<std::uint64_t> seen;            // expect: unordered-container
  totals[1] = 0.5;
  seen.insert(1);
  std::uint64_t acc = 0;
  for (const auto& kv : totals) acc += kv.first;  // hash-order iteration
  return acc + seen.size();
}
