// lint-path: src/noisypull/analysis/raw_writer_fixture.cpp
// Fixture: durable writes bypassing the crash-safe common/atomic_io seam.
// A raw std::ofstream tears on SIGKILL and a bare rename() skips the
// bounded-retry path, so both must fire everywhere except the seam itself.
#include <cstdio>
#include <filesystem>
#include <fstream>

void fixture_raw_writer(const std::filesystem::path& p) {
  std::ofstream out(p);  // expect: raw-file-io
  out << "torn on crash\n";
  std::rename("a.tmp", "a.csv");                   // expect: raw-file-io
  std::filesystem::rename("b.tmp", "b.csv");       // expect: raw-file-io
}
