// lint-path: src/noisypull/core/bad_assert_fixture.cpp
// Fixture: bare assert() and the <cassert> include behind it.
#include <cassert>  // expect: bare-assert

int fixture_bare_assert(int x) {
  assert(x > 0);  // expect: bare-assert
  return x - 1;
}
