// lint-path: src/noisypull/core/clean_header_fixture.hpp
// Fixture: the blessed header shape — #pragma once first, stream interfaces
// via <ostream>, and the project assert macro spelled out.
#pragma once

#include <cstdint>
#include <ostream>

inline void fixture_clean_header(std::ostream& os, std::uint64_t v) {
  os << v;
}
