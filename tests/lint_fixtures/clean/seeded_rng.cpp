// lint-path: src/noisypull/sim/clean_rng_fixture.cpp
// Fixture: the blessed patterns — seeded substreams, seeded mt19937 where a
// <random> distribution is genuinely needed, and strings/comments that merely
// mention std::rand, time(), or random_device (must not fire).
#include <cstdint>
#include <random>
#include <string>

std::uint64_t fixture_clean_rng(std::uint64_t seed) {
  std::mt19937 seeded(static_cast<unsigned>(seed));  // explicit seed: allowed
  const std::string doc = "never call std::rand or time() in sim code";
  return seeded() + doc.size();
}
