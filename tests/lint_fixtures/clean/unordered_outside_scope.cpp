// lint-path: tools/fixture_unordered_tool.cpp
// Fixture: hash containers in helper tools sit outside the rule's
// src/bench scope — must stay silent without any suppression.
#include <unordered_set>

int fixture_tool_unordered() {
  std::unordered_set<int> ids;
  ids.insert(1);
  return static_cast<int>(ids.size());
}
