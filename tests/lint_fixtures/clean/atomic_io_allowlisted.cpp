// lint-path: src/noisypull/common/atomic_io.cpp
// Fixture: the crash-safe seam itself is the one place allowed to touch
// std::ofstream and rename() — nothing may fire here.
#include <filesystem>
#include <fstream>

void fixture_seam_writer(const std::filesystem::path& p) {
  std::ofstream out(p, std::ios::binary);
  out << "payload";
  std::filesystem::rename(p, p);
}
