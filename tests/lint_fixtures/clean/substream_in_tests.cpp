// lint-path: tests/fixture_substream_scope.cpp
// Fixture: test code seeds Rng with plain literals freely — the
// substream-discipline scope is src/bench/tools only.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed);
};

void fixture_test_scope() { Rng rng(12345); }
