// lint-path: src/noisypull/analysis/clean_iostream_source_fixture.cpp
// Fixture: <iostream> in a translation unit (not a header) is fine —
// the rule gates library *headers* only.
#include <iostream>

void fixture_iostream_source() { std::cout << "table output\n"; }
