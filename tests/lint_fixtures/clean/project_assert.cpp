// lint-path: src/noisypull/core/clean_assert_fixture.cpp
// Fixture: project macros and gtest-style ASSERT_* identifiers must not
// fire the bare-assert rule; static_assert is a distinct keyword.
static_assert(sizeof(int) >= 4, "ILP32 or wider");

#define FIXTURE_ASSERT_EQ(a, b) ((a) == (b) ? 0 : 1)

int fixture_project_assert(int x) {
  // NOISYPULL_ASSERT(x > 0) would be the real spelling; any macro whose name
  // merely contains "assert" is fine.
  return FIXTURE_ASSERT_EQ(x, 3);
}
