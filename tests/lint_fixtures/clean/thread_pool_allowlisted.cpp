// lint-path: src/noisypull/common/thread_pool.cpp
// Fixture: the thread pool implementation itself is allowlisted for the
// threading headers it exists to encapsulate — the scoped allow must keep
// the rule silent here (no expectations in this file).
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

int fixture_pool_lanes() {
  return static_cast<int>(std::thread::hardware_concurrency());
}
