// lint-path: src/noisypull/analysis/clean_double_fixture.cpp
// Fixture: double-only arithmetic; hex literals ending in F and identifiers
// containing "float" as a substring must not fire.
constexpr unsigned kMaskF = 0x1F;
double fixture_clean_double(double p, bool afloat_flag) {
  const double q = 0.25;
  return afloat_flag ? p * q : static_cast<double>(kMaskF) * 1.5e0;
}
