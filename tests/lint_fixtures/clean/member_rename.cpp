// lint-path: src/noisypull/analysis/clean_member_rename_fixture.cpp
// Fixture: a member function *call* spelled rename is not the
// libc/filesystem rename (the rule keys on non-member calls), and
// identifiers merely containing "rename" as a substring are not calls at
// all.  The declaration itself needs a justified suppression — the
// tokenizer cannot tell a member declaration from a free call.
struct FixtureJournal {
  // nplint: allow-next-line(raw-file-io) -- member decl, not libc
  void rename(const char*) {}
  FixtureJournal* self() { return this; }
};

void fixture_member_rename() {
  FixtureJournal journal;
  journal.rename("member access, not the libc call");
  journal.self()->rename("still member access");
  const bool renamed = true;  // substring of an identifier, not a call
  (void)renamed;
}
