// lint-path: src/noisypull/sim/clean_substream_fixture.cpp
// Fixture: the blessed Rng derivations — named salt constants,
// 2r / 2r+1 substream splits, and derived expressions; none may fire.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);
};

inline constexpr std::uint64_t kFixtureSalt = 0x9E3779B97F4A7C15ull;

void fixture_clean_substreams(std::uint64_t seed, std::uint64_t rep) {
  Rng init(seed, 2 * rep);
  Rng run(seed, 2 * rep + 1);
  Rng salted(seed ^ kFixtureSalt, rep);
  Rng named(kFixtureSalt);
}
