// lint-path: src/noisypull/analysis/clean_ordered_fixture.cpp
// Fixture: ordered containers in simulation paths, a justified suppression,
// and unordered containers outside the deterministic tree (helper tools) —
// none may fire.
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>

std::uint64_t fixture_clean_ordered() {
  std::map<std::uint64_t, double> totals;
  std::set<std::uint64_t> seen;
  // Membership-only probe, never iterated — deterministic by construction.
  // nplint: allow-next-line(unordered-container) -- never iterated
  std::unordered_set<std::uint64_t> probe;
  totals[1] = 0.5;
  seen.insert(1);
  probe.insert(1);
  std::uint64_t acc = 0;
  for (const auto& kv : totals) acc += kv.first;
  return acc + seen.size() + probe.size();
}
