#include "noisypull/core/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

TEST(SfSchedule, PhaseRoundsAreCeilOfMOverH) {
  const auto s = make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{7},
                                         Delta{0.1}, MemoryBudget{100});
  EXPECT_EQ(s.m, 100u);
  EXPECT_EQ(s.phase_rounds, 15u);  // ceil(100/7)
  EXPECT_EQ(s.final_rounds, s.phase_rounds);
  EXPECT_EQ(s.boosting_start(), 30u);
}

TEST(SfSchedule, SubphaseCountIsTenLogN) {
  const auto s = make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{1},
                                         Delta{0.1}, MemoryBudget{10});
  EXPECT_EQ(s.num_subphases,
            static_cast<std::uint64_t>(std::ceil(10.0 * std::log(1000.0))));
}

TEST(SfSchedule, SubphaseMessageBudgetMatchesFormula) {
  const double delta = 0.1;
  const auto s = make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{1},
                                         Delta{delta}, MemoryBudget{10});
  const double want = 100.0 * std::exp(1.0) / ((1 - 2 * delta) * (1 - 2 * delta));
  EXPECT_EQ(s.w, static_cast<std::uint64_t>(std::ceil(want)));
  EXPECT_EQ(s.subphase_rounds, s.w);  // h = 1
}

TEST(SfSchedule, TotalRoundsAddsUp) {
  const auto s = make_sf_schedule_with_m(pop(500, 2, 1), Holdings{3},
                                         Delta{0.2}, MemoryBudget{50});
  EXPECT_EQ(s.total_rounds(), 2 * s.phase_rounds +
                                  s.num_subphases * s.subphase_rounds +
                                  s.final_rounds);
}

TEST(SfSchedule, Equation19TermsScaleAsExpected) {
  // Doubling n roughly doubles m (noise term dominates at δ = 0.3, s = 1).
  const double delta = 0.3;
  const auto s1 = make_sf_schedule(pop(10000, 1, 0), Holdings{1}, Delta{delta},
                                   C1{1.0});
  const auto s2 = make_sf_schedule(pop(20000, 1, 0), Holdings{1}, Delta{delta},
                                   C1{1.0});
  const double ratio =
      static_cast<double>(s2.m) / static_cast<double>(s1.m);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.4);  // 2·(log 2n / log n), a bit above 2
}

TEST(SfSchedule, LargerBiasShrinksBudget) {
  const auto small_bias = make_sf_schedule(pop(10000, 1, 0), Holdings{1},
                                           Delta{0.3}, C1{1.0});
  const auto large_bias = make_sf_schedule(pop(10000, 20, 0), Holdings{1},
                                           Delta{0.3}, C1{1.0});
  EXPECT_LT(large_bias.m, small_bias.m);
}

TEST(SfSchedule, HigherNoiseGrowsBudget) {
  const auto low = make_sf_schedule(pop(10000, 1, 0), Holdings{1}, Delta{0.1},
                                    C1{1.0});
  const auto high = make_sf_schedule(pop(10000, 1, 0), Holdings{1}, Delta{0.4},
                                     C1{1.0});
  EXPECT_GT(high.m, low.m);
}

TEST(SfSchedule, MinS2NClampKicksInForHugeBias) {
  // With s > √n the noise term divides by n, not s².
  const auto a = make_sf_schedule(pop(10000, 150, 0), Holdings{1}, Delta{0.3},
                                  C1{1.0});
  const auto b = make_sf_schedule(pop(10000, 2000, 0), Holdings{1}, Delta{0.3},
                                  C1{1.0});
  // Both are clamped at min{s²,n} = n for the noise term; b still gets a
  // smaller √n/s and (s0+s1)/s² contribution but a larger source count.
  EXPECT_GT(a.m, 0u);
  EXPECT_GT(b.m, 0u);
}

TEST(SfSchedule, SampleSizeDividesRounds) {
  // The whole point of Theorem 4: rounds scale as m/h.
  const auto h1 = make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{1},
                                          Delta{0.2}, MemoryBudget{1000});
  const auto h10 = make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{10},
                                           Delta{0.2}, MemoryBudget{1000});
  EXPECT_EQ(h1.phase_rounds, 1000u);
  EXPECT_EQ(h10.phase_rounds, 100u);
}

TEST(SfSchedule, Lemma31BoostingShorterThanListening) {
  // With the theoretical constant (c1 large), the boosting phase lasts at
  // most 2⌈m/h⌉ rounds (Lemma 31).
  const double c1 = 5000.0;
  for (std::uint64_t n : {100ULL, 10000ULL}) {
    for (std::uint64_t h : {std::uint64_t{1}, std::uint64_t{16}, n}) {
      for (double delta : {0.0, 0.2, 0.4}) {
        const auto s = make_sf_schedule(pop(n, 1, 0), Holdings{h},
                                        Delta{delta}, C1{c1});
        EXPECT_LE(s.num_subphases * s.subphase_rounds + s.final_rounds,
                  2 * s.phase_rounds)
            << "n=" << n << " h=" << h << " delta=" << delta;
      }
    }
  }
}

TEST(SfSchedule, InputValidation) {
  EXPECT_THROW(make_sf_schedule(pop(1000, 1, 0), Holdings{0}, Delta{0.1}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop(1000, 1, 0), Holdings{1}, Delta{0.5}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop(1000, 1, 0), Holdings{1}, Delta{-0.1}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop(1000, 1, 0), Holdings{1}, Delta{0.1},
                                C1{0.0}),

               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop(1000, 1, 1), Holdings{1}, Delta{0.1}),
               std::invalid_argument);  // bias 0
  EXPECT_THROW(make_sf_schedule_with_m(pop(1000, 1, 0), Holdings{1},
                                       Delta{0.1}, MemoryBudget{0}),

               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop(1, 1, 0), Holdings{1}, Delta{0.1}),
               std::invalid_argument);
}

TEST(SsfBudget, Equation30Formula) {
  const double delta = 0.1;
  const std::uint64_t n = 5000;
  const double want =
      2.0 * (delta * n * std::log(static_cast<double>(n)) /
                 ((1 - 4 * delta) * (1 - 4 * delta)) +
             n);
  EXPECT_EQ(ssf_memory_budget(pop(n, 1, 0), Delta{delta}, C1{2.0}),
            static_cast<std::uint64_t>(std::ceil(want)));
}

TEST(SsfBudget, NoiselessCaseIsLinear) {
  EXPECT_EQ(ssf_memory_budget(pop(4096, 1, 0), Delta{0.0}, C1{1.0}), 4096u);
}

TEST(SsfBudget, InputValidation) {
  EXPECT_THROW(ssf_memory_budget(pop(1000, 1, 0), Delta{0.25}),
               std::invalid_argument);
  EXPECT_THROW(ssf_memory_budget(pop(1000, 1, 0), Delta{-0.1}),
               std::invalid_argument);
  EXPECT_THROW(ssf_memory_budget(pop(1000, 1, 0), Delta{0.1}, C1{-1.0}),
               std::invalid_argument);
}

TEST(StateBits, GrowLogarithmicallyWithBudget) {
  // O(log T + log h): quadrupling m should add ~4 bits (2 counters × 2),
  // never multiply the footprint.
  const auto pop1k = pop(1000, 1, 0);
  const auto small = sf_state_bits(make_sf_schedule_with_m(pop1k, Holdings{1},
                                                           Delta{0.1},
                                                           MemoryBudget{1024}));
  const auto large =
      sf_state_bits(make_sf_schedule_with_m(pop1k, Holdings{1}, Delta{0.1},
                                            MemoryBudget{1024 * 1024}));
  EXPECT_GT(large, small);
  EXPECT_LT(large, small + 50);

  EXPECT_GT(ssf_state_bits(MemoryBudget{1 << 20}, Holdings{4}),
            ssf_state_bits(MemoryBudget{1 << 10}, Holdings{4}));
  EXPECT_LT(ssf_state_bits(MemoryBudget{1 << 20}, Holdings{4}), 120u);
}

}  // namespace
}  // namespace noisypull
