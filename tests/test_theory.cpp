// Numerical validation of the paper's probability toolbox (Section 5.1) and
// bound expressions: the inequalities of Claim 19 and Lemmas 21/22 are
// checked against exact binomial computations over parameter grids.
#include "noisypull/theory/bounds.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "noisypull/core/schedule.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {
namespace {

TEST(BinomialPmf, MatchesHandComputedValues) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 0, 0.25), 27.0 / 64.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 3, 0.25), 1.0 / 64.0, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
}

TEST(BinomialPmf, SumsToOne) {
  for (std::uint64_t n : {1ULL, 7ULL, 100ULL, 1000ULL}) {
    for (double p : {0.01, 0.3, 0.77}) {
      double sum = 0.0;
      for (std::uint64_t k = 0; k <= n; ++k) sum += binomial_pmf(n, k, p);
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(Claim19, HoldsExactly) {
  // P(X = 1) = n·p·(1−p)^(n−1) ≥ n·p/e whenever n·p ≤ 1.
  for (std::uint64_t n : {1ULL, 2ULL, 5ULL, 20ULL, 100ULL, 10000ULL}) {
    for (double frac : {0.1, 0.5, 0.9, 1.0}) {
      const double p = frac / static_cast<double>(n);
      const double exact = binomial_pmf(n, 1, p);
      EXPECT_GE(exact + 1e-15, claim19_lower_bound(n, p))
          << "n=" << n << " np=" << frac;
    }
  }
}

TEST(Lemma21, GIsAValidLowerBound) {
  // P(B ≥ m/2) − P(B < m/2) ≥ g(θ, m), exactly, over a grid.
  for (std::uint64_t m : {1ULL, 2ULL, 3ULL, 5ULL, 10ULL, 41ULL, 100ULL,
                          400ULL}) {
    for (double theta : {0.001, 0.01, 0.05, 0.1, 0.2, 0.4, 0.5}) {
      const double p = 0.5 + theta;
      double above_eq = 0.0, below = 0.0;
      for (std::uint64_t k = 0; k <= m; ++k) {
        const double pmf = binomial_pmf(m, k, p);
        if (2.0 * static_cast<double>(k) >= static_cast<double>(m)) {
          above_eq += pmf;
        } else {
          below += pmf;
        }
      }
      EXPECT_GE(above_eq - below + 1e-12, lemma21_g(theta, m))
          << "m=" << m << " theta=" << theta;
    }
  }
}

TEST(Lemma22, HoldsAgainstExactComputation) {
  for (std::uint64_t m : {1ULL, 2ULL, 5ULL, 17ULL, 64ULL, 333ULL, 1000ULL}) {
    for (double theta : {0.0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.49}) {
      const double exact = rademacher_sum_advantage_exact(theta, m);
      EXPECT_GE(exact + 1e-12, lemma22_lower_bound(theta, m))
          << "m=" << m << " theta=" << theta;
    }
  }
}

TEST(Lemma22, ExactAdvantageMatchesSimulation) {
  // Sanity-check the exact computation itself against Monte Carlo.
  Rng rng(77);
  const std::uint64_t m = 31;
  const double theta = 0.08;
  const int kReps = 200000;
  int above = 0, below = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t b = sample_binomial(rng, m, 0.5 + theta);
    if (2 * b > m) {
      ++above;
    } else if (2 * b < m) {
      ++below;
    }
  }
  const double simulated =
      static_cast<double>(above - below) / static_cast<double>(kReps);
  EXPECT_NEAR(simulated, rademacher_sum_advantage_exact(theta, m), 0.01);
}

TEST(Theorem3, LowerBoundShape) {
  // Halving h doubles the bound; doubling s quarters it; larger alphabet
  // margin raises it.
  const double base = theorem3_lower_bound(AgentCount{10000}, Holdings{4},
                                           Delta{0.2}, SourceCount{1}, 2);
  EXPECT_NEAR(theorem3_lower_bound(AgentCount{10000}, Holdings{2}, Delta{0.2},
                                   SourceCount{1}, 2),
              2 * base, 1e-9);
  EXPECT_NEAR(theorem3_lower_bound(AgentCount{10000}, Holdings{4}, Delta{0.2},
                                   SourceCount{2}, 2),
              base / 4, 1e-9);
  EXPECT_GT(theorem3_lower_bound(AgentCount{10000}, Holdings{4}, Delta{0.2},
                                 SourceCount{1}, 4),
            base);
  // Degenerate channel (delta = 1/|Sigma|) carries no information: vacuous.
  EXPECT_EQ(theorem3_lower_bound(AgentCount{10000}, Holdings{4}, Delta{0.5},
                                 SourceCount{1}, 2),
            0.0);
}

TEST(Theorem4, UpperBoundDominatesLowerBound) {
  // On the shared domain, the Theorem 4 expression is at least the
  // Theorem 3 expression (up to constants, which both omit — the paper's
  // claim is a log-factor gap, so a plain >= holds comfortably here).
  for (std::uint64_t n : {1000ULL, 100000ULL}) {
    for (std::uint64_t h : {1ULL, 32ULL, 1000ULL}) {
      for (double delta : {0.05, 0.2, 0.4}) {
        EXPECT_GE(theorem4_upper_bound(AgentCount{n}, Holdings{h},
                                       Delta{delta}, SourceCount{1},
                                       SourceCount{0}),

                  theorem3_lower_bound(AgentCount{n}, Holdings{h},
                                       Delta{delta}, SourceCount{1}, 2));
      }
    }
  }
}

TEST(Theorem4, MatchesRemarkRegime) {
  // Remark: for delta >= 4/sqrt(n) and s0,s1 <= sqrt(n), the bound is
  // O(n delta log n/(s^2(1-2delta)^2 h) + log n) — i.e., the noise term
  // dominates the sqrt and source terms.
  const std::uint64_t n = 1 << 20;
  const double delta = 0.3;
  const double t = theorem4_upper_bound(AgentCount{n}, Holdings{1},
                                        Delta{delta}, SourceCount{1},
                                        SourceCount{0});
  const double noise_term = static_cast<double>(n) * delta /
                            ((1 - 2 * delta) * (1 - 2 * delta)) *
                            std::log(static_cast<double>(n));
  EXPECT_GT(t, noise_term);            // contains it
  EXPECT_LT(t, 1.1 * noise_term);      // ...and little else
}

TEST(Theorem5, UpperBoundShape) {
  // Linear in n at fixed h; divided by h; diverges as delta → 1/4.
  const double base = theorem5_upper_bound(AgentCount{10000}, Holdings{1},
                                           Delta{0.1});
  EXPECT_NEAR(theorem5_upper_bound(AgentCount{10000}, Holdings{10}, Delta{0.1}),
              base / 10, base * 0.01);
  EXPECT_GT(theorem5_upper_bound(AgentCount{10000}, Holdings{1}, Delta{0.24}),
            base);
  EXPECT_EQ(theorem5_upper_bound(AgentCount{10000}, Holdings{1}, Delta{0.0}),
            10000.0);  // pure n/h term
}

TEST(WeakOpinionCondition, MarginSignTracksEq2) {
  // Large (p−1/2)·√ℓ → condition holds; tiny → fails.
  EXPECT_GT(weak_opinion_condition_margin(0.6, 10000, 1000), 0.0);
  EXPECT_LT(weak_opinion_condition_margin(0.5001, 1.0, 1000), 0.0);
}

TEST(SfWeakOpinionExact, MatchesSimulation) {
  // The closed-form Lemma 28 quantity vs Monte Carlo over the actual
  // counter construction (Counter1/Counter0 binomials).
  Rng rng(42);
  const std::uint64_t n = 200, m = 60, s1 = 3, s0 = 1;
  const double delta = 0.2;
  const double pa1 = (3.0 / 200) * 0.8 + (197.0 / 200) * 0.2;
  const double pb0 = (1.0 / 200) * 0.8 + (199.0 / 200) * 0.2;
  const int kReps = 200000;
  double correct = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto c1 = sample_binomial(rng, m, pa1);
    const auto c0 = sample_binomial(rng, m, pb0);
    if (c1 > c0) {
      correct += 1.0;
    } else if (c1 == c0) {
      correct += 0.5;
    }
  }
  EXPECT_NEAR(correct / kReps,
              sf_weak_opinion_exact(AgentCount{n}, MemoryBudget{m},
                                    Delta{delta}, SourceCount{s1},
                                    SourceCount{s0}),
              0.005);
}

TEST(SfWeakOpinionExact, AlwaysAboveOneHalf) {
  for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL}) {
    for (std::uint64_t m : {10ULL, 100ULL, 2000ULL}) {
      for (double delta : {0.0, 0.1, 0.3, 0.45}) {
        EXPECT_GT(sf_weak_opinion_exact(AgentCount{n}, MemoryBudget{m},
                                        Delta{delta}, SourceCount{1},
                                        SourceCount{0}),
                  0.5)
            << "n=" << n << " m=" << m << " delta=" << delta;
      }
    }
  }
}

TEST(SfWeakOpinionExact, MonotoneInBudgetAndBias) {
  // More messages and a larger bias both sharpen the weak opinion.
  const double small_m = sf_weak_opinion_exact(AgentCount{1000},
                                               MemoryBudget{100}, Delta{0.2},
                                               SourceCount{1}, SourceCount{0});
  const double large_m = sf_weak_opinion_exact(AgentCount{1000},
                                               MemoryBudget{10000}, Delta{0.2},
                                               SourceCount{1}, SourceCount{0});
  EXPECT_GT(large_m, small_m);
  const double small_s = sf_weak_opinion_exact(AgentCount{1000},
                                               MemoryBudget{1000}, Delta{0.2},
                                               SourceCount{1}, SourceCount{0});
  const double large_s = sf_weak_opinion_exact(AgentCount{1000},
                                               MemoryBudget{1000}, Delta{0.2},
                                               SourceCount{10}, SourceCount{0});
  EXPECT_GT(large_s, small_s);
}

TEST(SfWeakOpinionExact, DegenerateChannelIsAFairCoin) {
  // δ = 1/2 destroys all information: both counters are Binomial(m, 1/2).
  EXPECT_NEAR(sf_weak_opinion_exact(AgentCount{1000}, MemoryBudget{500},
                                    Delta{0.5}, SourceCount{1}, SourceCount{0}),
              0.5, 1e-9);
}

TEST(SfWeakOpinionExact, SatisfiesLemma28AtTheoreticalBudget) {
  // The weak-opinion advantage scales as √c1 (it is (signal/√m)·m-shaped):
  // at the calibrated c1 = 2 it sits at ≈ 0.46·√(log n/n); with a
  // theory-sized constant (c1 = 16) it must clear the Ω(√(log n/n)) bound
  // of Lemma 28.
  for (std::uint64_t n : {1000ULL, 10000ULL}) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    const double yardstick =
        std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
    const auto calibrated = make_sf_schedule(pop, Holdings{1}, Delta{0.2},
                                             C1{2.0});
    EXPECT_GE(sf_weak_opinion_exact(AgentCount{n}, MemoryBudget{calibrated.m},
                                    Delta{0.2}, SourceCount{1},
                                    SourceCount{0}) - 0.5,

              0.3 * yardstick)
        << "n=" << n;
    const auto theory = make_sf_schedule(pop, Holdings{1}, Delta{0.2},
                                         C1{16.0});
    EXPECT_GE(sf_weak_opinion_exact(AgentCount{n}, MemoryBudget{theory.m},
                                    Delta{0.2}, SourceCount{1},
                                    SourceCount{0}) - 0.5,
              yardstick)
        << "n=" << n;
  }
}

TEST(SsfWeakOpinionExact, MatchesSimulation) {
  // Monte Carlo over the Eq. 33 trinomial slots vs the closed form.
  Rng rng(55);
  const std::uint64_t n = 150, m = 80, s1 = 2, s0 = 1;
  const double delta = 0.05;
  const double p_plus = (2.0 / 150) * 0.85 + (148.0 / 150) * 0.05;
  const double p_minus = (1.0 / 150) * 0.85 + (149.0 / 150) * 0.05;
  const int kReps = 150000;
  double correct = 0.0;
  std::array<std::uint64_t, 3> counts{};
  const std::array<double, 3> w = {p_plus, p_minus,
                                   1.0 - p_plus - p_minus};
  for (int rep = 0; rep < kReps; ++rep) {
    sample_multinomial(rng, m, w, counts);
    if (counts[0] > counts[1]) {
      correct += 1.0;
    } else if (counts[0] == counts[1]) {
      correct += 0.5;
    }
  }
  EXPECT_NEAR(correct / kReps,
              ssf_weak_opinion_exact(AgentCount{n}, MemoryBudget{m},
                                     Delta{delta}, SourceCount{s1},
                                     SourceCount{s0}),
              0.005);
}

TEST(SsfWeakOpinionExact, AboveOneHalfAndMonotone) {
  for (std::uint64_t n : {100ULL, 1000ULL}) {
    for (std::uint64_t m : {20ULL, 200ULL}) {
      for (double delta : {0.0, 0.05, 0.2}) {
        EXPECT_GT(ssf_weak_opinion_exact(AgentCount{n}, MemoryBudget{m},
                                         Delta{delta}, SourceCount{1},
                                         SourceCount{0}),
                  0.5)
            << "n=" << n << " m=" << m << " delta=" << delta;
      }
    }
  }
  EXPECT_GT(ssf_weak_opinion_exact(AgentCount{500}, MemoryBudget{800},
                                   Delta{0.05}, SourceCount{1}, SourceCount{0}),

            ssf_weak_opinion_exact(AgentCount{500}, MemoryBudget{80},
                                   Delta{0.05}, SourceCount{1},
                                   SourceCount{0}));
  EXPECT_GT(ssf_weak_opinion_exact(AgentCount{500}, MemoryBudget{200},
                                   Delta{0.05}, SourceCount{5}, SourceCount{0}),

            ssf_weak_opinion_exact(AgentCount{500}, MemoryBudget{200},
                                   Delta{0.05}, SourceCount{1},
                                   SourceCount{0}));
}

TEST(SsfWeakOpinionExact, NoiselessSingleSourceIsClaim19Shaped) {
  // With δ = 0 a non-zero slot can only be an uncorrupted source message,
  // so the weak opinion errs only when no source was sampled (coin):
  // P(correct) = 1 − ½·(1−s/n)^m.
  const std::uint64_t n = 100, m = 30;
  const double want =
      1.0 - 0.5 * std::pow(1.0 - 1.0 / static_cast<double>(n),
                           static_cast<double>(m));
  EXPECT_NEAR(ssf_weak_opinion_exact(AgentCount{n}, MemoryBudget{m},
                                     Delta{0.0}, SourceCount{1},
                                     SourceCount{0}),
              want, 1e-9);
}

TEST(SsfWeakOpinionExact, Validation) {
  EXPECT_THROW(ssf_weak_opinion_exact(AgentCount{100}, MemoryBudget{10},
                                      Delta{0.05}, SourceCount{1},
                                      SourceCount{1}),

               std::invalid_argument);
  EXPECT_THROW(ssf_weak_opinion_exact(AgentCount{100}, MemoryBudget{10},
                                      Delta{0.3}, SourceCount{1},
                                      SourceCount{0}),

               std::invalid_argument);
  EXPECT_THROW(ssf_weak_opinion_exact(AgentCount{100}, MemoryBudget{0},
                                      Delta{0.05}, SourceCount{1},
                                      SourceCount{0}),

               std::invalid_argument);
}

TEST(SfWeakOpinionExact, Validation) {
  EXPECT_THROW(sf_weak_opinion_exact(AgentCount{100}, MemoryBudget{10},
                                     Delta{0.2}, SourceCount{1},
                                     SourceCount{1}),

               std::invalid_argument);
  EXPECT_THROW(sf_weak_opinion_exact(AgentCount{100}, MemoryBudget{0},
                                     Delta{0.2}, SourceCount{1},
                                     SourceCount{0}),

               std::invalid_argument);
  EXPECT_THROW(sf_weak_opinion_exact(AgentCount{100}, MemoryBudget{10},
                                     Delta{0.6}, SourceCount{1},
                                     SourceCount{0}),

               std::invalid_argument);
  EXPECT_THROW(sf_weak_opinion_exact(AgentCount{4}, MemoryBudget{10},
                                     Delta{0.2}, SourceCount{3},
                                     SourceCount{2}),

               std::invalid_argument);
}

TEST(TheoryBounds, InputValidation) {
  EXPECT_THROW(theorem3_lower_bound(AgentCount{10}, Holdings{0}, Delta{0.1},
                                    SourceCount{1}, 2),
               std::invalid_argument);
  EXPECT_THROW(theorem3_lower_bound(AgentCount{10}, Holdings{1}, Delta{0.6},
                                    SourceCount{1}, 2),
               std::invalid_argument);
  EXPECT_THROW(theorem4_upper_bound(AgentCount{10}, Holdings{1}, Delta{0.5},
                                    SourceCount{1}, SourceCount{0}),
               std::invalid_argument);
  EXPECT_THROW(theorem4_upper_bound(AgentCount{10}, Holdings{1}, Delta{0.1},
                                    SourceCount{1}, SourceCount{1}),
               std::invalid_argument);
  EXPECT_THROW(theorem5_upper_bound(AgentCount{10}, Holdings{1}, Delta{0.25}),
               std::invalid_argument);
  EXPECT_THROW(claim19_lower_bound(10, 0.5), std::invalid_argument);
  EXPECT_THROW(lemma21_g(0.6, 10), std::invalid_argument);
  EXPECT_THROW(binomial_pmf(3, 4, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
