#include "noisypull/sim/churn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

TEST(Churn, ZeroRateBehavesLikePlainRun) {
  const auto p = pop(300, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(1);
  const auto result = run_with_churn(
      ssf, engine, NoiseMatrix::uniform(4,
          delta), p.correct_opinion(), Holdings{p.n},
      /*warmup=*/ssf.convergence_deadline(), /*measure=*/20,
      ChurnConfig{.rate = 0.0}, rng);
  EXPECT_EQ(result.resets, 0u);
  EXPECT_DOUBLE_EQ(result.mean_correct_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.min_correct_fraction, 1.0);
}

TEST(Churn, ResetsHappenAtTheConfiguredRate) {
  const auto p = pop(1000, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(2);
  const double rate = 0.01;
  const std::uint64_t rounds = 50;
  const auto result = run_with_churn(
      ssf, engine, NoiseMatrix::uniform(4,
          delta), p.correct_opinion(), Holdings{p.n},
      /*warmup=*/rounds - 10, /*measure=*/10, ChurnConfig{.rate = rate}, rng);
  // Expected resets ≈ rate · (n − sources) · rounds = 499; allow 5 sigma.
  const double expect =
      rate * static_cast<double>(p.n - p.num_sources()) * rounds;
  EXPECT_NEAR(static_cast<double>(result.resets), expect,
              5 * std::sqrt(expect));
}

TEST(Churn, ModerateChurnKeepsMostAgentsCorrect) {
  // With per-round reset probability well below one per memory cycle, the
  // steady state stays overwhelmingly correct.
  const auto p = pop(1000, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(3);
  const auto result = run_with_churn(
      ssf, engine, NoiseMatrix::uniform(4,
          delta), p.correct_opinion(), Holdings{p.n},
      /*warmup=*/3 * ssf.convergence_deadline(), /*measure=*/40,
      ChurnConfig{.rate = 0.005, .policy = CorruptionPolicy::WrongConsensus},
      rng);
  EXPECT_GT(result.mean_correct_fraction, 0.9);
  EXPECT_GT(result.resets, 0u);
}

TEST(Churn, ExtremeChurnDegradesCorrectness) {
  // Resetting a third of the population every round must visibly hurt.
  const auto p = pop(600, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(4);
  const auto result = run_with_churn(
      ssf, engine, NoiseMatrix::uniform(4,
          delta), p.correct_opinion(), Holdings{p.n},
      /*warmup=*/3 * ssf.convergence_deadline(), /*measure=*/40,
      ChurnConfig{.rate = 0.33, .policy = CorruptionPolicy::WrongConsensus},
      rng);
  EXPECT_LT(result.mean_correct_fraction, 0.9);
}

TEST(Churn, InputValidation) {
  const auto p = pop(100, 1, 0);
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{0.05}, C1{2.0});
  AggregateEngine engine;
  Rng rng(5);
  const auto noise = NoiseMatrix::uniform(4, 0.05);
  EXPECT_THROW(run_with_churn(ssf, engine, noise, 1, Holdings{p.n}, 1, 0,
                              ChurnConfig{.rate = 0.1}, rng),
               std::invalid_argument);
  EXPECT_THROW(run_with_churn(ssf, engine, noise, 1, Holdings{p.n}, 1, 1,
                              ChurnConfig{.rate = 1.5}, rng),
               std::invalid_argument);
}

TEST(Churn, SourceChurnOptionResetsSourceState) {
  // churn_sources = true with rate 1 resets everyone's mutable state every
  // round; sources still display their (uncorruptible) preference, so the
  // population keeps receiving the signal.
  const auto p = pop(200, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(6);
  const auto result = run_with_churn(
      ssf, engine, NoiseMatrix::uniform(4,
          delta), p.correct_opinion(), Holdings{p.n},
      /*warmup=*/5, /*measure=*/5,
      ChurnConfig{.rate = 1.0,
                  .policy = CorruptionPolicy::RandomState,
                  .churn_sources = true},
      rng);
  EXPECT_EQ(result.resets, 10 * p.n);
  EXPECT_EQ(ssf.display(0, 0),
            SelfStabilizingSourceFilter::encode(true, 1));
}

}  // namespace
}  // namespace noisypull
