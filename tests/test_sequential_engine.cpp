#include <gtest/gtest.h>

#include <array>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/core/ssf.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/sim/adversary.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

// Records observations; display follows a mutable per-agent value.
class MutableDisplayProtocol : public PullProtocol {
 public:
  explicit MutableDisplayProtocol(std::vector<Symbol> values)
      : values_(std::move(values)),
        last_obs_(values_.size(), SymbolCounts(2)) {}

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return values_.size(); }
  Symbol display(std::uint64_t agent, std::uint64_t) const override {
    return values_[agent];
  }
  void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
              Rng&) override {
    last_obs_[agent] = obs;
    if (flip_on_update_) values_[agent] = 1;
  }
  Opinion opinion(std::uint64_t agent) const override {
    return values_[agent];
  }

  std::vector<Symbol> values_;
  std::vector<SymbolCounts> last_obs_;
  bool flip_on_update_ = false;
};

TEST(SequentialEngine, DeliversHObservationsToEveryAgent) {
  MutableDisplayProtocol protocol(std::vector<Symbol>(10, 0));
  SequentialEngine engine;
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  Rng rng(1);
  engine.step(protocol, noise, Holdings{7}, 0, rng);
  for (const auto& obs : protocol.last_obs_) EXPECT_EQ(obs.total(), 7u);
}

TEST(SequentialEngine, UpdatesAreVisibleWithinTheRound) {
  // All agents start displaying 0 and flip to 1 when updated.  Under
  // ascending order with noiseless full sampling, the last agent must see a
  // majority of 1s (everyone before it already flipped) — impossible under
  // the synchronous snapshot engine.
  MutableDisplayProtocol protocol(std::vector<Symbol>(9, 0));
  protocol.flip_on_update_ = true;
  SequentialEngine engine(SequentialEngine::Order::FixedAscending);
  const auto noise = NoiseMatrix::noiseless(2);
  Rng rng(2);
  engine.step(protocol, noise, Holdings{512}, 0, rng);
  const auto& first = protocol.last_obs_[0];
  const auto& last = protocol.last_obs_[8];
  EXPECT_EQ(first[1], 0u);     // agent 0 saw the all-zeros population
  EXPECT_GT(last[1], last[0]);  // agent 8 saw 8/9 flipped agents
}

TEST(SequentialEngine, FixedDescendingReversesActivation) {
  MutableDisplayProtocol protocol(std::vector<Symbol>(9, 0));
  protocol.flip_on_update_ = true;
  SequentialEngine engine(SequentialEngine::Order::FixedDescending);
  const auto noise = NoiseMatrix::noiseless(2);
  Rng rng(3);
  engine.step(protocol, noise, Holdings{512}, 0, rng);
  EXPECT_EQ(protocol.last_obs_[8][1], 0u);  // agent 8 activated first
  EXPECT_GT(protocol.last_obs_[0][1], protocol.last_obs_[0][0]);
}

TEST(SequentialEngine, StaticDisplaysMatchChannelDistribution) {
  // With displays that never change, the sequential engine's observation
  // law equals the synchronous one.
  std::vector<Symbol> displays(10, 0);
  displays[0] = displays[1] = displays[2] = 1;  // 30% ones
  MutableDisplayProtocol protocol(displays);
  SequentialEngine engine;
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  Rng rng(4);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 400; ++t) {
    engine.step(protocol, noise, Holdings{50}, t, rng);
    for (const auto& obs : protocol.last_obs_) {
      totals[0] += obs[0];
      totals[1] += obs[1];
    }
  }
  const std::array<double, 2> probs = {0.66, 0.34};  // 0.3·0.9 + 0.7·0.1
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
}

TEST(SequentialEngine, RandomOrderIsDeterministicGivenSeed) {
  auto trace = [](std::uint64_t seed) {
    MutableDisplayProtocol protocol(std::vector<Symbol>(20, 0));
    SequentialEngine engine;
    Rng rng(seed);
    std::vector<std::uint64_t> out;
    const auto noise = NoiseMatrix::uniform(2, 0.2);
    for (int t = 0; t < 5; ++t) {
      engine.step(protocol, noise, Holdings{3}, t, rng);
      for (const auto& obs : protocol.last_obs_) out.push_back(obs[1]);
    }
    return out;
  };
  EXPECT_EQ(trace(5), trace(5));
  EXPECT_NE(trace(5), trace(6));
}

class SsfUnderSchedule
    : public ::testing::TestWithParam<SequentialEngine::Order> {};

TEST_P(SsfUnderSchedule, SsfConvergesUnderAsynchronousActivation) {
  // The self-stabilizing protocol needs no synchrony: it converges under
  // random and adversarially regular sequential schedules alike, from a
  // wrong-consensus corruption.
  const auto p = pop(300, 2, 0);
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  Rng init(7);
  corrupt_population(ssf, CorruptionPolicy::WrongConsensus,
                     p.correct_opinion(), init);
  SequentialEngine engine(GetParam());
  Rng rng(8);
  const auto result =
      run(ssf, engine, NoiseMatrix::uniform(4, delta), p.correct_opinion(),
          RunConfig{.h = p.n, .max_rounds = ssf.convergence_deadline()}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, SsfUnderSchedule,
    ::testing::Values(SequentialEngine::Order::Random,
                      SequentialEngine::Order::FixedAscending,
                      SequentialEngine::Order::FixedDescending),
    [](const ::testing::TestParamInfo<SequentialEngine::Order>& param_info) {
      switch (param_info.param) {
        case SequentialEngine::Order::Random:
          return "Random";
        case SequentialEngine::Order::FixedAscending:
          return "Ascending";
        case SequentialEngine::Order::FixedDescending:
          return "Descending";
      }
      return "Unknown";
    });

TEST(SequentialEngine, SupportsArtificialNoise) {
  MutableDisplayProtocol protocol(std::vector<Symbol>(10, 1));
  SequentialEngine engine;
  engine.set_artificial_noise(Matrix{0.5, 0.5, 0.5, 0.5});
  const auto noise = NoiseMatrix::noiseless(2);
  Rng rng(9);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 500; ++t) {
    engine.step(protocol, noise, Holdings{20}, t, rng);
    for (const auto& obs : protocol.last_obs_) {
      totals[0] += obs[0];
      totals[1] += obs[1];
    }
  }
  const std::array<double, 2> probs = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
}

}  // namespace
}  // namespace noisypull
