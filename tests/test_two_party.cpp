#include "noisypull/theory/two_party.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "noisypull/rng/binomial.hpp"
#include "noisypull/rng/rng.hpp"

namespace noisypull {
namespace {

TEST(TwoParty, HandComputedErrors) {
  // m = 1: error = δ (wrong copy) — ties impossible.
  EXPECT_NEAR(two_party_error_exact(1, 0.2), 0.2, 1e-12);
  // m = 2: error = δ² + ½·2δ(1−δ)  (both flipped, or a tie).
  EXPECT_NEAR(two_party_error_exact(2, 0.2), 0.04 + 0.16, 1e-12);
  // m = 3, δ = 0.2: P(≥2 flips) = 3·0.04·0.8 + 0.008 = 0.104.
  EXPECT_NEAR(two_party_error_exact(3, 0.2), 0.104, 1e-12);
}

TEST(TwoParty, BoundaryChannels) {
  EXPECT_EQ(two_party_error_exact(7, 0.0), 0.0);
  EXPECT_NEAR(two_party_error_exact(7, 0.5), 0.5, 1e-12);  // pure noise
}

TEST(TwoParty, ErrorDecreasesAlongOddM) {
  double prev = 1.0;
  for (std::uint64_t m = 1; m <= 41; m += 2) {
    const double e = two_party_error_exact(m, 0.3);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(TwoParty, ErrorMatchesSimulation) {
  Rng rng(1);
  const std::uint64_t m = 15;
  const double delta = 0.3;
  const int kReps = 200000;
  double errors = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t flips = sample_binomial(rng, m, delta);
    if (2 * flips > m) {
      errors += 1.0;
    } else if (2 * flips == m) {
      errors += 0.5;
    }
  }
  EXPECT_NEAR(errors / kReps, two_party_error_exact(m, delta), 0.005);
}

TEST(TwoParty, MessagesNeededAchievesTarget) {
  for (double delta : {0.05, 0.2, 0.35, 0.45}) {
    for (double x : {0.25, 0.05, 0.001}) {
      const auto m = two_party_messages_needed(x, delta);
      EXPECT_LE(two_party_error_exact(m, delta), x)
          << "delta=" << delta << " x=" << x;
      if (m > 2) {
        // Minimality on the odd lattice the search runs over.
        EXPECT_GT(two_party_error_exact(m - 2, delta), x)
            << "delta=" << delta << " x=" << x;
      }
    }
  }
}

TEST(TwoParty, MessagesScaleWithChannelQuality) {
  // The classic 1/(1−2δ)² blow-up: messages for x = 0.01 explode as
  // δ → 1/2, and m·(1−2δ)² stays within a moderate band.
  std::uint64_t prev = 0;
  for (double delta : {0.1, 0.2, 0.3, 0.4, 0.45}) {
    const auto m = two_party_messages_needed(0.01, delta);
    EXPECT_GT(m, prev);
    prev = m;
    const double margin = 1 - 2 * delta;
    EXPECT_GT(static_cast<double>(m) * margin * margin, 1.0);
    EXPECT_LT(static_cast<double>(m) * margin * margin, 30.0);
  }
}

TEST(TwoParty, NoiselessNeedsOneMessage) {
  EXPECT_EQ(two_party_messages_needed(0.01, 0.0), 1u);
}

TEST(TwoParty, LimitIsHonored) {
  EXPECT_EQ(two_party_messages_needed(1e-9, 0.49, /*limit=*/101), 101u);
}

TEST(TwoParty, PullRoundsTranslationMatchesTheorem3Shape) {
  // The heuristic n·m_two_party/(s·h) has Theorem 3's scaling: linear in n,
  // inverse in h and s² (one s from fewer useful samples, one s from the
  // smaller per-message requirement is *not* modeled — the heuristic keeps
  // only the 1/s sample-rate factor, so compare at fixed s).
  const double base = pull_rounds_via_two_party(AgentCount{1000}, Holdings{1},
                                                SourceCount{1}, Delta{0.3},
                                                0.01);
  EXPECT_NEAR(pull_rounds_via_two_party(AgentCount{2000}, Holdings{1},
                                        SourceCount{1}, Delta{0.3}, 0.01),
              2 * base,
              1e-9);
  EXPECT_NEAR(pull_rounds_via_two_party(AgentCount{1000}, Holdings{4},
                                        SourceCount{1}, Delta{0.3}, 0.01),
              base / 4,
              1e-9);
  EXPECT_NEAR(pull_rounds_via_two_party(AgentCount{1000}, Holdings{1},
                                        SourceCount{2}, Delta{0.3}, 0.01),
              base / 2,
              1e-9);
}

TEST(TwoParty, Validation) {
  EXPECT_THROW(two_party_error_exact(0, 0.1), std::invalid_argument);
  EXPECT_THROW(two_party_error_exact(5, 0.6), std::invalid_argument);
  EXPECT_THROW(two_party_messages_needed(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(two_party_messages_needed(0.6, 0.1), std::invalid_argument);
  EXPECT_THROW(two_party_messages_needed(0.01, 0.5), std::invalid_argument);
  EXPECT_THROW(pull_rounds_via_two_party(AgentCount{10}, Holdings{1},
                                         SourceCount{11}, Delta{0.1}, 0.01),

               std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
