#include "noisypull/core/variants.hpp"

#include <gtest/gtest.h>

#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

SymbolCounts obs2(std::uint64_t zeros, std::uint64_t ones) {
  SymbolCounts c(2);
  c[0] = zeros;
  c[1] = ones;
  return c;
}

TEST(EagerSourceFilter, DisplaysInitialOpinionsInsteadOfNeutralBlocks) {
  const auto p = pop(50, 1, 0);
  const auto sched = make_sf_schedule_with_m(p, Holdings{2}, Delta{0.1},
                                             MemoryBudget{8});
  Rng init(42);
  EagerSourceFilter eager(p, sched, init);

  // Sources still display their preference.
  EXPECT_EQ(eager.display(0, 0), 1);
  // Non-sources display the same (random) value in both listening phases —
  // not the 0-block/1-block of SF.
  int ones_phase0 = 0;
  for (std::uint64_t i = 1; i < p.n; ++i) {
    const Symbol d0 = eager.display(i, 0);
    const Symbol d1 = eager.display(i, sched.phase_rounds);  // Phase 1
    EXPECT_EQ(d0, d1);
    ones_phase0 += d0;
  }
  // Random initialization: some of each.
  EXPECT_GT(ones_phase0, 5);
  EXPECT_LT(ones_phase0, 44);
}

TEST(AlternatingSourceFilter, AlternatesStartingFromTheCoin) {
  const auto p = pop(50, 1, 0);
  const auto sched = make_sf_schedule_with_m(p, Holdings{2}, Delta{0.1},
                                             MemoryBudget{8});
  Rng init(43);
  AlternatingSourceFilter alt(p, sched, init);

  for (std::uint64_t i = 1; i < p.n; ++i) {
    const Symbol first = alt.display(i, 0);
    for (std::uint64_t t = 1; t < sched.boosting_start(); ++t) {
      EXPECT_EQ(alt.display(i, t), (first + t) % 2);
    }
  }
}

TEST(AlternatingSourceFilter, CountsAgainstOwnDisplayedBit) {
  const auto p = pop(50, 1, 0);
  const auto sched = make_sf_schedule_with_m(p, Holdings{1}, Delta{0.1},
                                             MemoryBudget{4});
  Rng init(44);
  AlternatingSourceFilter alt(p, sched, init);
  Rng rng(45);

  const std::uint64_t agent = 10;
  std::uint64_t want1 = 0, want0 = 0;
  for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
    // Every observation is a 1: it should increment counter1 only on the
    // agent's 0-display rounds.
    if (alt.display(agent, t) == 0) ++want1;
    alt.update(agent, t, obs2(0, 1), rng);
  }
  EXPECT_EQ(alt.counter1(agent), want1);
  EXPECT_EQ(alt.counter0(agent), want0);
  // Half the rounds displayed 0.
  EXPECT_EQ(want1, sched.boosting_start() / 2);
}

TEST(AlternatingSourceFilter, ComputesWeakOpinionAtListeningEnd) {
  const auto p = pop(50, 1, 0);
  const auto sched = make_sf_schedule_with_m(p, Holdings{1}, Delta{0.1},
                                             MemoryBudget{4});
  Rng init(46);
  AlternatingSourceFilter alt(p, sched, init);
  Rng rng(47);
  const std::uint64_t agent = 10;
  for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
    alt.update(agent, t, obs2(0, 1), rng);  // all 1s → counter1 > counter0
  }
  EXPECT_EQ(alt.weak_opinion(agent), 1);
  EXPECT_EQ(alt.opinion(agent), 1);
}

TEST(AlternatingSourceFilter, ConvergesLikeSourceFilter) {
  // The §2.1 remark conjectures the alternating scheme works as well; check
  // a mid-size instance converges.
  const auto p = pop(300, 2, 0);
  const double delta = 0.1;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto sched = make_sf_schedule(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  Rng init(48);
  AlternatingSourceFilter alt(p, sched, init);
  AggregateEngine engine;
  Rng rng(49);
  const auto result =
      run(alt, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(EagerSourceFilter, UnreliableAtSmallBiasWhereSfIsReliable) {
  // The ablation's measurable consequence (see tab_ablations): at bias 1
  // the no-listening variant fails a large fraction of runs while SF does
  // not — the relayed-opinion noise floor of the paper's design argument.
  const auto p = pop(500, 1, 0);
  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto sched = make_sf_schedule(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  int sf_ok = 0, eager_ok = 0;
  const int kReps = 12;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      SourceFilter sf(p, sched);
      AggregateEngine engine;
      Rng rng(600 + rep);
      sf_ok += run(sf, engine, noise, p.correct_opinion(),
                   RunConfig{.h = p.n}, rng)
                   .all_correct_at_end
                   ? 1
                   : 0;
    }
    {
      Rng init(700 + rep);
      EagerSourceFilter eager(p, sched, init);
      AggregateEngine engine;
      Rng rng(800 + rep);
      eager_ok += run(eager, engine, noise, p.correct_opinion(),
                      RunConfig{.h = p.n}, rng)
                      .all_correct_at_end
                      ? 1
                      : 0;
    }
  }
  EXPECT_GE(sf_ok, kReps - 1);
  EXPECT_LE(eager_ok, kReps - 3);  // fails a visible fraction of the time
  EXPECT_GT(sf_ok, eager_ok);
}

TEST(TaglessSsf, DisplaysPreferenceOrWeakOpinion) {
  const auto p = pop(10, 1, 1);
  TaglessSsf tagless(p, Holdings{2}, MemoryBudget{10});
  EXPECT_EQ(tagless.display(0, 0), 1);
  EXPECT_EQ(tagless.display(1, 0), 0);
  EXPECT_EQ(tagless.display(5, 0), 0);  // default weak opinion
}

TEST(TaglessSsf, MajorityUpdateAndFlush) {
  const auto p = pop(10, 1, 0);
  TaglessSsf tagless(p, Holdings{1}, MemoryBudget{5});
  Rng rng(50);
  SymbolCounts ones(2);
  ones[1] = 3;
  tagless.update(4, 0, ones, rng);
  EXPECT_EQ(tagless.opinion(4), 0);  // below budget: unchanged
  SymbolCounts more(2);
  more[1] = 2;
  tagless.update(4, 1, more, rng);
  EXPECT_EQ(tagless.opinion(4), 1);  // 5 ones vs 0 zeros
  EXPECT_EQ(tagless.display(4, 2), 1);
}

TEST(TaglessSsf, CorruptSetsState) {
  const auto p = pop(10, 1, 0);
  TaglessSsf tagless(p, Holdings{1}, MemoryBudget{5});
  tagless.corrupt(4, 3, 0, 1, 1);
  EXPECT_EQ(tagless.opinion(4), 1);
  Rng rng(51);
  SymbolCounts zeros(2);
  zeros[0] = 2;
  tagless.update(4, 0, zeros, rng);  // 3+2 = 5 zeros ≥ m → majority 0
  EXPECT_EQ(tagless.opinion(4), 0);
}

TEST(TaglessSsf, InputValidation) {
  const auto p = pop(10, 1, 0);
  EXPECT_THROW(TaglessSsf(p, Holdings{0}, MemoryBudget{5}),
               std::invalid_argument);
  EXPECT_THROW(TaglessSsf(p, Holdings{1}, MemoryBudget{0}),
               std::invalid_argument);
  TaglessSsf tagless(p, Holdings{1}, MemoryBudget{5});
  Rng rng(1);
  SymbolCounts wrong(4);
  EXPECT_THROW(tagless.update(0, 0, wrong, rng), std::invalid_argument);
  EXPECT_THROW(tagless.opinion(10), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
