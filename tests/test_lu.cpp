#include "noisypull/linalg/lu.hpp"

#include <gtest/gtest.h>

#include <array>

namespace noisypull {
namespace {

TEST(Lu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5]  →  x = [0.8, 1.4]
  const Matrix a{2, 1, 1, 3};
  const auto d = lu_decompose(a);
  ASSERT_TRUE(d.has_value());
  const std::array<double, 2> b = {3, 5};
  const auto x = d->solve(b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolveChecksRhsSize) {
  const auto d = lu_decompose(Matrix::identity(2));
  ASSERT_TRUE(d.has_value());
  const std::array<double, 3> bad = {1, 2, 3};
  EXPECT_THROW(d->solve(bad), std::invalid_argument);
}

TEST(Lu, Determinant) {
  const Matrix a{2, 1, 1, 3};
  const auto d = lu_decompose(a);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(d->determinant(), 5.0, 1e-12);

  // A permutation-heavy matrix with a negative determinant.
  const Matrix p{0, 1, 1, 0};
  const auto dp = lu_decompose(p);
  ASSERT_TRUE(dp.has_value());
  EXPECT_NEAR(dp->determinant(), -1.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  const Matrix singular{1, 2, 2, 4};
  EXPECT_FALSE(lu_decompose(singular).has_value());
  EXPECT_FALSE(invert(singular).has_value());
}

TEST(Lu, RequiresSquare) {
  Matrix rect(2, 3);
  EXPECT_THROW(lu_decompose(rect), std::invalid_argument);
}

TEST(Invert, IdentityIsItsOwnInverse) {
  const auto inv = invert(Matrix::identity(4));
  ASSERT_TRUE(inv.has_value());
  EXPECT_LT(inv->max_abs_diff(Matrix::identity(4)), 1e-12);
}

TEST(Invert, Known2x2) {
  const Matrix a{4, 7, 2, 6};
  const auto inv = invert(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix want{0.6, -0.7, -0.2, 0.4};
  EXPECT_LT(inv->max_abs_diff(want), 1e-12);
}

TEST(Invert, ProductWithInverseIsIdentity3x3) {
  const Matrix a{2, -1, 0, -1, 2, -1, 0, -1, 2};
  const auto inv = invert(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_LT((a * *inv).max_abs_diff(Matrix::identity(3)), 1e-10);
  EXPECT_LT((*inv * a).max_abs_diff(Matrix::identity(3)), 1e-10);
}

TEST(Invert, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{0, 1, 1, 0};
  const auto inv = invert(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_LT(inv->max_abs_diff(a), 1e-12);  // swap matrix is an involution
}

TEST(Invert, Claim12InverseOfWeaklyStochasticIsWeaklyStochastic) {
  // Claim 12 of the paper: A weakly-stochastic and invertible ⇒ A⁻¹
  // weakly-stochastic.
  const Matrix a{0.8, 0.1, 0.1, 0.05, 0.9, 0.05, 0.2, 0.2, 0.6};
  ASSERT_TRUE(a.is_stochastic());
  const auto inv = invert(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(inv->is_weakly_stochastic(1e-9));
}

}  // namespace
}  // namespace noisypull
