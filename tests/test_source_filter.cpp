#include "noisypull/core/source_filter.hpp"

#include <gtest/gtest.h>

#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

SymbolCounts obs2(std::uint64_t zeros, std::uint64_t ones) {
  SymbolCounts c(2);
  c[0] = zeros;
  c[1] = ones;
  return c;
}

// A small fixed schedule: m = 6, h = 2 → phases of 3 rounds each.
SfSchedule tiny_schedule(const PopulationConfig& p) {
  return make_sf_schedule_with_m(p, Holdings{2}, Delta{0.1}, MemoryBudget{6});
}

TEST(SourceFilter, DisplaysFollowThePhaseScript) {
  const auto p = pop(10, 2, 1);  // agents 0,1 prefer 1; agent 2 prefers 0
  SourceFilter sf(p, tiny_schedule(p));
  const auto& sched = sf.schedule();

  for (std::uint64_t t = 0; t < sched.phase_rounds; ++t) {
    EXPECT_EQ(sf.display(0, t), 1);  // source, preference 1
    EXPECT_EQ(sf.display(2, t), 0);  // source, preference 0
    EXPECT_EQ(sf.display(5, t), 0);  // non-source displays 0 in Phase 0
  }
  for (std::uint64_t t = sched.phase_rounds; t < sched.boosting_start(); ++t) {
    EXPECT_EQ(sf.display(0, t), 1);
    EXPECT_EQ(sf.display(2, t), 0);
    EXPECT_EQ(sf.display(5, t), 1);  // non-source displays 1 in Phase 1
  }
}

TEST(SourceFilter, CountersAccumulateTheRightSymbols) {
  const auto p = pop(10, 1, 0);
  SourceFilter sf(p, tiny_schedule(p));
  Rng rng(1);
  const auto& sched = sf.schedule();

  // Phase 0: only observed 1s count.
  for (std::uint64_t t = 0; t < sched.phase_rounds; ++t) {
    sf.update(4, t, obs2(1, 1), rng);
  }
  EXPECT_EQ(sf.counter1(4), sched.phase_rounds);
  EXPECT_EQ(sf.counter0(4), 0u);

  // Phase 1: only observed 0s count.
  for (std::uint64_t t = sched.phase_rounds; t < sched.boosting_start(); ++t) {
    sf.update(4, t, obs2(2, 0), rng);
  }
  EXPECT_EQ(sf.counter1(4), sched.phase_rounds);
  EXPECT_EQ(sf.counter0(4), 2 * sched.phase_rounds);
}

TEST(SourceFilter, WeakOpinionComparesCounters) {
  const auto p = pop(10, 1, 0);
  const auto sched = tiny_schedule(p);
  Rng rng(2);

  // More 1s in Phase 0 than 0s in Phase 1 → weak opinion 1.
  {
    SourceFilter sf(p, sched);
    for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
      sf.update(3, t, t < sched.phase_rounds ? obs2(0, 2) : obs2(1, 1), rng);
    }
    EXPECT_EQ(sf.weak_opinion(3), 1);
    EXPECT_EQ(sf.opinion(3), 1);  // opinion initialized to the weak opinion
  }
  // Fewer 1s than 0s → weak opinion 0.
  {
    SourceFilter sf(p, sched);
    for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
      sf.update(3, t, t < sched.phase_rounds ? obs2(2, 0) : obs2(2, 0), rng);
    }
    EXPECT_EQ(sf.weak_opinion(3), 0);
  }
}

TEST(SourceFilter, WeakOpinionTieBreaksWithFairCoin) {
  const auto p = pop(10, 1, 0);
  const auto sched = tiny_schedule(p);
  int ones = 0;
  const int kReps = 2000;
  for (int rep = 0; rep < kReps; ++rep) {
    SourceFilter sf(p, sched);
    Rng rng(1000 + rep);
    for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
      sf.update(3, t, obs2(1, 1), rng);  // counters end equal
    }
    ones += sf.weak_opinion(3);
  }
  EXPECT_GT(ones, kReps / 2 - 150);
  EXPECT_LT(ones, kReps / 2 + 150);
}

TEST(SourceFilter, BoostingAdoptsSubphaseMajority) {
  const auto p = pop(10, 1, 0);
  const auto sched = tiny_schedule(p);
  SourceFilter sf(p, sched);
  Rng rng(3);

  // Drive through listening so that Counter1 = 6 > Counter0 = 3 and the
  // weak opinion is deterministically 1.
  for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
    sf.update(6, t, t < sched.phase_rounds ? obs2(0, 2) : obs2(1, 1), rng);
  }
  ASSERT_EQ(sf.opinion(6), 1);

  // First boosting sub-phase: feed a 0-majority; at the sub-phase end the
  // opinion must flip to 0.
  std::uint64_t t = sched.boosting_start();
  for (std::uint64_t r = 0; r < sched.subphase_rounds; ++r, ++t) {
    EXPECT_EQ(sf.opinion(6), 1);  // unchanged until the sub-phase ends
    sf.update(6, t, obs2(2, 0), rng);
  }
  EXPECT_EQ(sf.opinion(6), 0);

  // Second sub-phase: 1-majority flips it back.
  for (std::uint64_t r = 0; r < sched.subphase_rounds; ++r, ++t) {
    sf.update(6, t, obs2(0, 2), rng);
  }
  EXPECT_EQ(sf.opinion(6), 1);
}

TEST(SourceFilter, SubphaseEndDetection) {
  const auto p = pop(10, 1, 0);
  const auto sched = tiny_schedule(p);
  SourceFilter sf(p, sched);

  EXPECT_FALSE(sf.is_subphase_end(0));
  EXPECT_FALSE(sf.is_subphase_end(sched.boosting_start() - 1));
  // End of each short sub-phase.
  for (std::uint64_t k = 1; k <= sched.num_subphases; ++k) {
    EXPECT_TRUE(sf.is_subphase_end(sched.boosting_start() +
                                   k * sched.subphase_rounds - 1));
  }
  // Last round overall ends the final sub-phase.
  EXPECT_TRUE(sf.is_subphase_end(sched.total_rounds() - 1));
  EXPECT_FALSE(sf.is_subphase_end(sched.total_rounds() - 2));
}

TEST(SourceFilter, UpdatesBeyondHorizonAreIgnored) {
  const auto p = pop(10, 1, 0);
  const auto sched = tiny_schedule(p);
  SourceFilter sf(p, sched);
  Rng rng(4);
  for (std::uint64_t t = 0; t < sched.total_rounds(); ++t) {
    sf.update(5, t, obs2(0, 2), rng);
  }
  const Opinion before = sf.opinion(5);
  for (std::uint64_t t = sched.total_rounds(); t < sched.total_rounds() + 50;
       ++t) {
    sf.update(5, t, obs2(2, 0), rng);
  }
  EXPECT_EQ(sf.opinion(5), before);
}

TEST(SourceFilter, PlannedRoundsMatchesSchedule) {
  const auto p = pop(100, 1, 0);
  SourceFilter sf(p, Holdings{4}, Delta{0.1}, C1{1.0});
  EXPECT_EQ(sf.planned_rounds(), sf.schedule().total_rounds());
  EXPECT_GT(sf.planned_rounds(), 0u);
}

TEST(SourceFilter, AgentIndexValidation) {
  const auto p = pop(10, 1, 0);
  SourceFilter sf(p, tiny_schedule(p));
  Rng rng(1);
  EXPECT_THROW(sf.opinion(10), std::invalid_argument);
  EXPECT_THROW(sf.weak_opinion(10), std::invalid_argument);
  EXPECT_THROW(sf.counter1(10), std::invalid_argument);
  EXPECT_THROW(sf.update(10, 0, obs2(0, 1), rng), std::invalid_argument);
  SymbolCounts wrong(4);
  EXPECT_THROW(sf.update(0, 0, wrong, rng), std::invalid_argument);
}

TEST(SourceFilter, ConvergesWithFullSampling) {
  // n = 300, h = n, δ = 0.15, single source: Theorem 4's headline regime.
  const auto p = pop(300, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.15);
  int successes = 0;
  for (int rep = 0; rep < 5; ++rep) {
    SourceFilter sf(p, Holdings{p.n}, Delta{0.15}, C1{2.0});
    AggregateEngine engine;
    Rng rng(900 + rep);
    const auto result =
        run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
    successes += result.all_correct_at_end ? 1 : 0;
  }
  EXPECT_GE(successes, 4);
}

TEST(SourceFilter, ConvergesToZeroWhenZeroSourcesDominate) {
  const auto p = pop(300, 1, 3);  // correct opinion is 0
  ASSERT_EQ(p.correct_opinion(), 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  SourceFilter sf(p, Holdings{p.n}, Delta{0.1}, C1{2.0});
  AggregateEngine engine;
  Rng rng(7);
  const auto result =
      run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(SourceFilter, MinoritySourcesAreOverruled) {
  // Sources preferring the wrong value must converge to the majority
  // preference too (Definition 2).
  const auto p = pop(400, 5, 2);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  SourceFilter sf(p, Holdings{p.n}, Delta{0.1}, C1{2.0});
  AggregateEngine engine;
  Rng rng(11);
  const auto result =
      run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
  // In particular the 0-preferring sources (agents 5 and 6) hold opinion 1.
  EXPECT_EQ(sf.opinion(5), 1);
  EXPECT_EQ(sf.opinion(6), 1);
}

}  // namespace
}  // namespace noisypull
