#include <gtest/gtest.h>

#include "noisypull/baselines/majority_dynamics.hpp"
#include "noisypull/baselines/repeated_majority.hpp"
#include "noisypull/baselines/voter.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

SymbolCounts obs2(std::uint64_t zeros, std::uint64_t ones) {
  SymbolCounts c(2);
  c[0] = zeros;
  c[1] = ones;
  return c;
}

TEST(Voter, SourcesAreZealots) {
  const auto p = pop(10, 1, 1);
  Rng init(1);
  VoterProtocol voter(p, init);
  Rng rng(2);
  voter.update(0, 0, obs2(5, 0), rng);  // all-0 observations
  voter.update(1, 0, obs2(0, 5), rng);  // all-1 observations
  EXPECT_EQ(voter.opinion(0), 1);  // 1-source unchanged
  EXPECT_EQ(voter.opinion(1), 0);  // 0-source unchanged
}

TEST(Voter, AdoptsUnanimousObservation) {
  const auto p = pop(10, 1, 0);
  Rng init(3);
  VoterProtocol voter(p, init);
  Rng rng(4);
  voter.update(5, 0, obs2(0, 7), rng);
  EXPECT_EQ(voter.opinion(5), 1);
  voter.update(5, 1, obs2(7, 0), rng);
  EXPECT_EQ(voter.opinion(5), 0);
}

TEST(Voter, AdoptionProbabilityIsObservedFraction) {
  const auto p = pop(10, 1, 0);
  int ones = 0;
  const int kReps = 5000;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng init(100 + rep);
    VoterProtocol voter(p, init);
    Rng rng(7000 + rep);
    voter.update(5, 0, obs2(3, 1), rng);  // 25% ones
    ones += voter.opinion(5);
  }
  EXPECT_NEAR(static_cast<double>(ones) / kReps, 0.25, 0.03);
}

TEST(Voter, DisplayEqualsOpinion) {
  const auto p = pop(10, 2, 0);
  Rng init(5);
  VoterProtocol voter(p, init);
  for (std::uint64_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(voter.display(i, 0), voter.opinion(i));
  }
}

TEST(Voter, ConvergesWithoutNoiseFromAllSourcePopulation) {
  // With many sources and no noise the voter model spreads quickly.
  const auto p = pop(100, 30, 0);
  const auto noise = NoiseMatrix::noiseless(2);
  Rng init(6);
  VoterProtocol voter(p, init);
  AggregateEngine engine;
  Rng rng(7);
  const auto result =
      run(voter, engine, noise, p.correct_opinion(),
          RunConfig{.h = 1, .max_rounds = 3000}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(MajorityDynamics, SourcesAreZealots) {
  const auto p = pop(10, 1, 1);
  Rng init(8);
  MajorityDynamics md(p, init);
  Rng rng(9);
  md.update(0, 0, obs2(9, 0), rng);
  EXPECT_EQ(md.opinion(0), 1);
}

TEST(MajorityDynamics, AdoptsObservedMajority) {
  const auto p = pop(10, 1, 0);
  Rng init(10);
  MajorityDynamics md(p, init);
  Rng rng(11);
  md.update(4, 0, obs2(2, 5), rng);
  EXPECT_EQ(md.opinion(4), 1);
  md.update(4, 1, obs2(5, 2), rng);
  EXPECT_EQ(md.opinion(4), 0);
}

TEST(MajorityDynamics, TieBreaksAreFair) {
  const auto p = pop(10, 1, 0);
  int ones = 0;
  const int kReps = 2000;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng init(12);
    MajorityDynamics md(p, init);
    Rng rng(9000 + rep);
    md.update(4, 0, obs2(3, 3), rng);
    ones += md.opinion(4);
  }
  EXPECT_GT(ones, kReps / 2 - 150);
  EXPECT_LT(ones, kReps / 2 + 150);
}

TEST(MajorityDynamics, ReachesSomeConsensusFastButNotReliablyTheCorrectOne) {
  // With a single source among n = 400 and h = n, majority dynamics locks
  // onto whatever the initial random majority was — the correct opinion
  // only ~half the time.  (This is the failure mode SF avoids.)
  const auto p = pop(400, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  int correct = 0;
  const int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng init(2000 + rep);
    MajorityDynamics md(p, init);
    AggregateEngine engine;
    Rng rng(3000 + rep);
    const auto result = run(md, engine, noise, p.correct_opinion(),
                            RunConfig{.h = p.n, .max_rounds = 60}, rng);
    correct += result.all_correct_at_end ? 1 : 0;
  }
  EXPECT_GT(correct, 1);       // it does sometimes land on the source's value
  EXPECT_LT(correct, kReps - 1);  // ...but nowhere near reliably
}

TEST(RepeatedMajority, WindowAccumulatesAcrossRounds) {
  const auto p = pop(10, 1, 0);
  Rng init(13);
  RepeatedMajority rm(p, 6, init);
  EXPECT_EQ(rm.window(), 6u);
  Rng rng(14);
  rm.update(4, 0, obs2(0, 3), rng);
  const Opinion before = rm.opinion(4);
  rm.update(4, 1, obs2(0, 2), rng);
  EXPECT_EQ(rm.opinion(4), before);  // 5 < 6: no decision yet
  rm.update(4, 2, obs2(0, 1), rng);
  EXPECT_EQ(rm.opinion(4), 1);  // 6 ones vs 0 zeros
}

TEST(RepeatedMajority, ZealotsIgnoreObservations) {
  const auto p = pop(10, 1, 0);
  Rng init(15);
  RepeatedMajority rm(p, 2, init);
  Rng rng(16);
  rm.update(0, 0, obs2(10, 0), rng);
  EXPECT_EQ(rm.opinion(0), 1);
}

TEST(RepeatedMajority, InputValidation) {
  const auto p = pop(10, 1, 0);
  Rng init(17);
  EXPECT_THROW(RepeatedMajority(p, 0, init), std::invalid_argument);
  RepeatedMajority rm(p, 2, init);
  Rng rng(18);
  SymbolCounts wrong(4);
  EXPECT_THROW(rm.update(0, 0, wrong, rng), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
