// ObservationSampler correctness: distribution exactness (same chi-square
// harness as the BINV/BTRS samplers in test_binomial.cpp), cache/uncached
// draw equivalence, mode selection, fallback behavior, and input validation.
#include "noisypull/rng/observation_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/rng/binomial.hpp"

namespace noisypull {
namespace {

SymbolCounts draw(const ObservationSampler& sampler, Rng& rng, std::size_t d) {
  SymbolCounts obs(d);
  sampler.sample(rng, obs);
  return obs;
}

TEST(ObservationSampler, ModeSelection) {
  ObservationSampler s;
  const std::vector<double> q2 = {0.7, 0.3};

  s.reset(16, q2, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  EXPECT_TRUE(s.cached());

  s.reset(16, q2, /*cache=*/false);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  EXPECT_FALSE(s.cached());

  // Binary: h+1 outcomes, so the cap trips exactly past kMaxOutcomes − 1.
  s.reset(ObservationSampler::kMaxOutcomes - 1, q2, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  s.reset(ObservationSampler::kMaxOutcomes, q2, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);
  EXPECT_FALSE(s.cached());

  // k-ary: C(h+d−1, d−1) outcomes grows fast; h=100, d=4 → C(103,3) > 2^14.
  const std::vector<double> q4 = {0.4, 0.3, 0.2, 0.1};
  s.reset(20, q4, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  s.reset(100, q4, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);

  // h == 0 has a single trivial outcome; decomposition handles it directly.
  s.reset(0, q2, /*cache=*/true);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);
}

TEST(ObservationSampler, AmortizationGateUsesExpectedDraws) {
  // The mode is a function of (h, d, expected_draws) alone — never of the
  // cache flag.  A table whose build cost cannot amortize over the draws it
  // will serve this round is skipped in favor of direct decomposition.
  ObservationSampler s;
  const std::vector<double> q2 = {0.7, 0.3};

  for (const bool cache : {true, false}) {
    // Plenty of draws: the 65-outcome table pays for itself.
    s.reset(64, q2, cache, /*expected_draws=*/20000);
    EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
    // 65 outcomes but only 4 draws: building the table costs more than it
    // saves, so the gate picks decomposition.
    s.reset(64, q2, cache, /*expected_draws=*/4);
    EXPECT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);
    // No estimate: the gate defaults to building the table.
    s.reset(64, q2, cache);
    EXPECT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  }

  // The outcome cap dominates regardless of how many draws are promised.
  s.reset(ObservationSampler::kMaxOutcomes, q2, /*cache=*/true,
          /*expected_draws=*/1000000);
  EXPECT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);

  // With identical estimates the cache flag never changes the draw stream.
  ObservationSampler a, b;
  a.reset(64, q2, /*cache=*/true, /*expected_draws=*/4);
  b.reset(64, q2, /*cache=*/false, /*expected_draws=*/4);
  Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 100; ++i) {
    const auto x = draw(a, rng_a, 2);
    const auto y = draw(b, rng_b, 2);
    ASSERT_EQ(x[1], y[1]) << "draw " << i;
  }
}

TEST(ObservationSampler, DrawsSumToHAndRespectZeroWeights) {
  ObservationSampler s;
  const std::vector<double> q = {0.5, 0.0, 0.5};
  for (const bool cache : {true, false}) {
    s.reset(12, q, cache);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const auto obs = draw(s, rng, q.size());
      EXPECT_EQ(obs.total(), 12u);
      EXPECT_EQ(obs[1], 0u) << "mass on a zero-weight symbol";
    }
  }
}

TEST(ObservationSampler, ZeroRoundsDrawIsAllZero) {
  ObservationSampler s;
  const std::vector<double> q = {0.0, 0.0};  // h == 0 admits zero total mass
  s.reset(0, q, /*cache=*/true);
  Rng rng(5);
  const auto obs = draw(s, rng, 2);
  EXPECT_EQ(obs.total(), 0u);
}

TEST(ObservationSampler, CacheToggleIsDrawForDrawIdentical) {
  // Same seed, same draw index → identical count vector with the table on
  // and off; this is the micro-level version of the engine digest test.
  ObservationSampler cached, uncached;
  const std::vector<double> q = {0.35, 0.05, 0.4, 0.2};
  cached.reset(9, q, /*cache=*/true);
  uncached.reset(9, q, /*cache=*/false);
  Rng rng_a(42), rng_b(42);
  for (int i = 0; i < 500; ++i) {
    const auto a = draw(cached, rng_a, q.size());
    const auto b = draw(uncached, rng_b, q.size());
    for (std::size_t sym = 0; sym < q.size(); ++sym) {
      ASSERT_EQ(a[sym], b[sym]) << "draw " << i << " symbol " << sym;
    }
  }
}

TEST(ObservationSampler, DecompositionFallbackMatchesMultinomialSampler) {
  // Above the outcome cap the sampler must be byte-compatible with
  // sample_multinomial — same rng consumption, same counts.
  ObservationSampler s;
  const std::vector<double> q = {0.25, 0.25, 0.25, 0.25};
  s.reset(100, q, /*cache=*/true);
  ASSERT_EQ(s.mode(), ObservationSampler::Mode::Decomposition);
  Rng rng_a(9), rng_b(9);
  for (int i = 0; i < 50; ++i) {
    const auto a = draw(s, rng_a, q.size());
    std::uint64_t expect[4];
    sample_multinomial(rng_b, 100, q, expect);
    for (std::size_t sym = 0; sym < 4; ++sym) {
      ASSERT_EQ(a[sym], expect[sym]) << "draw " << i << " symbol " << sym;
    }
  }
}

// Chi-square goodness of fit of the binary inverse-CDF path against the
// exact Binomial(h, p) law — identical harness to test_binomial.cpp: bin
// the support, accumulate exact binned probabilities from the log pmf,
// reject at the 99.9% critical value.
double binned_gof(std::uint64_t h, double p, bool cache, std::uint64_t seed,
                  std::span<const std::uint64_t> edges, int draws) {
  ObservationSampler s;
  const std::vector<double> q = {1.0 - p, p};
  s.reset(h, q, cache);
  const std::size_t bins = edges.size() + 1;
  std::vector<std::uint64_t> observed(bins, 0);
  Rng rng(seed);
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t x = draw(s, rng, 2)[1];
    std::size_t b = 0;
    while (b < edges.size() && x >= edges[b]) ++b;
    observed[b] += 1;
  }
  std::vector<double> expected(bins, 0.0);  // binned exact probabilities
  double logc = static_cast<double>(h) * std::log(1.0 - p);  // log pmf at 0
  const double lodds = std::log(p) - std::log(1.0 - p);
  for (std::uint64_t k = 0; k <= h; ++k) {
    std::size_t b = 0;
    while (b < edges.size() && k >= edges[b]) ++b;
    expected[b] += std::exp(logc);
    if (k < h) {
      logc += std::log(static_cast<double>(h - k)) -
              std::log(static_cast<double>(k + 1)) + lodds;
    }
  }
  return chi_square_statistic(observed, expected);
}

TEST(ObservationSampler, BinaryGoodnessOfFit) {
  // h = 40, p = 0.2: mean 8, sd ≈ 2.5; seven bins around the bulk.
  const std::uint64_t edges[] = {5, 7, 8, 9, 10, 12};
  const double crit = chi_square_critical_999(6);
  EXPECT_LT(binned_gof(40, 0.2, /*cache=*/true, 601, edges, 120000), crit);
  EXPECT_LT(binned_gof(40, 0.2, /*cache=*/false, 602, edges, 120000), crit);
}

TEST(ObservationSampler, KaryMarginalGoodnessOfFit) {
  // A multinomial marginal is Binomial(h, p_i): test symbol 2 of a 4-ary
  // sampler through the same binned harness.
  ObservationSampler s;
  const std::vector<double> q = {0.3, 0.2, 0.4, 0.1};
  s.reset(25, q, /*cache=*/true);
  ASSERT_EQ(s.mode(), ObservationSampler::Mode::InverseCdf);
  const std::uint64_t h = 25;
  const double p = 0.4;
  const std::uint64_t edges[] = {7, 9, 10, 11, 12, 14};
  const std::size_t bins = 7;
  std::vector<std::uint64_t> observed(bins, 0);
  Rng rng(603);
  const int draws = 120000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t x = draw(s, rng, 4)[2];
    std::size_t b = 0;
    while (b < 6 && x >= edges[b]) ++b;
    observed[b] += 1;
  }
  std::vector<double> expected(bins, 0.0);  // binned exact probabilities
  double logc = static_cast<double>(h) * std::log(1.0 - p);
  const double lodds = std::log(p) - std::log(1.0 - p);
  for (std::uint64_t k = 0; k <= h; ++k) {
    std::size_t b = 0;
    while (b < 6 && k >= edges[b]) ++b;
    expected[b] += std::exp(logc);
    if (k < h) {
      logc += std::log(static_cast<double>(h - k)) -
              std::log(static_cast<double>(k + 1)) + lodds;
    }
  }
  EXPECT_LT(chi_square_statistic(observed, expected),
            chi_square_critical_999(6));
}

TEST(ObservationSampler, RejectsInvalidInputs) {
  ObservationSampler s;
  const std::vector<double> negative = {0.5, -0.1};
  EXPECT_THROW(s.reset(4, negative, true), std::invalid_argument);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(s.reset(4, zero, true), std::invalid_argument);
  const std::vector<double> tiny = {1.0};
  EXPECT_THROW(s.reset(4, tiny, true), std::invalid_argument);
  ObservationSampler fresh;
  const std::vector<double> ok = {0.5, 0.5};
  fresh.reset(4, ok, true);
  SymbolCounts wrong(3);
  Rng rng(1);
  EXPECT_THROW(fresh.sample(rng, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
