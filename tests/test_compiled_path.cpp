// Bit-identity contract of the compiled automaton fast path (DESIGN.md §13).
//
// The compiled path replaces the virtual display/update dispatch with a flat
// SoA state vector, per-signature display memo tables and a memoized
// (state id, outcome index) → edge transition table.  None of that may ever
// change a trajectory: for every protocol family (Table / SF / SSF), engine
// (Aggregate / Heterogeneous, bare or wrapped in FaultyEngine), lane count,
// sampler-cache toggle and fault plan, the replay digest AND the final
// per-agent opinions must be identical to the interpreted run, which in turn
// matches the mirrored production protocol draw for draw.  These tests pin:
//   * ObservationSampler::sample_index consumes the rng exactly like
//     sample() and returns that outcome's enumeration index (cached and
//     uncached, binary and k-ary);
//   * compiled == interpreted on the same CompiledPopulation, across lanes
//     {1, 4}, cache {on, off}, engines {Aggregate, Heterogeneous};
//   * CompiledPopulation == the production protocol it mirrors
//     (AutomatonProtocol / SourceFilter / SelfStabilizingSourceFilter);
//   * the same under FaultyEngine with zero and nonzero FaultPlans — the
//     forged/stalled/drop fallbacks route exactly the faulted agents through
//     the virtual path and nobody else's draws move;
//   * heterogeneous channel groups too small to amortize the inverse-CDF
//     table fall back per agent without disturbing the fast-path agents.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "noisypull/common/fnv.hpp"
#include "noisypull/core/automaton/compiled_population.hpp"
#include "noisypull/core/automaton/protocol_automata.hpp"
#include "noisypull/core/schedule.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/core/ssf.hpp"
#include "noisypull/fault/faulty_engine.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/rng/observation_cache.hpp"

namespace noisypull {
namespace {

constexpr std::uint64_t kN = 48;
constexpr double kDelta = 0.2;
// s1 = 2, s0 = 1: all three factory groups (sources preferring 1, sources
// preferring 0, non-sources) are non-empty and the schedule bias stays >= 1.
constexpr PopulationConfig kPop{.n = kN, .s1 = 2, .s0 = 1};

enum class Proto { Table, Sf, Ssf };

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::Table: return "Table";
    case Proto::Sf: return "Sf";
    case Proto::Ssf: return "Ssf";
  }
  return "?";
}

// Per-family run geometry.  SSF uses h = 4 so the d = 4 outcome space
// (C(7,3) = 35) passes the aggregate sampler's amortization gate at n = 48;
// its memory budget m = 16 flushes every ceil(16/4) = 4 rounds.
struct ProtoParams {
  std::size_t d;
  std::uint64_t h;
  std::uint64_t rounds;
};

ProtoParams params_of(Proto p) {
  switch (p) {
    case Proto::Table: return {.d = 2, .h = 16, .rounds = 32};
    case Proto::Sf: {
      const SfSchedule s = make_sf_schedule(kPop, Holdings{16}, Delta{kDelta});
      return {.d = 2, .h = 16, .rounds = s.total_rounds() + 4};
    }
    case Proto::Ssf: return {.d = 4, .h = 4, .rounds = 24};
  }
  return {};
}

// A two-state binary table automaton with a genuinely random tie edge, so
// the compiled InverseCdf rows exercise the coin mass and not just
// deterministic targets.
std::shared_ptr<const TableAutomaton> shared_table_automaton() {
  static const auto kAutomaton = std::make_shared<const TableAutomaton>(
      2, std::vector<TableState>{
             {.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
              .if_less = 1, .tie_a = 0, .tie_b = 1},
             {.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 0,
              .if_less = 1, .tie_a = 1, .tie_b = 0},
         });
  return kAutomaton;
}

// d = 3 variant: exercises the NEXCOM composition enumeration end to end
// (outcome indices, table rows, sample_index decode) instead of the binary
// h+1 ladder.
std::shared_ptr<const TableAutomaton> shared_kary_automaton() {
  static const auto kAutomaton = std::make_shared<const TableAutomaton>(
      3, std::vector<TableState>{
             {.show = 0, .watch_a = 0, .watch_b = 2, .if_greater = 0,
              .if_less = 1, .tie_a = 0, .tie_b = 2},
             {.show = 1, .watch_a = 1, .watch_b = 2, .if_greater = 1,
              .if_less = 2, .tie_a = 1, .tie_b = 0},
             {.show = 2, .watch_a = 0, .watch_b = 1, .if_greater = 2,
              .if_less = 0, .tie_a = 2, .tie_b = 1},
         });
  return kAutomaton;
}

std::unique_ptr<CompiledPopulation> make_compiled(Proto p) {
  std::unique_ptr<CompiledPopulation> pop;
  switch (p) {
    case Proto::Table:
      pop = std::make_unique<CompiledPopulation>(
          std::vector<CompiledGroup>{
              {.count = 8, .automaton = shared_table_automaton(), .initial = 1},
              {.count = kN - 8, .automaton = shared_table_automaton(),
               .initial = 0}},
          /*planned_rounds=*/0);
      break;
    case Proto::Sf:
      pop = make_compiled_sf(kPop,
                             make_sf_schedule(kPop, Holdings{16}, Delta{kDelta}));
      break;
    case Proto::Ssf:
      pop = make_compiled_ssf(kPop, MemoryBudget{16});
      break;
  }
  // At n = 48 the default build gate would route most rounds through the
  // virtual path (row compilation rarely amortizes over so few agents);
  // force the fast path so the matrix genuinely exercises it.  The gate's
  // own identity is pinned separately in DefaultBuildGateKeepsIdentity.
  if (pop) pop->set_table_build_limit(1e18);
  return pop;
}

// The production protocol each compiled population mirrors.  The holder
// keeps non-owned automata alive for AutomatonProtocol.
struct Production {
  std::unique_ptr<PullProtocol> protocol;
  std::shared_ptr<const AgentAutomaton> keepalive;
};

Production make_production(Proto p) {
  switch (p) {
    case Proto::Table: {
      auto automaton = shared_table_automaton();
      auto protocol = std::make_unique<AutomatonProtocol>(
          std::vector<AutomatonGroup>{
              {.count = 8, .automaton = automaton.get(), .initial = 1},
              {.count = kN - 8, .automaton = automaton.get(), .initial = 0}});
      return {std::move(protocol), std::move(automaton)};
    }
    case Proto::Sf:
      return {std::make_unique<SourceFilter>(
                  kPop, make_sf_schedule(kPop, Holdings{16}, Delta{kDelta})),
              nullptr};
    case Proto::Ssf:
      return {std::make_unique<SelfStabilizingSourceFilter>(
                  SelfStabilizingSourceFilter::with_memory_budget(
                      kPop, Holdings{4}, MemoryBudget{16})),
              nullptr};
  }
  return {};
}

enum class Eng { Aggregate, Heterogeneous };

std::string eng_name(Eng e) {
  return e == Eng::Aggregate ? "Aggregate" : "Heterogeneous";
}

// Two channel tiers (24 + 24 agents) so HeterogeneousEngine builds two
// sampler groups, both within the inverse-CDF amortization gate for the
// binary families.
std::unique_ptr<Engine> make_engine(Eng e, std::size_t d) {
  if (e == Eng::Aggregate) return std::make_unique<AggregateEngine>();
  std::vector<NoiseMatrix> per_agent;
  per_agent.reserve(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    per_agent.push_back(NoiseMatrix::uniform(d, i < kN / 2 ? 0.1 : kDelta));
  }
  return std::make_unique<HeterogeneousEngine>(std::move(per_agent));
}

struct RunOut {
  std::uint64_t digest = 0;
  std::vector<Opinion> opinions;

  bool operator==(const RunOut&) const = default;
};

RunOut run(PullProtocol& protocol, Engine& engine, const ProtoParams& pp,
           std::uint64_t seed) {
  const auto noise = NoiseMatrix::uniform(pp.d, kDelta);
  Rng rng(seed);
  for (std::uint64_t r = 0; r < pp.rounds; ++r) {
    engine.step(protocol, noise, Holdings{pp.h}, r, rng);
  }
  RunOut out;
  out.digest = engine.replay_digest();
  out.opinions.resize(protocol.num_agents());
  for (std::uint64_t i = 0; i < protocol.num_agents(); ++i) {
    out.opinions[i] = protocol.opinion(i);
  }
  return out;
}

FaultPlan nonzero_plan(Proto p, bool with_drop) {
  FaultPlan plan = p == Proto::Ssf ? FaultPlan::for_ssf(/*correct=*/1)
                                   : FaultPlan::for_binary(/*correct=*/1);
  plan.seed = 99;
  plan.first_eligible = kPop.s0 + kPop.s1;  // sources stay honest
  plan.byzantine.fraction = 0.25;
  if (with_drop) plan.drop.p = 0.2;
  plan.stall.crash_rate = 0.05;
  plan.burst.rate = 0.1;
  plan.burst.rounds = 2;
  // Uniform burst level, capped at 1/|alphabet| by FaultPlan::validate.
  plan.burst.delta = p == Proto::Ssf ? 0.2 : 0.5;
  return plan;
}

// ---------------------------------------------------------------------------
// sample_index: same draws, same outcome, by index.

TEST(CompiledSampler, SampleIndexMatchesSampleDrawForDraw) {
  for (std::size_t d : {std::size_t{2}, std::size_t{3}}) {
    const std::vector<double> weights =
        d == 2 ? std::vector<double>{0.3, 0.7}
               : std::vector<double>{0.2, 0.5, 0.3};
    for (bool cache : {true, false}) {
      ObservationSampler sampler;
      sampler.reset(/*h=*/6, weights, cache);
      ASSERT_EQ(sampler.mode(), ObservationSampler::Mode::InverseCdf);

      // Canonical enumeration, index → counts.
      std::vector<std::vector<std::uint64_t>> outcomes(sampler.num_outcomes());
      sampler.for_each_outcome(
          [&](std::uint64_t index, const SymbolCounts& obs) {
            ASSERT_LT(index, outcomes.size());
            for (std::size_t s = 0; s < d; ++s) {
              outcomes[index].push_back(obs[static_cast<Symbol>(s)]);
            }
          });

      Rng by_index(17);
      Rng by_counts(17);
      SymbolCounts obs(d);
      for (int draw = 0; draw < 256; ++draw) {
        const std::uint64_t index = sampler.sample_index(by_index);
        sampler.sample(by_counts, obs);
        ASSERT_LT(index, outcomes.size());
        for (std::size_t s = 0; s < d; ++s) {
          ASSERT_EQ(outcomes[index][s], obs[static_cast<Symbol>(s)])
              << "d=" << d << " cache=" << cache << " draw=" << draw;
        }
      }
      // Identical rng consumption: the streams stay in lockstep.
      EXPECT_EQ(by_index.next(), by_counts.next());
    }
  }
}

// ---------------------------------------------------------------------------
// The (protocol family × engine) bit-identity matrix.

struct Case {
  Proto proto;
  Eng eng;
};

class CompiledPath : public ::testing::TestWithParam<Case> {};

TEST_P(CompiledPath, CompiledMatchesInterpretedAcrossLanesAndCache) {
  const auto [proto, eng] = GetParam();
  const ProtoParams pp = params_of(proto);

  const auto ref_protocol = make_compiled(proto);
  const auto ref_engine = make_engine(eng, pp.d);
  const RunOut reference = run(*ref_protocol, *ref_engine, pp, 7);
  ASSERT_NE(reference.digest, fnv::kOffsetBasis) << "digest absorbed nothing";

  for (unsigned lanes : {1u, 4u}) {
    for (bool cache : {true, false}) {
      const auto protocol = make_compiled(proto);
      const auto engine = make_engine(eng, pp.d);
      engine->set_compiled(true);
      engine->set_threads(lanes);
      engine->set_sampler_cache(cache);
      EXPECT_EQ(run(*protocol, *engine, pp, 7), reference)
          << lanes << " lanes, cache=" << cache;
    }
  }
}

TEST_P(CompiledPath, CompiledMatchesTheProductionProtocol) {
  const auto [proto, eng] = GetParam();
  const ProtoParams pp = params_of(proto);

  const Production production = make_production(proto);
  const auto prod_engine = make_engine(eng, pp.d);
  const RunOut reference = run(*production.protocol, *prod_engine, pp, 7);

  const auto compiled = make_compiled(proto);
  const auto engine = make_engine(eng, pp.d);
  engine->set_compiled(true);
  engine->set_threads(4);
  EXPECT_EQ(run(*compiled, *engine, pp, 7), reference);
}

TEST_P(CompiledPath, FaultPlanMatrixPreservesBitIdentity) {
  const auto [proto, eng] = GetParam();
  const ProtoParams pp = params_of(proto);

  // Zero plan: FaultyEngine is a transparent pass-through and the fast path
  // must stay engaged through it.  Nonzero plans route forged / stalled /
  // dropped agents through the per-agent virtual fallback; the drop-free
  // variant keeps the fast path live for the honest majority.
  struct PlanCase {
    const char* name;
    FaultPlan plan;
  };
  const PlanCase plans[] = {
      {"zero", FaultPlan{}},
      {"byz+stall", nonzero_plan(proto, /*with_drop=*/false)},
      {"byz+stall+drop", nonzero_plan(proto, /*with_drop=*/true)},
  };

  for (const PlanCase& pc : plans) {
    const auto ref_protocol = make_compiled(proto);
    const auto ref_inner = make_engine(eng, pp.d);
    FaultyEngine ref_engine(*ref_inner, pc.plan);
    const RunOut reference = run(*ref_protocol, ref_engine, pp, 7);

    for (unsigned lanes : {1u, 4u}) {
      const auto protocol = make_compiled(proto);
      const auto inner = make_engine(eng, pp.d);
      FaultyEngine faulty(*inner, pc.plan);
      faulty.set_compiled(true);
      faulty.set_threads(lanes);
      EXPECT_EQ(run(*protocol, faulty, pp, 7), reference)
          << pc.name << ", " << lanes << " lanes";
    }

    // And production-protocol equivalence under the same faults.
    const Production production = make_production(proto);
    const auto prod_inner = make_engine(eng, pp.d);
    FaultyEngine prod_engine(*prod_inner, pc.plan);
    EXPECT_EQ(run(*production.protocol, prod_engine, pp, 7), reference)
        << pc.name << " (production)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CompiledPath,
    ::testing::Values(Case{Proto::Table, Eng::Aggregate},
                      Case{Proto::Table, Eng::Heterogeneous},
                      Case{Proto::Sf, Eng::Aggregate},
                      Case{Proto::Sf, Eng::Heterogeneous},
                      Case{Proto::Ssf, Eng::Aggregate},
                      Case{Proto::Ssf, Eng::Heterogeneous}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return proto_name(info.param.proto) + eng_name(info.param.eng);
    });

// ---------------------------------------------------------------------------
// Channel groups below the amortization gate fall back per agent.

TEST(CompiledPathEdge, UndersizedHeterogeneousGroupFallsBackPerAgent) {
  // 44 + 4 split at h = 16, d = 2: the big tier's 17-outcome space passes
  // the gate (17 <= 44), the small tier's does not (17 > 4), so its four
  // agents run the virtual fallback while the rest stay compiled.
  const ProtoParams pp = params_of(Proto::Sf);
  const auto make_split_engine = [&] {
    std::vector<NoiseMatrix> per_agent;
    for (std::uint64_t i = 0; i < kN; ++i) {
      per_agent.push_back(
          NoiseMatrix::uniform(pp.d, i < kN - 4 ? kDelta : 0.1));
    }
    return std::make_unique<HeterogeneousEngine>(std::move(per_agent));
  };

  const auto ref_protocol = make_compiled(Proto::Sf);
  const auto ref_engine = make_split_engine();
  const RunOut reference = run(*ref_protocol, *ref_engine, pp, 11);

  const auto protocol = make_compiled(Proto::Sf);
  const auto engine = make_split_engine();
  engine->set_compiled(true);
  engine->set_threads(4);
  EXPECT_EQ(run(*protocol, *engine, pp, 11), reference);
}

// ---------------------------------------------------------------------------
// The default build gate (table_build_limit = 1.0) declines rounds whose row
// compilation would not amortize; declined rounds run the virtual path and
// the trajectory must not move.

TEST(CompiledPathEdge, DefaultBuildGateKeepsIdentity) {
  for (Proto proto : {Proto::Sf, Proto::Ssf}) {
    const ProtoParams pp = params_of(proto);
    const auto ref_protocol = make_compiled(proto);  // forced fast path
    AggregateEngine ref_engine;
    ref_engine.set_compiled(true);
    const RunOut reference = run(*ref_protocol, ref_engine, pp, 41);

    const auto gated = make_compiled(proto);
    gated->set_table_build_limit(1.0);  // back to the production default
    AggregateEngine engine;
    engine.set_compiled(true);
    EXPECT_EQ(run(*gated, engine, pp, 41), reference) << proto_name(proto);
  }
}

// ---------------------------------------------------------------------------
// k-ary alphabet: the composition enumeration end to end.

TEST(CompiledPathEdge, KaryTableCompiledMatchesInterpretedAndProduction) {
  const ProtoParams pp{.d = 3, .h = 4, .rounds = 32};
  const auto automaton = shared_kary_automaton();
  const auto make_pop = [&] {
    auto pop = std::make_unique<CompiledPopulation>(
        std::vector<CompiledGroup>{
            {.count = 6, .automaton = automaton, .initial = 1},
            {.count = 6, .automaton = automaton, .initial = 2},
            {.count = kN - 12, .automaton = automaton, .initial = 0}},
        /*planned_rounds=*/0);
    pop->set_table_build_limit(1e18);
    return pop;
  };

  const auto ref_protocol = make_pop();
  AggregateEngine ref_engine;
  const RunOut reference = run(*ref_protocol, ref_engine, pp, 23);

  const auto compiled = make_pop();
  AggregateEngine engine;
  engine.set_compiled(true);
  engine.set_threads(4);
  EXPECT_EQ(run(*compiled, engine, pp, 23), reference);

  AutomatonProtocol production(std::vector<AutomatonGroup>{
      {.count = 6, .automaton = automaton.get(), .initial = 1},
      {.count = 6, .automaton = automaton.get(), .initial = 2},
      {.count = kN - 12, .automaton = automaton.get(), .initial = 0}});
  AggregateEngine prod_engine;
  EXPECT_EQ(run(production, prod_engine, pp, 23), reference);
}

// ---------------------------------------------------------------------------
// Interned-state accessors stay consistent with reported opinions.

TEST(CompiledPathEdge, StateAccessorAgreesWithOpinion) {
  const ProtoParams pp = params_of(Proto::Ssf);
  const auto automaton = std::make_shared<const SsfAutomaton>(
      MemoryBudget{16}, /*is_source=*/false, /*preference=*/0);
  CompiledPopulation protocol(
      std::vector<CompiledGroup>{{.count = kN, .automaton = automaton,
                                  .initial = 0}},
      /*planned_rounds=*/0);
  protocol.set_table_build_limit(1e18);
  AggregateEngine engine;
  engine.set_compiled(true);
  run(protocol, engine, pp, 31);
  for (std::uint64_t i = 0; i < protocol.num_agents(); ++i) {
    // opinion() is a pure function of the interned SoA state.
    EXPECT_EQ(protocol.opinion(i), automaton->opinion(protocol.state(i))) << i;
  }
}

}  // namespace
}  // namespace noisypull
