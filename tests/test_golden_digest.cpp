// Golden replay-digest regression tests: three pinned (engine, seed,
// FaultPlan) tuples whose full-run replay digests are committed under
// tests/golden/ and re-verified by ctest.
//
// Purpose: catch *semantic* drift.  Any change to engine sampling, runner
// sequencing, or fault realization that alters trajectories for identical
// inputs must either be intentional (bump kCellCacheSchemaVersion and
// regenerate the goldens) or is a bug this test pins down to the commit.
//
// Toolchain calibration: the display trajectory depends on floating-point
// code generation (-ffp-contract, libm), so a digest pinned by one
// compiler need not reproduce under another.  Each golden file therefore
// carries a fourth, *calibration* tuple: when the current build reproduces
// the calibration digest, it is trajectory-compatible with the build that
// wrote the goldens and the three pinned tuples are enforced bit-for-bit;
// when it does not, the pinned comparisons are skipped with a diagnostic
// (the within-binary determinism contract is still covered by
// test_replay_digest.cpp and --verify-replay).
//
// Regenerate after an intentional semantics change:
//   NOISYPULL_UPDATE_GOLDEN=1 ./noisypull_tests --gtest_filter='GoldenDigest.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "noisypull/common/atomic_io.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/fault/faulty_engine.hpp"
#include "noisypull/model/engine.hpp"

#ifndef NOISYPULL_GOLDEN_DIR
#error "NOISYPULL_GOLDEN_DIR must point at tests/golden (set in CMakeLists)"
#endif

namespace noisypull {
namespace {

constexpr std::uint64_t kN = 48;
constexpr std::uint64_t kH = 16;
constexpr double kDelta = 0.2;

// Same full-horizon construction as test_replay_digest.cpp: only a full run
// makes the display trajectory — and hence the digest — depend on the
// sampling randomness.
std::uint64_t digest_of_run(Engine& engine, std::uint64_t seed) {
  const PopulationConfig pop{.n = kN, .s1 = 1, .s0 = 0};
  SourceFilter protocol(pop, Holdings{kH}, Delta{kDelta}, C1{2.0});
  const auto noise = NoiseMatrix::uniform(2, kDelta);
  Rng rng(seed);
  const std::uint64_t rounds = protocol.planned_rounds() + 4;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(protocol, noise, Holdings{kH}, r, rng);
  }
  return engine.replay_digest();
}

struct GoldenTuple {
  const char* name;
  bool aggregate;  // false = ExactEngine
  std::uint64_t seed;
  bool faulted;
  FaultPlan plan;
};

FaultPlan byz_drop_plan() {
  FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
  plan.seed = 99;
  plan.first_eligible = 1;
  plan.byzantine.fraction = 0.25;
  plan.drop.p = 0.2;
  return plan;
}

FaultPlan stall_burst_plan() {
  FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
  plan.seed = 17;
  plan.first_eligible = 1;
  plan.stall.crash_rate = 0.1;
  plan.stall.min_rounds = 2;
  plan.stall.max_rounds = 6;
  plan.burst.rate = 0.3;
  plan.burst.rounds = 2;
  plan.burst.delta = 0.4;
  return plan;
}

// "calibration" must stay first: it decides whether the rest are enforced.
const std::vector<GoldenTuple>& tuples() {
  static const std::vector<GoldenTuple> kTuples = {
      {"calibration", /*aggregate=*/true, /*seed=*/3, /*faulted=*/false, {}},
      {"aggregate-seed7-clean", true, 7, false, {}},
      {"exact-seed11-byz-drop", false, 11, true, byz_drop_plan()},
      {"aggregate-seed13-stall-burst", true, 13, true, stall_burst_plan()},
  };
  return kTuples;
}

std::uint64_t compute(const GoldenTuple& t) {
  std::unique_ptr<Engine> inner;
  if (t.aggregate) {
    inner = std::make_unique<AggregateEngine>();
  } else {
    inner = std::make_unique<ExactEngine>();
  }
  if (!t.faulted) return digest_of_run(*inner, t.seed);
  FaultyEngine faulty(*inner, t.plan);
  return digest_of_run(faulty, t.seed);
}

std::string golden_path() {
  return std::string(NOISYPULL_GOLDEN_DIR) + "/replay_digests.txt";
}

std::string render(const std::map<std::string, std::uint64_t>& digests) {
  std::ostringstream os;
  os << "# Golden replay digests (test_golden_digest.cpp).  Regenerate with\n"
     << "# NOISYPULL_UPDATE_GOLDEN=1 after an intentional trajectory-\n"
     << "# semantics change; the calibration line gates enforcement to\n"
     << "# builds that reproduce the writing toolchain's trajectories.\n";
  for (const GoldenTuple& t : tuples()) {
    os << t.name << " " << std::hex << std::setfill('0') << std::setw(16)
       << digests.at(t.name) << std::dec << "\n";
  }
  return os.str();
}

std::map<std::string, std::uint64_t> parse(const std::string& text) {
  std::map<std::string, std::uint64_t> digests;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name;
    std::uint64_t digest = 0;
    if (fields >> name >> std::hex >> digest) digests[name] = digest;
  }
  return digests;
}

TEST(GoldenDigest, PinnedTuplesMatchCommittedDigests) {
  std::map<std::string, std::uint64_t> current;
  for (const GoldenTuple& t : tuples()) current[t.name] = compute(t);

  if (std::getenv("NOISYPULL_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(io::atomic_write_file(golden_path(), render(current)));
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  const auto payload = io::read_file(golden_path());
  ASSERT_TRUE(payload.has_value())
      << "missing golden file " << golden_path()
      << " — regenerate with NOISYPULL_UPDATE_GOLDEN=1";
  const auto committed = parse(*payload);
  for (const GoldenTuple& t : tuples()) {
    ASSERT_TRUE(committed.count(t.name) != 0)
        << "golden file lacks tuple " << t.name;
  }

  if (committed.at("calibration") != current.at("calibration")) {
    GTEST_SKIP() << "this toolchain produces different trajectories than the "
                    "one that wrote the goldens (floating-point code "
                    "generation); pinned digests not enforced here — "
                    "regenerate with NOISYPULL_UPDATE_GOLDEN=1 to pin this "
                    "toolchain instead";
  }
  for (const GoldenTuple& t : tuples()) {
    EXPECT_EQ(current.at(t.name), committed.at(t.name))
        << "replay digest drifted for pinned tuple '" << t.name
        << "' — trajectory semantics changed; if intentional, bump "
           "kCellCacheSchemaVersion and regenerate the goldens";
  }
}

TEST(GoldenDigest, TuplesAreMutuallyDistinct) {
  // A golden layer where two pinned tuples collide would silently halve its
  // coverage; the tuples are chosen to exercise different engines and fault
  // classes, so their digests must differ.
  std::map<std::string, std::uint64_t> current;
  for (const GoldenTuple& t : tuples()) current[t.name] = compute(t);
  EXPECT_NE(current.at("aggregate-seed7-clean"),
            current.at("exact-seed11-byz-drop"));
  EXPECT_NE(current.at("aggregate-seed7-clean"),
            current.at("aggregate-seed13-stall-burst"));
  EXPECT_NE(current.at("exact-seed11-byz-drop"),
            current.at("aggregate-seed13-stall-burst"));
  EXPECT_NE(current.at("calibration"), current.at("aggregate-seed7-clean"));
}

}  // namespace
}  // namespace noisypull
