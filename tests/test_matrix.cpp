#include "noisypull/linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace noisypull {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
  EXPECT_FALSE(m.is_square());
}

TEST(Matrix, InitializerListIsRowMajor) {
  Matrix m{1, 2, 3, 4};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
  EXPECT_TRUE(m.is_square());
}

TEST(Matrix, InitializerListMustBePerfectSquare) {
  EXPECT_THROW(Matrix({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(Matrix(std::initializer_list<double>{}),
               std::invalid_argument);
}

TEST(Matrix, ZeroDimensionsRejected) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, CheckedAccessThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, 2), std::invalid_argument);
}

TEST(Matrix, Product) {
  const Matrix a{1, 2, 3, 4};
  const Matrix b{5, 6, 7, 8};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  const Matrix a{1, 2, 3, 4};
  EXPECT_EQ((a * Matrix::identity(2)).max_abs_diff(a), 0.0);
  EXPECT_EQ((Matrix::identity(2) * a).max_abs_diff(a), 0.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, SumAndDifference) {
  const Matrix a{1, 2, 3, 4};
  const Matrix b{4, 3, 2, 1};
  const Matrix s = a + b;
  const Matrix d = a - b;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(s(i, j), 5.0);
      EXPECT_EQ(d(i, j), a(i, j) - b(i, j));
    }
  }
}

TEST(Matrix, ScalarProduct) {
  const Matrix a{1, 2, 3, 4};
  const Matrix b = a * 2.0;
  EXPECT_EQ(b(1, 1), 8.0);
}

TEST(Matrix, InfNormIsMaxAbsoluteRowSum) {
  const Matrix a{1, -2, -3, 0.5};
  EXPECT_DOUBLE_EQ(a.inf_norm(), 3.5);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{1, 2, 3, 4};
  const Matrix b{1, 2.5, 3, 3};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
  Matrix c(3, 3);
  EXPECT_THROW(a.max_abs_diff(c), std::invalid_argument);
}

TEST(Matrix, StochasticityPredicates) {
  const Matrix stochastic{0.25, 0.75, 0.5, 0.5};
  EXPECT_TRUE(stochastic.is_weakly_stochastic());
  EXPECT_TRUE(stochastic.is_stochastic());

  // Weakly stochastic (rows sum to 1) but with a negative entry.
  const Matrix weakly{1.5, -0.5, 0.25, 0.75};
  EXPECT_TRUE(weakly.is_weakly_stochastic());
  EXPECT_FALSE(weakly.is_stochastic());

  const Matrix neither{1, 1, 1, 1};
  EXPECT_FALSE(neither.is_weakly_stochastic());
  EXPECT_FALSE(neither.is_stochastic());
}

TEST(Matrix, Claim11ProductOfStochasticIsStochastic) {
  // If A and B are (weakly) stochastic then so is A·B — used implicitly
  // throughout Section 4.
  const Matrix a{0.9, 0.1, 0.3, 0.7};
  const Matrix b{0.6, 0.4, 0.2, 0.8};
  EXPECT_TRUE((a * b).is_stochastic());
}

}  // namespace
}  // namespace noisypull
