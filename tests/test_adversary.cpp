#include "noisypull/sim/adversary.hpp"

#include <gtest/gtest.h>

namespace noisypull {
namespace {

using Ssf = SelfStabilizingSourceFilter;

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

TEST(Adversary, PolicyNames) {
  EXPECT_STREQ(to_string(CorruptionPolicy::None), "none");
  EXPECT_STREQ(to_string(CorruptionPolicy::RandomState), "random-state");
  EXPECT_STREQ(to_string(CorruptionPolicy::WrongConsensus), "wrong-consensus");
  EXPECT_STREQ(to_string(CorruptionPolicy::OverflowMemory), "overflow-memory");
  EXPECT_STREQ(to_string(CorruptionPolicy::DesyncClocks), "desync-clocks");
}

TEST(Adversary, NoneLeavesStateUntouched) {
  const auto p = pop(20, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{50});
  Rng rng(1);
  corrupt_population(ssf, CorruptionPolicy::None, 1, rng);
  for (std::uint64_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(ssf.memory(i).total(), 0u);
    EXPECT_EQ(ssf.weak_opinion(i), 0);
    EXPECT_EQ(ssf.opinion(i), 0);
  }
}

TEST(Adversary, WrongConsensusFillsMemoriesWithFakeSourceMessages) {
  const auto p = pop(20, 1, 0);  // correct = 1 → adversary pushes 0
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{50});
  Rng rng(2);
  corrupt_population(ssf, CorruptionPolicy::WrongConsensus, 1, rng);
  const Symbol fake = Ssf::encode(true, 0);
  for (std::uint64_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(ssf.memory(i)[fake], 49u);  // m − 1
    EXPECT_EQ(ssf.memory(i).total(), 49u);
    EXPECT_EQ(ssf.weak_opinion(i), 0);
    EXPECT_EQ(ssf.opinion(i), 0);
  }
}

TEST(Adversary, OverflowMemoryExceedsBudget) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{50});
  Rng rng(3);
  corrupt_population(ssf, CorruptionPolicy::OverflowMemory, 1, rng);
  for (std::uint64_t i = 0; i < p.n; ++i) {
    EXPECT_GT(ssf.memory(i).total(), 10 * 50u);
  }
}

TEST(Adversary, RandomStateStaysBelowBudgetAndVaries) {
  const auto p = pop(200, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{64});
  Rng rng(4);
  corrupt_population(ssf, CorruptionPolicy::RandomState, 1, rng);
  std::uint64_t distinct_totals = 0;
  std::uint64_t prev = ~0ULL;
  for (std::uint64_t i = 0; i < p.n; ++i) {
    const auto total = ssf.memory(i).total();
    EXPECT_LT(total, 64u);
    if (total != prev) ++distinct_totals;
    prev = total;
  }
  EXPECT_GT(distinct_totals, 10u);  // genuinely randomized
}

TEST(Adversary, DesyncClocksStaggersFillLevels) {
  const auto p = pop(200, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{97});
  Rng rng(5);
  corrupt_population(ssf, CorruptionPolicy::DesyncClocks, 1, rng);
  std::uint64_t min_total = ~0ULL, max_total = 0;
  for (std::uint64_t i = 0; i < p.n; ++i) {
    const auto total = ssf.memory(i).total();
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
    EXPECT_LE(total, 97u);
  }
  EXPECT_EQ(min_total, 0u);
  EXPECT_GT(max_total, 60u);  // levels spread across the cycle
}

TEST(Adversary, TaglessOverloadCoversAllPolicies) {
  const auto p = pop(50, 1, 0);
  for (const auto policy : kAllCorruptionPolicies) {
    TaglessSsf tagless(p, Holdings{2}, MemoryBudget{50});
    Rng rng(6);
    corrupt_population(tagless, policy, 1, rng);
    // Smoke: state is valid enough to keep running.
    Rng run_rng(7);
    SymbolCounts obs(2);
    obs[1] = 2;
    tagless.update(3, 0, obs, run_rng);
    EXPECT_LE(tagless.opinion(3), 1);
  }
}

}  // namespace
}  // namespace noisypull
