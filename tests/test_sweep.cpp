#include "noisypull/analysis/sweep.hpp"

#include <gtest/gtest.h>

namespace noisypull {
namespace {

TEST(GeometricGrid, PowersOfTwo) {
  EXPECT_EQ(geometric_grid(1, 16, 2.0),
            (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
}

TEST(GeometricGrid, NonIntegerFactorDeduplicates) {
  const auto g = geometric_grid(1, 4, 1.3);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  EXPECT_EQ(g.front(), 1u);
  EXPECT_GE(g.back(), 3u);
}

TEST(GeometricGrid, SinglePoint) {
  EXPECT_EQ(geometric_grid(5, 5, 2.0), (std::vector<std::uint64_t>{5}));
}

TEST(GeometricGrid, Validation) {
  EXPECT_THROW(geometric_grid(0, 10), std::invalid_argument);
  EXPECT_THROW(geometric_grid(10, 5), std::invalid_argument);
  EXPECT_THROW(geometric_grid(1, 10, 1.0), std::invalid_argument);
}

TEST(LinearGrid, CoversEndpoints) {
  const auto g = linear_grid(0.0, 0.4, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 0.4);
  EXPECT_NEAR(g[2], 0.2, 1e-12);
}

TEST(LinearGrid, Validation) {
  EXPECT_THROW(linear_grid(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(linear_grid(1, 0, 3), std::invalid_argument);
}

TEST(Stopwatch, IsMonotone) {
  Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  sw.reset();
  EXPECT_LE(sw.seconds(), b + 1.0);
}

}  // namespace
}  // namespace noisypull
