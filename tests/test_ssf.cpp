#include "noisypull/core/ssf.hpp"

#include <gtest/gtest.h>

#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

using Ssf = SelfStabilizingSourceFilter;

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

SymbolCounts obs4(std::uint64_t s00, std::uint64_t s01, std::uint64_t s10,
                  std::uint64_t s11) {
  SymbolCounts c(4);
  c[0] = s00;  // (0,0)
  c[1] = s01;  // (0,1)
  c[2] = s10;  // (1,0)
  c[3] = s11;  // (1,1)
  return c;
}

TEST(Ssf, SymbolEncoding) {
  EXPECT_EQ(Ssf::encode(false, 0), 0);
  EXPECT_EQ(Ssf::encode(false, 1), 1);
  EXPECT_EQ(Ssf::encode(true, 0), 2);
  EXPECT_EQ(Ssf::encode(true, 1), 3);
  for (Symbol s = 0; s < 4; ++s) {
    EXPECT_EQ(Ssf::encode(Ssf::first_bit(s), Ssf::second_bit(s)), s);
  }
}

TEST(Ssf, SourcesDisplayTagAndPreference) {
  const auto p = pop(10, 1, 1);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{100});
  EXPECT_EQ(ssf.display(0, 0), Ssf::encode(true, 1));   // 1-source
  EXPECT_EQ(ssf.display(1, 0), Ssf::encode(true, 0));   // 0-source
  EXPECT_EQ(ssf.display(5, 0), Ssf::encode(false, 0));  // weak opinion 0
}

TEST(Ssf, NonSourceDisplayTracksWeakOpinion) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{4}, MemoryBudget{8});
  Rng rng(1);
  // Fill memory with fake source messages carrying second bit 1: the next
  // update sets the weak opinion to 1 and the display follows.
  ssf.update(5, 0, obs4(0, 0, 0, 8), rng);
  EXPECT_EQ(ssf.weak_opinion(5), 1);
  EXPECT_EQ(ssf.display(5, 1), Ssf::encode(false, 1));
}

TEST(Ssf, UpdateTriggersExactlyAtBudget) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{6});
  Rng rng(2);
  // Two rounds of h = 2 leave the memory below m = 6: no update yet.
  ssf.update(4, 0, obs4(0, 0, 0, 2), rng);
  ssf.update(4, 1, obs4(0, 0, 0, 2), rng);
  EXPECT_EQ(ssf.memory(4).total(), 4u);
  EXPECT_EQ(ssf.weak_opinion(4), 0);  // untouched default
  // Third round reaches 6 → update fires and memory empties.
  ssf.update(4, 2, obs4(0, 0, 0, 2), rng);
  EXPECT_EQ(ssf.memory(4).total(), 0u);
  EXPECT_EQ(ssf.weak_opinion(4), 1);
  EXPECT_EQ(ssf.opinion(4), 1);
}

TEST(Ssf, WeakOpinionUsesOnlySourceTaggedMessages) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{10});
  Rng rng(3);
  // 7 untagged messages say 1, but the 3 tagged messages say 0: the weak
  // opinion must follow the tagged ones; the opinion follows the overall
  // majority.
  ssf.update(4, 0, obs4(0, 7, 3, 0), rng);
  EXPECT_EQ(ssf.weak_opinion(4), 0);
  EXPECT_EQ(ssf.opinion(4), 1);
}

TEST(Ssf, OpinionUsesAllSecondBits) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{10});
  Rng rng(4);
  // Second bits: six 0s — (0,0) ×4, (1,0) ×2 — vs four 1s.
  ssf.update(4, 0, obs4(4, 2, 2, 2), rng);
  EXPECT_EQ(ssf.opinion(4), 0);
  // Tagged messages tied 2–2, so the weak opinion came from a coin; just
  // check it is a valid opinion.
  EXPECT_LE(ssf.weak_opinion(4), 1);
}

TEST(Ssf, TieBreaksAreFair) {
  const auto p = pop(10, 1, 0);
  int weak_ones = 0;
  const int kReps = 2000;
  for (int rep = 0; rep < kReps; ++rep) {
    Ssf ssf = Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{4});
    Rng rng(5000 + rep);
    ssf.update(4, 0, obs4(1, 1, 1, 1), rng);  // tagged tie and overall tie
    weak_ones += ssf.weak_opinion(4);
  }
  EXPECT_GT(weak_ones, kReps / 2 - 150);
  EXPECT_LT(weak_ones, kReps / 2 + 150);
}

TEST(Ssf, CorruptInjectsArbitraryState) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{2}, MemoryBudget{100});
  ssf.corrupt(7, obs4(5, 6, 7, 8), 1, 0);
  const auto mem = ssf.memory(7);
  EXPECT_EQ(mem[0], 5u);
  EXPECT_EQ(mem[1], 6u);
  EXPECT_EQ(mem[2], 7u);
  EXPECT_EQ(mem[3], 8u);
  EXPECT_EQ(mem.total(), 26u);
  EXPECT_EQ(ssf.weak_opinion(7), 1);
  EXPECT_EQ(ssf.opinion(7), 0);
}

TEST(Ssf, OverfilledCorruptMemoryFlushesOnFirstUpdate) {
  const auto p = pop(10, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{10});
  Rng rng(6);
  ssf.corrupt(4, obs4(1000, 0, 0, 0), 0, 0);
  ssf.update(4, 0, obs4(0, 1, 0, 0), rng);  // pushes past m → update + flush
  EXPECT_EQ(ssf.memory(4).total(), 0u);
  EXPECT_EQ(ssf.opinion(4), 0);  // the fake 0s dominated this one update
}

TEST(Ssf, ConvergenceDeadlineCoversFourCycles) {
  const auto p = pop(100, 1, 0);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{7}, MemoryBudget{100});
  EXPECT_EQ(ssf.convergence_deadline(), 4 * ((100 + 6) / 7) + 1);
}

TEST(Ssf, InputValidation) {
  const auto p = pop(10, 1, 0);
  EXPECT_THROW(Ssf::with_memory_budget(p, Holdings{0}, MemoryBudget{10}),
               std::invalid_argument);
  EXPECT_THROW(Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{0}),
               std::invalid_argument);
  Ssf ssf = Ssf::with_memory_budget(p, Holdings{1}, MemoryBudget{10});
  Rng rng(1);
  EXPECT_THROW(ssf.update(10, 0, obs4(0, 0, 0, 1), rng),
               std::invalid_argument);
  SymbolCounts wrong(2);
  EXPECT_THROW(ssf.update(0, 0, wrong, rng), std::invalid_argument);
  EXPECT_THROW(ssf.opinion(99), std::invalid_argument);
  EXPECT_THROW(ssf.corrupt(99, obs4(0, 0, 0, 0), 0, 0),
               std::invalid_argument);
}

TEST(Ssf, ConvergesFromCleanStart) {
  const auto p = pop(300, 1, 0);
  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);
  Ssf ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(21);
  const auto result = run(ssf, engine, noise, p.correct_opinion(),
                          RunConfig{.h = p.n, .max_rounds =
                                        ssf.convergence_deadline()},
                          rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Ssf, StaysConvergedThroughStabilityWindow) {
  const auto p = pop(200, 2, 0);
  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);
  Ssf ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(22);
  const auto result =
      run(ssf, engine, noise, p.correct_opinion(),
          RunConfig{.h = p.n,
                    .max_rounds = ssf.convergence_deadline(),
                    .stability_window = 2 * ssf.convergence_deadline()},
          rng);
  EXPECT_TRUE(result.all_correct_at_end);
  EXPECT_TRUE(result.stable);
}

}  // namespace
}  // namespace noisypull
