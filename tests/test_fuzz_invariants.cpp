// Randomized invariant fuzzing: every protocol is fed adversarially random
// observation streams (arbitrary counts, arbitrary rounds) and must keep its
// structural invariants — valid outputs, bounded memories, schedule-locked
// state transitions — regardless of what the "network" delivers.  These
// complement the distribution-level tests: they hold for *every* input, not
// just model-generated ones.
#include <gtest/gtest.h>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

SymbolCounts random_obs(Rng& rng, std::size_t alphabet,
                        std::uint64_t max_total) {
  SymbolCounts obs(alphabet);
  const std::uint64_t total = rng.next_below(max_total + 1);
  for (std::uint64_t i = 0; i < total; ++i) {
    ++obs[rng.next_below(alphabet)];
  }
  return obs;
}

TEST(FuzzInvariants, SourceFilterStateStaysConsistent) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = pop(20 + rng.next_below(30), 1 + rng.next_below(3),
                       rng.next_below(2));
    const std::uint64_t h = 1 + rng.next_below(8);
    const auto sched =
        make_sf_schedule_with_m(p, Holdings{h}, Delta{0.1},
                                MemoryBudget{1 + rng.next_below(40)});
    SourceFilter sf(p, sched);

    std::uint64_t prev_c1 = 0, prev_c0 = 0;
    const std::uint64_t agent = rng.next_below(p.n);
    for (std::uint64_t t = 0; t < sched.total_rounds() + 10; ++t) {
      const Symbol d = sf.display(agent, t);
      ASSERT_LT(d, 2u);  // displays always within the alphabet
      sf.update(agent, t, random_obs(rng, 2, 3 * h), rng);
      ASSERT_LE(sf.opinion(agent), 1u);
      ASSERT_LE(sf.weak_opinion(agent), 1u);
      // Listening counters are monotone and only move in their own phase.
      const std::uint64_t c1 = sf.counter1(agent), c0 = sf.counter0(agent);
      ASSERT_GE(c1, prev_c1);
      ASSERT_GE(c0, prev_c0);
      if (t < sched.phase_rounds) {
        ASSERT_EQ(c0, 0u);  // Counter0 untouched during Phase 0
      }
      if (t >= sched.boosting_start()) {
        ASSERT_EQ(c1, prev_c1);  // counters frozen after listening
        ASSERT_EQ(c0, prev_c0);
      }
      prev_c1 = c1;
      prev_c0 = c0;
    }
  }
}

TEST(FuzzInvariants, SourceFilterSourceDisplaysNeverWaver) {
  // During the listening stage a source's display is its preference no
  // matter what it observes.
  Rng rng(2);
  const auto p = pop(30, 2, 1);
  const auto sched = make_sf_schedule_with_m(p, Holdings{2}, Delta{0.2},
                                             MemoryBudget{20});
  SourceFilter sf(p, sched);
  for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
    for (std::uint64_t src = 0; src < p.num_sources(); ++src) {
      ASSERT_EQ(sf.display(src, t), p.source_preference(src));
      sf.update(src, t, random_obs(rng, 2, 8), rng);
    }
  }
}

TEST(FuzzInvariants, SsfMemoryNeverExceedsBudgetPlusDelivery) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = pop(10 + rng.next_below(20), 1, 0);
    const std::uint64_t m = 1 + rng.next_below(50);
    auto ssf = SelfStabilizingSourceFilter::with_memory_budget(
        p, Holdings{1 + rng.next_below(4)}, MemoryBudget{m});
    const std::uint64_t agent = rng.next_below(p.n);
    const std::uint64_t max_batch = 10;
    for (std::uint64_t t = 0; t < 200; ++t) {
      ssf.update(agent, t, random_obs(rng, 4, max_batch), rng);
      // After an update the memory is either still filling (< m) or was
      // just flushed (0); it can never sit at ≥ m.
      ASSERT_LT(ssf.memory(agent).total(), m);
      ASSERT_LE(ssf.opinion(agent), 1u);
      ASSERT_LE(ssf.weak_opinion(agent), 1u);
      ASSERT_LT(ssf.display(agent, t), 4u);
    }
  }
}

TEST(FuzzInvariants, SsfCorruptThenRunNeverBreaks) {
  // Arbitrary corrupt() payloads (including absurd counts) followed by
  // arbitrary deliveries keep the state machine healthy.
  Rng rng(4);
  const auto p = pop(25, 2, 1);
  auto ssf = SelfStabilizingSourceFilter::with_memory_budget(p, Holdings{2},
                                                             MemoryBudget{30});
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t agent = rng.next_below(p.n);
    SymbolCounts mem(4);
    for (int s = 0; s < 4; ++s) mem[s] = rng.next_below(1000000);
    ssf.corrupt(agent, mem, rng.next_below(2) & 1, rng.next_below(2) & 1);
    ssf.update(agent, trial, random_obs(rng, 4, 10), rng);
    ASSERT_LT(ssf.memory(agent).total(), 30u + 1000000u * 4);
    ASSERT_LE(ssf.opinion(agent), 1u);
  }
}

TEST(FuzzInvariants, KaryOutputsStayInOpinionSet) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t k = 2 + rng.next_below(5);
    std::vector<std::uint64_t> sources(k, 0);
    sources[rng.next_below(k)] = 1 + rng.next_below(3);
    KaryPopulation p{.n = 30 + rng.next_below(30), .sources = sources};
    KarySourceFilter ksf(p, Holdings{1 + rng.next_below(5)},
                         Delta{0.5 / static_cast<double>(k)});
    const std::uint64_t agent = rng.next_below(p.n);
    for (std::uint64_t t = 0; t < ksf.planned_rounds() + 5; ++t) {
      ASSERT_LT(ksf.display(agent, t), k);
      ksf.update(agent, t, random_obs(rng, k, 12), rng);
      ASSERT_LT(ksf.opinion(agent), k);
      ASSERT_LT(ksf.weak_opinion(agent), k);
      for (std::size_t o = 0; o < k; ++o) {
        (void)ksf.score(agent, static_cast<Opinion>(o));  // must not throw
      }
    }
  }
}

TEST(FuzzInvariants, KaryScoresFrozenAfterListening) {
  Rng rng(6);
  KaryPopulation p{.n = 40, .sources = {0, 2, 1}};
  KarySourceFilter ksf(p, Holdings{3}, Delta{0.05});
  const std::uint64_t agent = 20;
  for (std::uint64_t t = 0; t < ksf.listening_rounds(); ++t) {
    ksf.update(agent, t, random_obs(rng, 3, 9), rng);
  }
  std::array<std::uint64_t, 3> frozen{};
  for (std::size_t o = 0; o < 3; ++o) {
    frozen[o] = ksf.score(agent, static_cast<Opinion>(o));
  }
  for (std::uint64_t t = ksf.listening_rounds();
       t < ksf.planned_rounds() + 5; ++t) {
    ksf.update(agent, t, random_obs(rng, 3, 9), rng);
    for (std::size_t o = 0; o < 3; ++o) {
      ASSERT_EQ(ksf.score(agent, static_cast<Opinion>(o)), frozen[o]);
    }
  }
}

TEST(FuzzInvariants, PushSpreadSilentAgentsStaySilentWithoutContact) {
  Rng rng(7);
  const auto p = pop(40, 1, 0);
  PushSpread ps(p, Holdings{2}, Delta{0.1});
  SymbolCounts empty(2);
  for (std::uint64_t t = 0; t < ps.planned_rounds(); ++t) {
    for (std::uint64_t i = p.num_sources(); i < p.n; ++i) {
      ps.deliver(i, t, empty, rng);
      ASSERT_FALSE(ps.sends(i, t + 1));
    }
  }
  ASSERT_EQ(ps.active_count(), p.num_sources());
}

TEST(FuzzInvariants, PushSpreadActivationIsMonotone) {
  Rng rng(8);
  const auto p = pop(40, 1, 0);
  PushSpread ps(p, Holdings{2}, Delta{0.1});
  std::uint64_t prev_active = ps.active_count();
  for (std::uint64_t t = 0; t < 60; ++t) {
    for (std::uint64_t i = 0; i < p.n; ++i) {
      ps.deliver(i, t, random_obs(rng, 2, 3), rng);
      ASSERT_LE(ps.opinion(i), 1u);
    }
    const std::uint64_t active = ps.active_count();
    ASSERT_GE(active, prev_active);  // activation never reverts
    prev_active = active;
  }
}

TEST(FuzzInvariants, BaselinesOutputValidOpinionsUnderGarbageStreams) {
  Rng rng(9);
  const auto p = pop(30, 2, 1);
  Rng init(10);
  VoterProtocol voter(p, init);
  MajorityDynamics majority(p, init);
  RepeatedMajority repeated(p, 7, init);
  TaglessSsf tagless(p, Holdings{2}, MemoryBudget{9});
  for (std::uint64_t t = 0; t < 100; ++t) {
    const std::uint64_t agent = rng.next_below(p.n);
    const auto obs = random_obs(rng, 2, 15);
    if (obs.total() > 0) voter.update(agent, t, obs, rng);
    majority.update(agent, t, obs, rng);
    repeated.update(agent, t, obs, rng);
    tagless.update(agent, t, obs, rng);
    ASSERT_LE(voter.opinion(agent), 1u);
    ASSERT_LE(majority.opinion(agent), 1u);
    ASSERT_LE(repeated.opinion(agent), 1u);
    ASSERT_LE(tagless.opinion(agent), 1u);
    // Zealots never move, no matter the stream.
    ASSERT_EQ(voter.opinion(0), 1u);
    ASSERT_EQ(majority.opinion(0), 1u);
    ASSERT_EQ(repeated.opinion(0), 1u);
  }
}

TEST(FuzzInvariants, EnginesAcceptAnyDisplayChurn) {
  // A protocol that re-randomizes its displays every update: engines must
  // keep their internal histograms consistent (the SequentialEngine
  // maintains its incrementally).
  class Chaotic : public PullProtocol {
   public:
    explicit Chaotic(std::uint64_t n) : values_(n, 0) {}
    std::size_t alphabet_size() const override { return 2; }
    std::uint64_t num_agents() const override { return values_.size(); }
    Symbol display(std::uint64_t agent, std::uint64_t) const override {
      return values_[agent];
    }
    void update(std::uint64_t agent, std::uint64_t, const SymbolCounts&,
                Rng& rng) override {
      values_[agent] = rng.next_bool() ? 1 : 0;
    }
    Opinion opinion(std::uint64_t agent) const override {
      return values_[agent];
    }
    std::vector<Symbol> values_;
  };

  const auto noise = NoiseMatrix::uniform(2, 0.3);
  for (int kind = 0; kind < 3; ++kind) {
    Chaotic protocol(50);
    std::unique_ptr<Engine> engine;
    if (kind == 0) engine = std::make_unique<ExactEngine>();
    if (kind == 1) engine = std::make_unique<AggregateEngine>();
    if (kind == 2) engine = std::make_unique<SequentialEngine>();
    Rng rng(11 + kind);
    for (std::uint64_t t = 0; t < 50; ++t) {
      ASSERT_NO_THROW(engine->step(protocol, noise, Holdings{5}, t, rng));
    }
  }
}

}  // namespace
}  // namespace noisypull
