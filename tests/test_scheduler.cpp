#include "noisypull/analysis/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "noisypull/core/source_filter.hpp"
#include "noisypull/sim/repeat.hpp"

namespace noisypull {
namespace {

namespace fs = std::filesystem;

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

ProtocolFactory sf_factory(const PopulationConfig& p, double delta) {
  return [p, delta](Rng&) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<SourceFilter>(p, Holdings{p.n}, Delta{delta},
                                          C1{2.0});
  };
}

std::uint64_t sf_digest(const PopulationConfig& p, double delta) {
  return CellKey()
      .str("SourceFilter")
      .u64(p.n)
      .u64(p.s1)
      .u64(p.s0)
      .u64(p.n)
      .f64(delta)
      .f64(2.0)
      .digest();
}

ExperimentCell sf_cell(const PopulationConfig& p, double delta,
                       std::uint64_t seed) {
  return ExperimentCell{.label = "sf n=" + std::to_string(p.n),
                        .make_protocol = sf_factory(p, delta),
                        .noise = NoiseMatrix::uniform(2, delta),
                        .correct = p.correct_opinion(),
                        .cfg = RunConfig{.h = p.n},
                        .seed = seed,
                        .protocol_digest = sf_digest(p, delta)};
}

// A truncated cell: the run stops right after weak opinions form, so
// correct_at_end (and success) is genuinely random across repetitions —
// the interesting regime for early stopping and cache tests.
ExperimentCell truncated_cell(const PopulationConfig& p, double delta,
                              std::uint64_t seed) {
  const SourceFilter ref(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  ExperimentCell cell = sf_cell(p, delta, seed);
  cell.cfg.max_rounds = ref.schedule().boosting_start();
  return cell;
}

// Field-by-field bit equality: the scheduler's determinism contract is
// "identical statistics", not "statistically close".
void expect_same(const CellStats& a, const CellStats& b) {
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.stable_successes, b.stable_successes);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.stable_success_rate, b.stable_success_rate);
  EXPECT_EQ(a.wilson.lower, b.wilson.lower);
  EXPECT_EQ(a.wilson.upper, b.wilson.upper);
  EXPECT_EQ(a.ci_halfwidth, b.ci_halfwidth);
  EXPECT_EQ(a.mean_convergence_round, b.mean_convergence_round);
  EXPECT_EQ(a.convergence_stddev, b.convergence_stddev);
  EXPECT_EQ(a.mean_rounds_run, b.mean_rounds_run);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  EXPECT_EQ(a.cache_key, b.cache_key);
}

std::vector<RepOutcome> synthetic_outcomes(const std::string& pattern) {
  std::vector<RepOutcome> outcomes;
  for (const char c : pattern) {
    RepOutcome o;
    o.all_correct_at_end = c == '1';
    o.stable = o.all_correct_at_end;
    o.rounds_run = 10;
    outcomes.push_back(o);
  }
  return outcomes;
}

TEST(StopPoint, DisabledRuleAlwaysRunsMaxReps) {
  const auto outcomes = synthetic_outcomes("0101");
  const StopRule rule{.max_reps = 4, .min_reps = 2, .ci_halfwidth = 0.0};
  EXPECT_EQ(stop_point(outcomes, rule), 4u);
}

TEST(StopPoint, StopsAtSmallestQualifyingPrefix) {
  const auto outcomes = synthetic_outcomes(std::string(32, '1'));
  const StopRule rule{.max_reps = 32, .min_reps = 4, .ci_halfwidth = 0.15};
  const std::uint64_t m = stop_point(outcomes, rule);
  ASSERT_GE(m, rule.min_reps);
  ASSERT_LE(m, rule.max_reps);
  // The returned prefix qualifies...
  EXPECT_LE(wilson_halfwidth(m, m), rule.ci_halfwidth);
  // ...and no shorter prefix >= min_reps does (all-success prefixes have
  // monotonically shrinking half-widths, so checking m-1 suffices).
  if (m > rule.min_reps) {
    EXPECT_GT(wilson_halfwidth(m - 1, m - 1), rule.ci_halfwidth);
  }
  // An all-success run at this target must stop well before 32.
  EXPECT_LT(m, 32u);
}

TEST(StopPoint, MixedPrefixNeverStopsBelowTarget) {
  // Alternating outcomes keep p-hat at 1/2, where Wilson intervals are
  // widest; a tight target cannot be met within 16 reps.
  const auto outcomes = synthetic_outcomes("0101010101010101");
  const StopRule rule{.max_reps = 16, .min_reps = 4, .ci_halfwidth = 0.05};
  EXPECT_EQ(stop_point(outcomes, rule), 16u);
}

TEST(FinalizePrefix, MatchesRepeatHelpers) {
  const auto p = pop(120, 1, 0);
  const auto results = run_repetitions(
      sf_factory(p, 0.25), NoiseMatrix::uniform(2, 0.25), 1,
      RunConfig{.h = p.n}, RepeatOptions{.repetitions = 6, .seed = 7});
  std::vector<RepOutcome> outcomes;
  for (const auto& r : results) outcomes.push_back(to_outcome(r));
  const StopRule rule{.max_reps = 6};
  const CellStats stats = finalize_prefix(outcomes, 6, rule);
  EXPECT_EQ(stats.success_rate, success_rate(results));
  EXPECT_EQ(stats.stable_success_rate,
            success_rate(results, /*require_stability=*/true));
  EXPECT_EQ(stats.mean_convergence_round, mean_convergence_round(results));
}

TEST(Scheduler, MatchesRunRepetitions) {
  const auto p = pop(150, 1, 0);
  const std::vector<ExperimentCell> cells = {sf_cell(p, 0.2, 21),
                                             truncated_cell(p, 0.3, 22)};
  const SchedulerOptions opts{.threads = 2, .stop = StopRule{.max_reps = 5}};
  const auto stats = run_experiment(cells, opts);
  ASSERT_EQ(stats.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const auto results = run_repetitions(
        cells[c].make_protocol, cells[c].noise, cells[c].correct, cells[c].cfg,
        RepeatOptions{.repetitions = 5, .seed = cells[c].seed});
    std::vector<RepOutcome> outcomes;
    for (const auto& r : results) outcomes.push_back(to_outcome(r));
    const CellStats expected = finalize_prefix(outcomes, 5, opts.stop);
    EXPECT_EQ(stats[c].success_rate, expected.success_rate);
    EXPECT_EQ(stats[c].mean_convergence_round,
              expected.mean_convergence_round);
    EXPECT_EQ(stats[c].mean_rounds_run, expected.mean_rounds_run);
    EXPECT_EQ(stats[c].reps, 5u);
    EXPECT_EQ(stats[c].reps_computed, 5u);
    EXPECT_EQ(stats[c].reps_cached, 0u);
  }
}

TEST(Scheduler, BitIdenticalAcrossWorkerCounts) {
  // The determinism contract's core test: identical statistics AND stop
  // points for 1, 2, and 8 workers, with adaptive early stopping on and a
  // nonzero fault plan in the mix.
  FaultPlan plan;
  plan.seed = 5;
  plan.first_eligible = 1;
  plan.drop.p = 0.1;
  plan.byzantine.fraction = 0.05;

  std::vector<ExperimentCell> cells;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ExperimentCell cell = truncated_cell(pop(100 + 30 * i, 1, 0), 0.3, 40 + i);
    if (i % 2 == 1) cell.fault_plan = plan;
    cells.push_back(cell);
  }
  const StopRule rule{.max_reps = 12, .min_reps = 3, .ci_halfwidth = 0.22};

  std::vector<std::vector<CellStats>> runs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    runs.push_back(run_experiment(
        cells, SchedulerOptions{.threads = threads, .stop = rule}));
  }
  bool any_early = false;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    expect_same(runs[0][c], runs[1][c]);
    expect_same(runs[0][c], runs[2][c]);
    any_early |= runs[0][c].early_stopped;
  }
  // The rule must actually have fired somewhere, or this test exercises
  // nothing adaptive.
  EXPECT_TRUE(any_early);
}

TEST(Scheduler, CacheColdWarmAndBypassAgree) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "noisypull_sched_cache";
  fs::remove_all(dir);

  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 60),
      truncated_cell(pop(140, 1, 0), 0.25, 61)};
  const StopRule rule{.max_reps = 8, .min_reps = 3, .ci_halfwidth = 0.25};
  SchedulerOptions cached{.threads = 2, .stop = rule,
                          .cache_dir = dir.string()};
  SchedulerOptions bypass{.threads = 2, .stop = rule};

  const auto cold = run_experiment(cells, cached);
  const auto warm = run_experiment(cells, cached);
  const auto off = run_experiment(cells, bypass);

  for (std::size_t c = 0; c < cells.size(); ++c) {
    expect_same(cold[c], warm[c]);
    expect_same(cold[c], off[c]);
    EXPECT_EQ(warm[c].reps_computed, 0u);
    EXPECT_EQ(warm[c].reps_cached, warm[c].reps);
    EXPECT_EQ(off[c].reps_cached, 0u);
  }
  fs::remove_all(dir);
}

TEST(Scheduler, WarmRunExtendsCachedPrefixWhenBudgetGrows) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "noisypull_sched_extend";
  fs::remove_all(dir);

  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 70)};
  SchedulerOptions small{.threads = 1,
                         .stop = StopRule{.max_reps = 4},
                         .cache_dir = dir.string()};
  SchedulerOptions large{.threads = 1,
                         .stop = StopRule{.max_reps = 9},
                         .cache_dir = dir.string()};

  const auto first = run_experiment(cells, small);
  EXPECT_EQ(first[0].reps_computed, 4u);
  const auto second = run_experiment(cells, large);
  // The 4 cached repetitions are replayed; only the 5 new ones simulate.
  EXPECT_EQ(second[0].reps, 9u);
  EXPECT_EQ(second[0].reps_cached, 4u);
  EXPECT_EQ(second[0].reps_computed, 5u);

  // And the superset must match a cache-bypassing run bit for bit.
  const auto reference = run_experiment(
      cells, SchedulerOptions{.threads = 1, .stop = StopRule{.max_reps = 9}});
  expect_same(second[0], reference[0]);
  fs::remove_all(dir);
}

TEST(Scheduler, CorruptCacheFileIsAMissNotAnError) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "noisypull_sched_corrupt";
  fs::remove_all(dir);

  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 80)};
  SchedulerOptions opts{.threads = 1,
                        .stop = StopRule{.max_reps = 3},
                        .cache_dir = dir.string()};
  const auto cold = run_experiment(cells, opts);

  // Truncate the cell's cache file mid-record.
  std::string file;
  for (const auto& entry : fs::directory_iterator(dir)) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::ofstream out(file, std::ios::trunc);
    out << "noisypull-cell-cache 1 deadbeef 3\n0 1";
  }
  const auto recovered = run_experiment(cells, opts);
  expect_same(cold[0], recovered[0]);
  EXPECT_EQ(recovered[0].reps_computed, 3u);  // full recompute, no crash
  fs::remove_all(dir);
}

TEST(Scheduler, CacheKeyDistinguishesEveryTrajectoryInput) {
  const ExperimentCell base = sf_cell(pop(100, 1, 0), 0.2, 90);
  const std::uint64_t key = cell_cache_key(base);

  ExperimentCell changed = base;
  changed.seed = 91;
  EXPECT_NE(cell_cache_key(changed), key);

  changed = base;
  changed.cfg.max_rounds = 17;
  EXPECT_NE(cell_cache_key(changed), key);

  changed = base;
  changed.noise = NoiseMatrix::uniform(2, 0.21);
  EXPECT_NE(cell_cache_key(changed), key);

  changed = base;
  changed.use_aggregate_engine = false;
  EXPECT_NE(cell_cache_key(changed), key);

  changed = base;
  changed.protocol_digest ^= 1;
  EXPECT_NE(cell_cache_key(changed), key);

  changed = base;
  changed.fault_plan = FaultPlan{};
  EXPECT_NE(cell_cache_key(changed), key);

  // Trajectory-invariant knobs must NOT shift the key: a cache filled on
  // one machine serves another with a different worker count.
  changed = base;
  changed.label = "different label";
  EXPECT_EQ(cell_cache_key(changed), key);
}

TEST(Scheduler, RejectsTrajectoryRecording) {
  ExperimentCell cell = sf_cell(pop(100, 1, 0), 0.2, 95);
  cell.cfg.record_trajectory = true;
  EXPECT_THROW(run_experiment({cell}, SchedulerOptions{.threads = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
