#include "noisypull/sim/runner.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace noisypull {
namespace {

// Scripted protocol: opinions follow a fixed per-round script, independent
// of observations — lets the runner's bookkeeping be tested deterministically.
class ScriptedProtocol : public PullProtocol {
 public:
  // script[t] = number of agents holding opinion 1 after round t.
  ScriptedProtocol(std::uint64_t n, std::vector<std::uint64_t> script)
      : n_(n), script_(std::move(script)) {}

  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return n_; }
  Symbol display(std::uint64_t, std::uint64_t) const override { return 0; }
  void update(std::uint64_t agent, std::uint64_t round, const SymbolCounts&,
              Rng&) override {
    if (agent + 1 == n_) {  // advance once per round, after the last agent
      const std::size_t idx =
          std::min<std::size_t>(round, script_.size() - 1);
      ones_ = script_[idx];
    }
  }
  Opinion opinion(std::uint64_t agent) const override {
    return agent < ones_ ? 1 : 0;
  }

 private:
  std::uint64_t n_;
  std::vector<std::uint64_t> script_;
  std::uint64_t ones_ = 0;
};

const NoiseMatrix kNoiseless = NoiseMatrix::noiseless(2);

TEST(Runner, CountCorrect) {
  ScriptedProtocol protocol(10, {7});
  Rng rng(1);
  ExactEngine engine;
  engine.step(protocol, kNoiseless, Holdings{1}, 0, rng);
  EXPECT_EQ(count_correct(protocol, 1), 7u);
  EXPECT_EQ(count_correct(protocol, 0), 3u);
}

TEST(Runner, TrajectoryRecordsEveryRound) {
  ScriptedProtocol protocol(4, {1, 2, 3, 4, 4});
  ExactEngine engine;
  Rng rng(2);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 5,
                                    .record_trajectory = true},
                          rng);
  ASSERT_EQ(result.trajectory.size(), 5u);
  EXPECT_EQ(result.trajectory, (std::vector<std::uint64_t>{1, 2, 3, 4, 4}));
}

TEST(Runner, FirstAllCorrectIsStartOfFinalStreak) {
  // Reaches consensus at round 2, loses it at round 3, regains at round 4.
  ScriptedProtocol protocol(4, {1, 2, 4, 3, 4, 4});
  ExactEngine engine;
  Rng rng(3);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 6}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
  EXPECT_EQ(result.first_all_correct, 4u);
  EXPECT_EQ(result.correct_at_end, 4u);
  EXPECT_EQ(result.rounds_run, 6u);
}

TEST(Runner, NeverConverged) {
  ScriptedProtocol protocol(4, {1, 2, 3});
  ExactEngine engine;
  Rng rng(4);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 3}, rng);
  EXPECT_FALSE(result.all_correct_at_end);
  EXPECT_EQ(result.first_all_correct, kNever);
  EXPECT_EQ(result.correct_at_end, 3u);
}

TEST(Runner, StabilityWindowPasses) {
  ScriptedProtocol protocol(4, {4});
  ExactEngine engine;
  Rng rng(5);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 2,
                                    .stability_window = 10},
                          rng);
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.rounds_run, 12u);
}

TEST(Runner, StabilityWindowFailsWhenConsensusBreaks) {
  // Consensus at rounds 0-3, broken from round 4 on.
  ScriptedProtocol protocol(4, {4, 4, 4, 4, 2});
  ExactEngine engine;
  Rng rng(6);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 3,
                                    .stability_window = 5},
                          rng);
  EXPECT_TRUE(result.all_correct_at_end);
  EXPECT_FALSE(result.stable);
  EXPECT_LT(result.rounds_run, 8u);  // stopped early at the break
}

TEST(Runner, StabilityNotCheckedWithoutWindow) {
  ScriptedProtocol protocol(4, {4});
  ExactEngine engine;
  Rng rng(7);
  const auto result = run(protocol, engine, kNoiseless, 1,
                          RunConfig{.h = 1, .max_rounds = 2}, rng);
  EXPECT_FALSE(result.stable);  // default-false when window is 0
}

TEST(Runner, UsesPlannedRoundsWhenMaxRoundsIsZero) {
  class Planned : public ScriptedProtocol {
   public:
    Planned() : ScriptedProtocol(2, {2}) {}
    std::uint64_t planned_rounds() const override { return 7; }
  };
  Planned protocol;
  ExactEngine engine;
  Rng rng(8);
  const auto result =
      run(protocol, engine, kNoiseless, 1, RunConfig{.h = 1}, rng);
  EXPECT_EQ(result.rounds_run, 7u);
}

TEST(Runner, RejectsZeroHorizon) {
  ScriptedProtocol protocol(2, {2});  // planned_rounds() == 0
  ExactEngine engine;
  Rng rng(9);
  EXPECT_THROW(
      run(protocol, engine, kNoiseless, 1, RunConfig{.h = 1}, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
