// Crash-safety and fault-tolerance tests for the sweep runtime
// (analysis/scheduler.hpp + analysis/manifest.hpp + common/atomic_io.hpp).
//
// The contract under test, in three layers:
//   * atomic_io: CRC primitive pinned to the published reference vector;
//     atomic publish round-trips; quarantine preserves evidence; a zero
//     FsFaultPlan is bit-identical passthrough.
//   * cache self-healing: every corruption class (torn header, wrong format
//     version, checksum mismatch, key mismatch, malformed body) is diagnosed
//     distinctly, quarantined — never silently swallowed — and recomputed to
//     the same statistics; legacy v1 entries migrate on read.
//   * checkpoint/resume + degradation: a sweep killed mid-run and restarted
//     with the same manifest reports statistics bit-identical to an
//     uninterrupted run (including under adaptive early stopping and across
//     worker counts); transient failures retry within budget; an exhausted
//     budget or a watchdog-cancelled hang degrades the cell instead of
//     hanging or aborting the sweep; the sweep-report JSON is byte-identical
//     across resume.
//
// Crashes are emulated with SchedulerOptions::rep_hook (a fatal throw at a
// chosen repetition aborts the sweep exactly like SIGKILL would, except
// testable in-process); infrastructure faults with io::FsFaultPlan, whose
// injected torn writes / short reads / rename failures / ENOSPC must never
// change statistics — only which cache entries survive.
#include "noisypull/analysis/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "noisypull/analysis/manifest.hpp"
#include "noisypull/common/atomic_io.hpp"
#include "noisypull/core/source_filter.hpp"

namespace noisypull {
namespace {

namespace fs = std::filesystem;

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

ProtocolFactory sf_factory(const PopulationConfig& p, double delta) {
  return [p, delta](Rng&) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<SourceFilter>(p, Holdings{p.n}, Delta{delta},
                                          C1{2.0});
  };
}

std::uint64_t sf_digest(const PopulationConfig& p, double delta) {
  return CellKey()
      .str("SourceFilter")
      .u64(p.n)
      .u64(p.s1)
      .u64(p.s0)
      .u64(p.n)
      .f64(delta)
      .f64(2.0)
      .digest();
}

// Same genuinely-random-success construction as test_scheduler.cpp: the run
// stops right after weak opinions form, so early stopping and resume have
// nontrivial decisions to reproduce.
ExperimentCell truncated_cell(const PopulationConfig& p, double delta,
                              std::uint64_t seed) {
  const SourceFilter ref(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  return ExperimentCell{
      .label = "sf n=" + std::to_string(p.n),
      .make_protocol = sf_factory(p, delta),
      .noise = NoiseMatrix::uniform(2, delta),
      .correct = p.correct_opinion(),
      .cfg = RunConfig{.h = p.n,
                       .max_rounds = ref.schedule().boosting_start()},
      .seed = seed,
      .protocol_digest = sf_digest(p, delta)};
}

void expect_same(const CellStats& a, const CellStats& b) {
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.stable_successes, b.stable_successes);
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.stable_success_rate, b.stable_success_rate);
  EXPECT_EQ(a.wilson.lower, b.wilson.lower);
  EXPECT_EQ(a.wilson.upper, b.wilson.upper);
  EXPECT_EQ(a.mean_convergence_round, b.mean_convergence_round);
  EXPECT_EQ(a.mean_rounds_run, b.mean_rounds_run);
  EXPECT_EQ(a.mean_steady_fraction, b.mean_steady_fraction);
  EXPECT_EQ(a.min_steady_fraction, b.min_steady_fraction);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.cache_key, b.cache_key);
}

// Fresh scratch directory per test.
fs::path scratch(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The single cache file a one-cell cached run produced.
fs::path only_cache_file(const fs::path& dir) {
  fs::path found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) found = entry.path();
  }
  return found;
}

// The emulated crash: thrown from rep_hook, it is a fatal error (neither
// TransientRepFailure nor OperationCancelled), so the sweep aborts with
// completed work already checkpointed — the in-process analogue of SIGKILL.
struct CrashNow {};

// ---------------------------------------------------------------------------
// atomic_io

TEST(AtomicIo, Crc32MatchesReferenceVector) {
  // The CRC-32/IEEE check value (reflected, poly 0xEDB88320).
  EXPECT_EQ(io::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::crc32(""), 0u);
  EXPECT_NE(io::crc32("a"), io::crc32("b"));
}

TEST(AtomicIo, WriteReadRoundTrip) {
  const fs::path dir = scratch("np_chaos_roundtrip");
  const fs::path file = dir / "payload.txt";
  const std::string payload = "line one\nline two\n\x01 binary-ish \xff";
  ASSERT_TRUE(io::atomic_write_file(file, payload));
  const auto back = io::read_file(file);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  // Overwrite publishes atomically: the new content fully replaces the old.
  ASSERT_TRUE(io::atomic_write_file(file, "v2"));
  EXPECT_EQ(io::read_file(file).value_or(""), "v2");
  EXPECT_FALSE(io::read_file(dir / "absent").has_value());
}

TEST(AtomicIo, AppendLineBuildsAJournal) {
  const fs::path dir = scratch("np_chaos_append");
  const fs::path file = dir / "journal";
  ASSERT_TRUE(io::append_line(file, "first"));
  ASSERT_TRUE(io::append_line(file, "second"));
  EXPECT_EQ(io::read_file(file).value_or(""), "first\nsecond\n");
}

TEST(AtomicIo, QuarantinePreservesEvidence) {
  const fs::path dir = scratch("np_chaos_quarantine");
  const fs::path file = dir / "cell-0123.npsum";
  ASSERT_TRUE(io::atomic_write_file(file, "corrupt bytes"));
  io::quarantine_file(file, "checksum-mismatch");
  EXPECT_FALSE(fs::exists(file));
  const fs::path moved =
      dir / ".quarantine" / "cell-0123.npsum.checksum-mismatch";
  ASSERT_TRUE(fs::exists(moved));
  EXPECT_EQ(slurp(moved), "corrupt bytes");
}

TEST(AtomicIo, TearKeepsTheFirstHalf) {
  EXPECT_EQ(io::FsFaults::tear("abcdef"), "abc");
  EXPECT_EQ(io::FsFaults::tear("abcde"), "ab");
  EXPECT_EQ(io::FsFaults::tear("a"), "");
}

TEST(AtomicIo, FaultPlanValidatesRates) {
  io::FsFaultPlan plan;
  plan.torn_write = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.torn_write = 0.0;
  plan.short_read = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.short_read = 0.0;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.any());
  plan.enospc = 0.5;
  EXPECT_TRUE(plan.any());
}

TEST(AtomicIo, ZeroPlanIsBitIdenticalPassthrough) {
  const fs::path dir = scratch("np_chaos_zero_plan");
  io::FsFaults faults{io::FsFaultPlan{.seed = 42}};
  io::IoOptions with_faults;
  with_faults.faults = &faults;
  ASSERT_TRUE(io::atomic_write_file(dir / "a", "payload", with_faults));
  ASSERT_TRUE(io::atomic_write_file(dir / "b", "payload"));
  EXPECT_EQ(slurp(dir / "a"), slurp(dir / "b"));
  EXPECT_EQ(io::read_file(dir / "a", with_faults).value_or(""), "payload");
}

// ---------------------------------------------------------------------------
// Cache entry diagnostics (the self-healing layer's parser)

TEST(CacheEntry, SerializeParseRoundTrip) {
  std::vector<RepOutcome> outcomes(3);
  outcomes[0] = RepOutcome{.all_correct_at_end = true,
                           .stable = true,
                           .rounds_run = 17,
                           .first_all_correct = 9,
                           .correct_at_end = 100,
                           .mean_correct_fraction = 0.9375,
                           .min_correct_fraction = 0.5,
                           .resets = 4};
  outcomes[1].rounds_run = 21;
  outcomes[1].first_all_correct = kNever;
  outcomes[2].rounds_run = 23;
  const std::uint64_t key = 0xDEADBEEFCAFEF00DULL;
  const std::string payload = serialize_cache_entry(key, outcomes, 3);
  const CacheEntry entry = parse_cache_entry(payload, key);
  ASSERT_EQ(entry.status, CacheEntryStatus::kHit);
  ASSERT_EQ(entry.outcomes.size(), 3u);
  EXPECT_EQ(entry.outcomes[0].mean_correct_fraction, 0.9375);
  EXPECT_EQ(entry.outcomes[0].min_correct_fraction, 0.5);
  EXPECT_EQ(entry.outcomes[0].resets, 4u);
  EXPECT_EQ(entry.outcomes[1].first_all_correct, kNever);
  EXPECT_EQ(entry.outcomes[2].rounds_run, 23u);
}

TEST(CacheEntry, DistinguishesTruncatedHeaderFromWrongFormatVersion) {
  // Regression pin: a header cut off mid-line (torn write at the start of
  // the file) and a complete header carrying an unknown future format
  // version are different failures — the first is worth a re-read (it may
  // be a short read), the second is definitive.
  const std::uint64_t key = 7;
  EXPECT_EQ(parse_cache_entry("", key).status,
            CacheEntryStatus::kTruncatedHeader);
  EXPECT_EQ(parse_cache_entry("noisypull-cell-cache", key).status,
            CacheEntryStatus::kTruncatedHeader);
  EXPECT_EQ(parse_cache_entry("noisypull-cell-cache 2 000000000000",
                              key).status,

            CacheEntryStatus::kTruncatedHeader);
  EXPECT_EQ(
      parse_cache_entry("noisypull-cell-cache 9 0000000000000007 1 00000000\n",
                        key)
          .status,
      CacheEntryStatus::kWrongFormatVersion);
}

TEST(CacheEntry, DiagnosesEveryCorruptionClassDistinctly) {
  std::vector<RepOutcome> outcomes(2);
  outcomes[0].rounds_run = 5;
  outcomes[1].rounds_run = 6;
  const std::uint64_t key = 11;
  const std::string good = serialize_cache_entry(key, outcomes, 2);

  EXPECT_EQ(parse_cache_entry("some-other-magic 2 x\n", key).status,
            CacheEntryStatus::kMalformedRecord);
  EXPECT_EQ(parse_cache_entry(good, key + 1).status,
            CacheEntryStatus::kKeyMismatch);
  // Flip one body byte: the CRC catches it before the parser runs.
  std::string flipped = good;
  flipped[flipped.size() - 2] ^= 1;
  EXPECT_EQ(parse_cache_entry(flipped, key).status,
            CacheEntryStatus::kChecksumMismatch);
  // A torn write that kept the header but lost body bytes is also a
  // checksum mismatch (the header's CRC no longer matches the half body).
  const std::string torn = std::string(io::FsFaults::tear(good));
  if (torn.find('\n') != std::string::npos) {
    EXPECT_EQ(parse_cache_entry(torn, key).status,
              CacheEntryStatus::kChecksumMismatch);
  }
  // Every status has a distinct quarantine tag.
  EXPECT_NE(to_string(CacheEntryStatus::kTruncatedHeader),
            to_string(CacheEntryStatus::kWrongFormatVersion));
  EXPECT_NE(to_string(CacheEntryStatus::kChecksumMismatch),
            to_string(CacheEntryStatus::kMalformedRecord));
}

TEST(CacheEntry, LegacyV1EntryParsesAsMigrated) {
  const std::uint64_t key = 0x00000000000000FFULL;
  std::ostringstream v1;
  v1 << "noisypull-cell-cache 1 00000000000000ff 2\n"
     << "0 1 1 10 4 100\n"
     << "1 0 0 12 " << kNever << " 93\n";
  const CacheEntry entry = parse_cache_entry(v1.str(), key);
  ASSERT_EQ(entry.status, CacheEntryStatus::kMigrated);
  ASSERT_EQ(entry.outcomes.size(), 2u);
  EXPECT_TRUE(entry.outcomes[0].all_correct_at_end);
  EXPECT_EQ(entry.outcomes[0].first_all_correct, 4u);
  EXPECT_FALSE(entry.outcomes[1].all_correct_at_end);
  // v1 predates the steady-state fields; they default to zero.
  EXPECT_EQ(entry.outcomes[0].mean_correct_fraction, 0.0);
  EXPECT_EQ(entry.outcomes[0].resets, 0u);
}

// ---------------------------------------------------------------------------
// Scheduler-level cache self-healing

TEST(Chaos, CorruptV2EntryIsQuarantinedAndRecomputed) {
  const fs::path dir = scratch("np_chaos_heal");
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 301)};
  SchedulerOptions opts{.threads = 1,
                        .stop = StopRule{.max_reps = 3},
                        .cache_dir = dir.string()};
  const auto cold = run_experiment(cells, opts);
  const fs::path file = only_cache_file(dir);
  ASSERT_FALSE(file.empty());

  // Corrupt one body byte of the freshly written v2 entry.
  std::string bytes = slurp(file);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() - 2] ^= 1;
  {
    std::ofstream out(file, std::ios::trunc | std::ios::binary);
    out << bytes;
  }

  const auto healed = run_experiment(cells, opts);
  expect_same(cold[0], healed[0]);
  EXPECT_EQ(healed[0].reps_computed, 3u);
  EXPECT_EQ(healed[0].cache_quarantined, 1u);
  // The corrupt entry was preserved as evidence, tagged with its diagnosis.
  const fs::path moved = dir / ".quarantine" /
                         (file.filename().string() + ".checksum-mismatch");
  EXPECT_TRUE(fs::exists(moved));
  // And the cache was rewritten clean: a third run replays it fully.
  const auto warm = run_experiment(cells, opts);
  expect_same(cold[0], warm[0]);
  EXPECT_EQ(warm[0].reps_computed, 0u);
  EXPECT_EQ(warm[0].cache_quarantined, 0u);
}

TEST(Chaos, FutureFormatVersionIsQuarantinedNotParsed) {
  const fs::path dir = scratch("np_chaos_future_version");
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 302)};
  SchedulerOptions opts{.threads = 1,
                        .stop = StopRule{.max_reps = 2},
                        .cache_dir = dir.string()};
  const auto cold = run_experiment(cells, opts);
  const fs::path file = only_cache_file(dir);
  std::string bytes = slurp(file);
  // "noisypull-cell-cache 2 ..." -> version 9: a future layout this build
  // cannot interpret; trusting any of it would be guessing.
  const std::size_t version_at = std::string("noisypull-cell-cache ").size();
  ASSERT_EQ(bytes[version_at], '2');
  bytes[version_at] = '9';
  {
    std::ofstream out(file, std::ios::trunc | std::ios::binary);
    out << bytes;
  }
  const auto healed = run_experiment(cells, opts);
  expect_same(cold[0], healed[0]);
  EXPECT_EQ(healed[0].cache_quarantined, 1u);
  EXPECT_TRUE(fs::exists(dir / ".quarantine" /
                         (file.filename().string() + ".wrong-format-version")));
}

TEST(Chaos, V1EntryMigratesOnReadAndUpgradesOnDisk) {
  const fs::path dir = scratch("np_chaos_migrate");
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 303)};
  SchedulerOptions opts{.threads = 1,
                        .stop = StopRule{.max_reps = 3},
                        .cache_dir = dir.string()};
  const auto cold = run_experiment(cells, opts);
  const fs::path file = only_cache_file(dir);

  // Downgrade the entry to the v1 layout (no CRC, no steady fields) — what
  // a cache directory written by the previous release looks like.
  const CacheEntry parsed =
      parse_cache_entry(slurp(file), cold[0].cache_key);
  ASSERT_EQ(parsed.status, CacheEntryStatus::kHit);
  std::ostringstream v1;
  v1 << "noisypull-cell-cache 1 " << std::hex << std::setfill('0')
     << std::setw(16) << cold[0].cache_key << std::dec << " "
     << parsed.outcomes.size() << "\n";
  for (std::size_t r = 0; r < parsed.outcomes.size(); ++r) {
    const RepOutcome& o = parsed.outcomes[r];
    v1 << r << " " << (o.all_correct_at_end ? 1 : 0) << " "
       << (o.stable ? 1 : 0) << " " << o.rounds_run << " "
       << o.first_all_correct << " " << o.correct_at_end << "\n";
  }
  {
    std::ofstream out(file, std::ios::trunc | std::ios::binary);
    out << v1.str();
  }

  const auto migrated = run_experiment(cells, opts);
  expect_same(cold[0], migrated[0]);
  EXPECT_EQ(migrated[0].reps_computed, 0u);  // the v1 data was trusted
  EXPECT_EQ(migrated[0].reps_cached, 3u);
  // ... and the file was rewritten in the current format.
  EXPECT_EQ(parse_cache_entry(slurp(file), cold[0].cache_key).status,
            CacheEntryStatus::kHit);
}

TEST(Chaos, SeededFaultStormsNeverChangeStatistics) {
  // Torn writes, short reads, rename failures, and ENOSPC at high rates:
  // the cache may lose entries (and recompute more), the manifest may drop
  // records, but every reported statistic must equal the clean run's.
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 304),
      truncated_cell(pop(130, 1, 0), 0.25, 305)};
  const StopRule rule{.max_reps = 4};
  const auto clean =
      run_experiment(cells, SchedulerOptions{.threads = 2, .stop = rule});

  for (const std::uint64_t storm_seed : {1u, 2u, 3u}) {
    const fs::path dir =
        scratch(("np_chaos_storm_" + std::to_string(storm_seed)).c_str());
    SchedulerOptions opts{.threads = 2, .stop = rule,
                          .cache_dir = dir.string()};
    opts.manifest_path = (dir / "manifest").string();
    opts.report_path = (dir / "report.json").string();
    opts.fs_faults = io::FsFaultPlan{.seed = storm_seed,
                                     .torn_write = 0.5,
                                     .short_read = 0.5,
                                     .rename_failure = 0.5,
                                     .enospc = 0.5};
    const auto stormy = run_experiment(cells, opts);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      expect_same(clean[c], stormy[c]);
    }
    // A second pass over whatever survived on disk still agrees.
    const auto again = run_experiment(cells, opts);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      expect_same(clean[c], again[c]);
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume

TEST(Chaos, ResumeAfterCrashIsBitIdentical) {
  // Crash the sweep after a handful of repetitions (fatal throw from
  // rep_hook == the process dying), then restart with the same manifest:
  // the resumed run must replay the checkpointed work and report statistics
  // bit-identical to an uninterrupted sweep — with adaptive early stopping
  // on and across worker counts.
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 310),
      truncated_cell(pop(130, 1, 0), 0.25, 311),
      truncated_cell(pop(160, 1, 0), 0.3, 312)};
  const StopRule rule{.max_reps = 10, .min_reps = 3, .ci_halfwidth = 0.24};
  const auto reference =
      run_experiment(cells, SchedulerOptions{.threads = 1, .stop = rule});

  for (const unsigned threads : {1u, 2u, 8u}) {
    const fs::path dir =
        scratch(("np_chaos_resume_" + std::to_string(threads)).c_str());
    SchedulerOptions crashing{.threads = threads, .stop = rule};
    crashing.manifest_path = (dir / "manifest").string();
    std::atomic<std::uint64_t> computed{0};
    crashing.rep_hook = [&](std::size_t, std::uint64_t) {
      if (computed.fetch_add(1) >= 5) throw CrashNow{};
    };
    EXPECT_THROW(run_experiment(cells, crashing), CrashNow);

    SchedulerOptions resumed = crashing;
    resumed.rep_hook = nullptr;
    const auto stats = run_experiment(cells, resumed);
    std::uint64_t replayed = 0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      expect_same(reference[c], stats[c]);
      replayed += stats[c].reps_cached;
    }
    // The crashed run's completed repetitions were actually reused (the
    // crash fires after 5 hook calls, so at least some work landed).
    EXPECT_GT(replayed, 0u) << "threads=" << threads;
  }
}

TEST(Chaos, ReportIsByteIdenticalAcrossResume) {
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 320),
      truncated_cell(pop(130, 1, 0), 0.25, 321)};
  const StopRule rule{.max_reps = 6, .min_reps = 2, .ci_halfwidth = 0.3};

  const fs::path dir = scratch("np_chaos_report");
  SchedulerOptions uninterrupted{.threads = 2, .stop = rule};
  uninterrupted.report_path = (dir / "report_clean.json").string();
  run_experiment(cells, uninterrupted);

  SchedulerOptions crashing{.threads = 2, .stop = rule};
  crashing.manifest_path = (dir / "manifest").string();
  crashing.report_path = (dir / "report_resumed.json").string();
  std::atomic<std::uint64_t> computed{0};
  crashing.rep_hook = [&](std::size_t, std::uint64_t) {
    if (computed.fetch_add(1) >= 3) throw CrashNow{};
  };
  EXPECT_THROW(run_experiment(cells, crashing), CrashNow);
  SchedulerOptions resumed = crashing;
  resumed.rep_hook = nullptr;
  run_experiment(cells, resumed);

  const std::string clean = slurp(dir / "report_clean.json");
  const std::string after_resume = slurp(dir / "report_resumed.json");
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean, after_resume);
  EXPECT_NE(clean.find("\"schema\": \"noisypull-sweep-report/1\""),
            std::string::npos);
  EXPECT_NE(clean.find("\"degraded\": false"), std::string::npos);
}

TEST(Chaos, TornManifestTailIsIgnored) {
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 330)};
  const StopRule rule{.max_reps = 4};
  const fs::path dir = scratch("np_chaos_torn_tail");
  SchedulerOptions opts{.threads = 1, .stop = rule};
  opts.manifest_path = (dir / "manifest").string();
  const auto first = run_experiment(cells, opts);

  // A crash mid-append leaves a partial record with a failing (or missing)
  // line CRC; the resume must drop it and recompute that repetition.
  {
    std::ofstream out(opts.manifest_path, std::ios::app | std::ios::binary);
    out << "00000000000000aa 3 1 1";  // torn: no CRC, no newline
  }
  const auto second = run_experiment(cells, opts);
  expect_same(first[0], second[0]);
}

TEST(Chaos, StaleManifestIsQuarantinedNotTrusted) {
  // A manifest written for a different sweep (different cells => different
  // sweep digest) must not leak outcomes into this one.
  const fs::path dir = scratch("np_chaos_stale");
  const std::string manifest = (dir / "manifest").string();
  const StopRule rule{.max_reps = 3};

  const std::vector<ExperimentCell> sweep_a = {
      truncated_cell(pop(100, 1, 0), 0.3, 340)};
  SchedulerOptions opts{.threads = 1, .stop = rule};
  opts.manifest_path = manifest;
  run_experiment(sweep_a, opts);

  const std::vector<ExperimentCell> sweep_b = {
      truncated_cell(pop(130, 1, 0), 0.25, 341)};
  const auto fresh = run_experiment(
      sweep_b, SchedulerOptions{.threads = 1, .stop = rule});
  const auto with_stale = run_experiment(sweep_b, opts);
  expect_same(fresh[0], with_stale[0]);
  EXPECT_EQ(with_stale[0].reps_cached, 0u);
  EXPECT_EQ(with_stale[0].reps_computed, 3u);
  // The old manifest survives in quarantine.
  bool quarantined = false;
  const fs::path qdir = dir / ".quarantine";
  if (fs::exists(qdir)) {
    for (const auto& entry : fs::directory_iterator(qdir)) {
      quarantined |= entry.path().filename().string().find("stale-manifest") !=
                     std::string::npos;
    }
  }
  EXPECT_TRUE(quarantined);
}

// ---------------------------------------------------------------------------
// Transient retries, degradation, watchdog

TEST(Chaos, TransientFailureRetriesToSuccess) {
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 350)};
  const StopRule rule{.max_reps = 4};
  const auto reference =
      run_experiment(cells, SchedulerOptions{.threads = 1, .stop = rule});

  SchedulerOptions flaky{.threads = 1, .stop = rule};
  flaky.max_retries = 2;
  std::atomic<bool> failed_once{false};
  flaky.rep_hook = [&](std::size_t, std::uint64_t rep) {
    if (rep == 1 && !failed_once.exchange(true)) {
      throw TransientRepFailure("injected transient failure");
    }
  };
  const auto stats = run_experiment(cells, flaky);
  expect_same(reference[0], stats[0]);
  EXPECT_FALSE(stats[0].degraded);
  EXPECT_EQ(stats[0].failed_reps, 0u);
  EXPECT_EQ(stats[0].transient_retries, 1u);
  EXPECT_EQ(stats[0].reps, 4u);
}

TEST(Chaos, ExhaustedRetryBudgetDegradesTheCell) {
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 360),
      truncated_cell(pop(130, 1, 0), 0.25, 361)};
  const StopRule rule{.max_reps = 5};
  const fs::path dir = scratch("np_chaos_degrade");

  SchedulerOptions opts{.threads = 1, .stop = rule};
  opts.max_retries = 1;
  opts.report_path = (dir / "report.json").string();
  // Repetition 2 of cell 0 fails on every attempt; everything else is fine.
  opts.rep_hook = [](std::size_t cell, std::uint64_t rep) {
    if (cell == 0 && rep == 2) {
      throw TransientRepFailure("permanently broken repetition");
    }
  };
  const auto stats = run_experiment(cells, opts);

  // Cell 0: prefix pinned at the failure — statistics over reps [0, 2).
  EXPECT_TRUE(stats[0].degraded);
  EXPECT_EQ(stats[0].failed_reps, 1u);
  EXPECT_EQ(stats[0].transient_retries, 1u);  // one requeue, then permanent
  EXPECT_EQ(stats[0].reps, 2u);
  // Its surviving prefix matches the clean run's first two repetitions.
  const auto reference = run_experiment(
      {cells[0]}, SchedulerOptions{.threads = 1,
                                   .stop = StopRule{.max_reps = 2}});
  EXPECT_EQ(stats[0].successes, reference[0].successes);
  EXPECT_EQ(stats[0].mean_rounds_run, reference[0].mean_rounds_run);
  // Cell 1 is untouched and not degraded.
  EXPECT_FALSE(stats[1].degraded);
  EXPECT_EQ(stats[1].reps, 5u);
  // The report carries the degradation flag for downstream tooling.
  const std::string report = slurp(dir / "report.json");
  EXPECT_NE(report.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(report.find("\"failed_reps\": 1"), std::string::npos);
}

TEST(Chaos, FirstRepetitionFailingPermanentlyYieldsEmptyPrefix) {
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 370)};
  SchedulerOptions opts{.threads = 1, .stop = StopRule{.max_reps = 3}};
  opts.max_retries = 0;
  opts.rep_hook = [](std::size_t, std::uint64_t rep) {
    if (rep == 0) throw TransientRepFailure("rep 0 always fails");
  };
  const auto stats = run_experiment(cells, opts);
  EXPECT_TRUE(stats[0].degraded);
  EXPECT_EQ(stats[0].reps, 0u);
  EXPECT_EQ(stats[0].success_rate, 0.0);
  EXPECT_EQ(stats[0].failed_reps, 1u);
}

TEST(Chaos, WatchdogCancelsHungRepetitionAndDegrades) {
  // A repetition that would run ~forever (max_rounds effectively unbounded,
  // and a truncated SF never reaches stability) is cooperatively cancelled
  // by the watchdog, retried, and finally fails permanently — the sweep
  // completes degraded instead of hanging.
  const PopulationConfig p = pop(200, 1, 0);
  ExperimentCell hung = truncated_cell(p, 0.3, 380);
  hung.cfg.max_rounds = 1000000000000ULL;
  SchedulerOptions opts{.threads = 2, .stop = StopRule{.max_reps = 2}};
  opts.rep_timeout = 0.05;
  opts.max_retries = 1;
  const auto stats = run_experiment({hung}, opts);
  EXPECT_TRUE(stats[0].degraded);
  EXPECT_EQ(stats[0].reps, 0u);
  EXPECT_GE(stats[0].failed_reps, 1u);
  EXPECT_GE(stats[0].transient_retries, 1u);
}

TEST(Chaos, WatchdogLeavesFastRepetitionsAlone) {
  // A generous timeout must not perturb a healthy sweep: same statistics,
  // no retries, no degradation.
  const std::vector<ExperimentCell> cells = {
      truncated_cell(pop(100, 1, 0), 0.3, 390)};
  const StopRule rule{.max_reps = 3};
  const auto reference =
      run_experiment(cells, SchedulerOptions{.threads = 1, .stop = rule});
  SchedulerOptions opts{.threads = 1, .stop = rule};
  opts.rep_timeout = 60.0;
  const auto stats = run_experiment(cells, opts);
  expect_same(reference[0], stats[0]);
  EXPECT_EQ(stats[0].transient_retries, 0u);
  EXPECT_FALSE(stats[0].degraded);
}

// ---------------------------------------------------------------------------
// Manifest internals

TEST(Manifest, RecordsRoundTripThroughAppendOnlyJournal) {
  const fs::path dir = scratch("np_chaos_manifest_unit");
  const std::string path = (dir / "m").string();
  const std::vector<std::uint64_t> keys = {3, 5, 8};
  const std::uint64_t digest = sweep_digest(keys);

  RepOutcome o;
  o.all_correct_at_end = true;
  o.rounds_run = 12;
  o.first_all_correct = 7;
  o.mean_correct_fraction = 0.75;
  o.resets = 2;
  {
    SweepManifest m;
    m.open(path, digest, io::IoOptions{});
    EXPECT_TRUE(m.enabled());
    EXPECT_TRUE(m.records().empty());
    m.record(5, 0, o);
    m.record(5, 1, RepOutcome{});
    RepOutcome third;
    third.rounds_run = 9;
    m.record(3, 0, third);
  }
  SweepManifest reopened;
  reopened.open(path, digest, io::IoOptions{});
  const auto& records = reopened.records();
  ASSERT_EQ(records.size(), 3u);
  const auto it = records.find({5, 0});
  ASSERT_NE(it, records.end());
  EXPECT_TRUE(it->second.all_correct_at_end);
  EXPECT_EQ(it->second.rounds_run, 12u);
  EXPECT_EQ(it->second.first_all_correct, 7u);
  EXPECT_EQ(it->second.mean_correct_fraction, 0.75);
  EXPECT_EQ(it->second.resets, 2u);
}

TEST(Manifest, SweepDigestDependsOnKeysAndOrder) {
  EXPECT_NE(sweep_digest({1, 2}), sweep_digest({2, 1}));
  EXPECT_NE(sweep_digest({1, 2}), sweep_digest({1, 2, 3}));
  EXPECT_EQ(sweep_digest({1, 2}), sweep_digest({1, 2}));
}

}  // namespace
}  // namespace noisypull
