// Replay-digest auditor regression tests (the dynamic half of the
// determinism tooling; the static half is tools/noisypull_lint.cpp).
//
// The digest is a chained FNV-1a over (round, display vector) of every
// executed round.  The contract under test:
//   * the FNV-1a primitive matches the published reference vectors, so the
//     digest algorithm itself cannot drift silently;
//   * same configuration + same seed ⇒ identical digest for every engine
//     (Exact, Aggregate, Sequential, Heterogeneous) and for FaultyEngine at
//     a nonzero fault plan;
//   * different seeds ⇒ different digests (a constant digest would audit
//     nothing);
//   * a zero fault plan is digest-transparent (FaultyEngine == inner).
//
// Digests here are intentionally NOT pinned to cross-build golden
// constants: the trajectory depends on floating-point rounding, which
// -ffp-contract makes compiler-specific.  Within one binary, bit-for-bit
// equality is exactly the nondeterminism probe --verify-replay ships.
// Cross-commit pinning lives in test_golden_digest.cpp, which commits
// digests for three (engine, seed, FaultPlan) tuples under tests/golden/
// and gates enforcement on a toolchain-calibration tuple.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "noisypull/common/fnv.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/fault/faulty_engine.hpp"
#include "noisypull/model/engine.hpp"

namespace noisypull {
namespace {

std::uint64_t fnv1a_string(const char* s) {
  std::uint64_t d = fnv::kOffsetBasis;
  for (; *s != '\0'; ++s) {
    d = fnv::hash_byte(d, static_cast<std::uint8_t>(*s));
  }
  return d;
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors (Fowler/Noll/Vo).
  EXPECT_EQ(fnv1a_string(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a_string("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a_string("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, U64LittleEndianOrder) {
  // hash_u64 must fold bytes little-endian first regardless of host order.
  const std::uint64_t via_u64 = fnv::hash_u64(fnv::kOffsetBasis,
                                              0x0102030405060708ULL);
  std::uint64_t via_bytes = fnv::kOffsetBasis;
  constexpr std::uint8_t kBytes[] = {0x08, 0x07, 0x06, 0x05,
                                     0x04, 0x03, 0x02, 0x01};
  for (const std::uint8_t b : kBytes) {
    via_bytes = fnv::hash_byte(via_bytes, b);
  }
  EXPECT_EQ(via_u64, via_bytes);
}

enum class EngineKind { Exact, Aggregate, Sequential, Heterogeneous };

std::string kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::Exact: return "Exact";
    case EngineKind::Aggregate: return "Aggregate";
    case EngineKind::Sequential: return "Sequential";
    case EngineKind::Heterogeneous: return "Heterogeneous";
  }
  return "?";
}

constexpr std::uint64_t kN = 48;
constexpr std::uint64_t kH = 16;
constexpr double kDelta = 0.2;

std::unique_ptr<Engine> make_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::Exact:
      return std::make_unique<ExactEngine>();
    case EngineKind::Aggregate:
      return std::make_unique<AggregateEngine>();
    case EngineKind::Sequential:
      return std::make_unique<SequentialEngine>();
    case EngineKind::Heterogeneous:
      return std::make_unique<HeterogeneousEngine>(std::vector<NoiseMatrix>(
          kN, NoiseMatrix::uniform(2, kDelta)));
  }
  return nullptr;
}

// Steps a fresh SourceFilter over its full horizon (displays are phase-fixed
// early in the schedule; only a full run makes the display trajectory — and
// hence the digest — depend on the sampling randomness) and returns the
// engine's final digest.
std::uint64_t digest_of_run(Engine& engine, std::uint64_t seed) {
  const PopulationConfig pop{.n = kN, .s1 = 1, .s0 = 0};
  SourceFilter protocol(pop, Holdings{kH}, Delta{kDelta}, C1{2.0});
  const auto noise = NoiseMatrix::uniform(2, kDelta);
  Rng rng(seed);
  const std::uint64_t rounds = protocol.planned_rounds() + 4;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(protocol, noise, Holdings{kH}, r, rng);
  }
  return engine.replay_digest();
}

class ReplayDigest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ReplayDigest, FreshEngineStartsAtOffsetBasis) {
  EXPECT_EQ(make_engine(GetParam())->replay_digest(), fnv::kOffsetBasis);
}

TEST_P(ReplayDigest, SameSeedReproducesBitForBit) {
  const auto e1 = make_engine(GetParam());
  const auto e2 = make_engine(GetParam());
  const std::uint64_t d1 = digest_of_run(*e1, 7);
  const std::uint64_t d2 = digest_of_run(*e2, 7);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, fnv::kOffsetBasis) << "digest absorbed nothing";
}

TEST_P(ReplayDigest, DifferentSeedsDiverge) {
  const auto e1 = make_engine(GetParam());
  const auto e2 = make_engine(GetParam());
  EXPECT_NE(digest_of_run(*e1, 7), digest_of_run(*e2, 8));
}

TEST_P(ReplayDigest, DigestAdvancesEveryRound) {
  const auto engine = make_engine(GetParam());
  const PopulationConfig pop{.n = kN, .s1 = 1, .s0 = 0};
  SourceFilter protocol(pop, Holdings{kH}, Delta{kDelta}, C1{2.0});
  const auto noise = NoiseMatrix::uniform(2, kDelta);
  Rng rng(11);
  std::uint64_t previous = engine->replay_digest();
  for (std::uint64_t r = 0; r < 4; ++r) {
    engine->step(protocol, noise, Holdings{kH}, r, rng);
    EXPECT_NE(engine->replay_digest(), previous) << "round " << r;
    previous = engine->replay_digest();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ReplayDigest,
    ::testing::Values(EngineKind::Exact, EngineKind::Aggregate,
                      EngineKind::Sequential, EngineKind::Heterogeneous),
    [](const ::testing::TestParamInfo<EngineKind>& param_info) {
      return kind_name(param_info.param);
    });

FaultPlan nonzero_plan() {
  FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
  plan.seed = 99;
  plan.first_eligible = 1;  // the source stays honest
  plan.byzantine.fraction = 0.25;
  plan.drop.p = 0.2;
  plan.stall.crash_rate = 0.05;
  plan.burst.rate = 0.1;
  plan.burst.rounds = 2;
  plan.burst.delta = 0.5;
  return plan;
}

class FaultyReplayDigest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FaultyReplayDigest, SameSeedSamePlanReproducesBitForBit) {
  const auto inner1 = make_engine(GetParam());
  const auto inner2 = make_engine(GetParam());
  FaultyEngine f1(*inner1, nonzero_plan());
  FaultyEngine f2(*inner2, nonzero_plan());
  const std::uint64_t d1 = digest_of_run(f1, 7);
  const std::uint64_t d2 = digest_of_run(f2, 7);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1, fnv::kOffsetBasis);
}

TEST_P(FaultyReplayDigest, ByzantineDisplaysChangeTheDigest) {
  // The inner engine observes forged displays through the fault proxy, so a
  // nonzero plan must shift the digest relative to the fault-free run.
  const auto bare = make_engine(GetParam());
  const auto inner = make_engine(GetParam());
  FaultyEngine faulty(*inner, nonzero_plan());
  EXPECT_NE(digest_of_run(*bare, 7), digest_of_run(faulty, 7));
}

TEST_P(FaultyReplayDigest, ZeroPlanIsDigestTransparent) {
  const auto bare = make_engine(GetParam());
  const auto inner = make_engine(GetParam());
  FaultyEngine faulty(*inner, FaultPlan::for_binary(/*correct=*/1));
  EXPECT_EQ(digest_of_run(*bare, 7), digest_of_run(faulty, 7));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, FaultyReplayDigest,
    ::testing::Values(EngineKind::Exact, EngineKind::Aggregate,
                      EngineKind::Sequential, EngineKind::Heterogeneous),
    [](const ::testing::TestParamInfo<EngineKind>& param_info) {
      return kind_name(param_info.param);
    });

}  // namespace
}  // namespace noisypull
