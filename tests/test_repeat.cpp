#include "noisypull/sim/repeat.hpp"

#include <gtest/gtest.h>

#include "noisypull/analysis/table.hpp"
#include "noisypull/core/source_filter.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

ProtocolFactory sf_factory(const PopulationConfig& p, double delta) {
  return [p, delta](Rng&) -> std::unique_ptr<PullProtocol> {
    return std::make_unique<SourceFilter>(p, Holdings{p.n}, Delta{delta},
                                          C1{2.0});
  };
}

TEST(Repeat, ProducesOneResultPerRepetition) {
  const auto p = pop(100, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  const auto results =
      run_repetitions(sf_factory(p, 0.1), noise, 1, RunConfig{.h = p.n},
                      RepeatOptions{.repetitions = 5, .seed = 1});
  EXPECT_EQ(results.size(), 5u);
  for (const auto& r : results) EXPECT_GT(r.rounds_run, 0u);
}

TEST(Repeat, DeterministicForSameSeed) {
  const auto p = pop(100, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  const RepeatOptions opts{.repetitions = 4, .seed = 33};
  const auto a =
      run_repetitions(sf_factory(p, 0.1), noise, 1, RunConfig{.h = p.n}, opts);
  const auto b =
      run_repetitions(sf_factory(p, 0.1), noise, 1, RunConfig{.h = p.n}, opts);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].correct_at_end, b[i].correct_at_end);
    EXPECT_EQ(a[i].first_all_correct, b[i].first_all_correct);
  }
}

TEST(Repeat, ThreadCountDoesNotChangeResults) {
  const auto p = pop(100, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  RepeatOptions seq{.repetitions = 6, .seed = 44, .threads = 1};
  RepeatOptions par{.repetitions = 6, .seed = 44, .threads = 4};
  const auto a =
      run_repetitions(sf_factory(p, 0.1), noise, 1, RunConfig{.h = p.n}, seq);
  const auto b =
      run_repetitions(sf_factory(p, 0.1), noise, 1, RunConfig{.h = p.n}, par);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].correct_at_end, b[i].correct_at_end);
    EXPECT_EQ(a[i].first_all_correct, b[i].first_all_correct);
  }
}

TEST(Repeat, RepetitionsAreIndependentAcrossSeeds) {
  // Truncate the run right after the weak opinions are formed so
  // correct_at_end is a high-entropy random count — different seeds must
  // then disagree somewhere.
  const auto p = pop(100, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.3);
  const SourceFilter ref(p, Holdings{p.n}, Delta{0.3}, C1{2.0});
  const RunConfig cfg{.h = p.n,
                      .max_rounds = ref.schedule().boosting_start()};
  const auto a = run_repetitions(sf_factory(p, 0.3), noise, 1, cfg,
                                 RepeatOptions{.repetitions = 4, .seed = 1});
  const auto b = run_repetitions(sf_factory(p, 0.3), noise, 1, cfg,
                                 RepeatOptions{.repetitions = 4, .seed = 2});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].correct_at_end != b[i].correct_at_end ||
        a[i].first_all_correct != b[i].first_all_correct) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Repeat, ExactEngineOptionRuns) {
  const auto p = pop(60, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  const auto results = run_repetitions(
      sf_factory(p, 0.1), noise, 1, RunConfig{.h = 4},
      RepeatOptions{.repetitions = 2, .seed = 5,
                    .use_aggregate_engine = false});
  EXPECT_EQ(results.size(), 2u);
}

TEST(Repeat, FactoryExceptionsPropagateToTheCaller) {
  const auto p = pop(50, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  const ProtocolFactory broken = [](Rng&) -> std::unique_ptr<PullProtocol> {
    throw std::invalid_argument("factory failure");
  };
  for (unsigned threads : {1u, 4u}) {
    EXPECT_THROW(
        run_repetitions(broken, noise, 1, RunConfig{.h = p.n},
                        RepeatOptions{.repetitions = 6,
                                      .seed = 1,
                                      .threads = threads}),
        std::invalid_argument);
  }
}

TEST(Repeat, RunExceptionsPropagateToTheCaller) {
  // Alphabet mismatch between protocol (binary) and noise (3 symbols)
  // surfaces from inside the worker threads.
  const auto p = pop(50, 1, 0);
  const auto noise = NoiseMatrix::uniform(3, 0.1);
  EXPECT_THROW(run_repetitions(sf_factory(p, 0.1), noise, 1,
                               RunConfig{.h = p.n},
                               RepeatOptions{.repetitions = 4,
                                             .seed = 1,
                                             .threads = 4}),
               std::invalid_argument);
}

TEST(Repeat, RejectsZeroRepetitions) {
  const auto p = pop(50, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  EXPECT_THROW(run_repetitions(sf_factory(p, 0.1), noise, 1,
                               RunConfig{.h = p.n},
                               RepeatOptions{.repetitions = 0}),
               std::invalid_argument);
}

TEST(Aggregation, SuccessRate) {
  std::vector<RunResult> results(4);
  results[0].all_correct_at_end = true;
  results[1].all_correct_at_end = true;
  results[2].all_correct_at_end = false;
  results[3].all_correct_at_end = true;
  EXPECT_DOUBLE_EQ(success_rate(results), 0.75);

  results[0].stable = true;
  EXPECT_DOUBLE_EQ(success_rate(results, /*require_stability=*/true), 0.25);
  EXPECT_THROW(success_rate({}), std::invalid_argument);
}

TEST(Aggregation, StabilityOnTheWrongOpinionIsNotSuccess) {
  // run_impl can only set stable after an all-correct final round, but
  // RunResult is a plain struct: pin the aggregation semantics so a run
  // that settled (stable) on the WRONG consensus never counts as success.
  std::vector<RunResult> results(2);
  results[0].stable = true;
  results[0].all_correct_at_end = false;  // stable, but on the wrong opinion
  results[1].stable = true;
  results[1].all_correct_at_end = true;
  EXPECT_DOUBLE_EQ(success_rate(results, /*require_stability=*/true), 0.5);
  EXPECT_DOUBLE_EQ(success_rate(results), 0.5);
}

TEST(Aggregation, MeanConvergenceRound) {
  std::vector<RunResult> results(3);
  results[0].first_all_correct = 10;
  results[1].first_all_correct = 20;
  results[2].first_all_correct = kNever;  // excluded from the mean
  ASSERT_TRUE(mean_convergence_round(results).has_value());
  EXPECT_DOUBLE_EQ(*mean_convergence_round(results), 15.0);

  // No converged run → empty optional, never a numeric sentinel (the old
  // static_cast<double>(kNever) leaked ~1.8e19 into tables as if it were a
  // round count).
  std::vector<RunResult> none(2);
  none[0].first_all_correct = kNever;
  none[1].first_all_correct = kNever;
  EXPECT_FALSE(mean_convergence_round(none).has_value());
}

TEST(Aggregation, MeanConvergenceRoundRendersAsNeverInTables) {
  std::vector<RunResult> none(1);
  none[0].first_all_correct = kNever;
  Table table({"mcr"});
  table.cell(mean_convergence_round(none), 1).end_row();
  EXPECT_EQ(table.rows()[0][0], "never");
}

TEST(Repeat, EngineThreadsDoNotChangeResults) {
  // Inner (block-parallel) lanes compose with outer repetition workers
  // without changing a single result bit.
  const auto p = pop(100, 1, 0);
  const auto noise = NoiseMatrix::uniform(2, 0.1);
  RepeatOptions serial{.repetitions = 4, .seed = 77, .threads = 2,
                       .engine_threads = 1};
  RepeatOptions inner_par{.repetitions = 4, .seed = 77, .threads = 2,
                          .engine_threads = 3};
  const auto a = run_repetitions(sf_factory(p, 0.1), noise, 1,
                                 RunConfig{.h = p.n}, serial);
  const auto b = run_repetitions(sf_factory(p, 0.1), noise, 1,
                                 RunConfig{.h = p.n}, inner_par);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].correct_at_end, b[i].correct_at_end);
    EXPECT_EQ(a[i].first_all_correct, b[i].first_all_correct);
  }
}

}  // namespace
}  // namespace noisypull
