// Determinism contract of the block-parallel round kernel.
//
// The kernel draws one u64 round key from the master stream per step and
// derives every agent block's substream as Rng(round_key, block); the block
// grid is fixed (kBlockSize agents) independent of the lane count.  The
// displays absorbed into the replay digest are therefore a pure function of
// (config, seed) — never of how many threads executed the round.  These
// tests pin that contract:
//   * digest identical for 1, 2, and 8 lanes on every engine, with the
//     serial run as the reference;
//   * the same under a nonzero FaultPlan (fault sampling stays on the
//     serial proxy path; only per-agent observation work is parallel);
//   * digest identical with the observation-sampler cache on and off
//     (both modes map the same uniform to the same outcome);
//   * all of the above on a k-ary (d > 2) alphabet, which exercises the
//     NEXCOM composition enumeration instead of the binary fast path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "noisypull/common/fnv.hpp"
#include "noisypull/core/kary.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/fault/faulty_engine.hpp"
#include "noisypull/model/engine.hpp"

namespace noisypull {
namespace {

enum class EngineKind { Exact, Aggregate, Sequential, Heterogeneous };

std::string kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::Exact: return "Exact";
    case EngineKind::Aggregate: return "Aggregate";
    case EngineKind::Sequential: return "Sequential";
    case EngineKind::Heterogeneous: return "Heterogeneous";
  }
  return "?";
}

constexpr std::uint64_t kN = 48;
constexpr std::uint64_t kH = 16;
constexpr double kDelta = 0.2;

std::unique_ptr<Engine> make_engine(EngineKind kind, std::size_t d = 2) {
  switch (kind) {
    case EngineKind::Exact:
      return std::make_unique<ExactEngine>();
    case EngineKind::Aggregate:
      return std::make_unique<AggregateEngine>();
    case EngineKind::Sequential:
      return std::make_unique<SequentialEngine>();
    case EngineKind::Heterogeneous:
      return std::make_unique<HeterogeneousEngine>(std::vector<NoiseMatrix>(
          kN, NoiseMatrix::uniform(d, kDelta)));
  }
  return nullptr;
}

// Full SourceFilter horizon, as in test_replay_digest: only a complete run
// makes the display trajectory depend on the sampling randomness.
std::uint64_t digest_of_run(Engine& engine, std::uint64_t seed) {
  const PopulationConfig pop{.n = kN, .s1 = 1, .s0 = 0};
  SourceFilter protocol(pop, Holdings{kH}, Delta{kDelta}, C1{2.0});
  const auto noise = NoiseMatrix::uniform(2, kDelta);
  Rng rng(seed);
  const std::uint64_t rounds = protocol.planned_rounds() + 4;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(protocol, noise, Holdings{kH}, r, rng);
  }
  return engine.replay_digest();
}

std::uint64_t digest_of_kary_run(Engine& engine, std::uint64_t seed) {
  const KaryPopulation pop{.n = kN, .sources = {0, 1, 0}};
  KarySourceFilter protocol(pop, Holdings{kH}, Delta{0.05});
  const auto noise = NoiseMatrix::uniform(3, 0.05);
  Rng rng(seed);
  const std::uint64_t rounds = protocol.planned_rounds() + 4;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    engine.step(protocol, noise, Holdings{kH}, r, rng);
  }
  return engine.replay_digest();
}

class ParallelKernel : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ParallelKernel, LaneCountNeverChangesTheDigest) {
  const auto serial = make_engine(GetParam());
  const std::uint64_t reference = digest_of_run(*serial, 7);
  ASSERT_NE(reference, fnv::kOffsetBasis) << "digest absorbed nothing";
  for (unsigned lanes : {2u, 8u}) {
    const auto engine = make_engine(GetParam());
    engine->set_threads(lanes);
    EXPECT_EQ(digest_of_run(*engine, 7), reference) << lanes << " lanes";
  }
}

TEST_P(ParallelKernel, LaneCountNeverChangesTheDigestUnderFaults) {
  FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
  plan.seed = 99;
  plan.first_eligible = 1;  // the source stays honest
  plan.byzantine.fraction = 0.25;
  plan.drop.p = 0.2;
  plan.stall.crash_rate = 0.05;
  plan.burst.rate = 0.1;
  plan.burst.rounds = 2;
  plan.burst.delta = 0.5;

  const auto serial_inner = make_engine(GetParam());
  FaultyEngine serial(*serial_inner, plan);
  const std::uint64_t reference = digest_of_run(serial, 7);
  for (unsigned lanes : {2u, 8u}) {
    const auto inner = make_engine(GetParam());
    FaultyEngine faulty(*inner, plan);
    faulty.set_threads(lanes);
    EXPECT_EQ(digest_of_run(faulty, 7), reference) << lanes << " lanes";
    // The relaxed-atomic fault accumulators fold to the same totals as the
    // serial run: per-round sums are order-independent.
    EXPECT_EQ(faulty.stats().stalled_updates, serial.stats().stalled_updates)
        << lanes << " lanes";
    EXPECT_EQ(faulty.stats().dropped_observations,
              serial.stats().dropped_observations)
        << lanes << " lanes";
  }
}

TEST_P(ParallelKernel, SamplerCacheToggleNeverChangesTheDigest) {
  const auto cached = make_engine(GetParam());
  const auto uncached = make_engine(GetParam());
  cached->set_sampler_cache(true);
  uncached->set_sampler_cache(false);
  EXPECT_EQ(digest_of_run(*cached, 7), digest_of_run(*uncached, 7));
}

TEST_P(ParallelKernel, KaryLaneAndCacheInvariance) {
  // d = 3 exercises the composition-enumeration sampler (NEXCOM order)
  // rather than the binary index decode.
  const auto serial = make_engine(GetParam(), 3);
  const std::uint64_t reference = digest_of_kary_run(*serial, 13);
  ASSERT_NE(reference, fnv::kOffsetBasis);

  const auto parallel = make_engine(GetParam(), 3);
  parallel->set_threads(8);
  EXPECT_EQ(digest_of_kary_run(*parallel, 13), reference);

  const auto uncached = make_engine(GetParam(), 3);
  uncached->set_sampler_cache(false);
  EXPECT_EQ(digest_of_kary_run(*uncached, 13), reference);

  const auto both = make_engine(GetParam(), 3);
  both->set_threads(8);
  both->set_sampler_cache(false);
  EXPECT_EQ(digest_of_kary_run(*both, 13), reference);
}

TEST_P(ParallelKernel, SetThreadsRejectsZeroLanes) {
  const auto engine = make_engine(GetParam());
  EXPECT_THROW(engine->set_threads(0), std::invalid_argument);
}

TEST_P(ParallelKernel, ThreadsAccessorRoundTrips) {
  const auto engine = make_engine(GetParam());
  EXPECT_EQ(engine->threads(), 1u);
  engine->set_threads(3);
  EXPECT_EQ(engine->threads(), 3u);
  engine->set_threads(1);
  EXPECT_EQ(engine->threads(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ParallelKernel,
    ::testing::Values(EngineKind::Exact, EngineKind::Aggregate,
                      EngineKind::Sequential, EngineKind::Heterogeneous),
    [](const ::testing::TestParamInfo<EngineKind>& param_info) {
      return kind_name(param_info.param);
    });

}  // namespace
}  // namespace noisypull
