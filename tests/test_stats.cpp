#include "noisypull/analysis/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace noisypull {
namespace {

TEST(Summarize, KnownSample) {
  const std::array<double, 5> v = {2, 4, 4, 4, 6};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);  // sample variance = 8/4
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_NEAR(s.ci95_half_width, 1.959964 * std::sqrt(2.0 / 5.0), 1e-9);
}

TEST(Summarize, SingleValue) {
  const std::array<double, 1> v = {3.5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Summarize, EmptyThrows) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::array<double, 4> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputIsHandled) {
  const std::array<double, 3> v = {9, 1, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Quantile, Validation) {
  const std::array<double, 2> v = {1, 2};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Wilson, CentersNearPointEstimateForLargeN) {
  const auto iv = wilson_interval(500, 1000);
  EXPECT_NEAR((iv.lower + iv.upper) / 2, 0.5, 0.01);
  EXPECT_GT(iv.lower, 0.46);
  EXPECT_LT(iv.upper, 0.54);
}

TEST(Wilson, NeverLeavesUnitInterval) {
  for (std::uint64_t k : {0ULL, 1ULL, 5ULL}) {
    const auto iv = wilson_interval(k, 5);
    EXPECT_GE(iv.lower, 0.0);
    EXPECT_LE(iv.upper, 1.0);
    EXPECT_LE(iv.lower, iv.upper);
  }
}

TEST(Wilson, ExtremeCountsHaveNonDegenerateIntervals) {
  const auto zero = wilson_interval(0, 20);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.05);
  const auto all = wilson_interval(20, 20);
  EXPECT_LT(all.lower, 0.95);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
}

TEST(Wilson, Validation) {
  EXPECT_THROW(wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(wilson_interval(5, 4), std::invalid_argument);
}

TEST(ChiSquare, ZeroForPerfectFit) {
  const std::array<std::uint64_t, 2> obs = {30, 70};
  const std::array<double, 2> probs = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(chi_square_statistic(obs, probs), 0.0);
}

TEST(ChiSquare, KnownStatistic) {
  // obs = {60, 40} vs p = {0.5, 0.5}: stat = 100/50 + 100/50 = 4.
  const std::array<std::uint64_t, 2> obs = {60, 40};
  const std::array<double, 2> probs = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(chi_square_statistic(obs, probs), 4.0);
}

TEST(ChiSquare, ZeroProbabilityCellWithMassThrows) {
  const std::array<std::uint64_t, 2> obs = {1, 1};
  const std::array<double, 2> probs = {0.0, 1.0};
  EXPECT_THROW(chi_square_statistic(obs, probs), std::invalid_argument);
}

TEST(ChiSquare, ZeroProbabilityCellWithoutMassIsFine) {
  const std::array<std::uint64_t, 2> obs = {0, 10};
  const std::array<double, 2> probs = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(chi_square_statistic(obs, probs), 0.0);
}

TEST(ChiSquare, CriticalValuesAreMonotone) {
  for (std::size_t df = 2; df <= 16; ++df) {
    EXPECT_GT(chi_square_critical_999(df), chi_square_critical_999(df - 1));
  }
  EXPECT_NEAR(chi_square_critical_999(1), 10.828, 1e-3);
  EXPECT_THROW(chi_square_critical_999(0), std::invalid_argument);
  EXPECT_THROW(chi_square_critical_999(17), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
