// Property-based suites: paper invariants checked over parameter grids with
// randomized instances (TEST_P sweeps standing in for quick-check style
// properties).
#include <gtest/gtest.h>

#include <cmath>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

// ---------------------------------------------------------------------------
// Corollary 14: every δ-upper-bounded matrix is invertible and
// ‖N⁻¹‖∞ ≤ (d−1)/(1−dδ).
// ---------------------------------------------------------------------------

struct AlphabetLevel {
  std::size_t d;
  double frac;  // δ as a fraction of 1/d
};

class Corollary14 : public ::testing::TestWithParam<AlphabetLevel> {};

TEST_P(Corollary14, InverseExistsWithBoundedNorm) {
  const auto [d, frac] = GetParam();
  const double delta = frac / static_cast<double>(d);
  Rng rng(1000 + d * 17 + static_cast<int>(frac * 100));
  const double bound =
      static_cast<double>(d - 1) / (1.0 - static_cast<double>(d) * delta);
  for (int rep = 0; rep < 40; ++rep) {
    const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
    const auto inv = invert(n.matrix());
    ASSERT_TRUE(inv.has_value());
    EXPECT_LE(inv->inf_norm(), bound + 1e-8);
    // Claim 12: the inverse of a (weakly-)stochastic matrix is weakly
    // stochastic.
    EXPECT_TRUE(inv->is_weakly_stochastic(1e-7));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Corollary14,
    ::testing::Values(AlphabetLevel{2, 0.3}, AlphabetLevel{2, 0.7},
                      AlphabetLevel{2, 0.95}, AlphabetLevel{3, 0.5},
                      AlphabetLevel{4, 0.5}, AlphabetLevel{4, 0.9},
                      AlphabetLevel{6, 0.6}, AlphabetLevel{8, 0.8}),
    [](const ::testing::TestParamInfo<AlphabetLevel>& param_info) {
      return "d" + std::to_string(param_info.param.d) + "_frac" +
             std::to_string(static_cast<int>(param_info.param.frac * 100));
    });

// ---------------------------------------------------------------------------
// Theorem 8 / Proposition 16: the artificial-noise matrix is stochastic and
// the composed channel is exactly f(δ)-uniform — for random instances.
// ---------------------------------------------------------------------------

class Theorem8 : public ::testing::TestWithParam<AlphabetLevel> {};

TEST_P(Theorem8, ReductionProducesUniformChannel) {
  const auto [d, frac] = GetParam();
  const double delta = frac / static_cast<double>(d);
  Rng rng(2000 + d * 31 + static_cast<int>(frac * 100));
  for (int rep = 0; rep < 25; ++rep) {
    const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
    const auto red = reduce_to_uniform(n, delta);
    EXPECT_TRUE(red.artificial.is_stochastic(1e-8));
    EXPECT_NEAR(red.delta_prime, uniform_noise_level(d, delta), 1e-12);
    EXPECT_TRUE(red.effective.is_uniform(red.delta_prime, 1e-7));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem8,
    ::testing::Values(AlphabetLevel{2, 0.4}, AlphabetLevel{2, 0.9},
                      AlphabetLevel{3, 0.6}, AlphabetLevel{4, 0.4},
                      AlphabetLevel{4, 0.9}, AlphabetLevel{5, 0.7}),
    [](const ::testing::TestParamInfo<AlphabetLevel>& param_info) {
      return "d" + std::to_string(param_info.param.d) + "_frac" +
             std::to_string(static_cast<int>(param_info.param.frac * 100));
    });

// ---------------------------------------------------------------------------
// Engines: a protocol run is invariant in distribution under the engine
// choice — here, the mean observed-1 count for a fixed display population.
// ---------------------------------------------------------------------------

struct EngineEquivalenceCase {
  std::uint64_t n;
  std::uint64_t h;
  double delta;
};

class EngineEquivalence
    : public ::testing::TestWithParam<EngineEquivalenceCase> {};

TEST_P(EngineEquivalence, MeanObservedOnesAgree) {
  const auto [n, h, delta] = GetParam();
  const auto noise = NoiseMatrix::uniform(2, delta);

  class Fixed : public PullProtocol {
   public:
    explicit Fixed(std::uint64_t n) : n_(n) {}
    std::size_t alphabet_size() const override { return 2; }
    std::uint64_t num_agents() const override { return n_; }
    Symbol display(std::uint64_t agent, std::uint64_t) const override {
      return agent % 4 == 0 ? 1 : 0;  // 1/4 of agents display 1 (about)
    }
    void update(std::uint64_t, std::uint64_t, const SymbolCounts& obs,
                Rng&) override {
      total_ones += obs[1];
      total_msgs += obs.total();
    }
    Opinion opinion(std::uint64_t) const override { return 0; }
    std::uint64_t n_;
    std::uint64_t total_ones = 0;
    std::uint64_t total_msgs = 0;
  };

  auto fraction = [&](Engine& engine, std::uint64_t seed) {
    Fixed protocol(n);
    Rng rng(seed);
    for (int t = 0; t < 40; ++t) engine.step(protocol, noise, Holdings{h}, t,
                                             rng);
    return static_cast<double>(protocol.total_ones) /
           static_cast<double>(protocol.total_msgs);
  };

  ExactEngine exact;
  AggregateEngine aggregate;
  const double fe = fraction(exact, 1);
  const double fa = fraction(aggregate, 2);
  const double nd = static_cast<double>(n);
  const double ones_displayed = std::floor((nd + 3) / 4.0);
  const double p1 = (ones_displayed / nd) * (1 - delta) +
                    (1 - ones_displayed / nd) * delta;
  const double sigma =
      std::sqrt(p1 * (1 - p1) / (40.0 * static_cast<double>(n * h)));
  EXPECT_NEAR(fe, p1, 6 * sigma + 1e-6);
  EXPECT_NEAR(fa, p1, 6 * sigma + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineEquivalence,
    ::testing::Values(EngineEquivalenceCase{8, 1, 0.1},
                      EngineEquivalenceCase{16, 4, 0.25},
                      EngineEquivalenceCase{64, 16, 0.4},
                      EngineEquivalenceCase{100, 100, 0.05}),
    [](const ::testing::TestParamInfo<EngineEquivalenceCase>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_h" +
             std::to_string(param_info.param.h) + "_d" +
             std::to_string(static_cast<int>(param_info.param.delta * 100));
    });

// ---------------------------------------------------------------------------
// SF end-to-end over a (n, h, δ, sources) grid: converges on the plurality
// preference.
// ---------------------------------------------------------------------------

struct SfCase {
  std::uint64_t n;
  std::uint64_t h;  // 0 → h = n
  double delta;
  std::uint64_t s1;
  std::uint64_t s0;
};

class SfConvergence : public ::testing::TestWithParam<SfCase> {};

TEST_P(SfConvergence, ReachesCorrectConsensus) {
  const auto c = GetParam();
  const PopulationConfig p{.n = c.n, .s1 = c.s1, .s0 = c.s0};
  const std::uint64_t h = c.h == 0 ? c.n : c.h;
  const auto noise = NoiseMatrix::uniform(2, c.delta);
  const auto results = run_repetitions(
      [&](Rng&) -> std::unique_ptr<PullProtocol> {
        return std::make_unique<SourceFilter>(p, Holdings{h}, Delta{c.delta},
                                              C1{2.0});
      },
      noise, p.correct_opinion(), RunConfig{.h = h},
      RepeatOptions{.repetitions = 5, .seed = 77});
  EXPECT_GE(success_rate(results), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SfConvergence,
    ::testing::Values(SfCase{200, 0, 0.1, 1, 0},    // single source, h = n
                      SfCase{200, 0, 0.3, 1, 0},    // heavier noise
                      SfCase{200, 0, 0.0, 1, 0},    // noiseless edge
                      SfCase{400, 20, 0.1, 1, 0},   // h = √n
                      SfCase{400, 0, 0.1, 3, 1},    // conflicting sources
                      SfCase{400, 0, 0.1, 10, 0},   // many sources
                      SfCase{100, 0, 0.1, 25, 0},   // s = n/4 boundary
                      SfCase{300, 0, 0.2, 0, 1}),   // correct opinion is 0
    [](const ::testing::TestParamInfo<SfCase>& param_info) {
      const auto& c = param_info.param;
      return "n" + std::to_string(c.n) + "_h" + std::to_string(c.h) + "_d" +
             std::to_string(static_cast<int>(c.delta * 100)) + "_s" +
             std::to_string(c.s1) + "v" + std::to_string(c.s0);
    });

// ---------------------------------------------------------------------------
// SSF end-to-end across corruption policies and parameters.
// ---------------------------------------------------------------------------

struct SsfCase {
  std::uint64_t n;
  double delta;
  CorruptionPolicy policy;
};

class SsfRecovery : public ::testing::TestWithParam<SsfCase> {};

TEST_P(SsfRecovery, ConvergesDespiteCorruption) {
  const auto c = GetParam();
  const PopulationConfig p{.n = c.n, .s1 = 2, .s0 = 0};
  const auto noise = NoiseMatrix::uniform(4, c.delta);
  const auto results = run_repetitions(
      [&](Rng& init) -> std::unique_ptr<PullProtocol> {
        auto ssf =
            std::make_unique<SelfStabilizingSourceFilter>(p, Holdings{p.n},
                                                          Delta{c.delta},
                                                          C1{2.0});
        corrupt_population(*ssf, c.policy, p.correct_opinion(), init);
        return ssf;
      },
      noise, p.correct_opinion(),
      RunConfig{.h = p.n,
                .max_rounds = SelfStabilizingSourceFilter(p, Holdings{p.n},
                                                          Delta{c.delta},
                                                          C1{2.0})
                                  .convergence_deadline()},
      RepeatOptions{.repetitions = 4, .seed = 88});
  EXPECT_GE(success_rate(results), 0.75) << to_string(c.policy);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SsfRecovery,
    ::testing::Values(
        SsfCase{200, 0.05, CorruptionPolicy::None},
        SsfCase{200, 0.05, CorruptionPolicy::RandomState},
        SsfCase{200, 0.05, CorruptionPolicy::WrongConsensus},
        SsfCase{200, 0.05, CorruptionPolicy::OverflowMemory},
        SsfCase{200, 0.05, CorruptionPolicy::DesyncClocks},
        SsfCase{400, 0.1, CorruptionPolicy::WrongConsensus},
        SsfCase{400, 0.0, CorruptionPolicy::WrongConsensus}),
    [](const ::testing::TestParamInfo<SsfCase>& param_info) {
      std::string name = to_string(param_info.param.policy);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return "n" + std::to_string(param_info.param.n) + "_d" +
             std::to_string(static_cast<int>(param_info.param.delta * 100)) + "_" +
             name;
    });

// ---------------------------------------------------------------------------
// Weak-opinion independence (SF): the empirical correlation between the weak
// opinions of two fixed agents across repetitions is ~0 (the mutual
// independence of Lemma 28).
// ---------------------------------------------------------------------------

TEST(WeakOpinionProperties, PairwiseCorrelationIsSmall) {
  const PopulationConfig p{.n = 60, .s1 = 1, .s0 = 0};
  const double delta = 0.3;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const int kReps = 400;
  int a = 0, b = 0, ab = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{1.0});
    AggregateEngine engine;
    Rng rng(500 + rep);
    for (std::uint64_t t = 0; t < sf.schedule().boosting_start(); ++t) {
      engine.step(sf, noise, Holdings{p.n}, t, rng);
    }
    const int ya = sf.weak_opinion(10);
    const int yb = sf.weak_opinion(20);
    a += ya;
    b += yb;
    ab += ya * yb;
  }
  const double pa = static_cast<double>(a) / kReps;
  const double pb = static_cast<double>(b) / kReps;
  const double pab = static_cast<double>(ab) / kReps;
  // Covariance ≈ 0 within ~4 standard errors of a product of Bernoullis.
  EXPECT_NEAR(pab, pa * pb, 4.0 * 0.5 / std::sqrt(static_cast<double>(kReps)));
}

}  // namespace
}  // namespace noisypull
