#include "noisypull/rng/binomial.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "noisypull/analysis/stats.hpp"

namespace noisypull {
namespace {

// Binned chi-square statistic of `draws` samples from sample_binomial(n, p)
// against the exact binned pmf (log-pmf accumulation).  edges are inclusive
// upper bounds; bins = edges.size() + 1.
double binned_binomial_chi_square(std::uint64_t n, double p,
                                  std::uint64_t seed,
                                  std::span<const std::uint64_t> edges,
                                  int draws) {
  Rng rng(seed);
  std::vector<std::uint64_t> observed(edges.size() + 1, 0);
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t x = sample_binomial(rng, n, p);
    std::size_t bin = 0;
    while (bin < edges.size() && x > edges[bin]) ++bin;
    ++observed[bin];
  }
  std::vector<double> expected(edges.size() + 1, 0.0);
  double logc = 0.0;  // log C(n, k), updated incrementally
  for (std::uint64_t k = 0; k <= n; ++k) {
    const double logp = logc + static_cast<double>(k) * std::log(p) +
                        static_cast<double>(n - k) * std::log(1 - p);
    std::size_t bin = 0;
    while (bin < edges.size() && k > edges[bin]) ++bin;
    expected[bin] += std::exp(logp);
    if (k < n) {
      logc += std::log(static_cast<double>(n - k)) -
              std::log(static_cast<double>(k + 1));
    }
  }
  return chi_square_statistic(observed, expected);
}

TEST(Binomial, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 1.0), 100u);
  EXPECT_THROW(sample_binomial(rng, 10, -0.1), std::invalid_argument);
  EXPECT_THROW(sample_binomial(rng, 10, 1.1), std::invalid_argument);
}

TEST(Binomial, AlwaysWithinRange) {
  Rng rng(2);
  for (double p : {0.01, 0.3, 0.5, 0.7, 0.99}) {
    for (std::uint64_t n : {1ULL, 5ULL, 50ULL, 5000ULL}) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_LE(sample_binomial(rng, n, p), n);
      }
    }
  }
}

struct MomentCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(1000 + n);
  const int kDraws = 40000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(sample_binomial(rng, n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  const double want_mean = static_cast<double>(n) * p;
  const double want_var = static_cast<double>(n) * p * (1 - p);
  // 6-sigma tolerance on the sample mean; looser on variance.
  EXPECT_NEAR(mean, want_mean, 6 * std::sqrt(want_var / kDraws) + 1e-9);
  EXPECT_NEAR(var, want_var, 0.1 * want_var + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BinomialMoments,
    ::testing::Values(MomentCase{1, 0.5},       // Bernoulli
                      MomentCase{8, 0.25},      // BINV
                      MomentCase{40, 0.1},      // BINV boundary
                      MomentCase{100, 0.3},     // BTRS
                      MomentCase{100, 0.7},     // BTRS via symmetry
                      MomentCase{10000, 0.02},  // BTRS, small p, large n
                      MomentCase{100000, 0.5},  // BTRS, large everything
                      MomentCase{33, 0.999}));  // near-certain

TEST(Binomial, SmallNGoodnessOfFit) {
  // Exact chi-square goodness-of-fit against the Binomial(6, 0.35) pmf;
  // exercises the inversion sampler cell by cell.
  Rng rng(42);
  constexpr std::uint64_t kN = 6;
  constexpr double kP = 0.35;
  std::array<std::uint64_t, kN + 1> observed{};
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++observed[sample_binomial(rng, kN, kP)];

  std::array<double, kN + 1> pmf{};
  for (std::uint64_t k = 0; k <= kN; ++k) {
    double c = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(kN - j) / static_cast<double>(j + 1);
    }
    pmf[k] = c * std::pow(kP, static_cast<double>(k)) *
             std::pow(1 - kP, static_cast<double>(kN - k));
  }
  const double stat = chi_square_statistic(observed, pmf);
  EXPECT_LT(stat, chi_square_critical_999(kN));
}

TEST(Binomial, BtrsGoodnessOfFitBinned) {
  // BTRS draws from Binomial(400, 0.4), binned into 8 equiprobable-ish
  // intervals around the mean; chi-square against exact binned pmf.
  Rng rng(4242);
  constexpr std::uint64_t kN = 400;
  constexpr double kP = 0.4;
  // Bin edges chosen around mean 160, sd ~9.8.
  const std::array<std::uint64_t, 7> edges = {146, 153, 157, 160, 163, 167, 174};
  std::array<std::uint64_t, 8> observed{};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = sample_binomial(rng, kN, kP);
    std::size_t bin = 0;
    while (bin < edges.size() && x > edges[bin]) ++bin;
    ++observed[bin];
  }
  // Exact binned probabilities via log-pmf accumulation.
  std::array<double, 8> expected{};
  double logc = 0.0;  // log C(n,0)
  for (std::uint64_t k = 0; k <= kN; ++k) {
    const double logp = logc + static_cast<double>(k) * std::log(kP) +
                        static_cast<double>(kN - k) * std::log(1 - kP);
    std::size_t bin = 0;
    while (bin < edges.size() && k > edges[bin]) ++bin;
    expected[bin] += std::exp(logp);
    logc += std::log(static_cast<double>(kN - k)) -
            std::log(static_cast<double>(k + 1));
  }
  const double stat = chi_square_statistic(observed, expected);
  EXPECT_LT(stat, chi_square_critical_999(7));
}

TEST(Binomial, GoodnessOfFitAtTheBinvBtrsCrossover) {
  // The dispatch in sample_binomial switches BINV → BTRS at n·p = 10; both
  // sides of the boundary must be exact in distribution.  n = 50, p = 0.19
  // (np = 9.5, BINV) and p = 0.21 (np = 10.5, BTRS), binned around the mean.
  const std::array<std::uint64_t, 6> binv_edges = {6, 8, 9, 10, 11, 13};
  EXPECT_LT(binned_binomial_chi_square(50, 0.19, 777, binv_edges, 120000),
            chi_square_critical_999(6));
  const std::array<std::uint64_t, 6> btrs_edges = {7, 9, 10, 11, 12, 14};
  EXPECT_LT(binned_binomial_chi_square(50, 0.21, 778, btrs_edges, 120000),
            chi_square_critical_999(6));
}

TEST(Binomial, GoodnessOfFitInTheDeepBinvWalk) {
  // n = 19, p = 0.5 is the deepest inversion regime the dispatch allows
  // (n·p = 9.5 just under the BTRS cutoff, q^n ≈ 1.9e−6), so the cdf walk
  // regularly runs 15+ steps and BINV's round-off restart guard is live on
  // every draw.  The binned distribution must stay exact regardless.
  const std::array<std::uint64_t, 6> edges = {6, 8, 9, 10, 11, 13};
  EXPECT_LT(binned_binomial_chi_square(19, 0.5, 781, edges, 200000),
            chi_square_critical_999(6));
}

TEST(Binomial, GoodnessOfFitAtTheReflectionBoundary) {
  // p > 0.5 is handled by reflection (n − B(n, 1−p)); hold both sides of
  // p = 0.5 to the same exact-fit bar so the reflected path cannot drift.
  const std::array<std::uint64_t, 6> edges = {24, 27, 29, 31, 33, 36};
  EXPECT_LT(binned_binomial_chi_square(60, 0.499, 779, edges, 120000),
            chi_square_critical_999(6));
  EXPECT_LT(binned_binomial_chi_square(60, 0.501, 780, edges, 120000),
            chi_square_critical_999(6));
}

TEST(Multinomial, CountsSumToN) {
  Rng rng(3);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  std::vector<std::uint64_t> counts(4);
  for (std::uint64_t n : {0ULL, 1ULL, 7ULL, 1000ULL, 123456ULL}) {
    sample_multinomial(rng, n, w, counts);
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, n);
  }
}

TEST(Multinomial, MarginalMeansMatch) {
  Rng rng(4);
  const std::vector<double> w = {0.5, 0.2, 0.3};
  std::vector<std::uint64_t> counts(3);
  std::array<double, 3> sums{};
  const int kDraws = 20000;
  constexpr std::uint64_t kN = 100;
  for (int i = 0; i < kDraws; ++i) {
    sample_multinomial(rng, kN, w, counts);
    for (int j = 0; j < 3; ++j) sums[j] += static_cast<double>(counts[j]);
  }
  for (int j = 0; j < 3; ++j) {
    const double mean = sums[j] / kDraws;
    const double want = kN * w[j];
    EXPECT_NEAR(mean, want, 6 * std::sqrt(kN * w[j] * (1 - w[j]) / kDraws));
  }
}

TEST(Multinomial, ZeroWeightCellsStayEmpty) {
  Rng rng(5);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  std::vector<std::uint64_t> counts(3);
  sample_multinomial(rng, 1000, w, counts);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1000u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Multinomial, ZeroWeightTailNeverLeaks) {
  // Round-off regression: with weights {0.1, 0.1, 0.1, 0.0} the running
  // weight sum 0.3 − 0.1 − 0.1 lands a few ulps above 0.1, so the last
  // positive bucket's conditional p is slightly below 1 and, at
  // astronomical n, its binomial draw undershoots by ~n·3e−16 trials.  The
  // conditional-binomial chain used to hand that remainder to the final
  // (zero-weight) bucket; it must terminate at the last positive weight.
  Rng rng(12);
  const std::vector<double> w = {0.1, 0.1, 0.1, 0.0};
  std::vector<std::uint64_t> counts(4);
  constexpr std::uint64_t kN = 4'000'000'000'000'000'000ULL;
  for (int i = 0; i < 32; ++i) {
    sample_multinomial(rng, kN, w, counts);
    ASSERT_EQ(counts[3], 0u) << "mass leaked into a zero-weight cell";
    EXPECT_EQ(counts[0] + counts[1] + counts[2], kN);
  }
}

TEST(Multinomial, InputValidation) {
  Rng rng(6);
  std::vector<std::uint64_t> counts(2);
  const std::vector<double> bad_size = {1.0};
  EXPECT_THROW(sample_multinomial(rng, 1, bad_size, counts),
               std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(sample_multinomial(rng, 1, negative, counts),
               std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(sample_multinomial(rng, 1, zeros, counts),
               std::invalid_argument);
  // n == 0 with zero weights is allowed (no mass to place).
  sample_multinomial(rng, 0, zeros, counts);
  EXPECT_EQ(counts[0] + counts[1], 0u);
}

TEST(Discrete, DistributionMatchesWeights) {
  Rng rng(7);
  const std::vector<double> w = {2.0, 1.0, 1.0};
  std::array<std::uint64_t, 3> counts{};
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_discrete(rng, w)];
  const std::array<double, 3> probs = {0.5, 0.25, 0.25};
  EXPECT_LT(chi_square_statistic(counts, probs), chi_square_critical_999(2));
}

TEST(Discrete, SingleOutcome) {
  Rng rng(8);
  const std::vector<double> w = {0.0, 5.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_discrete(rng, w), 1u);
}

TEST(Discrete, InputValidation) {
  Rng rng(9);
  const std::vector<double> empty;
  EXPECT_THROW(sample_discrete(rng, empty), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(sample_discrete(rng, zeros), std::invalid_argument);
}

TEST(Binomial, SymmetryBetweenPAndOneMinusP) {
  // X ~ B(n,p) and n - X' with X' ~ B(n,1-p) must have identical moments.
  Rng rng_a(10), rng_b(11);
  constexpr std::uint64_t kN = 50;
  constexpr double kP = 0.85;
  const int kDraws = 40000;
  double mean_a = 0.0, mean_b = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    mean_a += static_cast<double>(sample_binomial(rng_a, kN, kP));
    mean_b +=
        static_cast<double>(kN - sample_binomial(rng_b, kN, 1.0 - kP));
  }
  mean_a /= kDraws;
  mean_b /= kDraws;
  EXPECT_NEAR(mean_a, mean_b, 0.15);
}

}  // namespace
}  // namespace noisypull
