#include "noisypull/noise/reduction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "noisypull/linalg/lu.hpp"
#include "noisypull/model/engine.hpp"

namespace noisypull {
namespace {

TEST(UniformNoiseLevel, ZeroMapsToZero) {
  EXPECT_EQ(uniform_noise_level(2, 0.0), 0.0);
  EXPECT_EQ(uniform_noise_level(5, 0.0), 0.0);
}

TEST(UniformNoiseLevel, ClosedFormForBinaryAlphabet) {
  // For d = 2, f(δ) = (2 + ½·(1−2δ)/δ)⁻¹ = 2δ/(1+2δ).
  for (double delta : {0.05, 0.1, 0.2, 0.3, 0.45}) {
    EXPECT_NEAR(uniform_noise_level(2, delta), 2 * delta / (1 + 2 * delta),
                1e-12);
  }
}

TEST(UniformNoiseLevel, Claim15Bounds) {
  // Claim 15: δ ≤ f(δ) < 1/d on [0, 1/d).
  for (std::size_t d : {2u, 3u, 4u, 8u}) {
    const double cap = 1.0 / static_cast<double>(d);
    for (double frac : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const double delta = frac * cap;
      const double f = uniform_noise_level(d, delta);
      EXPECT_GE(f, delta) << "d=" << d << " delta=" << delta;
      EXPECT_LT(f, cap) << "d=" << d << " delta=" << delta;
    }
  }
}

TEST(UniformNoiseLevel, Claim15Monotone) {
  for (std::size_t d : {2u, 4u}) {
    const double cap = 1.0 / static_cast<double>(d);
    double prev = -1.0;
    for (int i = 0; i < 50; ++i) {
      const double delta = cap * (static_cast<double>(i) / 50.0);
      const double f = uniform_noise_level(d, delta);
      EXPECT_GT(f, prev);
      prev = f;
    }
  }
}

TEST(UniformNoiseLevel, DomainChecks) {
  EXPECT_THROW(uniform_noise_level(1, 0.1), std::invalid_argument);
  EXPECT_THROW(uniform_noise_level(2, -0.01), std::invalid_argument);
  EXPECT_THROW(uniform_noise_level(2, 0.5), std::invalid_argument);  // = 1/d
  EXPECT_THROW(uniform_noise_level(4, 0.25), std::invalid_argument);
}

TEST(ReduceToUniform, UniformInputIsAFixedPointUpToLevel) {
  // A δ-uniform N reduced at level δ yields effective f(δ)-uniform noise.
  const double delta = 0.1;
  const auto n = NoiseMatrix::uniform(2, delta);
  const auto red = reduce_to_uniform(n);
  EXPECT_NEAR(red.delta_prime, uniform_noise_level(2, delta), 1e-9);
  EXPECT_TRUE(red.artificial.is_stochastic(1e-9));
  EXPECT_TRUE(red.effective.is_uniform(red.delta_prime, 1e-9));
}

TEST(ReduceToUniform, NoiselessChannelNeedsNoArtificialNoise) {
  const auto n = NoiseMatrix::noiseless(3);
  const auto red = reduce_to_uniform(n);
  EXPECT_EQ(red.delta_prime, 0.0);
  EXPECT_LT(red.artificial.max_abs_diff(Matrix::identity(3)), 1e-9);
}

TEST(ReduceToUniform, AsymmetricBinaryChannel) {
  // Binary channel with unequal flip probabilities: δ-upper-bounded with
  // δ = 0.2, and the reduction must equalize it.
  const NoiseMatrix n(Matrix{0.9, 0.1, 0.2, 0.8});
  const auto red = reduce_to_uniform(n);
  EXPECT_NEAR(red.delta_prime, uniform_noise_level(2, 0.2), 1e-9);
  EXPECT_TRUE(red.artificial.is_stochastic(1e-9));
  EXPECT_TRUE(red.effective.is_uniform(red.delta_prime, 1e-9));
  // Composition really is N·P.
  EXPECT_LT((n.matrix() * red.artificial)
                .max_abs_diff(red.effective.matrix()),
            1e-12);
}

TEST(ReduceToUniform, ExplicitLooserLevel) {
  // Reducing at a looser δ than the tightest one is allowed and yields the
  // (larger) corresponding f(δ).
  const auto n = NoiseMatrix::uniform(2, 0.1);
  const auto red = reduce_to_uniform(n, 0.3);
  EXPECT_NEAR(red.delta_prime, uniform_noise_level(2, 0.3), 1e-9);
  EXPECT_TRUE(red.effective.is_uniform(red.delta_prime, 1e-9));
}

TEST(ReduceToUniform, RejectsTooTightLevel) {
  const auto n = NoiseMatrix::uniform(2, 0.2);
  EXPECT_THROW(reduce_to_uniform(n, 0.1), std::invalid_argument);
}

TEST(ReduceToUniform, RejectsLevelAtOrAboveOneOverD) {
  const auto n = NoiseMatrix::uniform(2, 0.2);
  EXPECT_THROW(reduce_to_uniform(n, 0.5), std::invalid_argument);
}

TEST(ReduceToUniform, RandomMatricesAcrossAlphabets) {
  Rng rng(99);
  for (std::size_t d : {2u, 3u, 4u, 5u}) {
    const double delta = 0.7 / static_cast<double>(d);
    for (int rep = 0; rep < 10; ++rep) {
      const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
      const auto red = reduce_to_uniform(n, delta);
      EXPECT_TRUE(red.artificial.is_stochastic(1e-8));
      EXPECT_TRUE(red.effective.is_uniform(red.delta_prime, 1e-7));
      EXPECT_NEAR(red.delta_prime, uniform_noise_level(d, delta), 1e-9);
    }
  }
}

TEST(ReduceToUniform, Definition6LiteralSimulationMatchesComposedChannel) {
  // Theorem 8 end-to-end: an ExactEngine that literally re-corrupts every
  // received message with P (Definition 6) must produce observations that
  // follow the f(δ)-uniform law.  One agent displays 1, the rest display 0,
  // under an asymmetric channel.
  const NoiseMatrix raw(Matrix{0.9, 0.1, 0.25, 0.75});
  const auto red = reduce_to_uniform(raw);

  class Recorder : public PullProtocol {
   public:
    std::size_t alphabet_size() const override { return 2; }
    std::uint64_t num_agents() const override { return 4; }
    Symbol display(std::uint64_t agent, std::uint64_t) const override {
      return agent == 0 ? 1 : 0;
    }
    void update(std::uint64_t, std::uint64_t, const SymbolCounts& obs,
                Rng&) override {
      ones += obs[1];
      total += obs.total();
    }
    Opinion opinion(std::uint64_t) const override { return 0; }
    std::uint64_t ones = 0, total = 0;
  };

  Recorder protocol;
  ExactEngine engine;
  engine.set_artificial_noise(red.artificial);
  Rng rng(2718);
  for (int t = 0; t < 4000; ++t) {
    engine.step(protocol, raw, Holdings{8}, t, rng);
  }
  // Under the composed δ'-uniform channel T: P(observe 1) =
  // (1/4)·T(1,1) + (3/4)·T(0,1) = 1/4·(1−δ') + 3/4·δ'.
  const double dp = red.delta_prime;
  const double want = 0.25 * (1 - dp) + 0.75 * dp;
  const double got =
      static_cast<double>(protocol.ones) / static_cast<double>(protocol.total);
  const double sigma =
      std::sqrt(want * (1 - want) / static_cast<double>(protocol.total));
  EXPECT_NEAR(got, want, 6 * sigma);
}

TEST(ReduceToUniform, Corollary14NormBoundHolds) {
  // ‖N⁻¹‖∞ ≤ (d−1)/(1−dδ) for every δ-upper-bounded N.
  Rng rng(123);
  for (std::size_t d : {2u, 3u, 4u}) {
    const double delta = 0.5 / static_cast<double>(d);
    for (int rep = 0; rep < 25; ++rep) {
      const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
      const auto inv = invert(n.matrix());
      ASSERT_TRUE(inv.has_value());
      const double bound = static_cast<double>(d - 1) /
                           (1.0 - static_cast<double>(d) * delta);
      EXPECT_LE(inv->inf_norm(), bound + 1e-9);
    }
  }
}

}  // namespace
}  // namespace noisypull
