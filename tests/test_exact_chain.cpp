// Self-tests for theory/ExactChain: the oracle itself is held to a second,
// even more literal reference — full enumeration over *labelled* state
// vectors with no exchangeability lumping — plus structural checks (mass
// conservation, pruning accounting, kernel agreement at n = 1) and
// deterministic trajectory cross-checks of the SF/SSF automaton mirrors
// against the real core/ protocols.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

// ---------------------------------------------------------------------------
// Labelled brute force: distributions over explicit per-agent state vectors.

using Labelled = std::vector<AutomatonState>;
using LDist = std::map<Labelled, double>;

double factorial(std::uint64_t k) {
  double f = 1.0;
  for (std::uint64_t i = 2; i <= k; ++i) f *= static_cast<double>(i);
  return f;
}

std::vector<std::vector<std::uint64_t>> all_outcomes(std::uint64_t h,
                                                     std::size_t d) {
  std::vector<std::vector<std::uint64_t>> out;
  std::vector<std::uint64_t> cur(d, 0);
  auto rec = [&](auto&& self, std::size_t cell, std::uint64_t left) -> void {
    if (cell + 1 == d) {
      cur[cell] = left;
      out.push_back(cur);
      return;
    }
    for (std::uint64_t k = 0; k <= left; ++k) {
      cur[cell] = k;
      self(self, cell + 1, left - k);
    }
  };
  rec(rec, 0, h);
  return out;
}

double mult_pmf(const std::vector<std::uint64_t>& counts, std::uint64_t total,
                const std::vector<double>& p) {
  double pmf = factorial(total);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (p[i] <= 0.0) return 0.0;
    pmf *= std::pow(p[i], static_cast<double>(counts[i])) /
           factorial(counts[i]);
  }
  return pmf;
}

// The per-agent view of a ChainClass list: class index of each agent, in
// the declared (index-contiguous) order.
std::vector<std::size_t> expand_agents(const std::vector<ChainClass>& classes) {
  std::vector<std::size_t> of;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (std::uint64_t k = 0; k < classes[i].size; ++k) of.push_back(i);
  }
  return of;
}

Symbol brute_display(const ChainClass& cls, AutomatonState s,
                     std::uint64_t round) {
  switch (cls.forged.kind) {
    case DisplayOverride::Kind::Constant:
      return cls.forged.even;
    case DisplayOverride::Kind::EvenOdd:
      return (round % 2 == 0) ? cls.forged.even : cls.forged.odd;
    case DisplayOverride::Kind::None:
      break;
  }
  return cls.automaton->display(s, round);
}

std::vector<double> brute_q(const ChainClass& cls,
                            const std::vector<std::uint64_t>& c,
                            std::uint64_t round,
                            const std::map<std::uint64_t, Matrix>& ovr) {
  const auto it = ovr.find(round);
  const Matrix& channel = (it != ovr.end()) ? it->second : cls.channel;
  const std::size_t d = c.size();
  std::vector<double> q(d, 0.0);
  double total = 0.0;
  for (std::size_t to = 0; to < d; ++to) {
    for (std::size_t from = 0; from < d; ++from) {
      q[to] += static_cast<double>(c[from]) * channel(from, to);
    }
    total += q[to];
  }
  for (auto& v : q) v /= total;
  return q;
}

std::vector<WeightedState> brute_agent_law(
    const ChainClass& cls, AutomatonState s, std::uint64_t round,
    const std::vector<double>& q,
    const std::vector<std::vector<std::uint64_t>>& outcomes,
    std::uint64_t h) {
  if (cls.stall.active(round)) return {{s, 1.0}};
  std::map<AutomatonState, double> law;
  for (const auto& outcome : outcomes) {
    const double pmf = mult_pmf(outcome, h, q);
    if (pmf <= 0.0) continue;
    SymbolCounts obs(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) obs[i] = outcome[i];
    for (const auto& ws : cls.automaton->transition(s, round, obs)) {
      law[ws.state] += pmf * ws.prob;
    }
  }
  std::vector<WeightedState> out;
  for (const auto& [st, p] : law) out.push_back({st, p});
  return out;
}

std::vector<std::uint64_t> brute_histogram(
    const Labelled& vec, const std::vector<ChainClass>& classes,
    const std::vector<std::size_t>& of, std::size_t d, std::uint64_t round) {
  std::vector<std::uint64_t> c(d, 0);
  for (std::size_t a = 0; a < vec.size(); ++a) {
    ++c[brute_display(classes[of[a]], vec[a], round)];
  }
  return c;
}

// One synchronous round: every agent transitions against the start-of-round
// histogram; the joint law is the product over agents.
LDist brute_sync_step(const LDist& dist, const std::vector<ChainClass>& classes,
                      const std::vector<std::size_t>& of, std::size_t d,
                      Holdings h, std::uint64_t round,
                      const std::map<std::uint64_t, Matrix>& ovr) {
  const auto outcomes = all_outcomes(h.get(), d);
  LDist next;
  for (const auto& [vec, p] : dist) {
    const auto c = brute_histogram(vec, classes, of, d, round);
    std::vector<std::vector<WeightedState>> laws;
    for (std::size_t a = 0; a < vec.size(); ++a) {
      const auto q = brute_q(classes[of[a]], c, round, ovr);
      laws.push_back(
          brute_agent_law(classes[of[a]], vec[a], round, q, outcomes, h.get()));
    }
    Labelled out(vec.size());
    auto rec = [&](auto&& self, std::size_t a, double w) -> void {
      if (a == vec.size()) {
        next[out] += w;
        return;
      }
      for (const auto& ws : laws[a]) {
        out[a] = ws.state;
        self(self, a + 1, w * ws.prob);
      }
    };
    rec(rec, 0, p);
  }
  return next;
}

// One sequential-ascending round: agents 0..n−1 update one at a time
// against the live labelled display vector.
LDist brute_seq_step(const LDist& dist, const std::vector<ChainClass>& classes,
                     const std::vector<std::size_t>& of, std::size_t d,
                     Holdings h, std::uint64_t round,
                     const std::map<std::uint64_t, Matrix>& ovr) {
  const auto outcomes = all_outcomes(h.get(), d);
  LDist cur = dist;
  const std::size_t n = of.size();
  for (std::size_t a = 0; a < n; ++a) {
    LDist next;
    for (const auto& [vec, p] : cur) {
      const auto c = brute_histogram(vec, classes, of, d, round);
      const auto q = brute_q(classes[of[a]], c, round, ovr);
      for (const auto& ws : brute_agent_law(classes[of[a]], vec[a], round, q,
                                            outcomes, h.get())) {
        Labelled moved = vec;
        moved[a] = ws.state;
        next[std::move(moved)] += p * ws.prob;
      }
    }
    cur = std::move(next);
  }
  return cur;
}

DisplayDistribution brute_display_dist(const LDist& dist,
                                       const std::vector<ChainClass>& classes,
                                       const std::vector<std::size_t>& of,
                                       std::size_t d, std::uint64_t round) {
  DisplayDistribution out;
  for (const auto& [vec, p] : dist) {
    out[brute_histogram(vec, classes, of, d, round)] += p;
  }
  return out;
}

// A 3-state binary-alphabet table automaton with non-trivial dynamics: the
// states disagree on what they display and where ties go.
TableAutomaton make_test_automaton() {
  return TableAutomaton(
      2, {TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                     .if_less = 1, .tie_a = 0, .tie_b = 2},
          TableState{.show = 1, .watch_a = 1, .watch_b = 0, .if_greater = 1,
                     .if_less = 2, .tie_a = 1, .tie_b = 1},
          TableState{.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 2,
                     .if_less = 0, .tie_a = 0, .tie_b = 1}});
}

std::vector<ChainClass> make_test_classes(const TableAutomaton& automaton) {
  Rng rng(101);
  std::vector<ChainClass> classes(2);
  classes[0] = {.size = 2,
                .automaton = &automaton,
                .initial = 0,
                .channel = NoiseMatrix::uniform(2, 0.2).matrix()};
  classes[1] = {.size = 1,
                .automaton = &automaton,
                .initial = 1,
                .channel =
                    NoiseMatrix::random_upper_bounded(2, 0.3, rng).matrix()};
  return classes;
}

void expect_dist_near(const DisplayDistribution& a,
                      const DisplayDistribution& b, double tol) {
  EXPECT_LE(total_variation(a, b), tol);
}

TEST(ExactChain, SynchronousMatchesLabelledBruteForce) {
  const auto automaton = make_test_automaton();
  const auto classes = make_test_classes(automaton);
  const auto of = expand_agents(classes);
  const Holdings h{2};

  ExactChain chain(classes, {.h = h});
  LDist brute;
  brute[{0, 0, 1}] = 1.0;

  for (std::uint64_t round = 0; round < 4; ++round) {
    expect_dist_near(chain.display_distribution(),
                     brute_display_dist(brute, classes, of, 2, round), 1e-9);
    chain.step();
    brute = brute_sync_step(brute, classes, of, 2, h, round, {});
  }
  EXPECT_EQ(chain.truncated_mass(), 0.0);
}

TEST(ExactChain, SequentialMatchesLabelledBruteForce) {
  const auto automaton = make_test_automaton();
  const auto classes = make_test_classes(automaton);
  const auto of = expand_agents(classes);
  const Holdings h{1};

  ExactChain chain(
      classes,
      {.h = h, .kernel = ExactChainOptions::Kernel::SequentialAscending});
  LDist brute;
  brute[{0, 0, 1}] = 1.0;

  for (std::uint64_t round = 0; round < 4; ++round) {
    expect_dist_near(chain.display_distribution(),
                     brute_display_dist(brute, classes, of, 2, round), 1e-9);
    chain.step();
    brute = brute_seq_step(brute, classes, of, 2, h, round, {});
  }
}

TEST(ExactChain, FaultSemanticsMatchLabelledBruteForce) {
  // Forged displays (even/odd flip-flop), a stall window, and a channel
  // override all at once — exactly the deterministic FaultPlan subset.
  const auto automaton = make_test_automaton();
  auto classes = make_test_classes(automaton);
  classes[1].forged = DisplayOverride::even_odd(1, 0);
  classes[0].stall = StallWindow{.start = 1, .rounds = 2};
  const auto of = expand_agents(classes);
  const Holdings h{2};
  std::map<std::uint64_t, Matrix> ovr;
  ovr.emplace(2, NoiseMatrix::uniform(2, 0.45).matrix());

  ExactChain chain(classes, {.h = h, .channel_override = ovr});
  LDist brute;
  brute[{0, 0, 1}] = 1.0;

  for (std::uint64_t round = 0; round < 5; ++round) {
    expect_dist_near(chain.display_distribution(),
                     brute_display_dist(brute, classes, of, 2, round), 1e-9);
    chain.step();
    brute = brute_sync_step(brute, classes, of, 2, h, round, ovr);
  }
}

TEST(ExactChain, MassIsConservedAndPruningIsAccounted) {
  // A near-noiseless channel from an all-zeros start makes "saw a 1"
  // configurations carry ~1e-5 mass, guaranteeing the pruning path fires.
  const auto automaton = make_test_automaton();
  std::vector<ChainClass> classes(1);
  classes[0] = {.size = 3,
                .automaton = &automaton,
                .initial = 0,
                .channel = NoiseMatrix::uniform(2, 1e-5).matrix()};

  ExactChain exact(classes, {.h = Holdings{2}});
  ExactChain pruned(classes, {.h = Holdings{2}, .prune_epsilon = 1e-4});
  for (int round = 0; round < 5; ++round) {
    exact.step();
    pruned.step();
  }
  auto mass = [](const DisplayDistribution& d) {
    double m = 0.0;
    for (const auto& [k, p] : d) m += p;
    return m;
  };
  EXPECT_NEAR(mass(exact.display_distribution()), 1.0, 1e-12);
  EXPECT_EQ(exact.truncated_mass(), 0.0);
  EXPECT_GT(pruned.truncated_mass(), 0.0);
  EXPECT_NEAR(mass(pruned.display_distribution()) + pruned.truncated_mass(),
              1.0, 1e-9);
  EXPECT_LE(pruned.support_size(), exact.support_size());
  // The pruned chain still tracks the exact one to within the lost mass.
  EXPECT_LE(total_variation(exact.display_distribution(),
                            pruned.display_distribution()),
            pruned.truncated_mass() + 1e-12);
}

TEST(ExactChain, KernelsAgreeForOneAgent) {
  // With a single agent there is no mid-round interaction, so the
  // synchronous and sequential kernels define the same chain.
  const auto automaton = make_test_automaton();
  std::vector<ChainClass> classes(1);
  classes[0] = {.size = 1,
                .automaton = &automaton,
                .initial = 2,
                .channel = NoiseMatrix::uniform(2, 0.1).matrix()};
  ExactChain sync(classes, {.h = Holdings{3}});
  ExactChain seq(classes,
                 {.h = Holdings{3},
                  .kernel = ExactChainOptions::Kernel::SequentialAscending});
  for (int round = 0; round < 4; ++round) {
    sync.step();
    seq.step();
    expect_dist_near(sync.display_distribution(), seq.display_distribution(),
                     1e-12);
  }
}

TEST(ExactChain, DisplayMeanMatchesDistribution) {
  const auto automaton = make_test_automaton();
  const auto classes = make_test_classes(automaton);
  ExactChain chain(classes, {.h = Holdings{2}});
  chain.step();
  chain.step();
  const auto dist = chain.display_distribution();
  const auto mean = chain.display_mean();
  std::vector<double> expect(mean.size(), 0.0);
  for (const auto& [hist, p] : dist) {
    for (std::size_t s = 0; s < hist.size(); ++s) {
      expect[s] += p * static_cast<double>(hist[s]);
    }
  }
  for (std::size_t s = 0; s < mean.size(); ++s) {
    EXPECT_NEAR(mean[s], expect[s], 1e-12);
  }
}

TEST(ExactChain, TotalVariationAndToleranceBasics) {
  DisplayDistribution a;
  a[{2, 0}] = 0.5;
  a[{1, 1}] = 0.5;
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  DisplayDistribution b;
  b[{0, 2}] = 1.0;
  EXPECT_DOUBLE_EQ(total_variation(a, b), 1.0);
  DisplayDistribution c;
  c[{2, 0}] = 0.25;
  c[{1, 1}] = 0.75;
  EXPECT_NEAR(total_variation(a, c), 0.25, 1e-12);
  // Tolerance shrinks with more samples and grows with support size.
  EXPECT_LT(tv_tolerance(8, 10000, 9.0), tv_tolerance(8, 1000, 9.0));
  EXPECT_LT(tv_tolerance(8, 10000, 9.0), tv_tolerance(64, 10000, 9.0));
}

// ---------------------------------------------------------------------------
// Automaton mirrors vs the real core/ protocols, on tie-free deterministic
// trajectories (coin-splitting paths are covered statistically by
// test_oracle_engines.cpp).

SymbolCounts obs2(std::uint64_t zeros, std::uint64_t ones) {
  SymbolCounts obs(2);
  obs[0] = zeros;
  obs[1] = ones;
  return obs;
}

TEST(ExactChain, SfAutomatonTracksSourceFilterOnTieFreeRuns) {
  const PopulationConfig pop{.n = 4, .s1 = 1, .s0 = 0};
  const SfSchedule sched{.h = 2,
                         .m = 2,
                         .phase_rounds = 1,
                         .w = 2,
                         .subphase_rounds = 1,
                         .num_subphases = 2,
                         .final_rounds = 2};
  SourceFilter sf(pop, sched);
  SfAutomaton source(sched, true, 1);
  SfAutomaton plain(sched, false, 0);

  // Asymmetric batches at every decision round keep every majority strict.
  const std::vector<SymbolCounts> stream = {obs2(0, 2), obs2(1, 2), obs2(1, 2),
                                            obs2(2, 0), obs2(0, 2), obs2(2, 1),
                                            obs2(2, 0)};
  Rng rng(7);
  AutomatonState src_state = 0;
  AutomatonState plain_state = 0;
  for (std::uint64_t round = 0; round < stream.size(); ++round) {
    ASSERT_EQ(source.display(src_state, round), sf.display(0, round))
        << "round " << round;
    ASSERT_EQ(plain.display(plain_state, round), sf.display(2, round))
        << "round " << round;
    sf.update(0, round, stream[round], rng);
    sf.update(2, round, stream[round], rng);
    const auto src_law = source.transition(src_state, round, stream[round]);
    const auto plain_law = plain.transition(plain_state, round, stream[round]);
    ASSERT_EQ(src_law.size(), 1u) << "tie-free stream split at " << round;
    ASSERT_EQ(plain_law.size(), 1u) << "tie-free stream split at " << round;
    src_state = src_law[0].state;
    plain_state = plain_law[0].state;
  }
  ASSERT_EQ(plain.display(plain_state, stream.size()),
            sf.display(2, stream.size()));
}

SymbolCounts obs4(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2,
                  std::uint64_t s3) {
  SymbolCounts obs(4);
  obs[0] = s0;
  obs[1] = s1;
  obs[2] = s2;
  obs[3] = s3;
  return obs;
}

TEST(ExactChain, SsfAutomatonTracksSsfOnTieFreeRuns) {
  const PopulationConfig pop{.n = 4, .s1 = 1, .s0 = 0};
  auto ssf = SelfStabilizingSourceFilter::with_memory_budget(pop, Holdings{2},
                                                             MemoryBudget{3});
  SsfAutomaton plain(MemoryBudget{3}, false, 0);

  const std::vector<SymbolCounts> stream = {
      obs4(0, 0, 0, 2), obs4(0, 0, 1, 0), obs4(0, 2, 0, 0), obs4(0, 0, 2, 1),
      obs4(2, 0, 0, 0), obs4(0, 1, 0, 2)};
  Rng rng(8);
  AutomatonState state = 0;
  for (std::uint64_t round = 0; round < stream.size(); ++round) {
    ASSERT_EQ(plain.display(state, round), ssf.display(2, round))
        << "round " << round;
    ssf.update(2, round, stream[round], rng);
    const auto law = plain.transition(state, round, stream[round]);
    ASSERT_EQ(law.size(), 1u) << "tie-free stream split at round " << round;
    state = law[0].state;
  }
  ASSERT_EQ(plain.display(state, stream.size()),
            ssf.display(2, stream.size()));
}

TEST(ExactChain, RejectsInvalidConfigurations) {
  const auto automaton = make_test_automaton();
  ChainClass good{.size = 2,
                  .automaton = &automaton,
                  .initial = 0,
                  .channel = NoiseMatrix::uniform(2, 0.2).matrix()};
  EXPECT_THROW(ExactChain({}, {}), std::invalid_argument);
  {
    auto bad = good;
    bad.size = 0;
    EXPECT_THROW(ExactChain({bad}, {.h = Holdings{1}}), std::invalid_argument);
  }
  {
    auto bad = good;
    bad.automaton = nullptr;
    EXPECT_THROW(ExactChain({bad}, {.h = Holdings{1}}), std::invalid_argument);
  }
  {
    auto bad = good;
    bad.channel = NoiseMatrix::uniform(4, 0.1).matrix();
    EXPECT_THROW(ExactChain({bad}, {.h = Holdings{1}}), std::invalid_argument);
  }
  {
    auto bad = good;
    bad.forged = DisplayOverride::constant(5);
    EXPECT_THROW(ExactChain({bad}, {.h = Holdings{1}}), std::invalid_argument);
  }
  EXPECT_THROW(ExactChain({good}, {.h = Holdings{0}}), std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
