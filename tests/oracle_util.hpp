// Shared harness for the exact-chain oracle tests: replicate runners that
// turn a Monte-Carlo engine into an empirical per-round display
// distribution, mirrors of FaultyEngine's deterministic schedules, and the
// TV / exact-mean comparison against theory/ExactChain.
//
// Statistical contract (see tv_tolerance in theory/exact_chain.hpp): every
// comparison uses a tolerance derived from the oracle's exact support size
// and the replicate count, at a per-check failure probability alpha =
// exp(-log_inv_alpha).  The callers pass log_inv_alpha large enough that a
// whole fuzz campaign's union bound stays far below flake territory
// (log_inv_alpha = 30 → alpha ≈ 1e-13 per check).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "noisypull/noisypull.hpp"

namespace noisypull::oracle_test {

using ProtocolFactory = std::function<std::unique_ptr<PullProtocol>()>;
using EngineFactory = std::function<std::unique_ptr<Engine>()>;
// Maps (protocol, agent, round) to the symbol the population *sees* — the
// hook where FaultyEngine's forged Byzantine displays are reproduced.
using DisplayView =
    std::function<Symbol(const PullProtocol&, std::uint64_t, std::uint64_t)>;

inline DisplayView honest_view() {
  return [](const PullProtocol& p, std::uint64_t agent, std::uint64_t round) {
    return p.display(agent, round);
  };
}

// FaultyEngine chooses ⌊fraction·(n − first_eligible)⌋ highest-indexed
// agents as Byzantine (fault/faulty_engine.cpp, bind_population).
inline std::uint64_t byzantine_count(const FaultPlan& plan, std::uint64_t n) {
  const std::uint64_t eligible = n - plan.first_eligible;
  return static_cast<std::uint64_t>(plan.byzantine.fraction *
                                    static_cast<double>(eligible));
}

// The synchronized blackout stalls the ⌊blackout_fraction·eligible⌋
// lowest-indexed eligible agents.
inline std::uint64_t blackout_count(const FaultPlan& plan, std::uint64_t n) {
  const std::uint64_t eligible = n - plan.first_eligible;
  return static_cast<std::uint64_t>(plan.stall.blackout_fraction *
                                    static_cast<double>(eligible));
}

inline Symbol byzantine_display(const FaultPlan& plan, std::uint64_t round) {
  switch (plan.byzantine.strategy) {
    case ByzantineStrategy::AlwaysWrong:
      return plan.byzantine.wrong_symbol;
    case ByzantineStrategy::FlipFlop:
      return round % 2 == 0 ? plan.byzantine.wrong_symbol
                            : plan.byzantine.honest_symbol;
    case ByzantineStrategy::MimicSource:
      return plan.byzantine.mimic_symbol;
  }
  return plan.byzantine.wrong_symbol;
}

// The oracle-side DisplayOverride equivalent of a Byzantine strategy.
inline DisplayOverride byzantine_override(const FaultPlan& plan) {
  switch (plan.byzantine.strategy) {
    case ByzantineStrategy::AlwaysWrong:
      return DisplayOverride::constant(plan.byzantine.wrong_symbol);
    case ByzantineStrategy::FlipFlop:
      return DisplayOverride::even_odd(plan.byzantine.wrong_symbol,
                                       plan.byzantine.honest_symbol);
    case ByzantineStrategy::MimicSource:
      return DisplayOverride::constant(plan.byzantine.mimic_symbol);
  }
  return DisplayOverride::none();
}

// View that forges the Byzantine tail exactly as FaultedProtocolView does.
inline DisplayView faulted_view(const FaultPlan& plan, std::uint64_t n) {
  const std::uint64_t byz = byzantine_count(plan, n);
  return [plan, n, byz](const PullProtocol& p, std::uint64_t agent,
                        std::uint64_t round) {
    if (byz > 0 && agent >= n - byz) return byzantine_display(plan, round);
    return p.display(agent, round);
  };
}

// Replays FaultyEngine's burst schedule (a deterministic function of the
// plan seed — Rng(seed ^ kBurstSalt, round), fault/faulty_engine.cpp) and
// returns the per-round channel overrides the oracle must apply.  The salt
// is part of the fault layer's determinism contract and is duplicated here
// on purpose: golden digests pin it, and the oracle must not link against
// the implementation it audits.
inline std::map<std::uint64_t, Matrix> burst_overrides(const FaultPlan& plan,
                                                       std::size_t alphabet,
                                                       std::uint64_t rounds) {
  constexpr std::uint64_t kBurstSalt = 0xbf58476d1ce4e5b9ULL;
  std::map<std::uint64_t, Matrix> out;
  if (plan.burst.rate <= 0.0) return out;
  const Matrix spiked =
      NoiseMatrix::uniform(alphabet, plan.burst.delta).matrix();
  std::uint64_t burst_until = 0;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    bool active = round < burst_until;
    if (!active) {
      Rng burst_rng(plan.seed ^ kBurstSalt, round);
      if (burst_rng.bernoulli(plan.burst.rate)) {
        burst_until = round + plan.burst.rounds;
        active = true;
      }
    }
    if (active) out.emplace(round, spiked);
  }
  return out;
}

// Runs `reps` independent replicates of `rounds` engine rounds and returns
// the empirical distribution of the (viewed) display histogram at the start
// of every round 0..rounds.  Each replicate gets a fresh protocol, a fresh
// engine (FaultyEngine carries stall state across rounds, so reuse would
// corrupt the sample), and the substream Rng(seed, rep).
inline std::vector<DisplayDistribution> run_replicates(
    const ProtocolFactory& make_protocol, const EngineFactory& make_engine,
    const NoiseMatrix& noise, Holdings h, std::uint64_t rounds,
    std::uint64_t reps, std::uint64_t seed,
    const DisplayView& view = honest_view()) {
  std::vector<DisplayDistribution> per_round(rounds + 1);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    auto protocol = make_protocol();
    auto engine = make_engine();
    Rng rng(seed, rep);
    const std::uint64_t n = protocol->num_agents();
    const std::size_t d = protocol->alphabet_size();
    for (std::uint64_t round = 0; round <= rounds; ++round) {
      std::vector<std::uint64_t> hist(d, 0);
      for (std::uint64_t agent = 0; agent < n; ++agent) {
        ++hist[view(*protocol, agent, round)];
      }
      per_round[round][hist] += 1.0;
      if (round < rounds) engine->step(*protocol, noise, h, round, rng);
    }
  }
  const double inv = 1.0 / static_cast<double>(reps);
  for (auto& dist : per_round) {
    for (auto& [key, mass] : dist) mass *= inv;
  }
  return per_round;
}

// Steps `chain` through rounds 1..empirical.size()-1 and checks, at every
// round, (a) TV distance within tv_tolerance + truncated mass and (b) each
// symbol's empirical display mean within z·sd of the exact mean.  Returns
// an empty string on success or a human-readable failure description (the
// caller owns turning that into a test failure plus a repro line).
inline std::string compare_to_oracle(
    ExactChain& chain, const std::vector<DisplayDistribution>& empirical,
    std::uint64_t reps, double log_inv_alpha = 30.0) {
  std::ostringstream fail;
  const double m = static_cast<double>(reps);
  // Mean deviations use a gaussian-style z matched to the TV alpha:
  // P(|dev| > z·sd) ≈ exp(-z²/2) = exp(-log_inv_alpha).
  const double z = std::sqrt(2.0 * log_inv_alpha);
  for (std::uint64_t round = 1; round < empirical.size(); ++round) {
    chain.step();
    const auto exact = chain.display_distribution();
    const double tv = total_variation(exact, empirical[round]);
    const double tol = tv_tolerance(exact.size(), reps, log_inv_alpha) +
                       chain.truncated_mass();
    if (tv > tol) {
      fail << "round " << round << ": TV " << tv << " > tolerance " << tol
           << " (support " << exact.size() << ", reps " << reps << ")\n";
    }
    // Exact-mean cross-check: much sharper against mean-shift bugs.
    const auto mean = chain.display_mean();
    std::vector<double> var(mean.size(), 0.0);
    for (const auto& [hist, p] : exact) {
      for (std::size_t s = 0; s < mean.size(); ++s) {
        const double dev = static_cast<double>(hist[s]) - mean[s];
        var[s] += p * dev * dev;
      }
    }
    std::vector<double> emp_mean(mean.size(), 0.0);
    for (const auto& [hist, p] : empirical[round]) {
      for (std::size_t s = 0; s < mean.size(); ++s) {
        emp_mean[s] += p * static_cast<double>(hist[s]);
      }
    }
    const double n_agents = static_cast<double>(chain.num_agents());
    for (std::size_t s = 0; s < mean.size(); ++s) {
      const double slack = z * std::sqrt(var[s] / m) +
                           n_agents * chain.truncated_mass() + 1e-9;
      if (std::abs(emp_mean[s] - mean[s]) > slack) {
        fail << "round " << round << ": symbol " << s << " mean "
             << emp_mean[s] << " vs exact " << mean[s] << " (slack " << slack
             << ")\n";
      }
    }
  }
  return fail.str();
}

// Owns an AggregateEngine + FaultyEngine pair behind the Engine interface so
// EngineFactory can hand out faulted engines with value semantics.
class OwnedFaultyAggregate final : public Engine {
 public:
  explicit OwnedFaultyAggregate(FaultPlan plan) : faulty_(inner_, plan) {}

  void step(PullProtocol& protocol, const NoiseMatrix& noise, Holdings h,
            std::uint64_t round, Rng& rng) override {
    faulty_.step(protocol, noise, h, round, rng);
  }
  void set_artificial_noise(std::optional<Matrix> p) override {
    faulty_.set_artificial_noise(std::move(p));
  }
  void set_compiled(bool enabled) override { faulty_.set_compiled(enabled); }
  bool compiled() const noexcept override { return faulty_.compiled(); }

 private:
  AggregateEngine inner_;
  FaultyEngine faulty_;
};

}  // namespace noisypull::oracle_test
