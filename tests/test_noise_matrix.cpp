#include "noisypull/noise/noise_matrix.hpp"

#include <gtest/gtest.h>

#include <array>

#include "noisypull/analysis/stats.hpp"

namespace noisypull {
namespace {

TEST(NoiseMatrix, UniformConstruction) {
  const auto n = NoiseMatrix::uniform(3, 0.1);
  EXPECT_EQ(n.alphabet_size(), 3u);
  for (Symbol i = 0; i < 3; ++i) {
    for (Symbol j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(n(i, j), i == j ? 0.8 : 0.1);
    }
  }
  EXPECT_TRUE(n.matrix().is_stochastic());
}

TEST(NoiseMatrix, NoiselessIsIdentity) {
  const auto n = NoiseMatrix::noiseless(4);
  EXPECT_LT(n.matrix().max_abs_diff(Matrix::identity(4)), 1e-15);
}

TEST(NoiseMatrix, UniformValidation) {
  EXPECT_THROW(NoiseMatrix::uniform(1, 0.1), std::invalid_argument);
  EXPECT_THROW(NoiseMatrix::uniform(2, -0.1), std::invalid_argument);
  EXPECT_THROW(NoiseMatrix::uniform(2, 0.6), std::invalid_argument);
  // δ = 1/d is the degenerate uniform channel and is allowed.
  EXPECT_NO_THROW(NoiseMatrix::uniform(2, 0.5));
}

TEST(NoiseMatrix, RejectsNonStochastic) {
  EXPECT_THROW(NoiseMatrix(Matrix{0.5, 0.4, 0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(NoiseMatrix(Matrix{1.5, -0.5, 0.5, 0.5}),
               std::invalid_argument);
}

TEST(NoiseMatrix, RejectsTinyOrHugeAlphabets) {
  EXPECT_THROW(NoiseMatrix(Matrix{1.0}), std::invalid_argument);
  Matrix big(9, 9);
  for (std::size_t i = 0; i < 9; ++i) big(i, i) = 1.0;
  EXPECT_THROW(NoiseMatrix(std::move(big)), std::invalid_argument);
}

TEST(NoiseMatrix, Definition1PredicatesOnUniform) {
  const double delta = 0.15;
  const auto n = NoiseMatrix::uniform(2, delta);
  EXPECT_TRUE(n.is_uniform(delta));
  EXPECT_TRUE(n.is_upper_bounded(delta));
  EXPECT_TRUE(n.is_lower_bounded(delta));
  EXPECT_FALSE(n.is_uniform(delta + 0.01));
  EXPECT_TRUE(n.is_upper_bounded(delta + 0.01));   // looser bound still holds
  EXPECT_FALSE(n.is_upper_bounded(delta - 0.01));  // tighter bound fails
  EXPECT_TRUE(n.is_lower_bounded(delta - 0.01));
  EXPECT_FALSE(n.is_lower_bounded(delta + 0.01));
}

TEST(NoiseMatrix, TightestBoundsOnUniform) {
  const auto n = NoiseMatrix::uniform(4, 0.05);
  EXPECT_NEAR(n.tightest_upper_bound(), 0.05, 1e-12);
  EXPECT_NEAR(n.tightest_lower_bound(), 0.05, 1e-12);
}

TEST(NoiseMatrix, TightestUpperBoundUsesDiagonalDeficit) {
  // Off-diagonals small, but a weak diagonal forces a larger δ via
  // (1 − diag)/(d−1).
  const Matrix m{0.7, 0.2, 0.1,   //
                 0.05, 0.9, 0.05,  //
                 0.1, 0.1, 0.8};
  const NoiseMatrix n(m);
  // Row 0: (1 − 0.7)/2 = 0.15, off-diag max = 0.2 → tightest = 0.2.
  EXPECT_NEAR(n.tightest_upper_bound(), 0.2, 1e-12);
  EXPECT_TRUE(n.is_upper_bounded(n.tightest_upper_bound()));
}

TEST(NoiseMatrix, RandomUpperBoundedSatisfiesDefinition) {
  Rng rng(17);
  for (std::size_t d : {2u, 3u, 4u, 6u}) {
    const double delta = 0.8 / static_cast<double>(d);
    for (int i = 0; i < 20; ++i) {
      const auto n = NoiseMatrix::random_upper_bounded(d, delta, rng);
      EXPECT_TRUE(n.matrix().is_stochastic());
      EXPECT_TRUE(n.is_upper_bounded(delta));
      EXPECT_LE(n.tightest_upper_bound(), delta + 1e-12);
    }
  }
}

TEST(NoiseMatrix, CorruptMatchesRowDistribution) {
  const auto n = NoiseMatrix::uniform(4, 0.1);
  Rng rng(23);
  std::array<std::uint64_t, 4> counts{};
  const int kDraws = 120000;
  for (int i = 0; i < kDraws; ++i) ++counts[n.corrupt(2, rng)];
  const std::array<double, 4> probs = {0.1, 0.1, 0.7, 0.1};
  EXPECT_LT(chi_square_statistic(counts, probs), chi_square_critical_999(3));
}

TEST(NoiseMatrix, CorruptRejectsOutOfAlphabetSymbol) {
  const auto n = NoiseMatrix::uniform(2, 0.1);
  Rng rng(1);
  EXPECT_THROW(n.corrupt(2, rng), std::invalid_argument);
}

TEST(NoiseMatrix, NoiselessCorruptIsIdentity) {
  const auto n = NoiseMatrix::noiseless(3);
  Rng rng(2);
  for (Symbol s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) EXPECT_EQ(n.corrupt(s, rng), s);
  }
}

}  // namespace
}  // namespace noisypull
