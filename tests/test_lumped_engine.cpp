// Unit and integration tests for sim/lumped_engine: determinism and digest
// contracts, population-count conservation, overflow hardening at the
// 2⁶³-scale boundary, huge-n feasibility, and the scheduler seam (lumped
// cells, engine-kind cache keys, thread-count invariance).
//
// Distribution-level correctness against theory/ExactChain lives in the
// oracle binary (test_oracle_lumped.cpp); this file covers everything that
// must hold bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

constexpr std::uint64_t kSeed = 0x10c0ffee;

PopulationConfig small_pop() { return PopulationConfig{.n = 40, .s1 = 2, .s0 = 1}; }

SfSchedule small_schedule() {
  return make_sf_schedule_with_m(small_pop(), Holdings{2}, Delta{0.2},
                                 MemoryBudget{8});
}

// Steps `engine` through `rounds` rounds on Rng(seed, 0) and returns the
// final digest.
std::uint64_t digest_after(LumpedEngine& engine, Holdings h,
                           std::uint64_t rounds, std::uint64_t seed) {
  Rng rng(seed, 0);
  for (std::uint64_t r = 0; r < rounds; ++r) engine.step(h, r, rng);
  return engine.replay_digest();
}

TEST(LumpedEngine, DigestIsDeterministicAndSeedSensitive) {
  const auto pop = small_pop();
  const auto sched = small_schedule();
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);

  auto a = make_lumped_sf(pop, sched, noise);
  auto b = make_lumped_sf(pop, sched, noise);
  auto c = make_lumped_sf(pop, sched, noise);
  // Listening-phase displays are deterministic, so the digest can only
  // separate seeds once boosting rounds (stochastic displays) are included —
  // run the whole schedule.
  const std::uint64_t rounds = sched.total_rounds();
  const std::uint64_t da = digest_after(*a.engine, Holdings{2}, rounds, kSeed);
  const std::uint64_t db = digest_after(*b.engine, Holdings{2}, rounds, kSeed);
  const std::uint64_t dc =
      digest_after(*c.engine, Holdings{2}, rounds, kSeed + 1);
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);
}

TEST(LumpedEngine, SamplerCacheToggleIsTrajectoryInvariant) {
  const auto pop = small_pop();
  const auto sched = small_schedule();
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.15);

  auto cached = make_lumped_sf(pop, sched, noise);
  auto uncached = make_lumped_sf(pop, sched, noise);
  cached.engine->set_sampler_cache(true);
  uncached.engine->set_sampler_cache(false);
  const std::uint64_t rounds = sched.total_rounds();
  EXPECT_EQ(digest_after(*cached.engine, Holdings{2}, rounds, kSeed),
            digest_after(*uncached.engine, Holdings{2}, rounds, kSeed));
}

// A LumpedClass whose fault fields are explicitly "no fault" must be
// bit-identical to one that never mentions them: the fault machinery is
// exercised per round, so an inactive schedule must be a true no-op.
TEST(LumpedEngine, InactiveFaultFieldsAreBitIdentical) {
  const std::vector<TableState> states = {
      TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 0, .tie_b = 1},
      TableState{.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 1, .tie_b = 0}};
  const TableAutomaton table(2, states);
  const Matrix channel = NoiseMatrix::uniform(2, 0.1).matrix();

  const auto build = [&](bool explicit_no_fault) {
    std::vector<LumpedClass> classes;
    LumpedClass cls{.count = AgentCount{25},
                    .automaton = &table,
                    .initial = 0,
                    .channel = channel};
    if (explicit_no_fault) {
      cls.forged = DisplayOverride::none();
      cls.stall = StallWindow{.start = 0, .rounds = 0};
    }
    classes.push_back(cls);
    classes.push_back(LumpedClass{.count = AgentCount{15},
                                  .automaton = &table,
                                  .initial = 1,
                                  .channel = channel});
    return std::make_unique<LumpedEngine>(std::move(classes));
  };
  auto defaulted = build(false);
  auto explicit_none = build(true);
  EXPECT_EQ(digest_after(*defaulted, Holdings{2}, 8, kSeed),
            digest_after(*explicit_none, Holdings{2}, 8, kSeed));
}

TEST(LumpedEngine, DisplayHistogramConservesPopulation) {
  const auto pop = small_pop();
  const auto sched = small_schedule();
  auto setup = make_lumped_sf(pop, sched, NoiseMatrix::uniform(2, 0.2));
  LumpedEngine& engine = *setup.engine;
  Rng rng(kSeed, 0);
  for (std::uint64_t round = 0; round < sched.total_rounds(); ++round) {
    const auto hist = engine.display_histogram(round);
    ASSERT_EQ(hist.size(), engine.alphabet_size());
    std::uint64_t sum = 0;
    for (const std::uint64_t count : hist) sum += count;
    EXPECT_EQ(sum, pop.n) << "round " << round;
    engine.step(Holdings{2}, round, rng);
  }
  EXPECT_LE(engine.count_correct(pop.correct_opinion()), pop.n);
  EXPECT_GE(engine.support_size(), 1u);
}

// --- overflow hardening ----------------------------------------------------

TEST(LumpedEngine, ConstructorRejectsPopulationOverflow) {
  const std::vector<TableState> states = {
      TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 0, .tie_a = 0, .tie_b = 0}};
  const TableAutomaton table(2, states);
  const Matrix channel = NoiseMatrix::noiseless(2).matrix();
  std::vector<LumpedClass> classes;
  classes.push_back(LumpedClass{.count = AgentCount{1ULL << 63},
                                .automaton = &table,
                                .initial = 0,
                                .channel = channel});
  classes.push_back(LumpedClass{.count = AgentCount{1ULL << 63},
                                .automaton = &table,
                                .initial = 0,
                                .channel = channel});
  EXPECT_THROW(LumpedEngine{std::move(classes)}, std::invalid_argument);
}

// One class holding 2⁶² agents: a single round exercises sample_binomial and
// the multinomial splits at counts no agent-array engine can represent, and
// the count must be conserved exactly (no double round-off, no wraparound).
TEST(LumpedEngine, StepConservesCountsNearTwoToTheSixtyTwo) {
  const std::vector<TableState> states = {
      TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 0, .tie_b = 1},
      TableState{.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 1, .tie_b = 0}};
  const TableAutomaton table(2, states);
  const Matrix channel = NoiseMatrix::uniform(2, 0.3).matrix();
  const std::uint64_t huge = 1ULL << 62;
  std::vector<LumpedClass> classes;
  classes.push_back(LumpedClass{.count = AgentCount{huge},
                                .automaton = &table,
                                .initial = 0,
                                .channel = channel});
  LumpedEngine engine(std::move(classes));
  Rng rng(kSeed, 0);
  for (std::uint64_t round = 0; round < 3; ++round) {
    engine.step(Holdings{2}, round, rng);
    const auto hist = engine.display_histogram(round + 1);
    std::uint64_t sum = 0;
    for (const std::uint64_t count : hist) sum += count;
    EXPECT_EQ(sum, huge) << "round " << round;
  }
}

// n = 10¹² through the real SF builder: construction plus a handful of
// rounds must be effectively instant — per-round cost is O(#occupied
// states), never O(n).
TEST(LumpedEngine, TrillionAgentStepIsCheap) {
  const std::uint64_t n = 1'000'000'000'000ULL;
  const PopulationConfig pop{.n = n, .s1 = 1'000'000, .s0 = 0};
  const auto sched =
      make_sf_schedule_with_m(pop, Holdings{16}, Delta{0.2}, MemoryBudget{64});
  auto setup = make_lumped_sf(pop, sched, NoiseMatrix::uniform(2, 0.2));
  LumpedEngine& engine = *setup.engine;
  EXPECT_EQ(engine.num_agents(), n);
  Rng rng(kSeed, 0);
  for (std::uint64_t round = 0; round < 5; ++round) {
    engine.step(Holdings{16}, round, rng);
    const auto hist = engine.display_histogram(round + 1);
    std::uint64_t sum = 0;
    for (const std::uint64_t count : hist) sum += count;
    ASSERT_EQ(sum, n);
  }
}

// --- run_lumped ------------------------------------------------------------

TEST(RunLumped, MirrorsRunnerBookkeeping) {
  const auto pop = small_pop();
  const auto sched = small_schedule();
  auto setup = make_lumped_sf(pop, sched, NoiseMatrix::uniform(2, 0.1));
  Rng rng(kSeed, 1);
  RunConfig cfg;
  cfg.h = 2;
  cfg.max_rounds = 0;  // planned_rounds from the builder
  cfg.stability_window = 3;
  cfg.record_trajectory = true;
  const RunResult r = run_lumped(*setup.engine, pop.correct_opinion(), cfg, rng);
  // The stability window only runs while consensus holds, so rounds_run is
  // the planned horizon plus at most the window.
  EXPECT_GE(r.rounds_run, sched.total_rounds());
  EXPECT_LE(r.rounds_run, sched.total_rounds() + cfg.stability_window);
  EXPECT_EQ(r.trajectory.size(), sched.total_rounds());
  EXPECT_LE(r.correct_at_end, pop.n);
  if (r.stable) {
    EXPECT_EQ(r.rounds_run, sched.total_rounds() + cfg.stability_window);
  }
  if (r.all_correct_at_end) {
    EXPECT_EQ(r.correct_at_end, pop.n);
    EXPECT_LT(r.first_all_correct, sched.total_rounds());
  }
}

TEST(RunLumped, SsfBuilderInstallsConvergenceDeadline) {
  const PopulationConfig pop{.n = 30, .s1 = 1, .s0 = 0};
  const MemoryBudget m{8};
  auto setup =
      make_lumped_ssf(pop, Holdings{2}, m, NoiseMatrix::uniform(4, 0.1));
  const std::uint64_t cycle = (m.get() + 1) / 2;  // ⌈m/h⌉ with h = 2
  EXPECT_EQ(setup.engine->planned_rounds(), 4 * cycle + 1);
  Rng rng(kSeed, 2);
  RunConfig cfg;
  cfg.h = 2;
  const RunResult r = run_lumped(*setup.engine, pop.correct_opinion(), cfg, rng);
  EXPECT_EQ(r.rounds_run, setup.engine->planned_rounds());
}

// --- scheduler seam --------------------------------------------------------

ExperimentCell lumped_cell(std::uint64_t seed) {
  const auto pop = small_pop();
  const auto sched = small_schedule();
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);
  ExperimentCell cell;
  cell.label = "lumped-sf";
  cell.noise = noise;
  cell.correct = pop.correct_opinion();
  cell.cfg.h = 2;
  cell.cfg.max_rounds = sched.total_rounds();
  cell.seed = seed;
  cell.protocol_digest = CellKey{}
                             .str("lumped-sf-test")
                             .u64(pop.n)
                             .u64(pop.s1)
                             .u64(pop.s0)
                             .digest();
  cell.make_lumped = [pop, sched, noise] {
    return make_lumped_sf(pop, sched, noise);
  };
  return cell;
}

TEST(SchedulerLumped, StatisticsAreThreadCountInvariant) {
  std::vector<ExperimentCell> cells = {lumped_cell(kSeed), lumped_cell(kSeed + 7)};
  SchedulerOptions serial;
  serial.threads = 1;
  serial.stop.max_reps = 6;
  serial.stop.min_reps = 6;
  SchedulerOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_experiment(cells, serial);
  const auto b = run_experiment(cells, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].reps, b[c].reps);
    EXPECT_EQ(a[c].successes, b[c].successes);
    EXPECT_EQ(a[c].stable_successes, b[c].stable_successes);
    EXPECT_EQ(a[c].mean_convergence_round, b[c].mean_convergence_round);
    EXPECT_EQ(a[c].mean_rounds_run, b[c].mean_rounds_run);
  }
}

TEST(SchedulerLumped, EngineKindKeysNeverAlias) {
  ExperimentCell lumped = lumped_cell(kSeed);
  ExperimentCell aggregate = lumped_cell(kSeed);
  aggregate.make_lumped = {};
  aggregate.use_aggregate_engine = true;
  ExperimentCell exact = lumped_cell(kSeed);
  exact.make_lumped = {};
  exact.use_aggregate_engine = false;
  const std::uint64_t kl = cell_cache_key(lumped);
  const std::uint64_t ka = cell_cache_key(aggregate);
  const std::uint64_t ke = cell_cache_key(exact);
  EXPECT_NE(kl, ka);
  EXPECT_NE(kl, ke);
  EXPECT_NE(ka, ke);
}

TEST(SchedulerLumped, RejectsFaultPlansAndSteadyState) {
  SchedulerOptions opts;
  opts.stop.max_reps = 1;
  opts.stop.min_reps = 1;
  {
    std::vector<ExperimentCell> cells = {lumped_cell(kSeed)};
    cells[0].fault_plan = FaultPlan{};
    EXPECT_THROW(run_experiment(cells, opts), std::invalid_argument);
  }
  {
    std::vector<ExperimentCell> cells = {lumped_cell(kSeed)};
    cells[0].steady_state = SteadyStateSpec{.warmup = 1, .measure = 2};
    EXPECT_THROW(run_experiment(cells, opts), std::invalid_argument);
  }
}

}  // namespace
}  // namespace noisypull
