#include "noisypull/analysis/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace noisypull {
namespace {

TEST(Table, BuildsAndCountsRows) {
  Table t({"n", "rate"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.cell(std::uint64_t{100}).cell(0.5, 2);
  t.end_row();
  t.cell(std::uint64_t{200}).cell(0.75, 2);
  t.end_row();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0], "100");
  EXPECT_EQ(t.rows()[0][1], "0.50");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "value"});
  t.cell(std::uint64_t{1}).cell("a").end_row();
  t.cell(std::uint64_t{1000}).cell("bb").end_row();
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("|    x | value |"), std::string::npos);
  EXPECT_NE(out.find("| 1000 |    bb |"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.cell(std::uint64_t{1}).cell(2.5, 1).end_row();
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, CsvFileRoundtrip) {
  Table t({"k"});
  t.cell(std::int64_t{-7}).end_row();
  const std::string path = "/tmp/noisypull_test_table.csv";
  ASSERT_TRUE(t.write_csv_file(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k");
  std::getline(in, line);
  EXPECT_EQ(line, "-7");
  std::remove(path.c_str());
}

TEST(Table, CsvFileFailureReturnsFalse) {
  Table t({"k"});
  // The parent "directory" is a file, so the path can never be created —
  // the atomic_io seam auto-creates missing parent *directories* (and the
  // suite may run as root), so a merely absent directory is not a failure.
  EXPECT_FALSE(t.write_csv_file("/dev/null/x.csv"));
}

TEST(Table, RowShapeIsEnforced) {
  Table t({"a", "b"});
  t.cell("only one");
  EXPECT_THROW(t.end_row(), std::invalid_argument);
  t.cell("two");
  EXPECT_NO_THROW(t.end_row());
  t.cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), std::invalid_argument);
}

TEST(Table, NeedsAtLeastOneColumn) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(BenchArgs, ParsesCsvFlag) {
  const char* argv[] = {"prog", "--csv", "/tmp/out"};
  const auto args = BenchArgs::parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(args.csv);
  EXPECT_EQ(args.csv_path, "/tmp/out");

  const char* argv2[] = {"prog"};
  const auto none = BenchArgs::parse(1, const_cast<char**>(argv2));
  EXPECT_FALSE(none.csv);
}

}  // namespace
}  // namespace noisypull
