// End-to-end integration tests: protocols under engines, adversaries, and
// noise reductions working together, each a miniature of a bench experiment.
#include <gtest/gtest.h>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

TEST(Integration, SfFullSamplingSingleSource) {
  // Theorem 4's flagship regime: h = n, s = 1, constant noise.
  const auto p = pop(1000, 1, 0);
  const double delta = 0.2;
  const auto noise = NoiseMatrix::uniform(2, delta);
  SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(1);
  const auto result =
      run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Integration, SfSqrtNSampling) {
  const auto p = pop(900, 1, 0);
  const double delta = 0.1;
  const auto noise = NoiseMatrix::uniform(2, delta);
  SourceFilter sf(p, Holdings{30}, Delta{delta}, C1{2.0});  // h = √n
  AggregateEngine engine;
  Rng rng(2);
  const auto result =
      run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = 30}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Integration, SfUnderExactEngineMatchesAggregateOutcome) {
  // The literal per-message engine reaches the same conclusion (small n to
  // keep Θ(n·h) affordable).
  const auto p = pop(150, 2, 0);
  const double delta = 0.1;
  const auto noise = NoiseMatrix::uniform(2, delta);
  int ok = 0;
  for (int rep = 0; rep < 3; ++rep) {
    SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
    ExactEngine engine;
    Rng rng(100 + rep);
    ok += run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng)
              .all_correct_at_end
              ? 1
              : 0;
  }
  EXPECT_GE(ok, 2);
}

TEST(Integration, SfWithNonUniformNoiseViaTheorem8Reduction) {
  // A lopsided binary channel; agents add artificial noise P so the
  // effective channel is f(δ)-uniform, then run SF tuned to f(δ).
  const auto p = pop(800, 1, 0);
  const NoiseMatrix raw(Matrix{0.95, 0.05, 0.2, 0.8});
  const auto red = reduce_to_uniform(raw);
  SourceFilter sf(p, Holdings{p.n}, Delta{red.delta_prime}, C1{2.0});
  AggregateEngine engine;
  engine.set_artificial_noise(red.artificial);
  Rng rng(3);
  const auto result = run(sf, engine, raw, p.correct_opinion(),
                          RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Integration, SfPluralityWithConflictingSources) {
  // 6 sources for 1, 4 for 0 → plurality 1 must win despite the conflict.
  const auto p = pop(1000, 6, 4);
  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(4);
  const auto result =
      run(sf, engine, noise, p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Integration, SsfRecoversFromEveryCorruptionPolicy) {
  const auto p = pop(400, 2, 0);
  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);
  for (const auto policy : kAllCorruptionPolicies) {
    SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
    Rng init(10 + static_cast<int>(policy));
    corrupt_population(ssf, policy, p.correct_opinion(), init);
    AggregateEngine engine;
    Rng rng(20 + static_cast<int>(policy));
    const auto result =
        run(ssf, engine, noise, p.correct_opinion(),
            RunConfig{.h = p.n, .max_rounds = ssf.convergence_deadline()},
            rng);
    EXPECT_TRUE(result.all_correct_at_end)
        << "policy=" << to_string(policy);
  }
}

TEST(Integration, SsfWithNonUniformNoiseViaReduction) {
  // Note: for d = 4 the reduction level f(δ) is much larger than δ (see
  // Figure 1), so keep the raw channel mild and the bias comfortable.
  const auto p = pop(600, 4, 0);
  Rng gen(5);
  const auto raw = NoiseMatrix::random_upper_bounded(4, 0.03, gen);
  const auto red = reduce_to_uniform(raw);
  SelfStabilizingSourceFilter ssf(p, Holdings{p.n}, Delta{red.delta_prime},
                                  C1{2.0});
  AggregateEngine engine;
  engine.set_artificial_noise(red.artificial);
  Rng rng(6);
  const auto result =
      run(ssf, engine, raw, p.correct_opinion(),
          RunConfig{.h = p.n, .max_rounds = ssf.convergence_deadline()}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(Integration, RepeatHarnessEstimatesHighSuccessForSf) {
  const auto p = pop(400, 1, 0);
  const double delta = 0.15;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto results = run_repetitions(
      [&](Rng&) -> std::unique_ptr<PullProtocol> {
        return std::make_unique<SourceFilter>(p, Holdings{p.n}, Delta{delta},
                                              C1{2.0});
      },
      noise, p.correct_opinion(), RunConfig{.h = p.n},
      RepeatOptions{.repetitions = 10, .seed = 7});
  EXPECT_GE(success_rate(results), 0.9);
}

TEST(Integration, WeakOpinionAdvantageIsPositive) {
  // Lemma 28's measurable consequence: after the listening phases the
  // fraction of correct weak opinions exceeds 1/2.
  const auto p = pop(2000, 1, 0);
  const double delta = 0.2;
  const auto noise = NoiseMatrix::uniform(2, delta);
  SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(8);
  for (std::uint64_t t = 0; t < sf.schedule().boosting_start(); ++t) {
    engine.step(sf, noise, Holdings{p.n}, t, rng);
  }
  std::uint64_t correct_weak = 0;
  for (std::uint64_t i = 0; i < p.n; ++i) {
    if (sf.weak_opinion(i) == p.correct_opinion()) ++correct_weak;
  }
  EXPECT_GT(correct_weak, p.n / 2);
}

TEST(Integration, BoostingTrajectoryGrows) {
  // Lemma 33's measurable consequence: the correct-opinion count increases
  // through the boosting sub-phases.
  const auto p = pop(1000, 1, 0);
  const double delta = 0.2;
  const auto noise = NoiseMatrix::uniform(2, delta);
  SourceFilter sf(p, Holdings{p.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  Rng rng(9);
  const auto result = run(sf, engine, noise, p.correct_opinion(),
                          RunConfig{.h = p.n, .record_trajectory = true},
                          rng);
  ASSERT_TRUE(result.all_correct_at_end);
  const auto& traj = result.trajectory;
  const std::uint64_t at_start = traj[sf.schedule().boosting_start()];
  EXPECT_LT(at_start, p.n);  // not yet converged after listening
  EXPECT_EQ(traj.back(), p.n);
}

}  // namespace
}  // namespace noisypull
