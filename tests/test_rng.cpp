#include "noisypull/rng/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace noisypull {
namespace {

TEST(Splitmix64, MatchesReferenceVectors) {
  // Reference outputs of splitmix64 for state = 0 (Vigna's test vectors).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06C45D188009454FULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamsAreDistinctAndDeterministic) {
  Rng a(7, 0), b(7, 1), a2(7, 0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, a2.next());
    if (va == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsUniform) {
  Rng rng(31);
  constexpr std::uint64_t kBound = 7;
  constexpr int kDraws = 70000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  const double expected = static_cast<double>(kDraws) / kBound;
  for (auto c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));  // ~5 sigma
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(77);
  const double p = 0.3;
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01);
}

TEST(Rng, NextBoolIsFair) {
  Rng rng(123);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.next_bool() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Rng, JumpChangesStateDeterministically) {
  Rng a(4), b(4);
  a.jump();
  EXPECT_NE(a.state(), b.state());
  Rng c(4);
  c.jump();
  EXPECT_EQ(a.state(), c.state());
}

TEST(Rng, JumpedStreamsDoNotCollide) {
  Rng a(4);
  Rng b = a;
  b.jump();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.contains(b.next()));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace noisypull
