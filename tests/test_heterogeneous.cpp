#include <gtest/gtest.h>

#include <array>

#include "noisypull/analysis/stats.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

PopulationConfig pop(std::uint64_t n, std::uint64_t s1, std::uint64_t s0) {
  return PopulationConfig{.n = n, .s1 = s1, .s0 = s0};
}

// Fixed displays, records observations per agent (same as in
// test_engines.cpp but local to keep the suites independent).
class Recorder : public PullProtocol {
 public:
  Recorder(std::vector<Symbol> displays)
      : displays_(std::move(displays)),
        last_obs_(displays_.size(), SymbolCounts(2)) {}
  std::size_t alphabet_size() const override { return 2; }
  std::uint64_t num_agents() const override { return displays_.size(); }
  Symbol display(std::uint64_t agent, std::uint64_t) const override {
    return displays_[agent];
  }
  void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
              Rng&) override {
    last_obs_[agent] = obs;
  }
  Opinion opinion(std::uint64_t) const override { return 0; }

  std::vector<Symbol> displays_;
  std::vector<SymbolCounts> last_obs_;
};

std::vector<NoiseMatrix> mixed_noise(std::uint64_t n, double low,
                                     double high) {
  std::vector<NoiseMatrix> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(NoiseMatrix::uniform(2, i % 2 == 0 ? low : high));
  }
  return out;
}

TEST(HeterogeneousEngine, Validation) {
  EXPECT_THROW(HeterogeneousEngine({}), std::invalid_argument);
  std::vector<NoiseMatrix> mismatched;
  mismatched.push_back(NoiseMatrix::uniform(2, 0.1));
  mismatched.push_back(NoiseMatrix::uniform(3, 0.1));
  EXPECT_THROW(HeterogeneousEngine(std::move(mismatched)),
               std::invalid_argument);

  // Wrong matrix count for the protocol.
  Recorder protocol(std::vector<Symbol>(4, 0));
  HeterogeneousEngine engine(mixed_noise(3, 0.0, 0.1));
  Rng rng(1);
  EXPECT_THROW(engine.step(protocol, NoiseMatrix::uniform(2, 0.1), Holdings{1},
                           0, rng),
               std::invalid_argument);
}

TEST(HeterogeneousEngine, WorstUpperBound) {
  HeterogeneousEngine engine(mixed_noise(10, 0.05, 0.25));
  EXPECT_NEAR(engine.worst_upper_bound(), 0.25, 1e-12);
}

TEST(HeterogeneousEngine, PerAgentChannelsAreApplied) {
  // Agent 0 is noiseless, agent 1 has a fully scrambling channel; all
  // displays are 1.
  std::vector<NoiseMatrix> noise;
  noise.push_back(NoiseMatrix::noiseless(2));
  noise.push_back(NoiseMatrix(Matrix{0.5, 0.5, 0.5, 0.5}));
  Recorder protocol(std::vector<Symbol>(2, 1));
  HeterogeneousEngine engine(std::move(noise));
  Rng rng(2);

  std::array<std::uint64_t, 2> scrambled{};
  for (int t = 0; t < 600; ++t) {
    engine.step(protocol, NoiseMatrix::uniform(2, 0.1), Holdings{10}, t, rng);
    EXPECT_EQ(protocol.last_obs_[0][1], 10u);  // noiseless: all 1s
    scrambled[0] += protocol.last_obs_[1][0];
    scrambled[1] += protocol.last_obs_[1][1];
  }
  const std::array<double, 2> half = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(scrambled, half),
            chi_square_critical_999(1));
}

TEST(HeterogeneousEngine, UniformSpecialCaseMatchesAggregateLaw) {
  // All agents share one matrix: the observation law must equal the
  // homogeneous one (30% displays of 1 through δ = 0.1 → P(see 1) = 0.34).
  const std::uint64_t n = 10;
  std::vector<Symbol> displays(n, 0);
  displays[0] = displays[1] = displays[2] = 1;
  Recorder protocol(displays);
  HeterogeneousEngine engine(
      std::vector<NoiseMatrix>(n, NoiseMatrix::uniform(2, 0.1)));
  Rng rng(3);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 400; ++t) {
    engine.step(protocol, NoiseMatrix::uniform(2, 0.1), Holdings{50}, t, rng);
    for (const auto& obs : protocol.last_obs_) {
      totals[0] += obs[0];
      totals[1] += obs[1];
    }
  }
  const std::array<double, 2> probs = {0.66, 0.34};
  EXPECT_LT(chi_square_statistic(totals, probs), chi_square_critical_999(1));
}

TEST(HeterogeneousEngine, ArtificialNoiseComposesPerAgent) {
  // Noiseless per-agent channels + scrambling artificial noise → uniform.
  Recorder protocol(std::vector<Symbol>(4, 1));
  HeterogeneousEngine engine(
      std::vector<NoiseMatrix>(4, NoiseMatrix::noiseless(2)));
  engine.set_artificial_noise(Matrix{0.5, 0.5, 0.5, 0.5});
  Rng rng(4);
  std::array<std::uint64_t, 2> totals{};
  for (int t = 0; t < 500; ++t) {
    engine.step(protocol, NoiseMatrix::noiseless(2), Holdings{10}, t, rng);
    for (const auto& obs : protocol.last_obs_) {
      totals[0] += obs[0];
      totals[1] += obs[1];
    }
  }
  const std::array<double, 2> half = {0.5, 0.5};
  EXPECT_LT(chi_square_statistic(totals, half), chi_square_critical_999(1));
}

TEST(HeterogeneousEngine, SfTunedToWorstAgentConverges) {
  // Half the agents observe at δ = 0.02, half at δ = 0.25; SF tuned to the
  // worst level converges (a δ-upper-bounded mixture is δ_max-upper-bounded
  // from every receiver's perspective).
  const auto p = pop(600, 1, 0);
  auto noise = mixed_noise(p.n, 0.02, 0.25);
  HeterogeneousEngine engine(std::move(noise));
  SourceFilter sf(p, Holdings{p.n}, Delta{engine.worst_upper_bound()}, C1{2.0});
  Rng rng(5);
  const auto result =
      run(sf, engine, NoiseMatrix::uniform(2, engine.worst_upper_bound()),
          p.correct_opinion(), RunConfig{.h = p.n}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

}  // namespace
}  // namespace noisypull
