#include "noisypull/core/kary.hpp"

#include <gtest/gtest.h>

#include "noisypull/model/engine.hpp"
#include "noisypull/sim/runner.hpp"

namespace noisypull {
namespace {

KaryPopulation kpop(std::uint64_t n, std::vector<std::uint64_t> sources) {
  return KaryPopulation{.n = n, .sources = std::move(sources)};
}

SymbolCounts obs(std::initializer_list<std::uint64_t> counts) {
  SymbolCounts c(counts.size());
  std::size_t i = 0;
  for (auto v : counts) c[i++] = v;
  return c;
}

TEST(KaryPopulation, Accessors) {
  const auto p = kpop(100, {2, 5, 1});
  EXPECT_EQ(p.num_opinions(), 3u);
  EXPECT_EQ(p.num_sources(), 8u);
  EXPECT_EQ(p.plurality_opinion(), 1);
  EXPECT_EQ(p.bias(), 3u);  // 5 − 2
  EXPECT_TRUE(p.is_source(7));
  EXPECT_FALSE(p.is_source(8));
  // Grouped layout: agents 0–1 prefer 0, 2–6 prefer 1, 7 prefers 2.
  EXPECT_EQ(p.source_preference(0), 0);
  EXPECT_EQ(p.source_preference(1), 0);
  EXPECT_EQ(p.source_preference(2), 1);
  EXPECT_EQ(p.source_preference(6), 1);
  EXPECT_EQ(p.source_preference(7), 2);
  EXPECT_THROW(p.source_preference(8), std::invalid_argument);
}

TEST(KaryPopulation, Validation) {
  EXPECT_THROW(kpop(100, {1}).validate(), std::invalid_argument);
  EXPECT_THROW(kpop(100, {0, 0}).validate(), std::invalid_argument);
  EXPECT_THROW(kpop(2, {2, 3}).validate(), std::invalid_argument);
  EXPECT_THROW(kpop(100, {2, 2}).plurality_opinion(), std::invalid_argument);
  EXPECT_EQ(kpop(100, {2, 2}).bias(), 0u);
}

TEST(KarySourceFilter, ListeningDisplaysCoverSymbols) {
  const auto p = kpop(60, {0, 1, 0});
  KarySourceFilter ksf(p, Holdings{4}, Delta{0.05});
  const std::uint64_t pr = ksf.phase_rounds();
  // Source (agent 0, preference 1) always shows its preference.
  EXPECT_EQ(ksf.display(0, 0), 1);
  EXPECT_EQ(ksf.display(0, pr), 1);
  EXPECT_EQ(ksf.display(0, 2 * pr), 1);
  // Non-sources show the cover symbol of the current phase.
  EXPECT_EQ(ksf.display(30, 0), 0);
  EXPECT_EQ(ksf.display(30, pr), 1);
  EXPECT_EQ(ksf.display(30, 2 * pr), 2);
}

TEST(KarySourceFilter, ScoresExcludeTheCoverSymbol) {
  const auto p = kpop(60, {0, 1, 0});
  KarySourceFilter ksf(p, Holdings{1}, Delta{0.05});
  Rng rng(1);
  const std::uint64_t pr = ksf.phase_rounds();
  // Phase 0 (cover 0): observing symbol 0 adds nothing; 1 and 2 count.
  ksf.update(30, 0, obs({5, 3, 2}), rng);
  EXPECT_EQ(ksf.score(30, 0), 0u);
  EXPECT_EQ(ksf.score(30, 1), 3u);
  EXPECT_EQ(ksf.score(30, 2), 2u);
  // Phase 1 (cover 1): symbol 1 is excluded now.
  ksf.update(30, pr, obs({1, 9, 1}), rng);
  EXPECT_EQ(ksf.score(30, 0), 1u);
  EXPECT_EQ(ksf.score(30, 1), 3u);
  EXPECT_EQ(ksf.score(30, 2), 3u);
}

TEST(KarySourceFilter, WeakOpinionIsArgmaxAtListeningEnd) {
  const auto p = kpop(60, {0, 1, 0});
  KarySourceFilter ksf(p, Holdings{1}, Delta{0.05});
  Rng rng(2);
  const std::uint64_t end = ksf.listening_rounds();
  for (std::uint64_t t = 0; t < end; ++t) {
    // Symbol 2 dominates in every phase where it counts.
    ksf.update(30, t, obs({1, 1, 3}), rng);
  }
  EXPECT_EQ(ksf.weak_opinion(30), 2);
  EXPECT_EQ(ksf.opinion(30), 2);
}

TEST(KarySourceFilter, BoostingAdoptsSubphasePlurality) {
  const auto p = kpop(60, {0, 1, 0});
  KarySourceFilter ksf(p, Holdings{60},
                       Delta{0.05});  // h = n → sub-phase length 1 round
  Rng rng(3);
  const std::uint64_t end = ksf.listening_rounds();
  for (std::uint64_t t = 0; t < end; ++t) {
    ksf.update(30, t, obs({0, 0, 3}), rng);
  }
  ASSERT_EQ(ksf.opinion(30), 2);
  // One full sub-phase of 0-dominant observations flips the opinion.
  std::uint64_t t = end;
  bool flipped = false;
  for (int i = 0; i < 50 && !flipped; ++i, ++t) {
    ksf.update(30, t, obs({40, 10, 10}), rng);
    flipped = ksf.opinion(30) == 0;
  }
  EXPECT_TRUE(flipped);
}

TEST(KarySourceFilter, Validation) {
  const auto p = kpop(60, {0, 1, 0});
  EXPECT_THROW(KarySourceFilter(p, Holdings{0}, Delta{0.05}),
               std::invalid_argument);
  EXPECT_THROW(KarySourceFilter(p, Holdings{1}, Delta{1.0 / 3.0}),
               std::invalid_argument);
  EXPECT_THROW(KarySourceFilter(kpop(60, {1, 1, 0}), Holdings{1}, Delta{0.05}),
               std::invalid_argument);  // tied plurality
  KarySourceFilter ksf(p, Holdings{1}, Delta{0.05});
  Rng rng(4);
  EXPECT_THROW(ksf.update(60, 0, obs({1, 0, 0}), rng),
               std::invalid_argument);
  SymbolCounts wrong(2);
  EXPECT_THROW(ksf.update(0, 0, wrong, rng), std::invalid_argument);
  EXPECT_THROW(ksf.score(0, 3), std::invalid_argument);
}

TEST(KarySourceFilter, BinaryCaseConverges) {
  const auto p = kpop(400, {0, 1});
  const double delta = 0.15;
  KarySourceFilter ksf(p, Holdings{400}, Delta{delta});
  AggregateEngine engine;
  Rng rng(5);
  const auto result = run(ksf, engine, NoiseMatrix::uniform(2, delta),
                          p.plurality_opinion(), RunConfig{.h = 400}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(KarySourceFilter, ThreeOpinionsSingleSource) {
  const auto p = kpop(500, {0, 0, 1});
  const double delta = 0.08;
  KarySourceFilter ksf(p, Holdings{500}, Delta{delta});
  AggregateEngine engine;
  Rng rng(6);
  const auto result = run(ksf, engine, NoiseMatrix::uniform(3, delta),
                          p.plurality_opinion(), RunConfig{.h = 500}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
}

TEST(KarySourceFilter, FourOpinionsConflictingSources) {
  // 3 vs 2 vs 2 vs 1 sources: plurality (opinion 0) must win and the
  // outvoted sources must adopt it.
  const auto p = kpop(600, {3, 2, 2, 1});
  const double delta = 0.05;
  KarySourceFilter ksf(p, Holdings{600}, Delta{delta});
  AggregateEngine engine;
  Rng rng(7);
  const auto result = run(ksf, engine, NoiseMatrix::uniform(4, delta),
                          p.plurality_opinion(), RunConfig{.h = 600}, rng);
  EXPECT_TRUE(result.all_correct_at_end);
  EXPECT_EQ(ksf.opinion(7), 0);  // the lone opinion-3 source converged too
}

TEST(KarySourceFilter, PluralityBiasOneAcrossReps) {
  const auto p = kpop(500, {2, 1, 1});
  const double delta = 0.05;
  int ok = 0;
  for (int rep = 0; rep < 5; ++rep) {
    KarySourceFilter ksf(p, Holdings{500}, Delta{delta});
    AggregateEngine engine;
    Rng rng(800 + rep);
    ok += run(ksf, engine, NoiseMatrix::uniform(3, delta),
              p.plurality_opinion(), RunConfig{.h = 500}, rng)
              .all_correct_at_end
              ? 1
              : 0;
  }
  EXPECT_GE(ok, 4);
}

}  // namespace
}  // namespace noisypull
