// LumpedEngine vs theory/ExactChain differential tests: the lumped engine
// claims its sampled histogram trajectory is distribution-identical to the
// agent-level engines, and the exact chain is the ground truth both are
// measured against.  Three legs:
//
//   * pinned small-n configurations (SF, SSF, faulted table automata) with
//     the TV / exact-mean assertions of oracle_util.hpp,
//   * a randomized fuzz campaign over (table automaton × classes × noise ×
//     deterministic faults) tuples, bounded by NOISYPULL_ORACLE_MAX_TUPLES
//     exactly like test_oracle_fuzz.cpp,
//   * a two-sample chi-square homogeneity test against AggregateEngine at
//     n = 10⁵ — far beyond the oracle's reach, pinning that the lumped and
//     agent-level samplers agree where only each other can check them.
//
// Reproducibility: every tuple/replicate derives from a fixed seed; failures
// print the tuple index for bit-identical replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "oracle_util.hpp"

namespace noisypull {
namespace {

using oracle_test::compare_to_oracle;

using LumpedFactory = std::function<LumpedSetup()>;

// Lumped counterpart of oracle_test::run_replicates: each replicate builds a
// fresh engine (class histograms are mutable state) and runs on the
// substream Rng(seed, rep); the per-round display histogram is read straight
// off the engine — forged displays and stalls are already folded in.
std::vector<DisplayDistribution> lumped_replicates(const LumpedFactory& make,
                                                   Holdings h,
                                                   std::uint64_t rounds,
                                                   std::uint64_t reps,
                                                   std::uint64_t seed) {
  std::vector<DisplayDistribution> per_round(rounds + 1);
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    LumpedSetup setup = make();
    Rng rng(seed, rep);
    for (std::uint64_t round = 0; round <= rounds; ++round) {
      per_round[round][setup.engine->display_histogram(round)] += 1.0;
      if (round < rounds) setup.engine->step(h, round, rng);
    }
  }
  const double inv = 1.0 / static_cast<double>(reps);
  for (auto& dist : per_round) {
    for (auto& [key, mass] : dist) mass *= inv;
  }
  return per_round;
}

constexpr std::uint64_t kReps = 2500;
constexpr double kPrune = 1e-9;

// --- pinned configurations --------------------------------------------------

TEST(OracleLumped, SourceFilterSmallN) {
  const PopulationConfig pop{.n = 6, .s1 = 1, .s0 = 1};
  const SfSchedule sched{.h = 2,
                         .m = 2,
                         .phase_rounds = 1,
                         .w = 2,
                         .subphase_rounds = 2,
                         .num_subphases = 1,
                         .final_rounds = 1};
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.15);
  const std::uint64_t rounds = sched.total_rounds() + 1;

  // Oracle classes mirror make_lumped_sf's layout exactly.
  std::vector<std::unique_ptr<AgentAutomaton>> automata;
  automata.push_back(std::make_unique<SfAutomaton>(sched, true, 1));
  automata.push_back(std::make_unique<SfAutomaton>(sched, true, 0));
  automata.push_back(std::make_unique<SfAutomaton>(sched, false, 0));
  const std::vector<ChainClass> classes = {
      {.size = 1, .automaton = automata[0].get(), .initial = 0,
       .channel = noise.matrix()},
      {.size = 1, .automaton = automata[1].get(), .initial = 0,
       .channel = noise.matrix()},
      {.size = 4, .automaton = automata[2].get(), .initial = 0,
       .channel = noise.matrix()}};
  ExactChainOptions options;
  options.h = Holdings{2};
  options.prune_epsilon = kPrune;
  ExactChain chain(classes, options);

  const auto empirical = lumped_replicates(
      [&] { return make_lumped_sf(pop, sched, noise); }, Holdings{2}, rounds,
      kReps, 0x5f01);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

TEST(OracleLumped, SelfStabilizingSourceFilterSmallN) {
  const PopulationConfig pop{.n = 5, .s1 = 1, .s0 = 0};
  const MemoryBudget m{2};
  const NoiseMatrix noise = NoiseMatrix::uniform(4, 0.1);
  const std::uint64_t rounds = 5;

  std::vector<std::unique_ptr<AgentAutomaton>> automata;
  automata.push_back(std::make_unique<SsfAutomaton>(m, true, 1));
  automata.push_back(std::make_unique<SsfAutomaton>(m, false, 0));
  const std::vector<ChainClass> classes = {
      {.size = 1, .automaton = automata[0].get(), .initial = 0,
       .channel = noise.matrix()},
      {.size = 4, .automaton = automata[1].get(), .initial = 0,
       .channel = noise.matrix()}};
  ExactChainOptions options;
  options.h = Holdings{1};
  options.prune_epsilon = kPrune;
  ExactChain chain(classes, options);

  const auto empirical = lumped_replicates(
      [&] { return make_lumped_ssf(pop, Holdings{1}, m, noise); }, Holdings{1},
      rounds, kReps, 0x55f02);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

// Deterministic fault schedules: a forged (Byzantine-style) class plus a
// stalled class, checked against the oracle's identical overrides.
TEST(OracleLumped, ForgedAndStalledClasses) {
  const std::vector<TableState> states = {
      TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 0, .tie_b = 1},
      TableState{.show = 1, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 1, .tie_b = 0}};
  const TableAutomaton table(2, states);
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);
  const std::uint64_t rounds = 4;
  const DisplayOverride forged = DisplayOverride::even_odd(1, 0);
  const StallWindow stall{.start = 1, .rounds = 2};

  const std::vector<ChainClass> classes = {
      {.size = 3, .automaton = &table, .initial = 0,
       .channel = noise.matrix()},
      {.size = 2, .automaton = &table, .initial = 1,
       .channel = noise.matrix(), .forged = forged},
      {.size = 2, .automaton = &table, .initial = 0,
       .channel = noise.matrix(), .forged = DisplayOverride::none(),
       .stall = stall}};
  ExactChainOptions options;
  options.h = Holdings{2};
  options.prune_epsilon = kPrune;
  ExactChain chain(classes, options);

  const auto make = [&] {
    LumpedSetup setup;
    std::vector<LumpedClass> lumped = {
        {.count = AgentCount{3}, .automaton = &table, .initial = 0,
         .channel = noise.matrix()},
        {.count = AgentCount{2}, .automaton = &table, .initial = 1,
         .channel = noise.matrix(), .forged = forged},
        {.count = AgentCount{2}, .automaton = &table, .initial = 0,
         .channel = noise.matrix(), .forged = DisplayOverride::none(),
         .stall = stall}};
    setup.engine = std::make_unique<LumpedEngine>(std::move(lumped));
    return setup;
  };
  const auto empirical =
      lumped_replicates(make, Holdings{2}, rounds, kReps, 0xfa07);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

// Artificial post-channel noise (Definition 6) composes identically on both
// sides: the chain takes N·P as its class channel, the engine composes it
// via set_artificial_noise.
TEST(OracleLumped, ArtificialNoiseComposition) {
  const std::vector<TableState> states = {
      TableState{.show = 0, .watch_a = 0, .watch_b = 1, .if_greater = 0,
                 .if_less = 1, .tie_a = 1, .tie_b = 0},
      TableState{.show = 1, .watch_a = 1, .watch_b = 0, .if_greater = 1,
                 .if_less = 0, .tie_a = 0, .tie_b = 1}};
  const TableAutomaton table(2, states);
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.1);
  const Matrix artificial = NoiseMatrix::uniform(2, 0.25).matrix();
  const std::uint64_t rounds = 4;

  const std::vector<ChainClass> classes = {
      {.size = 4, .automaton = &table, .initial = 0,
       .channel = noise.matrix() * artificial},
      {.size = 3, .automaton = &table, .initial = 1,
       .channel = noise.matrix() * artificial}};
  ExactChainOptions options;
  options.h = Holdings{1};
  options.prune_epsilon = kPrune;
  ExactChain chain(classes, options);

  const auto make = [&] {
    LumpedSetup setup;
    std::vector<LumpedClass> lumped = {
        {.count = AgentCount{4}, .automaton = &table, .initial = 0,
         .channel = noise.matrix()},
        {.count = AgentCount{3}, .automaton = &table, .initial = 1,
         .channel = noise.matrix()}};
    setup.engine = std::make_unique<LumpedEngine>(std::move(lumped));
    setup.engine->set_artificial_noise(artificial);
    return setup;
  };
  const auto empirical =
      lumped_replicates(make, Holdings{1}, rounds, kReps, 0xa27f);
  EXPECT_EQ(compare_to_oracle(chain, empirical, kReps), "");
}

// --- fuzz campaign ----------------------------------------------------------

constexpr std::uint64_t kLumpedFuzzSeed = 0x10fedfadefc0ffeeULL;
constexpr std::uint64_t kLumpedNumTuples = 60;

TableAutomaton random_table_automaton(Rng& rng, std::size_t d) {
  const std::uint64_t num_states = 2 + rng.next_below(3);  // 2..4
  std::vector<TableState> states;
  for (std::uint64_t s = 0; s < num_states; ++s) {
    TableState ts;
    ts.show = static_cast<Symbol>(rng.next_below(d));
    ts.watch_a = static_cast<Symbol>(rng.next_below(d));
    ts.watch_b = static_cast<Symbol>(rng.next_below(d));
    ts.if_greater = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.if_less = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.tie_a = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.tie_b = static_cast<AutomatonState>(rng.next_below(num_states));
    states.push_back(ts);
  }
  return TableAutomaton(d, std::move(states));
}

struct TupleOutcome {
  std::string description;
  std::string failure;  // empty on success
};

TupleOutcome run_lumped_tuple(std::uint64_t index) {
  Rng rng(kLumpedFuzzSeed, index);
  const std::size_t d = 2 + rng.next_below(2);  // 2 or 3
  const std::uint64_t h = 1 + rng.next_below(3);
  const double delta_cap = 0.9 / static_cast<double>(d);
  const double delta = 0.05 + rng.next_double() * (delta_cap - 0.05);
  const NoiseMatrix noise = NoiseMatrix::random_upper_bounded(d, delta, rng);
  const std::uint64_t rounds = 2 + rng.next_below(3);  // 2..4

  const TableAutomaton table = random_table_automaton(rng, d);
  const std::uint64_t num_states = table.num_states();
  const std::uint64_t num_classes = 1 + rng.next_below(3);  // 1..3

  std::ostringstream desc;
  desc << "lumped tuple " << index << ": d=" << d << " h=" << h
       << " delta=" << delta << " classes=" << num_classes
       << " rounds=" << rounds;

  std::vector<ChainClass> classes;
  std::vector<LumpedClass> lumped;
  for (std::uint64_t c = 0; c < num_classes; ++c) {
    const std::uint64_t size = 2 + rng.next_below(3);  // 2..4 agents
    const auto init = static_cast<AutomatonState>(rng.next_below(num_states));
    DisplayOverride forged = DisplayOverride::none();
    StallWindow stall{};
    // At most one deterministic fault per class, never on class 0 — keep a
    // live majority so tuples stay informative.
    if (c > 0 && rng.next_below(3) == 0) {
      forged = rng.next_below(2) == 0
                   ? DisplayOverride::constant(
                         static_cast<Symbol>(rng.next_below(d)))
                   : DisplayOverride::even_odd(
                         static_cast<Symbol>(rng.next_below(d)),
                         static_cast<Symbol>(rng.next_below(d)));
      desc << " forged@" << c;
    } else if (c > 0 && rng.next_below(3) == 0) {
      stall = StallWindow{.start = rng.next_below(2),
                          .rounds = 1 + rng.next_below(2)};
      desc << " stall@" << c;
    }
    desc << " class" << c << "={n=" << size << ",init=" << init << "}";
    classes.push_back({.size = size,
                       .automaton = &table,
                       .initial = init,
                       .channel = noise.matrix(),
                       .forged = forged,
                       .stall = stall});
    lumped.push_back({.count = AgentCount{size},
                      .automaton = &table,
                      .initial = init,
                      .channel = noise.matrix(),
                      .forged = forged,
                      .stall = stall});
  }

  ExactChainOptions options;
  options.h = Holdings{h};
  options.prune_epsilon = kPrune;
  ExactChain chain(classes, options);

  const auto make = [&] {
    LumpedSetup setup;
    auto copy = lumped;  // fresh histograms per replicate
    setup.engine = std::make_unique<LumpedEngine>(std::move(copy));
    return setup;
  };
  const auto empirical = lumped_replicates(make, Holdings{h}, rounds, kReps,
                                           kLumpedFuzzSeed ^ index);
  return {desc.str(), compare_to_oracle(chain, empirical, kReps)};
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(OracleLumpedFuzz, RandomTuplesMatchExactChain) {
  const std::uint64_t only =
      env_u64("NOISYPULL_ORACLE_TUPLE", kLumpedNumTuples);  // sentinel: all
  const std::uint64_t max_tuples =
      env_u64("NOISYPULL_ORACLE_MAX_TUPLES", kLumpedNumTuples);

  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < kLumpedNumTuples && ran < max_tuples; ++i) {
    if (only < kLumpedNumTuples && i != only) continue;
    ++ran;
    const auto outcome = run_lumped_tuple(i);
    if (!outcome.failure.empty()) {
      ADD_FAILURE() << outcome.description << "\n"
                    << outcome.failure
                    << "repro: NOISYPULL_ORACLE_TUPLE=" << i
                    << " ./tests/noisypull_oracle_tests"
                       " --gtest_filter='OracleLumpedFuzz.*'";
    }
  }
  ASSERT_GT(ran, 0u);
}

// --- chi-square homogeneity vs AggregateEngine at n = 10⁵ -------------------
//
// The oracle cannot reach n = 10⁵, so the two samplers check each other: R
// independent replicates of the same SF configuration under each engine, the
// statistic is the number of agents displaying 1 at the first boosting round
// (the earliest round where displays are stochastic — listening-phase
// displays are a deterministic function of the round).  Replicate counts are
// binned on pooled quantiles and tested for homogeneity at the 99.9% level.
TEST(OracleLumped, AggregateAgreementAtHundredThousandAgents) {
  const PopulationConfig pop{.n = 100'000, .s1 = 316, .s0 = 0};
  const Holdings h{8};
  const NoiseMatrix noise = NoiseMatrix::uniform(2, 0.2);
  const SfSchedule sched =
      make_sf_schedule_with_m(pop, h, Delta{0.2}, MemoryBudget{64});
  const std::uint64_t probe = sched.boosting_start();
  constexpr std::uint64_t kGofReps = 120;
  constexpr std::uint64_t kGofSeed = 0x60f5eed;

  std::vector<std::uint64_t> lumped_ones;
  for (std::uint64_t rep = 0; rep < kGofReps; ++rep) {
    auto setup = make_lumped_sf(pop, sched, noise);
    Rng rng(kGofSeed, rep);
    for (std::uint64_t round = 0; round < probe; ++round) {
      setup.engine->step(h, round, rng);
    }
    lumped_ones.push_back(setup.engine->display_histogram(probe)[1]);
  }

  std::vector<std::uint64_t> agent_ones;
  for (std::uint64_t rep = 0; rep < kGofReps; ++rep) {
    SourceFilter protocol(pop, sched);
    AggregateEngine engine;
    Rng rng(kGofSeed ^ 0x517e, rep);
    for (std::uint64_t round = 0; round < probe; ++round) {
      engine.step(protocol, noise, h, round, rng);
    }
    std::uint64_t ones = 0;
    for (std::uint64_t agent = 0; agent < pop.n; ++agent) {
      if (protocol.display(agent, probe) == 1) ++ones;
    }
    agent_ones.push_back(ones);
  }

  // Bin edges at pooled-sample quantiles (deduplicated): every bin holds a
  // healthy expected count under homogeneity.
  std::vector<std::uint64_t> pooled = lumped_ones;
  pooled.insert(pooled.end(), agent_ones.begin(), agent_ones.end());
  std::sort(pooled.begin(), pooled.end());
  constexpr std::size_t kBins = 6;
  std::vector<std::uint64_t> edges;  // upper-exclusive interior edges
  for (std::size_t b = 1; b < kBins; ++b) {
    const std::uint64_t edge = pooled[pooled.size() * b / kBins];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  const std::size_t bins = edges.size() + 1;
  ASSERT_GE(bins, 3u) << "degenerate pooled sample; widen the configuration";

  const auto bin_of = [&](std::uint64_t value) {
    std::size_t b = 0;
    while (b < edges.size() && value >= edges[b]) ++b;
    return b;
  };
  std::vector<std::uint64_t> lumped_bins(bins, 0);
  std::vector<std::uint64_t> agent_bins(bins, 0);
  for (const std::uint64_t v : lumped_ones) ++lumped_bins[bin_of(v)];
  for (const std::uint64_t v : agent_ones) ++agent_bins[bin_of(v)];

  std::vector<double> pooled_probs(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    pooled_probs[b] =
        static_cast<double>(lumped_bins[b] + agent_bins[b]) /
        static_cast<double>(2 * kGofReps);
  }
  // Two-sample homogeneity statistic: each sample against the pooled bin
  // law, summed; dof = bins − 1 (2 groups).
  const double stat = chi_square_statistic(lumped_bins, pooled_probs) +
                      chi_square_statistic(agent_bins, pooled_probs);
  EXPECT_LT(stat, chi_square_critical_999(bins - 1))
      << "lumped vs aggregate display counts diverge at n=1e5 (probe round "
      << probe << ")";
}

}  // namespace
}  // namespace noisypull
