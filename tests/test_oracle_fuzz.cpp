// Fuzz-vs-oracle differential sweep: randomized (protocol × noise matrix ×
// FaultPlan × engine) tuples, each checked against theory/ExactChain with
// the TV / exact-mean assertions of oracle_util.hpp.  This extends the
// structural fuzzing of test_fuzz_invariants.cpp to *distribution-level*
// correctness: a tuple passes only if the engine's per-round display law is
// statistically indistinguishable from the exact kernel.
//
// Reproducibility contract: the whole campaign is a pure function of
// kFuzzSeed — tuple i derives everything from Rng(kFuzzSeed, i), so any
// failure names a tuple index that replays bit-identically.
//
//   NOISYPULL_ORACLE_MAX_TUPLES=<k>   run only the first k tuples (CI smoke)
//   NOISYPULL_ORACLE_TUPLE=<i>        run exactly tuple i (failure repro)
//   NOISYPULL_ORACLE_COMPILED=1       replicates run CompiledPopulation
//                                     mirrors on the compiled engine fast
//                                     path (DESIGN.md §13) instead of the
//                                     production protocols — the oracle side
//                                     is unchanged, so this differentially
//                                     tests the compiled kernel against the
//                                     exact chain.  (SequentialEngine has no
//                                     compiled path; the flag is a no-op on
//                                     sequential tuples, which then still
//                                     pin the CompiledPopulation's virtual
//                                     fallback.)
//
// Scope note: drop faults are deliberately absent.  Their thinning
// randomness comes from a fixed per-(round, agent) substream of the plan
// seed (fault/faulty_engine.cpp), so across replicate runs it is one
// deterministic function, not an i.i.d. Binomial — no closed-form round
// kernel exists for the oracle to enumerate.  Byzantine displays, blackout
// stalls, and seed-scheduled bursts are deterministic schedules the oracle
// replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "oracle_util.hpp"

namespace noisypull {
namespace {

using oracle_test::compare_to_oracle;
using oracle_test::run_replicates;

constexpr std::uint64_t kFuzzSeed = 0xfadedecafc0ffeeULL;
constexpr std::uint64_t kNumTuples = 120;
constexpr std::uint64_t kReps = 2500;
// Fuzz chains prune hard enough to bound support growth; the lost mass is
// folded into every tolerance by compare_to_oracle.
constexpr double kPrune = 1e-9;

enum class EngineKind : int {
  Aggregate = 0,
  Sequential = 1,
  Heterogeneous = 2,
  FaultyAggregate = 3,
};
enum class ProtoKind : int { Table2 = 0, Table3 = 1, Sf = 2, Ssf = 3 };

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Aggregate: return "aggregate";
    case EngineKind::Sequential: return "sequential-ascending";
    case EngineKind::Heterogeneous: return "heterogeneous";
    case EngineKind::FaultyAggregate: return "faulty(aggregate)";
  }
  return "?";
}
const char* proto_name(ProtoKind k) {
  switch (k) {
    case ProtoKind::Table2: return "table-d2";
    case ProtoKind::Table3: return "table-d3";
    case ProtoKind::Sf: return "source-filter";
    case ProtoKind::Ssf: return "ssf";
  }
  return "?";
}

TableAutomaton random_table_automaton(Rng& rng, std::size_t d) {
  const std::uint64_t num_states = 2 + rng.next_below(3);  // 2..4
  std::vector<TableState> states;
  for (std::uint64_t s = 0; s < num_states; ++s) {
    TableState ts;
    ts.show = static_cast<Symbol>(rng.next_below(d));
    ts.watch_a = static_cast<Symbol>(rng.next_below(d));
    ts.watch_b = static_cast<Symbol>(rng.next_below(d));
    ts.if_greater = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.if_less = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.tie_a = static_cast<AutomatonState>(rng.next_below(num_states));
    ts.tie_b = static_cast<AutomatonState>(rng.next_below(num_states));
    states.push_back(ts);
  }
  return TableAutomaton(d, std::move(states));
}

// A random FaultPlan from the oracle-modelable (deterministic-schedule)
// subset: Byzantine + blackout + burst, never drops or random crashes.
FaultPlan random_fault_plan(Rng& rng, std::size_t d,
                            std::uint64_t first_eligible) {
  FaultPlan plan;
  plan.seed = rng.next();
  plan.first_eligible = first_eligible;
  const std::uint64_t byz_pick = rng.next_below(3);
  plan.byzantine.fraction = 0.2 * static_cast<double>(byz_pick);  // 0/.2/.4
  plan.byzantine.strategy = byz_pick == 2 ? ByzantineStrategy::FlipFlop
                                          : ByzantineStrategy::AlwaysWrong;
  plan.byzantine.wrong_symbol = static_cast<Symbol>(rng.next_below(d));
  plan.byzantine.honest_symbol = static_cast<Symbol>(rng.next_below(d));
  plan.byzantine.mimic_symbol = static_cast<Symbol>(rng.next_below(d));
  if (rng.next_below(2) == 1) {
    plan.stall.blackout_fraction = 0.3;
    plan.stall.blackout_start = rng.next_below(3);
    plan.stall.blackout_rounds = 1 + rng.next_below(2);
  }
  const std::uint64_t burst_pick = rng.next_below(3);
  if (burst_pick > 0) {
    plan.burst.rate = 0.5 * static_cast<double>(burst_pick);  // 0.5 or 1.0
    plan.burst.rounds = 1 + rng.next_below(2);
    plan.burst.delta = rng.next_double() / static_cast<double>(d);
  }
  return plan;
}

struct TupleOutcome {
  std::string description;
  std::string failure;  // empty on success
};

TupleOutcome run_tuple(std::uint64_t index) {
  const bool compiled_mode = std::getenv("NOISYPULL_ORACLE_COMPILED") != nullptr;
  Rng rng(kFuzzSeed, index);
  const auto engine_kind = static_cast<EngineKind>(index % 4);
  ProtoKind proto_kind;
  if (engine_kind == EngineKind::FaultyAggregate) {
    // Faulty tuples use protocols whose fault-class layout is simple to
    // mirror: table automata (everyone eligible) and SSF (sources immune).
    const ProtoKind faultable[] = {ProtoKind::Table2, ProtoKind::Table3,
                                   ProtoKind::Ssf};
    proto_kind = faultable[rng.next_below(3)];
  } else {
    proto_kind = static_cast<ProtoKind>(rng.next_below(4));
  }

  const std::size_t d = proto_kind == ProtoKind::Ssf      ? 4
                        : proto_kind == ProtoKind::Table3 ? 3
                                                          : 2;
  // Population size: the aggregate/table combination exercises the full
  // n ≤ 12 envelope; richer state spaces stay at n ≤ 8 to bound the exact
  // chain's support; sequential SF/SSF chains run fully labelled (see
  // exact_chain.hpp) and stay at n ≤ 5.
  std::uint64_t n_span = 5;  // n in [4, 8]
  if (engine_kind == EngineKind::Aggregate && proto_kind == ProtoKind::Table2) {
    n_span = 9;  // n in [4, 12]
  }
  if (proto_kind == ProtoKind::Ssf) {
    n_span = 3;  // n in [4, 6]: 4-symbol mem histograms grow support fast
  }
  if (engine_kind == EngineKind::Sequential &&
      (proto_kind == ProtoKind::Sf || proto_kind == ProtoKind::Ssf)) {
    n_span = 2;  // n in [4, 5]
  }
  const std::uint64_t n = 4 + rng.next_below(n_span);
  const std::uint64_t h =
      1 + rng.next_below(proto_kind == ProtoKind::Table2 ? 3 : 2);
  const double delta_cap = 0.9 / static_cast<double>(d);
  const double delta = 0.05 + rng.next_double() * (delta_cap - 0.05);

  std::ostringstream desc;
  desc << "tuple " << index << ": proto=" << proto_name(proto_kind)
       << " engine=" << engine_name(engine_kind) << " n=" << n << " h=" << h
       << " delta=" << delta;

  // --- channels -----------------------------------------------------------
  const NoiseMatrix noise = NoiseMatrix::random_upper_bounded(d, delta, rng);
  NoiseMatrix second = noise;  // heterogeneous: a second, dirtier channel
  if (engine_kind == EngineKind::Heterogeneous) {
    second = NoiseMatrix::random_upper_bounded(d, delta_cap, rng);
  }

  // --- fault plan ---------------------------------------------------------
  const std::uint64_t first_eligible = proto_kind == ProtoKind::Ssf ? 1 : 0;
  FaultPlan plan;
  std::uint64_t byz = 0;
  std::uint64_t blackout = 0;
  if (engine_kind == EngineKind::FaultyAggregate) {
    plan = random_fault_plan(rng, d, first_eligible);
    byz = oracle_test::byzantine_count(plan, n);
    blackout = oracle_test::blackout_count(plan, n);
    desc << " byz=" << byz << "(" << to_string(plan.byzantine.strategy) << ")"
         << " blackout=" << blackout << "@" << plan.stall.blackout_start
         << "x" << plan.stall.blackout_rounds
         << " burst.rate=" << plan.burst.rate << " plan.seed=" << plan.seed;
  }

  // --- rounds -------------------------------------------------------------
  std::uint64_t rounds = 2 + rng.next_below(3);  // 2..4
  SfSchedule sched;
  if (proto_kind == ProtoKind::Sf) {
    sched = SfSchedule{.h = h,
                       .m = h,
                       .phase_rounds = 1,
                       .w = h,
                       .subphase_rounds = 1 + rng.next_below(2),
                       .num_subphases = 1,
                       .final_rounds = 1 + rng.next_below(2)};
    rounds = sched.total_rounds() + 1;  // includes the terminated tail
    desc << " sched={sub=" << sched.subphase_rounds
         << ",final=" << sched.final_rounds << "}";
  }
  // SSF flushes once mem_total ≥ m; m = 2 with h ∈ {1, 2} keeps the flush
  // cadence at 1-2 rounds so interned mem states (and the chain's support)
  // stay small.
  const MemoryBudget m{2};
  if (proto_kind == ProtoKind::Ssf) desc << " m=" << m.get();
  desc << " rounds=" << rounds;

  // --- classes + protocol factory -----------------------------------------
  // Automata must outlive both the chain and the replicate protocols; the
  // class-aligned noise list feeds the heterogeneous engine's per-agent
  // matrices.
  std::vector<std::unique_ptr<AgentAutomaton>> automata;
  std::vector<ChainClass> classes;
  std::vector<NoiseMatrix> class_noise;
  oracle_test::ProtocolFactory make_protocol;

  const auto stall_for = [&](std::uint64_t class_first,
                             std::uint64_t class_count) {
    // The blackout stalls agents [first_eligible, first_eligible + blackout);
    // classes are laid out so this range is exactly one class.
    if (blackout == 0 || class_count == 0) return StallWindow{};
    if (class_first == first_eligible && class_count == blackout) {
      return StallWindow{.start = plan.stall.blackout_start,
                         .rounds = plan.stall.blackout_rounds};
    }
    return StallWindow{};
  };

  if (proto_kind == ProtoKind::Table2 || proto_kind == ProtoKind::Table3) {
    auto owned =
        std::make_unique<TableAutomaton>(random_table_automaton(rng, d));
    const TableAutomaton* table = owned.get();
    automata.push_back(std::move(owned));
    const std::uint64_t num_states = table->num_states();

    // Class layout in agent-index order: [blackout][middle][byzantine].
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> spans = {
        {0, blackout}, {blackout, n - blackout - byz}, {n - byz, byz}};
    std::vector<AutomatonGroup> groups;
    for (const auto& [first, count] : spans) {
      if (count == 0) continue;
      const auto init = static_cast<AutomatonState>(rng.next_below(num_states));
      const NoiseMatrix& channel =
          engine_kind == EngineKind::Heterogeneous && first != 0 ? second
                                                                 : noise;
      ChainClass cls{.size = count,
                     .automaton = table,
                     .initial = init,
                     .channel = channel.matrix(),
                     .forged = DisplayOverride::none(),
                     .stall = stall_for(first, count)};
      if (byz > 0 && first == n - byz) {
        cls.forged = oracle_test::byzantine_override(plan);
      }
      classes.push_back(cls);
      class_noise.push_back(channel);
      groups.push_back({.count = count, .automaton = table, .initial = init});
    }
    make_protocol = [groups] {
      return std::make_unique<AutomatonProtocol>(groups);
    };
    if (compiled_mode) {
      // Aliasing shared_ptrs (no control block): `automata` outlives every
      // replicate protocol — both live in this stack frame.
      std::vector<CompiledGroup> cgroups;
      for (const AutomatonGroup& g : groups) {
        cgroups.push_back({.count = g.count,
                           .automaton = std::shared_ptr<const AgentAutomaton>(
                               std::shared_ptr<void>(), g.automaton),
                           .initial = g.initial});
      }
      make_protocol = [cgroups] {
        return std::make_unique<CompiledPopulation>(cgroups,
                                                    /*planned_rounds=*/0);
      };
    }
  } else if (proto_kind == ProtoKind::Sf) {
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = rng.next_below(2)};
    automata.push_back(std::make_unique<SfAutomaton>(sched, true, 1));
    const AgentAutomaton* src1 = automata.back().get();
    automata.push_back(std::make_unique<SfAutomaton>(sched, false, 0));
    const AgentAutomaton* plain = automata.back().get();

    classes.push_back({.size = 1,
                       .automaton = src1,
                       .initial = 0,
                       .channel = noise.matrix()});
    class_noise.push_back(noise);
    if (pop.s0 > 0) {
      automata.push_back(std::make_unique<SfAutomaton>(sched, true, 0));
      classes.push_back({.size = pop.s0,
                         .automaton = automata.back().get(),
                         .initial = 0,
                         .channel = noise.matrix()});
      class_noise.push_back(noise);
    }
    // Non-sources take the dirty channel under the heterogeneous engine.
    const NoiseMatrix& plain_noise =
        engine_kind == EngineKind::Heterogeneous ? second : noise;
    classes.push_back({.size = n - pop.num_sources(),
                       .automaton = plain,
                       .initial = 0,
                       .channel = plain_noise.matrix()});
    class_noise.push_back(plain_noise);
    make_protocol = [pop, sched] {
      return std::make_unique<SourceFilter>(pop, sched);
    };
    if (compiled_mode) {
      make_protocol = [pop, sched] { return make_compiled_sf(pop, sched); };
    }
  } else {  // Ssf
    const PopulationConfig pop{.n = n, .s1 = 1, .s0 = 0};
    automata.push_back(std::make_unique<SsfAutomaton>(m, true, 1));
    const AgentAutomaton* src = automata.back().get();
    automata.push_back(std::make_unique<SsfAutomaton>(m, false, 0));
    const AgentAutomaton* plain = automata.back().get();

    classes.push_back({.size = 1,
                       .automaton = src,
                       .initial = 0,
                       .channel = noise.matrix()});
    class_noise.push_back(noise);
    // Non-source layout in agent-index order: [blackout][middle][byzantine];
    // agent 0 (the source) is fault-immune via first_eligible = 1.
    const NoiseMatrix& plain_noise =
        engine_kind == EngineKind::Heterogeneous ? second : noise;
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> spans = {
        {1, blackout}, {1 + blackout, n - 1 - blackout - byz}, {n - byz, byz}};
    for (const auto& [first, count] : spans) {
      if (count == 0) continue;
      ChainClass cls{.size = count,
                     .automaton = plain,
                     .initial = 0,
                     .channel = plain_noise.matrix(),
                     .forged = DisplayOverride::none(),
                     .stall = stall_for(first, count)};
      if (byz > 0 && first == n - byz) {
        cls.forged = oracle_test::byzantine_override(plan);
      }
      classes.push_back(cls);
      class_noise.push_back(plain_noise);
    }
    make_protocol = [pop, h, m] {
      return std::make_unique<SelfStabilizingSourceFilter>(
          SelfStabilizingSourceFilter::with_memory_budget(pop, Holdings{h},
                                                          m));
    };
    if (compiled_mode) {
      make_protocol = [pop, m] { return make_compiled_ssf(pop, m); };
    }
  }

  // --- engine factory + display view --------------------------------------
  oracle_test::EngineFactory make_engine;
  oracle_test::DisplayView view = oracle_test::honest_view();
  std::vector<NoiseMatrix> per_agent;
  switch (engine_kind) {
    case EngineKind::Aggregate:
      make_engine = [] { return std::make_unique<AggregateEngine>(); };
      break;
    case EngineKind::Sequential:
      make_engine = [] {
        return std::make_unique<SequentialEngine>(
            SequentialEngine::Order::FixedAscending);
      };
      break;
    case EngineKind::Heterogeneous:
      for (std::size_t c = 0; c < classes.size(); ++c) {
        for (std::uint64_t i = 0; i < classes[c].size; ++i) {
          per_agent.push_back(class_noise[c]);
        }
      }
      make_engine = [&per_agent] {
        return std::make_unique<HeterogeneousEngine>(per_agent);
      };
      break;
    case EngineKind::FaultyAggregate:
      make_engine = [&plan] {
        return std::make_unique<oracle_test::OwnedFaultyAggregate>(plan);
      };
      view = oracle_test::faulted_view(plan, n);
      break;
  }
  if (compiled_mode) {
    make_engine = [inner = std::move(make_engine)] {
      auto engine = inner();
      engine->set_compiled(true);
      return engine;
    };
  }

  // --- oracle + comparison -------------------------------------------------
  ExactChainOptions options;
  options.h = Holdings{h};
  options.kernel = engine_kind == EngineKind::Sequential
                       ? ExactChainOptions::Kernel::SequentialAscending
                       : ExactChainOptions::Kernel::Synchronous;
  options.prune_epsilon = kPrune;
  if (engine_kind == EngineKind::FaultyAggregate) {
    options.channel_override = oracle_test::burst_overrides(plan, d, rounds);
  }
  ExactChain chain(classes, options);

  // NOISYPULL_ORACLE_VERBOSE=1: announce each tuple before the heavy work
  // (chain construction + replicates) so slow configurations are visible.
  if (std::getenv("NOISYPULL_ORACLE_VERBOSE") != nullptr) {
    std::fprintf(stderr, "%s\n", desc.str().c_str());
    std::fflush(stderr);
  }

  const auto empirical =
      run_replicates(make_protocol, make_engine, noise, Holdings{h}, rounds,
                     kReps, kFuzzSeed ^ index, view);
  return {desc.str(), compare_to_oracle(chain, empirical, kReps)};
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(OracleFuzz, RandomTuplesMatchExactChain) {
  const std::uint64_t only =
      env_u64("NOISYPULL_ORACLE_TUPLE", kNumTuples);  // sentinel: run all
  const std::uint64_t max_tuples =
      env_u64("NOISYPULL_ORACLE_MAX_TUPLES", kNumTuples);

  std::uint64_t ran = 0;
  for (std::uint64_t i = 0; i < kNumTuples && ran < max_tuples; ++i) {
    if (only < kNumTuples && i != only) continue;
    ++ran;
    const auto outcome = run_tuple(i);
    if (!outcome.failure.empty()) {
      ADD_FAILURE() << outcome.description << "\n"
                    << outcome.failure
                    << "repro: NOISYPULL_ORACLE_TUPLE=" << i
                    << " ./tests/noisypull_oracle_tests"
                       " --gtest_filter='OracleFuzz.*'";
    }
  }
  ASSERT_GT(ran, 0u);
}

}  // namespace
}  // namespace noisypull
