// NaN / out-of-range rejection tests for every probability-taking entry
// point: noise matrix delta, fault plan rates, churn rates, and the
// protocol schedule's delta.
//
// All range checks are written in the NaN-rejecting form
// `x >= lo && x <= hi` (every comparison with NaN is false, so a NaN
// parameter fails the check and throws).  These tests pin that property:
// a refactor to `!(x < lo || x > hi)` would silently start accepting NaN
// and poison the whole run, and nothing else in the suite would notice.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "noisypull/core/schedule.hpp"
#include "noisypull/core/source_filter.hpp"
#include "noisypull/fault/fault_plan.hpp"
#include "noisypull/model/engine.hpp"
#include "noisypull/noise/noise_matrix.hpp"
#include "noisypull/sim/churn.hpp"

namespace noisypull {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ParamValidation, NoiseMatrixUniformRejectsBadDelta) {
  EXPECT_THROW(NoiseMatrix::uniform(2, kNaN), std::invalid_argument);
  EXPECT_THROW(NoiseMatrix::uniform(2, kInf), std::invalid_argument);
  EXPECT_THROW(NoiseMatrix::uniform(2, -0.1), std::invalid_argument);
  // delta must not exceed 1/d (uniform noise cannot be more confusing
  // than the uniform distribution itself).
  EXPECT_THROW(NoiseMatrix::uniform(2, 0.6), std::invalid_argument);
  EXPECT_THROW(NoiseMatrix::uniform(4, 0.3), std::invalid_argument);
  EXPECT_NO_THROW(NoiseMatrix::uniform(2, 0.5));
  EXPECT_NO_THROW(NoiseMatrix::uniform(4, 0.25));
}

TEST(ParamValidation, NoiseMatrixRejectsNaNEntries) {
  // A NaN entry makes the row sum NaN, so the stochasticity check fails.
  Matrix m(2, 2);
  m(0, 0) = kNaN;
  m(0, 1) = 0.5;
  m(1, 0) = 0.5;
  m(1, 1) = 0.5;
  EXPECT_THROW(NoiseMatrix{m}, std::invalid_argument);
}

TEST(ParamValidation, FaultPlanRejectsNaNAndOutOfRangeRates) {
  const auto reject = [](void (*mutate)(FaultPlan&)) {
    FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
    mutate(plan);
    EXPECT_THROW(plan.validate(/*alphabet_size=*/2), std::invalid_argument);
  };
  reject([](FaultPlan& p) { p.byzantine.fraction = kNaN; });
  reject([](FaultPlan& p) { p.byzantine.fraction = -0.1; });
  reject([](FaultPlan& p) { p.byzantine.fraction = 1.5; });
  reject([](FaultPlan& p) { p.drop.p = kNaN; });
  reject([](FaultPlan& p) { p.drop.p = kInf; });
  reject([](FaultPlan& p) { p.drop.p = 2.0; });
  reject([](FaultPlan& p) { p.stall.crash_rate = kNaN; });
  reject([](FaultPlan& p) { p.stall.crash_rate = -1.0; });
  reject([](FaultPlan& p) { p.stall.blackout_fraction = kNaN; });
  reject([](FaultPlan& p) { p.stall.blackout_fraction = 1.01; });
  reject([](FaultPlan& p) { p.burst.rate = kNaN; });
  reject([](FaultPlan& p) { p.burst.rate = -0.5; });
  reject([](FaultPlan& p) {
    p.burst.rate = 0.1;
    p.burst.rounds = 2;
    p.burst.delta = kNaN;
  });
  reject([](FaultPlan& p) {
    p.burst.rate = 0.1;
    p.burst.rounds = 2;
    p.burst.delta = 0.75;  // > 1/|alphabet| for the binary alphabet
  });
}

TEST(ParamValidation, FaultPlanAcceptsBoundaryRates) {
  FaultPlan plan = FaultPlan::for_binary(/*correct=*/1);
  plan.byzantine.fraction = 1.0;
  plan.drop.p = 0.0;
  plan.stall.crash_rate = 1.0;
  plan.stall.min_rounds = 1;
  plan.stall.max_rounds = 1;
  plan.burst.rate = 1.0;
  plan.burst.rounds = 1;
  plan.burst.delta = 0.5;
  EXPECT_NO_THROW(plan.validate(/*alphabet_size=*/2));
}

TEST(ParamValidation, ChurnRejectsNaNAndOutOfRangeRate) {
  const PopulationConfig pop{.n = 20, .s1 = 1, .s0 = 0};
  const double delta = 0.05;
  SelfStabilizingSourceFilter ssf(pop, Holdings{pop.n}, Delta{delta}, C1{2.0});
  AggregateEngine engine;
  const auto noise = NoiseMatrix::uniform(4, delta);
  Rng rng(1);
  const auto run = [&](double rate) {
    run_with_churn(ssf, engine, noise, pop.correct_opinion(), Holdings{pop.n},
                   /*warmup=*/1, /*measure=*/1, ChurnConfig{.rate = rate},
                   rng);
  };
  EXPECT_THROW(run(kNaN), std::invalid_argument);
  EXPECT_THROW(run(kInf), std::invalid_argument);
  EXPECT_THROW(run(-0.01), std::invalid_argument);
  EXPECT_THROW(run(1.01), std::invalid_argument);
}

TEST(ParamValidation, ScheduleRejectsNaNDeltaAndC1) {
  const PopulationConfig pop{.n = 100, .s1 = 1, .s0 = 0};
  EXPECT_THROW(make_sf_schedule(pop, Holdings{10}, Delta{kNaN}, C1{2.0}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop, Holdings{10}, Delta{0.5}, C1{2.0}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop, Holdings{10}, Delta{-0.1}, C1{2.0}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop, Holdings{10}, Delta{0.1}, C1{kNaN}),
               std::invalid_argument);
  EXPECT_THROW(make_sf_schedule(pop, Holdings{10}, Delta{0.1}, C1{0.0}),
               std::invalid_argument);
  EXPECT_THROW(SourceFilter(pop, Holdings{10}, Delta{kNaN}, C1{2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisypull
