// Statistical closure tests: protocol-level simulated quantities are checked
// against the theory module's *exact* closed forms — the strongest
// end-to-end validation the reproduction offers (a bug in the engines, the
// protocols, or the formulas would break the agreement).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "noisypull/noisypull.hpp"

namespace noisypull {
namespace {

TEST(StatisticalValidation, SfWeakOpinionMatchesExactFormula) {
  // Run only the listening stage of SF and compare the population fraction
  // of correct weak opinions to sf_weak_opinion_exact at the same message
  // budget.  Weak opinions are i.i.d. across agents (Lemma 28), so the
  // pooled fraction concentrates tightly.
  const PopulationConfig pop{.n = 400, .s1 = 2, .s0 = 0};
  const double delta = 0.2;
  const auto noise = NoiseMatrix::uniform(2, delta);
  const auto sched = make_sf_schedule_with_m(pop, Holdings{pop.n},
                                             Delta{delta},
                                             MemoryBudget{3 * pop.n});
  ASSERT_EQ(sched.phase_rounds * pop.n, 3 * pop.n);  // exact budget

  std::uint64_t correct = 0, total = 0;
  for (int rep = 0; rep < 25; ++rep) {
    SourceFilter sf(pop, sched);
    AggregateEngine engine;
    Rng rng(7000 + rep);
    for (std::uint64_t t = 0; t < sched.boosting_start(); ++t) {
      engine.step(sf, noise, Holdings{pop.n}, t, rng);
    }
    for (std::uint64_t i = 0; i < pop.n; ++i) {
      correct += sf.weak_opinion(i) == 1 ? 1 : 0;
    }
    total += pop.n;
  }
  const double simulated =
      static_cast<double>(correct) / static_cast<double>(total);
  const double exact =
      sf_weak_opinion_exact(AgentCount{pop.n}, MemoryBudget{3 * pop.n},
                            Delta{delta}, SourceCount{pop.s1},
                            SourceCount{pop.s0});
  const double sigma = std::sqrt(exact * (1 - exact) /
                                 static_cast<double>(total));
  EXPECT_NEAR(simulated, exact, 6 * sigma + 1e-6);
}

TEST(StatisticalValidation, SsfWeakOpinionMatchesExactFormula) {
  // SSF weak opinions after the second update cycle vs
  // ssf_weak_opinion_exact.  h divides m so each update sees exactly m
  // messages, matching the formula's assumption.
  const PopulationConfig pop{.n = 200, .s1 = 2, .s0 = 0};
  const double delta = 0.05;
  const auto noise = NoiseMatrix::uniform(4, delta);
  const std::uint64_t m = 120;
  const std::uint64_t h = 40;  // 3 rounds per cycle

  std::uint64_t correct = 0, total = 0;
  for (int rep = 0; rep < 40; ++rep) {
    auto ssf =
        SelfStabilizingSourceFilter::with_memory_budget(pop, Holdings{h},
                                                        MemoryBudget{m});
    AggregateEngine engine;
    Rng rng(8000 + rep);
    for (std::uint64_t t = 0; t < 2 * (m / h); ++t) {
      engine.step(ssf, noise, Holdings{h}, t, rng);
    }
    // Non-sources only: sources' weak opinions also follow the formula but
    // their displays are pinned, keeping the message mix exact.
    for (std::uint64_t i = pop.num_sources(); i < pop.n; ++i) {
      correct += ssf.weak_opinion(i) == 1 ? 1 : 0;
      ++total;
    }
  }
  const double simulated =
      static_cast<double>(correct) / static_cast<double>(total);
  const double exact =
      ssf_weak_opinion_exact(AgentCount{pop.n}, MemoryBudget{m}, Delta{delta},
                             SourceCount{pop.s1}, SourceCount{pop.s0});
  const double sigma =
      std::sqrt(exact * (1 - exact) / static_cast<double>(total));
  // The formula assumes all non-source second bits are noise-independent,
  // which holds exactly for the tagged messages the weak opinion reads.
  EXPECT_NEAR(simulated, exact, 6 * sigma + 1e-6);
}

TEST(StatisticalValidation, TwoPartyErrorMatchesVoterOverChannel) {
  // A single repeated noisy transmission decoded by majority: the empirical
  // error of an m-sample majority read through the exact engine equals the
  // two-party closed form.
  const std::uint64_t m = 11;
  const double delta = 0.3;
  const auto noise = NoiseMatrix::uniform(2, delta);

  // One "sender" population: everyone displays 1; a reader takes majority
  // of m pulls.
  class Sender : public PullProtocol {
   public:
    std::size_t alphabet_size() const override { return 2; }
    std::uint64_t num_agents() const override { return 4; }
    Symbol display(std::uint64_t, std::uint64_t) const override { return 1; }
    void update(std::uint64_t agent, std::uint64_t, const SymbolCounts& obs,
                Rng& rng) override {
      if (agent != 0) return;
      if (obs[0] > obs[1]) {
        wrong += 1.0;
      } else if (obs[0] == obs[1]) {
        wrong += rng.next_bool() ? 1.0 : 0.0;
      }
      ++reads;
    }
    Opinion opinion(std::uint64_t) const override { return 0; }
    double wrong = 0.0;
    std::uint64_t reads = 0;
  };

  Sender protocol;
  ExactEngine engine;
  Rng rng(9);
  for (int t = 0; t < 40000; ++t) engine.step(protocol, noise, Holdings{m}, t,
                                              rng);
  const double simulated = protocol.wrong / static_cast<double>(protocol.reads);
  const double exact = two_party_error_exact(m, delta);
  EXPECT_NEAR(simulated, exact, 0.01);
}

TEST(StatisticalValidation, MultinomialJointDistribution) {
  // Full joint chi-square for Multinomial(3, {0.5, 0.3, 0.2}): all 10
  // outcomes enumerated.
  Rng rng(10);
  const std::array<double, 3> w = {0.5, 0.3, 0.2};
  std::array<std::uint64_t, 3> counts{};
  // Index outcomes (a,b,c), a+b+c = 3, by a·16 + b·4 + c → map to 0..9.
  std::array<std::uint64_t, 10> observed{};
  std::array<double, 10> expected{};
  auto index = [](std::uint64_t a, std::uint64_t b) {
    // a ∈ 0..3, b ∈ 0..3−a: triangular indexing.
    std::uint64_t idx = 0;
    for (std::uint64_t i = 0; i < a; ++i) idx += 4 - i;
    return idx + b;
  };
  auto factorial = [](std::uint64_t k) {
    double f = 1;
    for (std::uint64_t i = 2; i <= k; ++i) f *= static_cast<double>(i);
    return f;
  };
  for (std::uint64_t a = 0; a <= 3; ++a) {
    for (std::uint64_t b = 0; a + b <= 3; ++b) {
      const std::uint64_t c = 3 - a - b;
      expected[index(a, b)] =
          factorial(3) / (factorial(a) * factorial(b) * factorial(c)) *
          std::pow(w[0], static_cast<double>(a)) *
          std::pow(w[1], static_cast<double>(b)) *
          std::pow(w[2], static_cast<double>(c));
    }
  }
  const int kDraws = 120000;
  for (int i = 0; i < kDraws; ++i) {
    sample_multinomial(rng, 3, w, counts);
    ++observed[index(counts[0], counts[1])];
  }
  EXPECT_LT(chi_square_statistic(observed, expected),
            chi_square_critical_999(9));
}

TEST(StatisticalValidation, KaryListeningScoreMeansMatchDerivation) {
  // The k-ary design's core identity: E[score_σ] = (k−1)·m·(δ + (1−kδ)s_σ/n)
  // — identical across σ except for the source term.  Measured over many
  // repetitions of the listening stage.
  KaryPopulation pop{.n = 100, .sources = {0, 3, 1}};
  const double delta = 0.08;
  const auto noise = NoiseMatrix::uniform(3, delta);
  KarySourceFilter probe(pop, Holdings{pop.n}, Delta{delta}, C1{1.0});
  const std::uint64_t m_eff = probe.phase_rounds() * pop.n;

  std::array<double, 3> sums{};
  const int kReps = 60;
  for (int rep = 0; rep < kReps; ++rep) {
    KarySourceFilter ksf(pop, Holdings{pop.n}, Delta{delta}, C1{1.0});
    AggregateEngine engine;
    Rng rng(11000 + rep);
    for (std::uint64_t t = 0; t < ksf.listening_rounds(); ++t) {
      engine.step(ksf, noise, Holdings{pop.n}, t, rng);
    }
    for (std::size_t o = 0; o < 3; ++o) {
      sums[o] += static_cast<double>(ksf.score(50, static_cast<Opinion>(o)));
    }
  }
  for (std::size_t o = 0; o < 3; ++o) {
    const double mean = sums[o] / kReps;
    const double want =
        2.0 * static_cast<double>(m_eff) *
        (delta + (1 - 3 * delta) *
                     static_cast<double>(pop.sources[o]) / 100.0);
    EXPECT_NEAR(mean, want, 0.05 * want + 3.0) << "sigma=" << o;
  }
}

}  // namespace
}  // namespace noisypull
